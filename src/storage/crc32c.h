#ifndef WEBER_STORAGE_CRC32C_H_
#define WEBER_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace weber::storage {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
/// framing every snapshot section and WAL record. Hardware `crc32` on
/// SSE4.2 machines (one u64 per cycle-ish), table-driven software
/// fallback elsewhere; both produce identical digests.
///
/// `seed` chains incremental updates: Crc32c(b, n2, Crc32c(a, n1)) equals
/// Crc32c(concat(a, b)). The digest of the empty range under seed 0 is 0.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// Kernel the running process dispatches to ("sse4.2" or "table").
const char* Crc32cKernelName();

}  // namespace weber::storage

#endif  // WEBER_STORAGE_CRC32C_H_
