#ifndef WEBER_STORAGE_ENTITY_CODEC_H_
#define WEBER_STORAGE_ENTITY_CODEC_H_

#include "model/entity.h"
#include "storage/buffer.h"

namespace weber::storage {

/// Deterministic byte encoding of one EntityDescription — the shared
/// record format of WAL ingest payloads and the snapshot's store
/// manifest. Strings are length-prefixed, vectors count-prefixed, and the
/// field order is fixed, so encoding the same description always produces
/// the same bytes (the bit-equality digest depends on it).

inline void EncodeDescription(const model::EntityDescription& description,
                              ByteWriter* out) {
  out->PutString(description.uri());
  out->PutString(description.type());
  out->PutU32(static_cast<uint32_t>(description.pairs().size()));
  for (const model::AttributeValue& pair : description.pairs()) {
    out->PutString(pair.attribute);
    out->PutString(pair.value);
  }
  out->PutU32(static_cast<uint32_t>(description.relations().size()));
  for (const model::Relation& relation : description.relations()) {
    out->PutString(relation.predicate);
    out->PutString(relation.target_uri);
  }
}

inline model::EntityDescription DecodeDescription(ByteReader* in) {
  // Sequenced explicitly: two GetString() calls in one argument list would
  // read uri and type in unspecified order.
  std::string uri = in->GetString();
  std::string type = in->GetString();
  model::EntityDescription description(std::move(uri), std::move(type));
  uint32_t pairs = in->GetU32();
  for (uint32_t i = 0; i < pairs && !in->failed(); ++i) {
    std::string attribute = in->GetString();
    std::string value = in->GetString();
    description.AddPair(std::move(attribute), std::move(value));
  }
  uint32_t relations = in->GetU32();
  for (uint32_t i = 0; i < relations && !in->failed(); ++i) {
    std::string predicate = in->GetString();
    std::string target = in->GetString();
    description.AddRelation(std::move(predicate), std::move(target));
  }
  return description;
}

}  // namespace weber::storage

#endif  // WEBER_STORAGE_ENTITY_CODEC_H_
