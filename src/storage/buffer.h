#ifndef WEBER_STORAGE_BUFFER_H_
#define WEBER_STORAGE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace weber::storage {

/// Little-endian append-only byte sink for the snapshot manifest and WAL
/// payloads. Fixed-width scalars only — the encoding must be identical
/// across runs for the bit-equality digest, so nothing varint or
/// host-endian-dependent goes in (weber targets little-endian; the
/// on-disk arenas are raw memory either way).
class ByteWriter {
 public:
  void PutU8(uint8_t value) { bytes_.push_back(value); }
  void PutU32(uint32_t value) { PutRaw(&value, sizeof(value)); }
  void PutU64(uint64_t value) { PutRaw(&value, sizeof(value)); }
  void PutDouble(double value) { PutRaw(&value, sizeof(value)); }
  void PutString(const std::string& value) {
    PutU32(static_cast<uint32_t>(value.size()));
    PutRaw(value.data(), value.size());
  }
  void PutRaw(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked reader over a borrowed byte range. Every Get sets the
/// failed flag instead of reading past the end; callers check failed()
/// once at the end of a decode (corrupt input then maps to one status).
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  uint8_t GetU8() {
    uint8_t value = 0;
    GetRaw(&value, sizeof(value));
    return value;
  }
  uint32_t GetU32() {
    uint32_t value = 0;
    GetRaw(&value, sizeof(value));
    return value;
  }
  uint64_t GetU64() {
    uint64_t value = 0;
    GetRaw(&value, sizeof(value));
    return value;
  }
  double GetDouble() {
    double value = 0;
    GetRaw(&value, sizeof(value));
    return value;
  }
  std::string GetString() {
    uint32_t size = GetU32();
    if (failed_ || size > size_ - offset_) {
      failed_ = true;
      return {};
    }
    std::string value(reinterpret_cast<const char*>(data_ + offset_), size);
    offset_ += size;
    return value;
  }
  void GetRaw(void* out, size_t size) {
    if (failed_ || size > size_ - offset_) {
      failed_ = true;
      std::memset(out, 0, size);
      return;
    }
    std::memcpy(out, data_ + offset_, size);
    offset_ += size;
  }

  bool failed() const { return failed_; }
  /// True when the reader consumed the range exactly, with no overruns.
  bool Exhausted() const { return !failed_ && offset_ == size_; }
  size_t remaining() const { return size_ - offset_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
  bool failed_ = false;
};

}  // namespace weber::storage

#endif  // WEBER_STORAGE_BUFFER_H_
