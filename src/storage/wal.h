#ifndef WEBER_STORAGE_WAL_H_
#define WEBER_STORAGE_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/file_io.h"
#include "storage/options.h"
#include "storage/status.h"

namespace weber::storage {

/// Append-only write-ahead log of resolver mutations.
///
/// File layout (little-endian):
///
///   header (24 bytes): magic "WEBERWAL", format version u32,
///                      header CRC32C u32, base op count u64
///   records:           { payload_len u32; crc u32; type u8; payload }
///
/// `base_op` is the op high-water mark of the snapshot this WAL extends —
/// replaying record k brings the resolver to op base_op + k + 1. Each
/// record's CRC32C covers the type byte and payload, so a flipped bit
/// anywhere in a frame is detected.
///
/// Torn-tail discipline: a crash mid-append leaves a final frame that is
/// short or fails its CRC. ReadWal reports such a tail as `torn_bytes`
/// (the caller truncates it and the ops it held were simply never acked)
/// — but a bad frame *followed by more bytes* cannot be a crash artifact
/// of an append-only log, so it fails closed with kWalCorrupt.
class WriteAheadLog {
 public:
  enum RecordType : uint8_t {
    kIngestBatch = 1,  // u32 count, then count EncodeDescription records.
    kRemove = 2,       // u32 entity id.
  };

  struct Record {
    uint8_t type = 0;
    std::vector<uint8_t> payload;
  };

  /// The decoded contents of a WAL file.
  struct Contents {
    uint64_t base_op = 0;
    std::vector<Record> records;
    /// File size up to and including the last good frame.
    uint64_t good_size = 0;
    /// Bytes of torn tail past good_size (0 when the file is clean).
    uint64_t torn_bytes = 0;
  };

  /// Reads and validates the whole WAL. An empty file or one shorter than
  /// the header is a clean empty log (crash between WAL creation and its
  /// first sync); a torn final frame is reported via torn_bytes, interior
  /// corruption is kWalCorrupt. A missing file is an I/O error — callers
  /// decide whether absence is legal (see DurableResolver recovery).
  static Status Read(const std::string& path, Contents* out);

  /// Parses an in-memory WAL image with Read's exact semantics (Read is
  /// ReadFileBytes + Parse). Byte-level entry point: this is the surface
  /// the fuzz harness drives, so every validation path stays reachable
  /// without touching a filesystem.
  static Status Parse(std::span<const uint8_t> bytes, Contents* out);

  WriteAheadLog() = default;

  /// Creates a fresh WAL at `path` (truncating any leftover), writes the
  /// header and makes it durable.
  Status Create(const std::string& path, uint64_t base_op,
                FsyncPolicy policy, uint64_t batch_interval);

  /// Reopens an existing WAL for appending after recovery. `good_size`
  /// is Contents::good_size from Read — any torn tail beyond it is
  /// truncated away first.
  Status OpenExisting(const std::string& path, uint64_t good_size,
                      uint64_t file_size, FsyncPolicy policy,
                      uint64_t batch_interval);

  /// Appends one framed record and applies the fsync policy. The record
  /// is durable on return iff the policy flushed (kAlways, or kBatch on
  /// an interval boundary).
  Status Append(uint8_t type, const std::vector<uint8_t>& payload);

  /// Forces an fsync regardless of policy (checkpoint barrier).
  Status Sync();

  void Close();
  bool is_open() const { return file_.is_open(); }

  uint64_t appended_records() const { return appended_records_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t fsyncs() const { return fsyncs_; }

 private:
  AppendFile file_;
  FsyncPolicy policy_ = FsyncPolicy::kBatch;
  uint64_t batch_interval_ = 64;
  uint64_t unsynced_records_ = 0;
  uint64_t appended_records_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t fsyncs_ = 0;
};

}  // namespace weber::storage

#endif  // WEBER_STORAGE_WAL_H_
