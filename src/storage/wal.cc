#include "storage/wal.h"

#include <cstring>

#include "storage/crc32c.h"
#include "storage/file_io.h"

namespace weber::storage {
namespace {

constexpr uint64_t kWalMagic = 0x4C41575245424557ull;  // "WEBERWAL"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 24;
constexpr size_t kFrameOverhead = 9;  // len u32 + crc u32 + type u8.

std::vector<uint8_t> EncodeHeader(uint64_t base_op) {
  std::vector<uint8_t> header(kWalHeaderBytes, 0);
  uint32_t version = kWalVersion;
  std::memcpy(header.data(), &kWalMagic, 8);
  std::memcpy(header.data() + 8, &version, 4);
  std::memcpy(header.data() + 16, &base_op, 8);
  uint32_t crc = Crc32c(header.data(), header.size());
  std::memcpy(header.data() + 12, &crc, 4);
  return header;
}

}  // namespace

Status WriteAheadLog::Read(const std::string& path, Contents* out) {
  std::vector<uint8_t> bytes;
  Status status = ReadFileBytes(path, &bytes);
  if (!status.ok()) {
    *out = Contents{};
    return status;
  }
  return Parse(bytes, out);
}

Status WriteAheadLog::Parse(std::span<const uint8_t> bytes, Contents* out) {
  *out = Contents{};
  if (bytes.size() < kWalHeaderBytes) {
    // Crash between creating the WAL and syncing its header: no record
    // was ever acknowledged, so this is a clean empty log.
    out->torn_bytes = bytes.size();
    return Status::Ok();
  }
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t header_crc = 0;
  std::memcpy(&magic, bytes.data(), 8);
  if (magic != kWalMagic) {
    return Status(StorageErrc::kBadMagic, "not a weber WAL file");
  }
  std::memcpy(&version, bytes.data() + 8, 4);
  if (version != kWalVersion) {
    return Status(StorageErrc::kBadVersion,
                  "WAL format v" + std::to_string(version) +
                      "; this build reads v" + std::to_string(kWalVersion));
  }
  std::memcpy(&header_crc, bytes.data() + 12, 4);
  std::memcpy(&out->base_op, bytes.data() + 16, 8);
  std::vector<uint8_t> header(bytes.begin(), bytes.begin() + kWalHeaderBytes);
  std::memset(header.data() + 12, 0, 4);
  if (Crc32c(header.data(), header.size()) != header_crc) {
    return Status(StorageErrc::kWalCorrupt, "WAL header fails its CRC32C");
  }

  size_t offset = kWalHeaderBytes;
  out->good_size = offset;
  while (offset < bytes.size()) {
    bool torn = false;
    if (bytes.size() - offset < kFrameOverhead) {
      torn = true;  // Short frame header.
    } else {
      uint32_t payload_len = 0;
      uint32_t crc = 0;
      std::memcpy(&payload_len, bytes.data() + offset, 4);
      std::memcpy(&crc, bytes.data() + offset + 4, 4);
      size_t frame = kFrameOverhead + size_t{payload_len};
      if (bytes.size() - offset < frame) {
        torn = true;  // Frame extends past EOF.
      } else if (Crc32c(bytes.data() + offset + 8, payload_len + 1) != crc) {
        torn = true;  // Bit rot or a torn-in-place final frame.
      } else {
        Record record;
        record.type = bytes[offset + 8];
        record.payload.assign(bytes.begin() + offset + 9,
                              bytes.begin() + offset + frame);
        out->records.push_back(std::move(record));
        offset += frame;
        out->good_size = offset;
        continue;
      }
    }
    if (torn) {
      // Only the *final* frame may be torn: this is an append-only log,
      // so damage with more bytes behind it is corruption, not a crash.
      uint64_t tail = bytes.size() - out->good_size;
      bool is_final = true;
      // A torn frame whose claimed length points past EOF is final by
      // construction; a CRC failure is final only if no complete frame
      // parses after it. Scanning forward would risk resynchronising on
      // garbage, so treat any bytes beyond the failed frame's own claim
      // as interior corruption.
      if (bytes.size() - offset >= kFrameOverhead) {
        uint32_t payload_len = 0;
        std::memcpy(&payload_len, bytes.data() + offset, 4);
        size_t frame = kFrameOverhead + size_t{payload_len};
        if (bytes.size() - offset > frame) is_final = false;
      }
      if (!is_final) {
        return Status(StorageErrc::kWalCorrupt,
                      "WAL record at offset " + std::to_string(offset) +
                          " fails its CRC32C with records after it");
      }
      out->torn_bytes = tail;
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status WriteAheadLog::Create(const std::string& path, uint64_t base_op,
                             FsyncPolicy policy, uint64_t batch_interval) {
  Close();
  // Start from nothing: a leftover file would splice old records after
  // the new header.
  Status status = RemoveFile(path);
  if (!status.ok()) return status;
  status = file_.Open(path);
  if (!status.ok()) return status;
  policy_ = policy;
  batch_interval_ = batch_interval == 0 ? 1 : batch_interval;
  unsynced_records_ = 0;
  std::vector<uint8_t> header = EncodeHeader(base_op);
  status = file_.Append(header);
  if (status.ok()) status = file_.Sync();  // Header durability is not optional.
  if (!status.ok()) {
    Close();
    return status;
  }
  appended_bytes_ += header.size();
  ++fsyncs_;
  return Status::Ok();
}

Status WriteAheadLog::OpenExisting(const std::string& path,
                                   uint64_t good_size, uint64_t file_size,
                                   FsyncPolicy policy,
                                   uint64_t batch_interval) {
  Close();
  if (good_size < file_size) {
    Status status = TruncateFile(path, good_size);
    if (!status.ok()) return status;
  }
  Status status = file_.Open(path);
  if (!status.ok()) return status;
  policy_ = policy;
  batch_interval_ = batch_interval == 0 ? 1 : batch_interval;
  unsynced_records_ = 0;
  return Status::Ok();
}

Status WriteAheadLog::Append(uint8_t type,
                             const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame(kFrameOverhead + payload.size());
  uint32_t payload_len = static_cast<uint32_t>(payload.size());
  std::memcpy(frame.data(), &payload_len, 4);
  frame[8] = type;
  if (!payload.empty()) {
    std::memcpy(frame.data() + 9, payload.data(), payload.size());
  }
  uint32_t crc = Crc32c(frame.data() + 8, payload.size() + 1);
  std::memcpy(frame.data() + 4, &crc, 4);
  Status status = file_.Append(frame);
  if (!status.ok()) return status;
  ++appended_records_;
  appended_bytes_ += frame.size();
  ++unsynced_records_;
  bool flush = policy_ == FsyncPolicy::kAlways ||
               (policy_ == FsyncPolicy::kBatch &&
                unsynced_records_ >= batch_interval_);
  if (flush) return Sync();
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  if (unsynced_records_ == 0) return Status::Ok();
  Status status = file_.Sync();
  if (!status.ok()) return status;
  unsynced_records_ = 0;
  ++fsyncs_;
  return Status::Ok();
}

void WriteAheadLog::Close() {
  file_.Close();
  unsynced_records_ = 0;
}

}  // namespace weber::storage
