#ifndef WEBER_STORAGE_DURABLE_H_
#define WEBER_STORAGE_DURABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "incremental/resolver.h"
#include "storage/options.h"
#include "storage/status.h"
#include "storage/wal.h"

namespace weber::storage {

/// An IncrementalResolver with crash durability: every mutation is
/// write-ahead logged before it is applied, and checkpoints fold the log
/// into an mmap-able snapshot.
///
/// Generations. The data directory holds at most two artifacts per
/// generation G (the durable-op count at checkpoint time): `snapshot-G`
/// and `wal-G`, both zero-padded so lexicographic equals numeric order.
/// Generation 0 is implicit — just `wal-0`, replayed from an empty
/// resolver. A checkpoint writes `snapshot-G` atomically (tmp + rename +
/// dir fsync), starts `wal-G`, then unlinks the previous generation; a
/// crash anywhere in that sequence leaves a recoverable directory:
///
///   - tmp leftovers are ignored and deleted;
///   - `snapshot-G` without `wal-G` means the crash hit between rename
///     and WAL creation — every op <= G is in the snapshot, so a fresh
///     empty `wal-G` is correct;
///   - both generations present means the old one was not yet unlinked —
///     the newest wins, the stale one is deleted.
///
/// Recovery loads the newest snapshot (zero-copy when mapped), replays
/// `wal-G` through the resolver, truncates a torn tail (those ops were
/// never acknowledged), and reopens the log for appending. The replayed
/// state is bit-equal to the pre-crash state over every acknowledged op —
/// SnapshotCodec::StateDigest is the witness, and the crash-recovery
/// tests assert it against an uninterrupted reference run.
///
/// Durability requires replay determinism, so merge propagation (whose
/// scoring depends on in-memory merge order) is rejected up front.
class DurableResolver {
 public:
  /// Recovers from (or initialises) `durability.data_dir` immediately.
  /// The matcher is borrowed and must outlive the resolver. Check
  /// `recovery_status()` before use: after a failed recovery the resolver
  /// fails closed — mutations WEBER_CHECK, queries return empty state.
  DurableResolver(const matching::Matcher* matcher,
                  incremental::ResolverOptions options,
                  DurabilityOptions durability);

  ~DurableResolver();
  DurableResolver(const DurableResolver&) = delete;
  DurableResolver& operator=(const DurableResolver&) = delete;

  const Status& recovery_status() const { return recovery_status_; }
  bool healthy() const { return recovery_status_.ok(); }

  /// Logs then applies one ingest batch (one durable op). The batch is
  /// recoverable from disk before any in-memory state changes.
  std::vector<model::EntityId> Ingest(
      std::vector<model::EntityDescription> batch);

  /// Logs then applies one removal (one durable op).
  bool Remove(model::EntityId id);

  /// Folds the WAL into a fresh snapshot generation. Called automatically
  /// every `snapshot_every` ops; call explicitly for a final checkpoint.
  Status Checkpoint();

  /// Durable ops applied so far (ingest batches + removes, ever).
  uint64_t op_count() const { return op_count_; }

  /// The resolver's WAL-replay high-water mark at the last recovery:
  /// records replayed and torn bytes discarded.
  uint64_t replayed_records() const { return replayed_records_; }
  uint64_t torn_tail_bytes() const { return torn_tail_bytes_; }

  /// The wrapped resolver, for queries (Resolve/Clusters/matches/...).
  /// Mutations must go through the durable API above.
  incremental::IncrementalResolver& resolver() { return resolver_; }
  const incremental::IncrementalResolver& resolver() const {
    return resolver_;
  }

  /// FNV-1a fingerprint of every option that shapes the durable state.
  /// Stored in snapshot and WAL-adjacent headers; a mismatch on recovery
  /// fails with kConfigMismatch instead of silently misresolving.
  static uint64_t ConfigFingerprint(const matching::Matcher* matcher,
                                    const incremental::ResolverOptions& options);

 private:
  Status Recover();
  void PublishRecoveryMetrics(double seconds);
  void PublishWalMetrics();
  void MaybeCheckpoint();
  std::string SnapshotPath(uint64_t generation) const;
  std::string WalPath(uint64_t generation) const;

  incremental::ResolverOptions options_;
  DurabilityOptions durability_;
  uint64_t fingerprint_ = 0;
  incremental::IncrementalResolver resolver_;
  WriteAheadLog wal_;
  Status recovery_status_;
  uint64_t op_count_ = 0;
  uint64_t generation_ = 0;
  uint64_t replayed_records_ = 0;
  uint64_t torn_tail_bytes_ = 0;
  // Last-published WAL totals, so counters get deltas, not re-counts.
  uint64_t published_wal_records_ = 0;
  uint64_t published_wal_bytes_ = 0;
  uint64_t published_wal_fsyncs_ = 0;
};

}  // namespace weber::storage

#endif  // WEBER_STORAGE_DURABLE_H_
