#include "storage/durable.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>

#include "obs/metrics.h"
#include "storage/buffer.h"
#include "storage/entity_codec.h"
#include "storage/file_io.h"
#include "storage/snapshot.h"
#include "util/check.h"
#include "util/timer.h"

namespace weber::storage {
namespace {

std::string GenerationName(const char* stem, uint64_t generation) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s-%020llu", stem,
                static_cast<unsigned long long>(generation));
  return buffer;
}

/// Parses "<stem>-<20 digits>" names; anything else is not ours.
std::optional<uint64_t> ParseGeneration(const std::string& name,
                                        const char* stem) {
  std::string prefix = std::string(stem) + "-";
  if (name.size() != prefix.size() + 20 ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return value;
}

std::vector<uint8_t> EncodeIngestPayload(
    const std::vector<model::EntityDescription>& batch) {
  ByteWriter out;
  out.PutU32(static_cast<uint32_t>(batch.size()));
  for (const model::EntityDescription& description : batch) {
    EncodeDescription(description, &out);
  }
  return out.Take();
}

void HashBytes(uint64_t* hash, const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    *hash ^= bytes[i];
    *hash *= 1099511628211ull;  // FNV-1a 64.
  }
}

void HashU64(uint64_t* hash, uint64_t value) {
  HashBytes(hash, &value, sizeof(value));
}

void HashString(uint64_t* hash, const std::string& value) {
  HashU64(hash, value.size());
  HashBytes(hash, value.data(), value.size());
}

}  // namespace

uint64_t DurableResolver::ConfigFingerprint(
    const matching::Matcher* matcher,
    const incremental::ResolverOptions& options) {
  uint64_t hash = 14695981039346656037ull;
  HashString(&hash, matcher->name());
  uint64_t threshold_bits = 0;
  std::memcpy(&threshold_bits, &options.match_threshold,
              sizeof(threshold_bits));
  HashU64(&hash, threshold_bits);
  HashU64(&hash, options.sn_window);
  HashU64(&hash, options.merge_propagation ? 1 : 0);
  HashU64(&hash, options.prepared_matching ? 1 : 0);
  HashU64(&hash, options.index.normalize.lowercase ? 1 : 0);
  HashU64(&hash, options.index.normalize.strip_punctuation ? 1 : 0);
  HashU64(&hash, options.index.normalize.collapse_whitespace ? 1 : 0);
  HashU64(&hash, options.index.min_token_length);
  HashU64(&hash, options.index.max_block_size);
  HashString(&hash, options.sn_options.key_attribute);
  return hash;
}

DurableResolver::DurableResolver(const matching::Matcher* matcher,
                                 incremental::ResolverOptions options,
                                 DurabilityOptions durability)
    : options_(options),
      durability_(std::move(durability)),
      fingerprint_(ConfigFingerprint(matcher, options)),
      resolver_(matcher, std::move(options)) {
  // Merge propagation scores merged representatives in in-memory merge
  // order, which WAL replay cannot reproduce — reject rather than
  // recover into a silently different state.
  WEBER_CHECK(!options_.merge_propagation)
      << "durability requires merge_propagation = false";
  util::Timer timer;
  recovery_status_ = Recover();
  if (recovery_status_.ok()) {
    PublishRecoveryMetrics(timer.ElapsedSeconds());
  }
}

DurableResolver::~DurableResolver() {
  if (wal_.is_open()) {
    wal_.Sync();  // Best effort: flush the tail of a kBatch/kOff log.
    wal_.Close();
  }
}

std::string DurableResolver::SnapshotPath(uint64_t generation) const {
  return durability_.data_dir + "/" + GenerationName("snapshot", generation);
}

std::string DurableResolver::WalPath(uint64_t generation) const {
  return durability_.data_dir + "/" + GenerationName("wal", generation);
}

Status DurableResolver::Recover() {
  if (durability_.data_dir.empty()) {
    return Status(StorageErrc::kIoError, "durability data_dir is empty");
  }
  if (!DirectoryExists(durability_.data_dir)) {
    return Status(StorageErrc::kIoError,
                  "durability data_dir does not exist: " +
                      durability_.data_dir);
  }
  std::vector<std::string> names;
  Status status = ListDirectory(durability_.data_dir, &names);
  if (!status.ok()) return status;

  std::vector<uint64_t> snapshots;
  std::vector<uint64_t> wals;
  for (const std::string& name : names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // A torn AtomicWriteFile; the rename never happened, so it holds
      // nothing the directory's committed files don't supersede.
      status = RemoveFile(durability_.data_dir + "/" + name);
      if (!status.ok()) return status;
      continue;
    }
    if (auto generation = ParseGeneration(name, "snapshot")) {
      snapshots.push_back(*generation);
    } else if (auto generation = ParseGeneration(name, "wal")) {
      wals.push_back(*generation);
    }
  }

  generation_ = 0;
  op_count_ = 0;
  if (!snapshots.empty()) {
    generation_ = *std::max_element(snapshots.begin(), snapshots.end());
    SnapshotCodec::LoadOptions load_options;
    load_options.mapped = durability_.map_snapshots;
    load_options.verify_arenas = durability_.verify_sections;
    status = SnapshotCodec::Load(SnapshotPath(generation_), fingerprint_,
                                 load_options, &resolver_, &op_count_);
    if (!status.ok()) return status;
  }
  if (!wals.empty()) {
    uint64_t newest_wal = *std::max_element(wals.begin(), wals.end());
    if (newest_wal > generation_) {
      // wal-G is only ever created after snapshot-G is durably renamed
      // (generation 0 aside), so a WAL beyond the newest snapshot means
      // the snapshot was lost — unrecoverable without guessing.
      return Status(StorageErrc::kWalCorrupt,
                    "WAL generation " + std::to_string(newest_wal) +
                        " has no matching snapshot");
    }
  }

  std::string wal_path = WalPath(generation_);
  if (FileExists(wal_path)) {
    WriteAheadLog::Contents contents;
    status = WriteAheadLog::Read(wal_path, &contents);
    if (!status.ok()) return status;
    if (!contents.records.empty() || contents.good_size > 0) {
      if (contents.base_op != op_count_) {
        return Status(StorageErrc::kWalCorrupt,
                      "WAL base op " + std::to_string(contents.base_op) +
                          " does not extend snapshot op " +
                          std::to_string(op_count_));
      }
    }
    for (const WriteAheadLog::Record& record : contents.records) {
      ByteReader in(record.payload.data(), record.payload.size());
      if (record.type == WriteAheadLog::kIngestBatch) {
        uint32_t count = in.GetU32();
        std::vector<model::EntityDescription> batch;
        batch.reserve(count);
        for (uint32_t i = 0; i < count && !in.failed(); ++i) {
          batch.push_back(DecodeDescription(&in));
        }
        if (!in.Exhausted()) {
          return Status(StorageErrc::kWalCorrupt,
                        "malformed ingest record in WAL replay");
        }
        resolver_.Ingest(std::move(batch));
      } else if (record.type == WriteAheadLog::kRemove) {
        uint32_t id = in.GetU32();
        if (!in.Exhausted()) {
          return Status(StorageErrc::kWalCorrupt,
                        "malformed remove record in WAL replay");
        }
        resolver_.Remove(id);
      } else {
        return Status(StorageErrc::kWalCorrupt,
                      "unknown WAL record type " +
                          std::to_string(record.type));
      }
      ++op_count_;
    }
    replayed_records_ = contents.records.size();
    torn_tail_bytes_ = contents.torn_bytes;
    if (contents.good_size == 0 && contents.torn_bytes > 0) {
      // Header itself was torn; rewrite the log from scratch.
      status = wal_.Create(wal_path, op_count_, durability_.fsync,
                           durability_.batch_fsync_interval);
    } else {
      status = wal_.OpenExisting(
          wal_path, contents.good_size,
          contents.good_size + contents.torn_bytes, durability_.fsync,
          durability_.batch_fsync_interval);
    }
    if (!status.ok()) return status;
  } else {
    // Crash between snapshot rename and WAL creation (or a brand-new
    // directory): every op <= generation_ is in the snapshot.
    status = wal_.Create(wal_path, op_count_, durability_.fsync,
                         durability_.batch_fsync_interval);
    if (!status.ok()) return status;
  }

  // Stale generations are garbage once the newest one recovered.
  for (uint64_t generation : snapshots) {
    if (generation != generation_) {
      status = RemoveFile(SnapshotPath(generation));
      if (!status.ok()) return status;
    }
  }
  for (uint64_t generation : wals) {
    if (generation != generation_) {
      status = RemoveFile(WalPath(generation));
      if (!status.ok()) return status;
    }
  }
  return Status::Ok();
}

void DurableResolver::PublishRecoveryMetrics(double seconds) {
  obs::MetricsRegistry* registry =
      options_.metrics != nullptr ? options_.metrics : obs::Current();
  if (registry == nullptr) return;
  registry->GetHistogram("weber.storage.recovery_seconds").Record(seconds);
  registry->GetCounter("weber.storage.wal.replayed_records")
      .Add(replayed_records_);
  registry->GetCounter("weber.storage.wal.torn_tail_bytes")
      .Add(torn_tail_bytes_);
  registry->GetGauge("weber.storage.state_digest")
      .Set(static_cast<double>(SnapshotCodec::StateDigest(resolver_)));
}

std::vector<model::EntityId> DurableResolver::Ingest(
    std::vector<model::EntityDescription> batch) {
  WEBER_CHECK(healthy()) << "ingest on a failed durable resolver: "
                         << recovery_status_.ToString();
  // Log-then-apply: the op is on disk (per fsync policy) before any
  // in-memory state reflects it.
  Status status =
      wal_.Append(WriteAheadLog::kIngestBatch, EncodeIngestPayload(batch));
  WEBER_CHECK(status.ok()) << "WAL append failed: " << status.ToString();
  std::vector<model::EntityId> ids = resolver_.Ingest(std::move(batch));
  ++op_count_;
  PublishWalMetrics();
  MaybeCheckpoint();
  return ids;
}

bool DurableResolver::Remove(model::EntityId id) {
  WEBER_CHECK(healthy()) << "remove on a failed durable resolver: "
                         << recovery_status_.ToString();
  ByteWriter payload;
  payload.PutU32(id);
  Status status = wal_.Append(WriteAheadLog::kRemove, payload.Take());
  WEBER_CHECK(status.ok()) << "WAL append failed: " << status.ToString();
  bool removed = resolver_.Remove(id);
  ++op_count_;
  PublishWalMetrics();
  MaybeCheckpoint();
  return removed;
}

void DurableResolver::MaybeCheckpoint() {
  if (durability_.snapshot_every == 0) return;
  if (op_count_ - generation_ < durability_.snapshot_every) return;
  Status status = Checkpoint();
  WEBER_CHECK(status.ok()) << "checkpoint failed: " << status.ToString();
}

Status DurableResolver::Checkpoint() {
  if (!healthy()) return recovery_status_;
  util::Timer timer;
  std::vector<uint8_t> image =
      SnapshotCodec::Encode(resolver_, fingerprint_, op_count_);
  Status status = AtomicWriteFile(SnapshotPath(op_count_), image);
  if (!status.ok()) return status;
  uint64_t previous = generation_;
  generation_ = op_count_;
  status = wal_.Create(WalPath(generation_), op_count_, durability_.fsync,
                       durability_.batch_fsync_interval);
  if (!status.ok()) return status;
  if (previous != generation_) {
    status = RemoveFile(SnapshotPath(previous));
    if (status.ok()) status = RemoveFile(WalPath(previous));
    if (!status.ok()) return status;
  }

  obs::MetricsRegistry* registry =
      options_.metrics != nullptr ? options_.metrics : obs::Current();
  if (registry != nullptr) {
    registry->GetCounter("weber.storage.snapshots_written").Increment();
    registry->GetCounter("weber.storage.snapshot.bytes").Add(image.size());
    registry->GetHistogram("weber.storage.snapshot.write_seconds")
        .Record(timer.ElapsedSeconds());
    uint32_t digest = 0;
    if (SnapshotCodec::ImageDigest(image, &digest).ok()) {
      registry->GetGauge("weber.storage.state_digest")
          .Set(static_cast<double>(digest));
    }
  }
  PublishWalMetrics();
  return Status::Ok();
}

void DurableResolver::PublishWalMetrics() {
  obs::MetricsRegistry* registry =
      options_.metrics != nullptr ? options_.metrics : obs::Current();
  if (registry == nullptr) return;
  registry->GetCounter("weber.storage.wal.appended_records")
      .Add(wal_.appended_records() - published_wal_records_);
  registry->GetCounter("weber.storage.wal.appended_bytes")
      .Add(wal_.appended_bytes() - published_wal_bytes_);
  registry->GetCounter("weber.storage.wal.fsyncs")
      .Add(wal_.fsyncs() - published_wal_fsyncs_);
  published_wal_records_ = wal_.appended_records();
  published_wal_bytes_ = wal_.appended_bytes();
  published_wal_fsyncs_ = wal_.fsyncs();
}

}  // namespace weber::storage
