#include "storage/snapshot.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "incremental/resolver.h"
#include "storage/buffer.h"
#include "storage/crc32c.h"
#include "storage/entity_codec.h"
#include "storage/file_io.h"
#include "util/check.h"

namespace weber::storage {
namespace {

constexpr uint64_t kSnapshotMagic = 0x504E535245424557ull;  // "WEBERSNP"
constexpr size_t kPageSize = 4096;
constexpr size_t kHeaderFixedBytes = 48;
constexpr size_t kSectionEntryBytes = 24;

/// Section inventory. Manifest sections are decoded eagerly; arena
/// sections are raw element arrays eligible for zero-copy borrowing.
enum SectionKind : uint32_t {
  kStoreManifest = 1,
  kResolverManifest = 2,
  kSigManifest = 3,
  kAnnex = 4,  // Digest-excluded (delta-index lifetime counters).
  kSigEntries = 5,
  kSigPostingChunks = 6,
  kSigPostingArrays = 7,
  kSigPostingBitsets = 8,
  kSigTokens = 9,
  kSigTfIdf = 10,
  kSigAttrSlots = 11,
  kVocabBlob = 12,
  kVocabOffsets = 13,
};

const char* SectionName(uint32_t kind) {
  switch (kind) {
    case kStoreManifest: return "store-manifest";
    case kResolverManifest: return "resolver-manifest";
    case kSigManifest: return "signature-manifest";
    case kAnnex: return "annex";
    case kSigEntries: return "signature-entries";
    case kSigPostingChunks: return "posting-chunks";
    case kSigPostingArrays: return "posting-arrays";
    case kSigPostingBitsets: return "posting-bitsets";
    case kSigTokens: return "attribute-tokens";
    case kSigTfIdf: return "tfidf-terms";
    case kSigAttrSlots: return "attribute-slots";
    case kVocabBlob: return "vocabulary-blob";
    case kVocabOffsets: return "vocabulary-offsets";
  }
  return "unknown";
}

struct SectionEntry {
  uint32_t kind = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
};

struct SectionSpec {
  uint32_t kind = 0;
  const uint8_t* data = nullptr;
  size_t size = 0;
};

size_t AlignUp(size_t value, size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

static_assert(std::is_trivially_copyable_v<model::IdPair> &&
                  sizeof(model::IdPair) == 8,
              "IdPair is framed raw in the resolver manifest");

std::vector<uint8_t> AssembleImage(const std::vector<SectionSpec>& sections,
                                   uint64_t config_fingerprint,
                                   uint64_t op_count) {
  size_t header_len =
      kHeaderFixedBytes + sections.size() * kSectionEntryBytes;
  std::vector<SectionEntry> directory(sections.size());
  size_t offset = AlignUp(header_len, kPageSize);
  for (size_t i = 0; i < sections.size(); ++i) {
    directory[i].kind = sections[i].kind;
    directory[i].crc = Crc32c(sections[i].data, sections[i].size);
    directory[i].offset = offset;
    directory[i].size = sections[i].size;
    offset = AlignUp(offset + sections[i].size, kPageSize);
  }
  size_t file_size = sections.empty()
                         ? header_len
                         : directory.back().offset + directory.back().size;

  std::vector<uint8_t> image(file_size, 0);
  auto put = [&image](size_t at, const void* data, size_t size) {
    std::memcpy(image.data() + at, data, size);
  };
  uint64_t magic = kSnapshotMagic;
  uint32_t version = SnapshotCodec::kFormatVersion;
  uint64_t size64 = file_size;
  uint32_t section_count = static_cast<uint32_t>(sections.size());
  put(0, &magic, 8);
  put(8, &version, 4);
  // Header CRC at [12, 16) is filled in last.
  put(16, &config_fingerprint, 8);
  put(24, &op_count, 8);
  put(32, &size64, 8);
  put(40, &section_count, 4);
  for (size_t i = 0; i < directory.size(); ++i) {
    size_t at = kHeaderFixedBytes + i * kSectionEntryBytes;
    put(at, &directory[i].kind, 4);
    put(at + 4, &directory[i].crc, 4);
    put(at + 8, &directory[i].offset, 8);
    put(at + 16, &directory[i].size, 8);
  }
  uint32_t header_crc = Crc32c(image.data(), header_len);
  put(12, &header_crc, 4);
  for (size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].size != 0) {
      put(directory[i].offset, sections[i].data, sections[i].size);
    }
  }
  return image;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct ParsedImage {
  const uint8_t* data = nullptr;
  size_t size = 0;
  uint64_t config_fingerprint = 0;
  uint64_t op_count = 0;
  std::vector<SectionEntry> sections;
  // Keepalive for borrowed arenas (null on the eager path).
  std::shared_ptr<MappedFile> mapping;
  // Backing bytes of the eager path.
  std::vector<uint8_t> bytes;

  const SectionEntry* Find(uint32_t kind) const {
    for (const SectionEntry& section : sections) {
      if (section.kind == kind) return &section;
    }
    return nullptr;
  }
  const uint8_t* SectionData(const SectionEntry& section) const {
    return data + section.offset;
  }
};

Status CorruptSection(uint32_t kind, const std::string& detail) {
  return Status(StorageErrc::kCorruptSection,
                std::string("section ") + SectionName(kind) + ": " + detail);
}

Status ParseHeader(ParsedImage* image) {
  if (image->size < kHeaderFixedBytes) {
    return Status(StorageErrc::kCorruptHeader,
                  "file smaller than the snapshot header");
  }
  auto get = [image](size_t at, void* out, size_t size) {
    std::memcpy(out, image->data + at, size);
  };
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t header_crc = 0;
  uint64_t file_size = 0;
  uint32_t section_count = 0;
  get(0, &magic, 8);
  if (magic != kSnapshotMagic) {
    return Status(StorageErrc::kBadMagic, "not a weber snapshot file");
  }
  get(8, &version, 4);
  if (version != SnapshotCodec::kFormatVersion) {
    return Status(StorageErrc::kBadVersion,
                  "snapshot format v" + std::to_string(version) +
                      "; this build reads v" +
                      std::to_string(SnapshotCodec::kFormatVersion));
  }
  get(12, &header_crc, 4);
  get(16, &image->config_fingerprint, 8);
  get(24, &image->op_count, 8);
  get(32, &file_size, 8);
  get(40, &section_count, 4);
  size_t header_len =
      kHeaderFixedBytes + size_t{section_count} * kSectionEntryBytes;
  if (header_len > image->size || file_size != image->size) {
    return Status(StorageErrc::kCorruptHeader,
                  "snapshot truncated: header claims " +
                      std::to_string(file_size) + " bytes, file has " +
                      std::to_string(image->size));
  }
  std::vector<uint8_t> header(image->data, image->data + header_len);
  std::memset(header.data() + 12, 0, 4);
  if (Crc32c(header.data(), header_len) != header_crc) {
    return Status(StorageErrc::kCorruptHeader,
                  "snapshot header fails its CRC32C");
  }
  image->sections.resize(section_count);
  for (size_t i = 0; i < section_count; ++i) {
    size_t at = kHeaderFixedBytes + i * kSectionEntryBytes;
    get(at, &image->sections[i].kind, 4);
    get(at + 4, &image->sections[i].crc, 4);
    get(at + 8, &image->sections[i].offset, 8);
    get(at + 16, &image->sections[i].size, 8);
    const SectionEntry& section = image->sections[i];
    if (section.offset > image->size ||
        section.size > image->size - section.offset) {
      return Status(StorageErrc::kCorruptHeader,
                    std::string("section ") + SectionName(section.kind) +
                        " extends past end of file");
    }
  }
  return Status::Ok();
}

Status VerifySection(const ParsedImage& image, const SectionEntry& section) {
  if (Crc32c(image.SectionData(section), section.size) != section.crc) {
    return Status(StorageErrc::kCorruptSection,
                  std::string("section ") + SectionName(section.kind) +
                      " fails its CRC32C");
  }
  return Status::Ok();
}

Status VerifyAll(const ParsedImage& image, bool verify_arenas) {
  for (const SectionEntry& section : image.sections) {
    bool manifest = section.kind == kStoreManifest ||
                    section.kind == kResolverManifest ||
                    section.kind == kSigManifest || section.kind == kAnnex;
    if (!manifest && !verify_arenas) continue;
    Status status = VerifySection(image, section);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status OpenImage(const std::string& path, bool mapped, ParsedImage* image) {
  if (mapped) {
    Status status = MappedFile::Open(path, &image->mapping);
    if (!status.ok()) return status;
    image->data = image->mapping->data();
    image->size = image->mapping->size();
  } else {
    Status status = ReadFileBytes(path, &image->bytes);
    if (!status.ok()) return status;
    image->data = image->bytes.data();
    image->size = image->bytes.size();
  }
  return ParseHeader(image);
}

/// Restores one arena: borrowed straight from the mapping when the load
/// is mapped, copied out otherwise. The element count must divide evenly
/// or the section is corrupt.
template <typename T>
Status RestoreArena(const ParsedImage& image, uint32_t kind,
                    util::ArenaVec<T>* arena) {
  const SectionEntry* section = image.Find(kind);
  if (section == nullptr) return CorruptSection(kind, "section missing");
  if (section->size % sizeof(T) != 0) {
    return CorruptSection(kind, "size not a multiple of the element size");
  }
  size_t count = section->size / sizeof(T);
  const uint8_t* data = image.SectionData(*section);
  if (image.mapping != nullptr) {
    *arena = util::ArenaVec<T>::Borrowed(reinterpret_cast<const T*>(data),
                                         count, image.mapping);
  } else {
    std::vector<T> owned(count);
    std::memcpy(owned.data(), data, section->size);
    arena->Assign(std::move(owned));
  }
  return Status::Ok();
}

struct SigManifest {
  uint64_t vocab_count = 0;
  std::vector<std::string> values;
  uint64_t released_bytes = 0;
  uint64_t array_chunks = 0;
  uint64_t bitset_chunks = 0;
};

Status DecodeSigManifest(const ParsedImage& image, SigManifest* manifest) {
  const SectionEntry* section = image.Find(kSigManifest);
  if (section == nullptr) {
    return CorruptSection(kSigManifest, "section missing");
  }
  ByteReader in(image.SectionData(*section), section->size);
  manifest->vocab_count = in.GetU64();
  uint64_t value_count = in.GetU64();
  for (uint64_t i = 0; i < value_count && !in.failed(); ++i) {
    manifest->values.push_back(in.GetString());
  }
  manifest->released_bytes = in.GetU64();
  manifest->array_chunks = in.GetU64();
  manifest->bitset_chunks = in.GetU64();
  if (!in.Exhausted()) {
    return CorruptSection(kSigManifest, "malformed signature manifest");
  }
  return Status::Ok();
}

Status DecodeResolverManifest(const ParsedImage& image,
                              std::vector<model::IdPair>* matches,
                              uint64_t counters[6],
                              std::vector<std::string>* purged) {
  const SectionEntry* section = image.Find(kResolverManifest);
  if (section == nullptr) {
    return CorruptSection(kResolverManifest, "section missing");
  }
  ByteReader in(image.SectionData(*section), section->size);
  uint64_t match_count = in.GetU64();
  if (in.failed() || match_count * sizeof(model::IdPair) > in.remaining()) {
    return CorruptSection(kResolverManifest, "truncated match list");
  }
  matches->resize(match_count);
  in.GetRaw(matches->data(), match_count * sizeof(model::IdPair));
  for (size_t i = 0; i < 6; ++i) counters[i] = in.GetU64();
  uint64_t purged_count = in.GetU64();
  for (uint64_t i = 0; i < purged_count && !in.failed(); ++i) {
    purged->push_back(in.GetString());
  }
  if (!in.Exhausted()) {
    return CorruptSection(kResolverManifest, "malformed resolver manifest");
  }
  return Status::Ok();
}

Status DecodeAnnex(const ParsedImage& image,
                   incremental::DeltaIndexStats* stats) {
  const SectionEntry* section = image.Find(kAnnex);
  if (section == nullptr) return CorruptSection(kAnnex, "section missing");
  ByteReader in(image.SectionData(*section), section->size);
  stats->updates = in.GetU64();
  stats->full_builds = in.GetU64();
  stats->purged_tokens = in.GetU64();
  stats->tokens = static_cast<size_t>(in.GetU64());
  if (!in.Exhausted()) return CorruptSection(kAnnex, "malformed annex");
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Friend-access helpers. As a nested class, Impl shares the codec's access
// rights, so the friend grants on the stores cover it without friending
// every helper individually.
// ---------------------------------------------------------------------------

struct SnapshotCodec::Impl {
  template <typename T>
  static SectionSpec ArenaSection(uint32_t kind,
                                  const util::ArenaVec<T>& arena) {
    return {kind, reinterpret_cast<const uint8_t*>(arena.data()),
            arena.size() * sizeof(T)};
  }

  static void EncodeStoreManifest(const incremental::EntityStore& store,
                                  ByteWriter* out) {
    const model::EntityCollection& collection = store.collection_;
    out->PutU64(collection.size());
    for (size_t id = 0; id < collection.size(); ++id) {
      EncodeDescription(collection.at(static_cast<model::EntityId>(id)),
                        out);
    }
    out->PutU8(collection.setting() == model::ErSetting::kDirty ? 0 : 1);
    out->PutU64(collection.split());
    out->PutRaw(store.alive_.data(), store.alive_.size());
    out->PutRaw(store.versions_.data(),
                store.versions_.size() * sizeof(uint64_t));
    // The URI index is serialized by content, sorted by URI: its entries
    // are history-dependent (first-wins on Append, conditional erase on
    // Update/Tombstone), so rebuilding it from the live rows would not be
    // bit-equal to the never-crashed process.
    std::vector<std::pair<std::string_view, model::EntityId>> uris;
    uris.reserve(store.uri_index_.size());
    for (const auto& [uri, id] : store.uri_index_) {
      uris.emplace_back(uri, id);
    }
    std::sort(uris.begin(), uris.end());
    out->PutU64(uris.size());
    for (const auto& [uri, id] : uris) {
      out->PutU32(static_cast<uint32_t>(uri.size()));
      out->PutRaw(uri.data(), uri.size());
      out->PutU32(id);
    }
    out->PutU64(store.live_);
    out->PutU64(store.updates_);
  }

  static Status DecodeStoreManifest(const ParsedImage& image,
                                    incremental::EntityStore* store) {
    const SectionEntry* section = image.Find(kStoreManifest);
    if (section == nullptr) {
      return CorruptSection(kStoreManifest, "section missing");
    }
    ByteReader in(image.SectionData(*section), section->size);
    uint64_t count = in.GetU64();
    std::vector<model::EntityDescription> descriptions;
    if (!in.failed() && count <= section->size) descriptions.reserve(count);
    for (uint64_t i = 0; i < count && !in.failed(); ++i) {
      descriptions.push_back(DecodeDescription(&in));
    }
    uint8_t setting = in.GetU8();
    uint64_t split = in.GetU64();
    if (in.failed()) {
      return CorruptSection(kStoreManifest, "truncated description table");
    }
    if (setting == 0) {
      store->collection_ =
          model::EntityCollection::Dirty(std::move(descriptions));
    } else {
      if (split > descriptions.size()) {
        return CorruptSection(kStoreManifest, "split past collection end");
      }
      std::vector<model::EntityDescription> second(
          std::make_move_iterator(descriptions.begin() +
                                  static_cast<int64_t>(split)),
          std::make_move_iterator(descriptions.end()));
      descriptions.resize(split);
      store->collection_ = model::EntityCollection::CleanClean(
          std::move(descriptions), std::move(second));
    }
    store->alive_.resize(count);
    in.GetRaw(store->alive_.data(), count);
    store->versions_.resize(count);
    in.GetRaw(store->versions_.data(), count * sizeof(uint64_t));
    uint64_t uri_count = in.GetU64();
    store->uri_index_.clear();
    if (!in.failed() && uri_count <= section->size) {
      store->uri_index_.reserve(uri_count);
    }
    for (uint64_t i = 0; i < uri_count && !in.failed(); ++i) {
      std::string uri = in.GetString();
      uint32_t id = in.GetU32();
      store->uri_index_.emplace(std::move(uri), id);
    }
    store->live_ = in.GetU64();
    store->updates_ = in.GetU64();
    if (!in.Exhausted()) {
      return CorruptSection(kStoreManifest, "malformed store manifest");
    }
    return Status::Ok();
  }

  static void EncodeResolverManifest(
      const incremental::IncrementalResolver& resolver, ByteWriter* out) {
    out->PutU64(resolver.matches_.size());
    out->PutRaw(resolver.matches_.data(),
                resolver.matches_.size() * sizeof(model::IdPair));
    out->PutU64(resolver.comparisons_);
    out->PutU64(resolver.candidates_);
    out->PutU64(resolver.merges_);
    out->PutU64(resolver.requeues_);
    out->PutU64(resolver.batches_);
    out->PutU64(resolver.removed_);
    // Purged tokens must survive recovery verbatim: a token purged by the
    // pre-crash process has already stopped emitting pairs, and a rebuilt
    // index that resurrected it would emit candidates the never-crashed
    // run does not see.
    std::vector<std::string_view> purged;
    for (const auto& [token, posting] :
         resolver.token_index_.postings_) {
      if (posting.purged) purged.push_back(token);
    }
    std::sort(purged.begin(), purged.end());
    out->PutU64(purged.size());
    for (std::string_view token : purged) {
      out->PutU32(static_cast<uint32_t>(token.size()));
      out->PutRaw(token.data(), token.size());
    }
  }

  static void EncodeSigManifest(const matching::SignatureStore& store,
                                size_t vocab_count, ByteWriter* out) {
    out->PutU64(vocab_count);
    out->PutU64(store.values_.size());
    for (const std::string& value : store.values_) out->PutString(value);
    out->PutU64(store.released_bytes_);
    out->PutU64(store.posting_arena_.array_chunks_);
    out->PutU64(store.posting_arena_.bitset_chunks_);
  }

  static void EncodeAnnex(const incremental::IncrementalResolver& resolver,
                          ByteWriter* out) {
    const incremental::DeltaIndexStats& stats =
        resolver.token_index_.stats_;
    out->PutU64(stats.updates);
    out->PutU64(stats.full_builds);
    out->PutU64(stats.purged_tokens);
    out->PutU64(stats.tokens);
  }

  /// Restores the signature-engine state of `store` in place (options,
  /// provider and collection pointer untouched — the store object was
  /// configured by its owner; the snapshot only replaces its contents).
  static Status RestoreSignatures(const ParsedImage& image,
                                  const LoadOptions& options,
                                  matching::SignatureStore* store) {
    SigManifest manifest;
    Status status = DecodeSigManifest(image, &manifest);
    if (!status.ok()) return status;

    status = RestoreArena(image, kSigEntries, &store->entries_);
    if (!status.ok()) return status;
    status = RestoreArena(image, kSigPostingChunks,
                          &store->posting_arena_.chunks_);
    if (!status.ok()) return status;
    status = RestoreArena(image, kSigPostingArrays,
                          &store->posting_arena_.array_values_);
    if (!status.ok()) return status;
    status = RestoreArena(image, kSigPostingBitsets,
                          &store->posting_arena_.bitset_words_);
    if (!status.ok()) return status;
    status = RestoreArena(image, kSigTokens, &store->tokens_);
    if (!status.ok()) return status;
    status = RestoreArena(image, kSigTfIdf, &store->tfidf_);
    if (!status.ok()) return status;
    status = RestoreArena(image, kSigAttrSlots, &store->attribute_slots_);
    if (!status.ok()) return status;
    status = RestoreArena(image, kVocabBlob, &store->pending_vocab_blob_);
    if (!status.ok()) return status;
    status = RestoreArena(image, kVocabOffsets,
                          &store->pending_vocab_offsets_);
    if (!status.ok()) return status;

    store->vocabulary_.clear();
    if (manifest.vocab_count == 0) {
      store->pending_vocab_blob_.clear();
      store->pending_vocab_offsets_.clear();
    } else {
      if (store->pending_vocab_offsets_.size() !=
          manifest.vocab_count + 1) {
        return CorruptSection(
            kVocabOffsets, "offset count does not match vocabulary size");
      }
      if (options.verify_arenas) {
        const util::ArenaVec<uint32_t>& offsets =
            store->pending_vocab_offsets_;
        if (offsets[0] != 0 ||
            offsets[offsets.size() - 1] !=
                store->pending_vocab_blob_.size() ||
            !std::is_sorted(offsets.begin(), offsets.end())) {
          return CorruptSection(kVocabOffsets,
                                "offsets not a monotone cover of the blob");
        }
      }
    }
    store->values_ = std::move(manifest.values);
    store->released_bytes_ = manifest.released_bytes;
    store->posting_arena_.array_chunks_ =
        static_cast<size_t>(manifest.array_chunks);
    store->posting_arena_.bitset_chunks_ =
        static_cast<size_t>(manifest.bitset_chunks);
    return Status::Ok();
  }
};

std::vector<uint8_t> SnapshotCodec::Encode(
    const incremental::IncrementalResolver& resolver,
    uint64_t config_fingerprint, uint64_t op_count) {
  ByteWriter store_manifest;
  Impl::EncodeStoreManifest(resolver.store_, &store_manifest);
  ByteWriter resolver_manifest;
  Impl::EncodeResolverManifest(resolver, &resolver_manifest);
  ByteWriter annex;
  Impl::EncodeAnnex(resolver, &annex);

  std::vector<SectionSpec> sections;
  sections.push_back({kStoreManifest, store_manifest.bytes().data(),
                      store_manifest.size()});
  sections.push_back({kResolverManifest, resolver_manifest.bytes().data(),
                      resolver_manifest.size()});

  ByteWriter sig_manifest;
  std::vector<char> vocab_blob;
  std::vector<uint32_t> vocab_offsets;
  if (resolver.signatures_.has_value()) {
    const matching::SignatureStore& sigs = *resolver.signatures_;
    const char* blob_data = nullptr;
    size_t blob_size = 0;
    const uint32_t* offsets_data = nullptr;
    size_t offsets_size = 0;
    size_t vocab_count = sigs.vocabulary_size();
    if (!sigs.vocabulary_.empty()) {
      // Serialize the hash map in id order: ids were assigned in
      // first-occurrence order, so this is deterministic.
      std::vector<const std::string*> by_id(sigs.vocabulary_.size());
      for (const auto& [token, id] : sigs.vocabulary_) {
        by_id[id] = &token;
      }
      vocab_offsets.reserve(by_id.size() + 1);
      vocab_offsets.push_back(0);
      for (const std::string* token : by_id) {
        vocab_blob.insert(vocab_blob.end(), token->begin(), token->end());
        vocab_offsets.push_back(static_cast<uint32_t>(vocab_blob.size()));
      }
      blob_data = vocab_blob.data();
      blob_size = vocab_blob.size();
      offsets_data = vocab_offsets.data();
      offsets_size = vocab_offsets.size();
    } else if (vocab_count > 0) {
      // Loaded and never re-interned: the pending blob is already the
      // id-ordered encoding. Round-tripping it verbatim keeps the digest
      // stable across load/save cycles.
      blob_data = sigs.pending_vocab_blob_.data();
      blob_size = sigs.pending_vocab_blob_.size();
      offsets_data = sigs.pending_vocab_offsets_.data();
      offsets_size = sigs.pending_vocab_offsets_.size();
    }
    Impl::EncodeSigManifest(sigs, vocab_count, &sig_manifest);
    sections.push_back(
        {kSigManifest, sig_manifest.bytes().data(), sig_manifest.size()});
    sections.push_back(Impl::ArenaSection(kSigEntries, sigs.entries_));
    sections.push_back(
        Impl::ArenaSection(kSigPostingChunks, sigs.posting_arena_.chunks_));
    sections.push_back(Impl::ArenaSection(
        kSigPostingArrays, sigs.posting_arena_.array_values_));
    sections.push_back(Impl::ArenaSection(
        kSigPostingBitsets, sigs.posting_arena_.bitset_words_));
    sections.push_back(Impl::ArenaSection(kSigTokens, sigs.tokens_));
    sections.push_back(Impl::ArenaSection(kSigTfIdf, sigs.tfidf_));
    sections.push_back(
        Impl::ArenaSection(kSigAttrSlots, sigs.attribute_slots_));
    sections.push_back({kVocabBlob,
                        reinterpret_cast<const uint8_t*>(blob_data),
                        blob_size});
    sections.push_back({kVocabOffsets,
                        reinterpret_cast<const uint8_t*>(offsets_data),
                        offsets_size * sizeof(uint32_t)});
  }
  sections.push_back({kAnnex, annex.bytes().data(), annex.size()});
  return AssembleImage(sections, config_fingerprint, op_count);
}

Status SnapshotCodec::Load(const std::string& path,
                           uint64_t config_fingerprint,
                           const LoadOptions& options,
                           incremental::IncrementalResolver* resolver,
                           uint64_t* op_count) {
  ParsedImage image;
  Status status = OpenImage(path, options.mapped, &image);
  if (!status.ok()) return status;
  if (image.config_fingerprint != config_fingerprint) {
    return Status(StorageErrc::kConfigMismatch,
                  "snapshot was produced under a different resolver "
                  "configuration");
  }
  status = VerifyAll(image, options.verify_arenas);
  if (!status.ok()) return status;

  bool snapshot_has_sigs = image.Find(kSigManifest) != nullptr;
  if (snapshot_has_sigs != resolver->signatures_.has_value()) {
    return Status(StorageErrc::kConfigMismatch,
                  snapshot_has_sigs
                      ? "snapshot carries signatures but the resolver "
                        "prepared none"
                      : "resolver expects signatures the snapshot lacks");
  }

  status = Impl::DecodeStoreManifest(image, &resolver->store_);
  if (!status.ok()) return status;

  uint64_t counters[6] = {};
  std::vector<std::string> purged;
  resolver->matches_.clear();
  status = DecodeResolverManifest(image, &resolver->matches_, counters,
                                  &purged);
  if (!status.ok()) return status;
  resolver->comparisons_ = counters[0];
  resolver->candidates_ = counters[1];
  resolver->merges_ = counters[2];
  resolver->requeues_ = counters[3];
  resolver->batches_ = counters[4];
  resolver->removed_ = counters[5];

  if (snapshot_has_sigs) {
    status = Impl::RestoreSignatures(image, options,
                                     &*resolver->signatures_);
    if (!status.ok()) return status;
  }

  // The delta indexes are not serialized: they are rebuilt from the live
  // rows, which is observationally identical to the pre-crash index (its
  // lazily-compacted postings only ever differ by removed ids that
  // compaction drops before any pair is emitted). Purge marks go in
  // first so re-absorbed entities cannot resurrect retired tokens.
  resolver->token_index_ =
      incremental::IncrementalTokenIndex(resolver->options_.index);
  for (const std::string& token : purged) {
    resolver->token_index_.postings_[token].purged = true;
  }
  if (resolver->sn_index_ != nullptr) {
    resolver->sn_index_ =
        std::make_unique<incremental::IncrementalSortedNeighborhood>(
            resolver->options_.sn_window, resolver->options_.sn_options);
  }
  resolver->store_.ForEachLive(
      [resolver](model::EntityId id,
                 const model::EntityDescription& description) {
        resolver->token_index_.Absorb(id, description, nullptr);
        if (resolver->sn_index_ != nullptr) {
          resolver->sn_index_->Absorb(id, description, nullptr);
        }
      });
  status = DecodeAnnex(image, &resolver->token_index_.stats_);
  if (!status.ok()) return status;

  // The union-find forest is the transitive closure of matches_; flagging
  // it dirty makes the next public call rebuild it exactly.
  resolver->forest_dirty_ = true;
  resolver->members_.clear();
  resolver->rep_cache_.clear();
  resolver->scored_roots_.clear();

  if (op_count != nullptr) *op_count = image.op_count;
  return Status::Ok();
}

Status SnapshotCodec::OpenSignatures(const std::string& path,
                                     const LoadOptions& options,
                                     matching::SignatureStore* store) {
  ParsedImage image;
  Status status = OpenImage(path, options.mapped, &image);
  if (!status.ok()) return status;
  if (image.Find(kSigManifest) == nullptr) {
    return Status(StorageErrc::kConfigMismatch,
                  "snapshot carries no signature sections");
  }
  for (const SectionEntry& section : image.sections) {
    bool needed = section.kind == kSigManifest ||
                  (section.kind >= kSigEntries && options.verify_arenas);
    if (!needed) continue;
    status = VerifySection(image, section);
    if (!status.ok()) return status;
  }
  return Impl::RestoreSignatures(image, options, store);
}

Status SnapshotCodec::ImageDigest(std::span<const uint8_t> image,
                                  uint32_t* digest) {
  ParsedImage parsed;
  parsed.data = image.data();
  parsed.size = image.size();
  Status status = ParseHeader(&parsed);
  if (!status.ok()) return status;
  uint32_t crc = 0;
  for (const SectionEntry& section : parsed.sections) {
    if (section.kind == kAnnex) continue;
    crc = Crc32c(parsed.SectionData(section), section.size, crc);
  }
  *digest = crc;
  return Status::Ok();
}

uint32_t SnapshotCodec::StateDigest(
    const incremental::IncrementalResolver& resolver) {
  std::vector<uint8_t> image = Encode(resolver, 0, 0);
  uint32_t digest = 0;
  Status status = ImageDigest(image, &digest);
  WEBER_CHECK(status.ok()) << "self-encoded snapshot failed to parse: "
                           << status.ToString();
  return digest;
}

}  // namespace weber::storage
