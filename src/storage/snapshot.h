#ifndef WEBER_STORAGE_SNAPSHOT_H_
#define WEBER_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/status.h"

namespace weber::incremental {
class IncrementalResolver;
}  // namespace weber::incremental

namespace weber::matching {
class SignatureStore;
}  // namespace weber::matching

namespace weber::storage {

/// Versioned, CRC-framed, mmap-able snapshot of an IncrementalResolver.
///
/// One file, little-endian, laid out as:
///
///   [0, header_len)      header: magic "WEBERSNP", format version,
///                        header CRC32C, config fingerprint, op count,
///                        file size, and the section directory
///   page-aligned payloads, one per directory entry, each independently
///   CRC32C-framed
///
/// Sections come in two flavours. *Manifest* sections are deterministic
/// byte streams (strings, maps, counters) decoded eagerly on load.
/// *Arena* sections are the flat trivially-copyable arenas of the
/// signature engine written in their exact in-memory layout; a mapped
/// load points the store's ArenaVecs straight into the mapping
/// (zero-copy — see util/arena_vec.h), and the page-aligned offsets
/// guarantee every element type's alignment. The vocabulary ships as a
/// packed blob + offsets pair that hydrates lazily on the first post-load
/// intern, keeping the mapped open O(1) in vocabulary size.
///
/// Everything encoded is deterministic for a given logical state (URI
/// index entries sorted, padding-free structs, fixed field order) except
/// the one `kAnnex` section, which carries delta-index lifetime counters
/// that legitimately differ between a recovered process and one that
/// never crashed. The state digest is the CRC32C chain over every
/// non-annex section payload — the bit-equality witness of the crash
/// recovery tests.
class SnapshotCodec {
 public:
  /// Current format version; bumping it makes every older weber refuse
  /// the file with kBadVersion (fail closed, never misparse).
  static constexpr uint32_t kFormatVersion = 1;

  struct LoadOptions {
    /// Borrow arena sections from an mmap of the file instead of copying
    /// them out (the first mutation of a borrowed arena detaches).
    bool mapped = true;
    /// CRC-check every section payload. Recovery keeps this on; the
    /// zero-copy open path may turn it off to stay O(1) in file size
    /// (header and manifest sections are always verified).
    bool verify_arenas = true;
  };

  /// Serializes the full resolver state into a snapshot image.
  /// `config_fingerprint` binds the file to the resolver configuration
  /// that produced it; `op_count` is the durable-op high-water mark the
  /// image represents.
  static std::vector<uint8_t> Encode(
      const incremental::IncrementalResolver& resolver,
      uint64_t config_fingerprint, uint64_t op_count);

  /// Restores `resolver` — constructed with the same matcher and options
  /// as the writer — from the snapshot at `path`. On success `*op_count`
  /// receives the image's op high-water mark. On failure the resolver is
  /// left in an unspecified state and must be discarded.
  static Status Load(const std::string& path, uint64_t config_fingerprint,
                     const LoadOptions& options,
                     incremental::IncrementalResolver* resolver,
                     uint64_t* op_count);

  /// Restores only the signature-engine state (arenas + vocabulary) into
  /// a bare SignatureStore — the O(1) zero-copy open used by tooling and
  /// bench_storage to measure load time independent of entity count.
  /// The store is read-only in spirit: it has no description provider
  /// and default options, but posting/tfidf/token accessors all work.
  static Status OpenSignatures(const std::string& path,
                               const LoadOptions& options,
                               matching::SignatureStore* store);

  /// CRC32C chain over the digest-covered (non-annex) sections of an
  /// already-encoded image. Two resolvers with bit-equal durable state
  /// produce equal digests.
  static Status ImageDigest(std::span<const uint8_t> image,
                            uint32_t* digest);

  /// Digest of `resolver`'s current state (encodes to memory first).
  static uint32_t StateDigest(
      const incremental::IncrementalResolver& resolver);

 private:
  // Encode/decode helpers live here (snapshot.cc): as a nested class Impl
  // shares the codec's access rights, so the friend grants on the stores
  // extend to it without friending every helper individually.
  struct Impl;
};

}  // namespace weber::storage

#endif  // WEBER_STORAGE_SNAPSHOT_H_
