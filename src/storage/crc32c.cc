#include "storage/crc32c.h"

#include <array>
#include <cstring>

namespace weber::storage {
namespace {

// ---------------------------------------------------------------------------
// Software fallback: classic byte-at-a-time table (reflected 0x82F63B78).
// Built once at first use; 1 KB, hot in cache for the framing sizes the
// storage layer checksums.
// ---------------------------------------------------------------------------

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

uint32_t TableCrc32c(const uint8_t* data, size_t size, uint32_t crc) {
  static const std::array<uint32_t, 256> table = BuildTable();
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return ~crc;
}

// ---------------------------------------------------------------------------
// SSE4.2 path: the CRC32 instruction implements exactly this polynomial.
// Same dispatch idiom as util/intersect.cc (per-function target attribute
// plus one CPUID probe).
// ---------------------------------------------------------------------------

#if defined(__x86_64__) || defined(__i386__)
#define WEBER_CRC32C_HW 1

__attribute__((target("sse4.2"))) uint32_t HwCrc32c(const uint8_t* data,
                                                    size_t size,
                                                    uint32_t crc) {
  crc = ~crc;
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, data, 8);
    crc = static_cast<uint32_t>(
        __builtin_ia32_crc32di(static_cast<uint64_t>(crc), chunk));
    data += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = __builtin_ia32_crc32qi(crc, *data);
    ++data;
    --size;
  }
  return ~crc;
}

bool DetectHardwareCrc() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("sse4.2");
}
#endif  // x86

bool UseHardwareCrc() {
#ifdef WEBER_CRC32C_HW
  static const bool use_hw = DetectHardwareCrc();
  return use_hw;
#else
  return false;
#endif
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
#ifdef WEBER_CRC32C_HW
  if (UseHardwareCrc()) return HwCrc32c(bytes, size, seed);
#endif
  return TableCrc32c(bytes, size, seed);
}

const char* Crc32cKernelName() {
  return UseHardwareCrc() ? "sse4.2" : "table";
}

}  // namespace weber::storage
