#include "storage/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace weber::storage {
namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status(StorageErrc::kIoError,
                op + " " + path + ": " + std::strerror(errno));
}

/// write(2) until the span drains, tolerating short writes and EINTR.
Status WriteAll(int fd, std::span<const uint8_t> bytes,
                const std::string& path) {
  const uint8_t* data = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

std::string ParentDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status MappedFile::Open(const std::string& path,
                        std::shared_ptr<MappedFile>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status status = Errno("fstat", path);
    ::close(fd);
    return status;
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ > 0) {
    void* mapping =
        ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      Status status = Errno("mmap", path);
      ::close(fd);
      return status;
    }
    file->data_ = static_cast<const uint8_t*>(mapping);
  }
  ::close(fd);  // The mapping survives the descriptor.
  *out = std::move(file);
  return Status::Ok();
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status status = Errno("fstat", path);
    ::close(fd);
    return status;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
  size_t offset = 0;
  while (offset < bytes.size()) {
    ssize_t n = ::read(fd, bytes.data() + offset, bytes.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;  // Shrunk underneath us; keep what we got.
    offset += static_cast<size_t>(n);
  }
  bytes.resize(offset);
  ::close(fd);
  *out = std::move(bytes);
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path,
                       std::span<const uint8_t> bytes) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", tmp);
  Status status = WriteAll(fd, bytes, tmp);
  if (status.ok() && ::fsync(fd) != 0) status = Errno("fsync", tmp);
  if (::close(fd) != 0 && status.ok()) status = Errno("close", tmp);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status rename_status = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return rename_status;
  }
  return SyncDirectory(ParentDirOf(path));
}

Status AppendFile::Open(const std::string& path) {
  Close();
  bool existed = ::access(path.c_str(), F_OK) == 0;
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  if (!existed) {
    // A WAL that exists but whose directory entry was lost to a crash is
    // a WAL that never happened; pin the entry before acking anything.
    Status status = SyncDirectory(ParentDirOf(path));
    if (!status.ok()) {
      Close();
      return status;
    }
  }
  return Status::Ok();
}

Status AppendFile::Append(std::span<const uint8_t> bytes) {
  if (fd_ < 0) return Status(StorageErrc::kIoError, "append on closed file");
  return WriteAll(fd_, bytes, path_);
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status(StorageErrc::kIoError, "sync on closed file");
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::Ok();
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

bool DirectoryExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status MakeDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir", path);
  }
  if (!DirectoryExists(path)) return Errno("mkdir", path);
  return Status::Ok();
}

Status ListDirectory(const std::string& path, std::vector<std::string>* out) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno("opendir", path);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  *out = std::move(names);
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::Ok();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  Status status = Status::Ok();
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    status = Errno("ftruncate", path);
  }
  if (status.ok() && ::fsync(fd) != 0) status = Errno("fsync", path);
  ::close(fd);
  return status;
}

Status SyncDirectory(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  Status status = Status::Ok();
  if (::fsync(fd) != 0) status = Errno("fsync", path);
  ::close(fd);
  return status;
}

}  // namespace weber::storage
