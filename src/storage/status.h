#ifndef WEBER_STORAGE_STATUS_H_
#define WEBER_STORAGE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace weber::storage {

/// Failure taxonomy of the durability layer. Every code names one distinct,
/// actionable condition — the operator-facing contract of satellite tests:
///
///   kBadMagic       the file is not a weber snapshot/WAL at all
///   kBadVersion     a future (or ancient) format version; upgrade weber
///   kCorruptHeader  the header frame fails its CRC; restore from backup
///   kCorruptSection a snapshot section fails its CRC; restore from backup
///   kWalCorrupt     a WAL record fails its CRC *with valid bytes after
///                   it* — interior corruption, not a torn tail; restore
///   kIoError        the OS said no (errno in the message)
///   kConfigMismatch the persisted state was produced under a different
///                   resolver configuration; point at the right data-dir
///
/// A torn final WAL record is NOT an error: crash recovery truncates it
/// and reports success (the op it framed never acked).
enum class StorageErrc {
  kOk = 0,
  kBadMagic,
  kBadVersion,
  kCorruptHeader,
  kCorruptSection,
  kWalCorrupt,
  kIoError,
  kConfigMismatch,
};

/// Human-readable code name ("wal-corrupt", ...), for log lines.
inline std::string_view StorageErrcName(StorageErrc code) {
  switch (code) {
    case StorageErrc::kOk:
      return "ok";
    case StorageErrc::kBadMagic:
      return "bad-magic";
    case StorageErrc::kBadVersion:
      return "bad-version";
    case StorageErrc::kCorruptHeader:
      return "corrupt-header";
    case StorageErrc::kCorruptSection:
      return "corrupt-section";
    case StorageErrc::kWalCorrupt:
      return "wal-corrupt";
    case StorageErrc::kIoError:
      return "io-error";
    case StorageErrc::kConfigMismatch:
      return "config-mismatch";
  }
  return "unknown";
}

/// Error-code-plus-context result of storage operations. The repo builds
/// without exceptions; fallible paths return Status and leave outputs
/// untouched on failure.
class Status {
 public:
  Status() = default;
  Status(StorageErrc code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StorageErrc::kOk; }
  StorageErrc code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<code-name>: <message>" (or "ok").
  std::string ToString() const {
    if (ok()) return "ok";
    std::string out(StorageErrcName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StorageErrc code_ = StorageErrc::kOk;
  std::string message_;
};

}  // namespace weber::storage

#endif  // WEBER_STORAGE_STATUS_H_
