#ifndef WEBER_STORAGE_FILE_IO_H_
#define WEBER_STORAGE_FILE_IO_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/status.h"

namespace weber::storage {

/// POSIX file plumbing of the durability layer. This file and the rest of
/// src/storage/ (plus model/io.h) are the only places in src/ allowed to
/// touch the filesystem — enforced by the weber_lint file-io rule — so
/// every fsync-ordering and atomicity decision lives here.

/// A read-only mmap of a whole file. Shared ownership: snapshot loads hand
/// the mapping to borrowed ArenaVecs as their keepalive, so the mapping
/// outlives the MappedFile handle for as long as any arena still points
/// into it.
class MappedFile {
 public:
  /// Maps `path` read-only. Empty files map successfully with size 0.
  static Status Open(const std::string& path,
                     std::shared_ptr<MappedFile>* out);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile() = default;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Reads a whole file into memory (the eager snapshot-load path).
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Durably replaces `path`: writes to `path.tmp`, fsyncs the file, renames
/// over `path`, fsyncs the parent directory. A crash at any point leaves
/// either the old file or the new one, never a torn mix.
Status AtomicWriteFile(const std::string& path,
                       std::span<const uint8_t> bytes);

/// An append-only file handle (the WAL). Append buffers nothing — every
/// call is one write(2) of the caller's group-committed frame — while
/// Sync() is the fsync point the policy layer schedules.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile() { Close(); }
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens `path` for appending, creating it (and durably registering the
  /// directory entry) if missing.
  Status Open(const std::string& path);
  Status Append(std::span<const uint8_t> bytes);
  Status Sync();
  void Close();
  bool is_open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string path_;
};

/// True when `path` names an existing directory.
bool DirectoryExists(const std::string& path);

/// True when `path` names an existing regular file.
bool FileExists(const std::string& path);

/// Creates a directory (one level; the parent must exist). An already-
/// existing directory is not an error.
Status MakeDirectory(const std::string& path);

/// Lists the entry names of a directory (no ordering guarantee; "." and
/// ".." excluded).
Status ListDirectory(const std::string& path, std::vector<std::string>* out);

/// Removes a file; missing files are not an error.
Status RemoveFile(const std::string& path);

/// Shrinks a file to `size` bytes and fsyncs it — how WAL recovery drops
/// a torn tail record so later appends continue from a clean frame edge.
Status TruncateFile(const std::string& path, uint64_t size);

/// fsyncs a directory so renames/creates/unlinks inside it are durable.
Status SyncDirectory(const std::string& path);

}  // namespace weber::storage

#endif  // WEBER_STORAGE_FILE_IO_H_
