#ifndef WEBER_STORAGE_OPTIONS_H_
#define WEBER_STORAGE_OPTIONS_H_

#include <cstddef>
#include <string>

namespace weber::storage {

/// When the WAL fsyncs relative to record appends.
enum class FsyncPolicy {
  /// fsync after every record — no acknowledged op is ever lost, at one
  /// disk flush per op.
  kAlways,
  /// Group commit: fsync every batch_fsync_interval records (and on
  /// checkpoint/close). A crash can lose the ops since the last flush but
  /// never corrupts recovery — the torn tail is discarded cleanly.
  kBatch,
  /// Never fsync from the WAL path (the OS flushes on its own schedule).
  /// For benchmarks and tests; crash durability is not guaranteed.
  kOff,
};

inline const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kOff: return "off";
  }
  return "unknown";
}

/// Configuration of a DurableResolver's storage layer.
struct DurabilityOptions {
  /// Directory holding the snapshot and WAL generations. Must exist.
  std::string data_dir;
  /// Write a snapshot (and start a fresh WAL) every N durable ops.
  /// 0 = never checkpoint automatically; callers checkpoint explicitly.
  uint64_t snapshot_every = 0;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Records between fsyncs under FsyncPolicy::kBatch.
  uint64_t batch_fsync_interval = 64;
  /// mmap snapshots on recovery and borrow arenas zero-copy (the first
  /// mutation detaches); false copies everything out eagerly.
  bool map_snapshots = true;
  /// CRC-verify every snapshot section on recovery.
  bool verify_sections = true;
};

}  // namespace weber::storage

#endif  // WEBER_STORAGE_OPTIONS_H_
