#ifndef WEBER_DATAGEN_NOISE_H_
#define WEBER_DATAGEN_NOISE_H_

#include <string>
#include <vector>

#include "model/entity.h"
#include "util/random.h"

namespace weber::datagen {

/// Corruption knobs applied when deriving a duplicate description from a
/// base description. Light settings produce the "highly similar"
/// duplicates typical of the LOD-cloud centre; heavy settings (plus
/// attribute renames) produce the "somehow similar" duplicates of the
/// periphery that share few tokens and little structure.
struct NoiseConfig {
  /// Per token: probability of one random character edit
  /// (substitution/insertion/deletion).
  double token_edit_prob = 0.1;
  /// Per token: probability of dropping the token entirely.
  double token_drop_prob = 0.05;
  /// Per value: probability of shuffling its token order.
  double value_shuffle_prob = 0.1;
  /// Per attribute-value pair: probability of dropping the pair.
  double attribute_drop_prob = 0.1;
  /// Per attribute-value pair: probability of renaming the attribute to a
  /// source-specific alias (simulating proprietary vocabularies).
  double attribute_rename_prob = 0.0;
  /// Alias suffix used by attribute renames.
  std::string rename_suffix = "_alt";
};

/// Returns a heavy-noise configuration modelling "somehow similar"
/// descriptions: aggressive token edits/drops and systematic attribute
/// renames.
NoiseConfig SomehowSimilarNoise();

/// Applies one random character edit to the token.
std::string EditTokenOnce(const std::string& token, util::Rng& rng);

/// Corrupts a single attribute value under the configuration.
std::string CorruptValue(const std::string& value, const NoiseConfig& noise,
                         util::Rng& rng);

/// Derives a corrupted duplicate of `base` with the given URI. Relations
/// are copied verbatim (relation rewiring is corpus-level logic).
model::EntityDescription CorruptDescription(
    const model::EntityDescription& base, std::string new_uri,
    const NoiseConfig& noise, util::Rng& rng);

}  // namespace weber::datagen

#endif  // WEBER_DATAGEN_NOISE_H_
