#ifndef WEBER_DATAGEN_CORPUS_GENERATOR_H_
#define WEBER_DATAGEN_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/noise.h"
#include "model/entity.h"
#include "model/ground_truth.h"
#include "util/random.h"

namespace weber::datagen {

/// Configuration of one synthetic Web-of-data corpus. The generator
/// models the distributional properties the surveyed algorithms are
/// sensitive to: skewed token popularity (block-size skew), duplicate
/// classes from highly to somehow similar, and schema heterogeneity via
/// per-source attribute renaming.
struct CorpusConfig {
  /// Number of distinct real-world entities.
  size_t num_entities = 1000;
  /// Fraction of entities with at least one duplicate description.
  double duplicate_fraction = 0.5;
  /// Each duplicated entity gets 1..max_extra_descriptions extra
  /// descriptions (uniform).
  size_t max_extra_descriptions = 2;
  /// Attribute-value pairs per base description.
  size_t attributes_per_entity = 5;
  /// Tokens per attribute value.
  size_t tokens_per_value = 3;
  /// Size of the shared token vocabulary.
  size_t vocabulary_size = 3000;
  /// Zipf skew of token popularity (0 = uniform; ~1 = Web-like).
  double zipf_skew = 0.9;
  /// Length of a vocabulary token in characters.
  size_t token_length = 7;
  /// Noise applied to "highly similar" duplicates.
  NoiseConfig highly_similar_noise;
  /// Noise applied to "somehow similar" duplicates.
  NoiseConfig somehow_similar_noise = SomehowSimilarNoise();
  /// Fraction of duplicates drawn from the somehow-similar class.
  double somehow_similar_fraction = 0.0;
  /// For clean-clean generation: per attribute name, the probability that
  /// source 2 renames it globally (structural heterogeneity between KBs).
  double schema_divergence = 0.0;
  /// Entity type tag and URI prefix.
  std::string type_name = "thing";
  std::string uri_prefix = "http://kb";
  uint64_t seed = 42;
};

/// A generated ER task: the collection plus its ground truth.
struct Corpus {
  model::EntityCollection collection;
  model::GroundTruth truth;
};

/// Pre-tabulated Zipf sampler (O(log n) per draw).
class ZipfTable {
 public:
  ZipfTable(size_t n, double skew);
  size_t Sample(util::Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Generator for dirty, clean-clean and relational corpora.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusConfig config);

  /// One dirty collection: base descriptions plus duplicate descriptions
  /// of a subset of entities, shuffled; truth links all descriptions of
  /// the same entity.
  Corpus GenerateDirty() const;

  /// Two clean sources: source 1 holds one description per entity;
  /// source 2 holds a corrupted description for `duplicate_fraction` of
  /// the entities (plus unrelated fresh entities to keep the sources the
  /// same size). Schema divergence renames a fraction of source-2
  /// attributes globally.
  Corpus GenerateCleanClean() const;

  const CorpusConfig& config() const { return config_; }

 private:
  friend class RelationalCorpusGenerator;

  /// Builds the base description of entity `index`.
  model::EntityDescription MakeBase(size_t index, util::Rng& rng) const;

  /// Samples one attribute value (tokens_per_value tokens).
  std::string MakeValue(util::Rng& rng) const;

  /// Picks the noise configuration for one duplicate.
  const NoiseConfig& PickNoise(util::Rng& rng) const;

  CorpusConfig config_;
  std::vector<std::string> vocabulary_;
  ZipfTable zipf_;
};

/// Configuration of a two-type relational corpus (e.g., buildings that
/// reference architects), the workload for relationship-based collective
/// ER and influence-aware progressive scheduling.
struct RelationalConfig {
  /// The referenced type ("tail", e.g., architects).
  CorpusConfig tail;
  /// The referencing type ("head", e.g., buildings). num_entities,
  /// duplicate_fraction etc. apply to the head type.
  CorpusConfig head;
  /// Predicate used for head -> tail relations.
  std::string relation_predicate = "relatedTo";
  /// Head names are drawn from a pool of size
  /// max(1, name_pool_fraction * head.num_entities): smaller pools mean
  /// more distinct head entities sharing near-identical attribute values,
  /// i.e., more pairs that only relations can disambiguate.
  double name_pool_fraction = 0.15;
  uint64_t seed = 99;
};

/// A relational corpus: one mixed collection (tail descriptions first,
/// then head descriptions), its truth, and the id ranges of each type.
struct RelationalCorpus {
  model::EntityCollection collection;
  model::GroundTruth truth;
  /// Ids [0, tail_end) are tail descriptions; [tail_end, size) are head.
  size_t tail_end = 0;
};

/// Generates the two-type corpus. Head duplicates reference a *different*
/// description of the same tail entity than their base does (when one
/// exists), so resolving tails first reveals head matches — the iteration
/// trigger of relationship-based ER.
class RelationalCorpusGenerator {
 public:
  explicit RelationalCorpusGenerator(RelationalConfig config)
      : config_(std::move(config)) {}

  RelationalCorpus Generate() const;

 private:
  RelationalConfig config_;
};

}  // namespace weber::datagen

#endif  // WEBER_DATAGEN_CORPUS_GENERATOR_H_
