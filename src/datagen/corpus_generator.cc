#include "datagen/corpus_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "text/tokenizer.h"

namespace weber::datagen {

ZipfTable::ZipfTable(size_t n, double skew) {
  cdf_.resize(std::max<size_t>(n, 1));
  double acc = 0.0;
  for (size_t i = 0; i < cdf_.size(); ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc;
  }
  for (double& value : cdf_) value /= acc;
}

size_t ZipfTable::Sample(util::Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

CorpusGenerator::CorpusGenerator(CorpusConfig config)
    : config_(std::move(config)),
      zipf_(config_.vocabulary_size, config_.zipf_skew) {
  // A private vocabulary stream keeps token shapes independent of how many
  // entities are generated later.
  util::Rng vocab_rng(config_.seed ^ 0x0CABF00DULL);
  vocabulary_.reserve(config_.vocabulary_size);
  for (size_t i = 0; i < config_.vocabulary_size; ++i) {
    vocabulary_.push_back(vocab_rng.NextToken(config_.token_length));
  }
}

std::string CorpusGenerator::MakeValue(util::Rng& rng) const {
  std::string value;
  for (size_t t = 0; t < config_.tokens_per_value; ++t) {
    if (t > 0) value.push_back(' ');
    value.append(vocabulary_[zipf_.Sample(rng)]);
  }
  return value;
}

model::EntityDescription CorpusGenerator::MakeBase(size_t index,
                                                   util::Rng& rng) const {
  model::EntityDescription base("", config_.type_name);
  for (size_t a = 0; a < config_.attributes_per_entity; ++a) {
    base.AddPair("attr" + std::to_string(a), MakeValue(rng));
  }
  // URI embeds the first value's tokens as the infix (like
  // .../resource/Claude_Shannon/0), so URI-based blocking has signal.
  std::string infix;
  if (!base.pairs().empty()) {
    for (const std::string& token :
         text::TokenizeWords(base.pairs().front().value)) {
      if (!infix.empty()) infix.push_back('_');
      infix.append(token);
    }
  }
  base.set_uri(config_.uri_prefix + "/resource/" + infix + "_" +
               std::to_string(index) + "/0");
  return base;
}

const NoiseConfig& CorpusGenerator::PickNoise(util::Rng& rng) const {
  if (rng.NextBool(config_.somehow_similar_fraction)) {
    return config_.somehow_similar_noise;
  }
  return config_.highly_similar_noise;
}

namespace {

// Replaces the trailing "/<k>" description index of a URI.
std::string WithDescriptionIndex(const std::string& base_uri, size_t k) {
  size_t slash = base_uri.find_last_of('/');
  return base_uri.substr(0, slash + 1) + std::to_string(k);
}

}  // namespace

Corpus CorpusGenerator::GenerateDirty() const {
  util::Rng rng(config_.seed);
  std::vector<model::EntityDescription> descriptions;
  std::vector<uint32_t> entity_of;

  // Base descriptions.
  std::vector<model::EntityDescription> bases;
  bases.reserve(config_.num_entities);
  for (size_t i = 0; i < config_.num_entities; ++i) {
    bases.push_back(MakeBase(i, rng));
  }

  size_t num_duplicated = static_cast<size_t>(
      std::llround(config_.duplicate_fraction *
                   static_cast<double>(config_.num_entities)));
  std::vector<size_t> duplicated =
      rng.SampleWithoutReplacement(config_.num_entities, num_duplicated);

  for (size_t i = 0; i < config_.num_entities; ++i) {
    descriptions.push_back(bases[i]);
    entity_of.push_back(static_cast<uint32_t>(i));
  }
  for (size_t i : duplicated) {
    size_t extras =
        1 + rng.NextBounded(std::max<size_t>(config_.max_extra_descriptions,
                                             1));
    for (size_t k = 1; k <= extras; ++k) {
      descriptions.push_back(
          CorruptDescription(bases[i], WithDescriptionIndex(bases[i].uri(), k),
                             PickNoise(rng), rng));
      entity_of.push_back(static_cast<uint32_t>(i));
    }
  }

  // Shuffle so ids carry no information about duplicate structure.
  std::vector<size_t> order(descriptions.size());
  std::iota(order.begin(), order.end(), size_t{0});
  rng.Shuffle(order);

  Corpus corpus;
  std::unordered_map<uint32_t, model::EntityId> first_seen;
  for (size_t position = 0; position < order.size(); ++position) {
    size_t original = order[position];
    model::EntityId id = corpus.collection.Add(descriptions[original]);
    uint32_t entity = entity_of[original];
    auto [it, inserted] = first_seen.emplace(entity, id);
    if (!inserted) corpus.truth.AddMatch(it->second, id);
  }
  return corpus;
}

Corpus CorpusGenerator::GenerateCleanClean() const {
  util::Rng rng(config_.seed);
  std::vector<model::EntityDescription> source1;
  source1.reserve(config_.num_entities);
  for (size_t i = 0; i < config_.num_entities; ++i) {
    source1.push_back(MakeBase(i, rng));
  }

  // Global schema map of source 2: some attributes are renamed wholesale.
  std::unordered_map<std::string, std::string> schema_map;
  for (size_t a = 0; a < config_.attributes_per_entity; ++a) {
    std::string name = "attr" + std::to_string(a);
    schema_map[name] = rng.NextBool(config_.schema_divergence)
                           ? name + "_kb2"
                           : name;
  }

  size_t overlap = static_cast<size_t>(
      std::llround(config_.duplicate_fraction *
                   static_cast<double>(config_.num_entities)));
  std::vector<size_t> overlapping =
      rng.SampleWithoutReplacement(config_.num_entities, overlap);

  std::vector<model::EntityDescription> source2;
  std::vector<int64_t> source2_entity;  // Entity index or -1 for fresh.
  for (size_t i : overlapping) {
    model::EntityDescription dup = CorruptDescription(
        source1[i], WithDescriptionIndex(source1[i].uri(), 1),
        PickNoise(rng), rng);
    // Apply the global schema map on top of per-pair renames.
    model::EntityDescription remapped(dup.uri(), dup.type());
    for (const model::AttributeValue& pair : dup.pairs()) {
      auto it = schema_map.find(pair.attribute);
      remapped.AddPair(it != schema_map.end() ? it->second : pair.attribute,
                       pair.value);
    }
    source2.push_back(std::move(remapped));
    source2_entity.push_back(static_cast<int64_t>(i));
  }
  // Fresh source-2-only entities to keep |D2| == |D1|.
  for (size_t i = config_.num_entities;
       source2.size() < config_.num_entities; ++i) {
    model::EntityDescription fresh = MakeBase(i, rng);
    model::EntityDescription remapped(fresh.uri(), fresh.type());
    for (const model::AttributeValue& pair : fresh.pairs()) {
      auto it = schema_map.find(pair.attribute);
      remapped.AddPair(it != schema_map.end() ? it->second : pair.attribute,
                       pair.value);
    }
    source2.push_back(std::move(remapped));
    source2_entity.push_back(-1);
  }
  (void)source2_entity;

  Corpus corpus;
  corpus.collection =
      model::EntityCollection::CleanClean(std::move(source1), source2);
  // Truth: source-1 id overlapping[j] matches source-2 id split+j (the
  // j-th description appended to source 2).
  for (size_t j = 0; j < overlapping.size(); ++j) {
    corpus.truth.AddMatch(
        static_cast<model::EntityId>(overlapping[j]),
        static_cast<model::EntityId>(config_.num_entities + j));
  }
  return corpus;
}

RelationalCorpus RelationalCorpusGenerator::Generate() const {
  util::Rng rng(config_.seed);

  // ---- Tail type (referenced entities), dirty with duplicates. ----
  CorpusGenerator tail_gen(config_.tail);
  std::vector<model::EntityDescription> tail_descriptions;
  std::vector<uint32_t> tail_entity_of;
  std::vector<std::vector<size_t>> tail_descs_of_entity(
      config_.tail.num_entities);
  {
    util::Rng tail_rng(config_.tail.seed);
    std::vector<model::EntityDescription> bases;
    for (size_t i = 0; i < config_.tail.num_entities; ++i) {
      bases.push_back(tail_gen.MakeBase(i, tail_rng));
    }
    size_t num_duplicated = static_cast<size_t>(
        std::llround(config_.tail.duplicate_fraction *
                     static_cast<double>(config_.tail.num_entities)));
    std::vector<size_t> duplicated = tail_rng.SampleWithoutReplacement(
        config_.tail.num_entities, num_duplicated);
    for (size_t i = 0; i < bases.size(); ++i) {
      tail_descs_of_entity[i].push_back(tail_descriptions.size());
      tail_descriptions.push_back(bases[i]);
      tail_entity_of.push_back(static_cast<uint32_t>(i));
    }
    for (size_t i : duplicated) {
      size_t extras = 1 + tail_rng.NextBounded(std::max<size_t>(
                              config_.tail.max_extra_descriptions, 1));
      for (size_t k = 1; k <= extras; ++k) {
        tail_descs_of_entity[i].push_back(tail_descriptions.size());
        tail_descriptions.push_back(CorruptDescription(
            bases[i], WithDescriptionIndex(bases[i].uri(), k),
            tail_gen.PickNoise(tail_rng), tail_rng));
        tail_entity_of.push_back(static_cast<uint32_t>(i));
      }
    }
  }

  // ---- Head type: ambiguous names + relations to tails. ----
  CorpusGenerator head_gen(config_.head);
  size_t pool_size = std::max<size_t>(
      1, static_cast<size_t>(std::llround(
             config_.name_pool_fraction *
             static_cast<double>(config_.head.num_entities))));
  std::vector<std::string> name_pool;
  std::vector<std::string> locality_pool;
  for (size_t p = 0; p < pool_size; ++p) {
    name_pool.push_back(head_gen.MakeValue(rng));
    locality_pool.push_back(head_gen.MakeValue(rng));
  }

  std::vector<model::EntityDescription> head_descriptions;
  std::vector<uint32_t> head_entity_of;
  std::vector<size_t> head_tail_of;  // Tail entity referenced by head i.
  std::vector<model::EntityDescription> head_bases;
  for (size_t i = 0; i < config_.head.num_entities; ++i) {
    model::EntityDescription base("", config_.head.type_name);
    std::string name = name_pool[rng.NextBounded(name_pool.size())];
    base.AddPair("name", name);
    base.AddPair("locality",
                 locality_pool[rng.NextBounded(locality_pool.size())]);
    size_t tail_entity = rng.NextBounded(config_.tail.num_entities);
    head_tail_of.push_back(tail_entity);
    size_t tail_desc = tail_descs_of_entity[tail_entity].front();
    base.AddRelation(config_.relation_predicate,
                     tail_descriptions[tail_desc].uri());
    base.set_uri(config_.head.uri_prefix + "/head/" + std::to_string(i) +
                 "/0");
    head_bases.push_back(base);
  }
  size_t num_head_dup = static_cast<size_t>(
      std::llround(config_.head.duplicate_fraction *
                   static_cast<double>(config_.head.num_entities)));
  std::vector<size_t> head_duplicated =
      rng.SampleWithoutReplacement(config_.head.num_entities, num_head_dup);

  for (size_t i = 0; i < head_bases.size(); ++i) {
    head_descriptions.push_back(head_bases[i]);
    head_entity_of.push_back(static_cast<uint32_t>(i));
  }
  for (size_t i : head_duplicated) {
    model::EntityDescription dup = CorruptDescription(
        head_bases[i], WithDescriptionIndex(head_bases[i].uri(), 1),
        head_gen.PickNoise(rng), rng);
    // Rewire the relation to a *different* description of the same tail
    // entity when one exists: the duplicate "lives" in another KB that
    // names the same architect by another URI.
    const std::vector<size_t>& choices =
        tail_descs_of_entity[head_tail_of[i]];
    if (choices.size() > 1) {
      size_t alt = choices[1 + rng.NextBounded(choices.size() - 1)];
      model::EntityDescription rewired(dup.uri(), dup.type());
      for (const model::AttributeValue& pair : dup.pairs()) {
        rewired.AddPair(pair.attribute, pair.value);
      }
      rewired.AddRelation(config_.relation_predicate,
                          tail_descriptions[alt].uri());
      dup = std::move(rewired);
    }
    head_descriptions.push_back(std::move(dup));
    head_entity_of.push_back(static_cast<uint32_t>(i));
  }

  // ---- Assemble: tails first, then heads. ----
  RelationalCorpus corpus;
  corpus.tail_end = tail_descriptions.size();
  std::unordered_map<uint32_t, model::EntityId> first_tail;
  for (size_t d = 0; d < tail_descriptions.size(); ++d) {
    model::EntityId id = corpus.collection.Add(tail_descriptions[d]);
    auto [it, inserted] = first_tail.emplace(tail_entity_of[d], id);
    if (!inserted) corpus.truth.AddMatch(it->second, id);
  }
  std::unordered_map<uint32_t, model::EntityId> first_head;
  for (size_t d = 0; d < head_descriptions.size(); ++d) {
    model::EntityId id = corpus.collection.Add(head_descriptions[d]);
    auto [it, inserted] = first_head.emplace(head_entity_of[d], id);
    if (!inserted) corpus.truth.AddMatch(it->second, id);
  }
  return corpus;
}

}  // namespace weber::datagen
