#include "datagen/noise.h"

#include "text/tokenizer.h"

namespace weber::datagen {

NoiseConfig SomehowSimilarNoise() {
  NoiseConfig noise;
  noise.token_edit_prob = 0.35;
  noise.token_drop_prob = 0.30;
  noise.value_shuffle_prob = 0.3;
  noise.attribute_drop_prob = 0.35;
  noise.attribute_rename_prob = 0.7;
  return noise;
}

std::string EditTokenOnce(const std::string& token, util::Rng& rng) {
  if (token.empty()) return token;
  std::string edited = token;
  size_t pos = static_cast<size_t>(rng.NextBounded(edited.size()));
  switch (rng.NextBounded(3)) {
    case 0:  // Substitution.
      edited[pos] = static_cast<char>('a' + rng.NextBounded(26));
      break;
    case 1:  // Insertion.
      edited.insert(edited.begin() + pos,
                    static_cast<char>('a' + rng.NextBounded(26)));
      break;
    default:  // Deletion (keep at least one character).
      if (edited.size() > 1) edited.erase(edited.begin() + pos);
      break;
  }
  return edited;
}

std::string CorruptValue(const std::string& value, const NoiseConfig& noise,
                         util::Rng& rng) {
  std::vector<std::string> tokens = text::TokenizeWords(value);
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (std::string& token : tokens) {
    if (rng.NextBool(noise.token_drop_prob) && tokens.size() > 1) continue;
    if (rng.NextBool(noise.token_edit_prob)) {
      token = EditTokenOnce(token, rng);
    }
    kept.push_back(std::move(token));
  }
  if (kept.empty() && !tokens.empty()) kept.push_back(tokens[0]);
  if (rng.NextBool(noise.value_shuffle_prob)) rng.Shuffle(kept);
  std::string corrupted;
  for (size_t i = 0; i < kept.size(); ++i) {
    if (i > 0) corrupted.push_back(' ');
    corrupted.append(kept[i]);
  }
  return corrupted;
}

model::EntityDescription CorruptDescription(
    const model::EntityDescription& base, std::string new_uri,
    const NoiseConfig& noise, util::Rng& rng) {
  model::EntityDescription duplicate(std::move(new_uri), base.type());
  bool kept_any = false;
  for (const model::AttributeValue& pair : base.pairs()) {
    if (rng.NextBool(noise.attribute_drop_prob) && base.pairs().size() > 1) {
      continue;
    }
    std::string attribute = pair.attribute;
    if (rng.NextBool(noise.attribute_rename_prob)) {
      attribute += noise.rename_suffix;
    }
    duplicate.AddPair(std::move(attribute),
                      CorruptValue(pair.value, noise, rng));
    kept_any = true;
  }
  if (!kept_any && !base.pairs().empty()) {
    // Never emit an empty duplicate: keep the first pair, corrupted.
    const model::AttributeValue& pair = base.pairs().front();
    duplicate.AddPair(pair.attribute, CorruptValue(pair.value, noise, rng));
  }
  for (const model::Relation& relation : base.relations()) {
    duplicate.AddRelation(relation.predicate, relation.target_uri);
  }
  return duplicate;
}

}  // namespace weber::datagen
