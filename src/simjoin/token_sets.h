#ifndef WEBER_SIMJOIN_TOKEN_SETS_H_
#define WEBER_SIMJOIN_TOKEN_SETS_H_

#include <cstdint>
#include <vector>

#include "model/entity.h"

namespace weber::simjoin {

/// The token set of one entity, as integer token ids sorted by ascending
/// global frequency (the canonical order that makes prefix filtering
/// effective: rare tokens come first).
struct TokenSet {
  model::EntityId entity;
  std::vector<uint32_t> tokens;  // Strictly increasing token ids.

  size_t size() const { return tokens.size(); }
};

/// Token-set view of an entity collection for set-similarity joins.
///
/// Token ids are assigned so that a lower id means a globally rarer token;
/// every entity's set is sorted ascending, giving the document-frequency
/// ordering required by AllPairs/PPJoin prefix filtering.
class TokenSetCollection {
 public:
  /// Builds the view from the value tokens of each description. Entities
  /// whose value tokens are empty get empty sets (they join with nothing).
  static TokenSetCollection Build(const model::EntityCollection& collection);

  const std::vector<TokenSet>& sets() const { return sets_; }
  size_t size() const { return sets_.size(); }
  size_t vocabulary_size() const { return vocabulary_size_; }

  /// Non-owning pointer to the source collection (for the ER setting).
  const model::EntityCollection* collection() const { return collection_; }

 private:
  std::vector<TokenSet> sets_;
  size_t vocabulary_size_ = 0;
  const model::EntityCollection* collection_ = nullptr;
};

/// Overlap of two strictly-increasing id vectors.
size_t SortedOverlap(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b);

/// Jaccard similarity of two strictly-increasing id vectors.
double SortedJaccard(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b);

/// A verified join result: Jaccard(a, b) >= the join threshold.
struct SimilarPair {
  model::EntityId a;
  model::EntityId b;
  double similarity;
};

/// Counters reported by the join algorithms, used to show the pruning
/// power of prefix/positional filtering versus the quadratic baseline.
struct JoinStats {
  uint64_t candidates = 0;     // Pairs that reached verification.
  uint64_t verifications = 0;  // Full similarity computations.
  uint64_t results = 0;        // Pairs meeting the threshold.
};

}  // namespace weber::simjoin

#endif  // WEBER_SIMJOIN_TOKEN_SETS_H_
