#include "simjoin/ppjoin.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace weber::simjoin {

namespace {

struct CandidateState {
  uint32_t prefix_overlap = 0;
  bool pruned = false;
};

}  // namespace

std::vector<SimilarPair> PPJoin(const TokenSetCollection& sets,
                                double jaccard_threshold,
                                JoinStats* stats) {
  double t = std::clamp(jaccard_threshold, 0.0, 1.0);
  std::vector<SimilarPair> results;
  JoinStats local;
  const std::vector<TokenSet>& all = sets.sets();
  const model::EntityCollection* collection = sets.collection();

  std::vector<uint32_t> order(sets.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&all](uint32_t x, uint32_t y) {
    if (all[x].size() != all[y].size()) return all[x].size() < all[y].size();
    return all[x].entity < all[y].entity;
  });

  // token -> (set index, token position in that set's prefix).
  std::unordered_map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>>
      index;

  for (uint32_t probe_rank = 0; probe_rank < order.size(); ++probe_rank) {
    uint32_t x = order[probe_rank];
    const TokenSet& set_x = all[x];
    if (set_x.tokens.empty()) continue;
    size_t size_x = set_x.size();
    size_t min_size =
        static_cast<size_t>(std::ceil(t * static_cast<double>(size_x)));
    size_t prefix_x =
        size_x - static_cast<size_t>(std::ceil(t * size_x)) + 1;

    std::unordered_map<uint32_t, CandidateState> candidates;
    for (uint32_t p = 0; p < prefix_x && p < set_x.tokens.size(); ++p) {
      auto it = index.find(set_x.tokens[p]);
      if (it == index.end()) continue;
      for (const auto& [y, j] : it->second) {
        const TokenSet& set_y = all[y];
        if (set_y.size() < min_size) continue;  // Length filter.
        CandidateState& state = candidates[y];
        if (state.pruned) continue;
        // Required overlap for Jaccard >= t.
        double alpha_d = t / (1.0 + t) *
                         static_cast<double>(size_x + set_y.size());
        uint32_t alpha = static_cast<uint32_t>(std::ceil(alpha_d - 1e-9));
        // Positional filter: best case, everything after the current
        // positions matches.
        uint32_t upper_bound =
            1 + static_cast<uint32_t>(std::min(size_x - p - 1,
                                               set_y.size() - j - 1));
        if (state.prefix_overlap + upper_bound < alpha) {
          state.pruned = true;
        } else {
          ++state.prefix_overlap;
        }
      }
    }

    for (const auto& [y, state] : candidates) {
      if (state.pruned || state.prefix_overlap == 0) continue;
      const TokenSet& set_y = all[y];
      if (collection != nullptr &&
          !collection->Comparable(set_x.entity, set_y.entity)) {
        continue;
      }
      ++local.candidates;
      ++local.verifications;
      double sim = SortedJaccard(set_x.tokens, set_y.tokens);
      if (sim >= t) {
        model::EntityId a = std::min(set_x.entity, set_y.entity);
        model::EntityId b = std::max(set_x.entity, set_y.entity);
        results.push_back({a, b, sim});
        ++local.results;
      }
    }

    for (uint32_t p = 0; p < prefix_x && p < set_x.tokens.size(); ++p) {
      index[set_x.tokens[p]].emplace_back(x, p);
    }
  }
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace weber::simjoin
