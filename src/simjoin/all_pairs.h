#ifndef WEBER_SIMJOIN_ALL_PAIRS_H_
#define WEBER_SIMJOIN_ALL_PAIRS_H_

#include <vector>

#include "simjoin/token_sets.h"

namespace weber::simjoin {

/// The naive quadratic set-similarity self-join: verifies every comparable
/// pair. Baseline for the pruning-power experiments.
std::vector<SimilarPair> NaiveJoin(const TokenSetCollection& sets,
                                   double jaccard_threshold,
                                   JoinStats* stats = nullptr);

/// AllPairs (Bayardo et al.) self-join under Jaccard: indexes only the
/// prefix of each set (the |x| - ceil(t*|x|) + 1 rarest tokens) and
/// generates candidates from prefix collisions, applying the length filter
/// |y| >= t*|x| before verification. Returns pairs with Jaccard >= t,
/// honouring the collection's ER setting (dirty: all pairs; clean-clean:
/// cross-source only). Requires t > 0: at t == 0 disjoint sets satisfy
/// Jaccard >= t but can never collide in the prefix index, so only
/// overlapping pairs are returned (same for PPJoin).
std::vector<SimilarPair> AllPairsJoin(const TokenSetCollection& sets,
                                      double jaccard_threshold,
                                      JoinStats* stats = nullptr);

}  // namespace weber::simjoin

#endif  // WEBER_SIMJOIN_ALL_PAIRS_H_
