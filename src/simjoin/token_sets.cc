#include "simjoin/token_sets.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "text/tokenizer.h"
#include "util/intersect.h"

namespace weber::simjoin {

TokenSetCollection TokenSetCollection::Build(
    const model::EntityCollection& collection) {
  TokenSetCollection result;
  result.collection_ = &collection;

  // Pass 1: string tokens per entity + global frequencies.
  std::vector<std::vector<std::string>> raw(collection.size());
  std::unordered_map<std::string, uint32_t> frequency;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    raw[id] = text::ValueTokens(collection[id]);
    for (const std::string& token : raw[id]) ++frequency[token];
  }

  // Assign ids by ascending (frequency, token) so ordering is total and
  // deterministic.
  std::vector<std::pair<uint32_t, const std::string*>> by_frequency;
  by_frequency.reserve(frequency.size());
  for (const auto& [token, count] : frequency) {
    by_frequency.emplace_back(count, &token);
  }
  std::sort(by_frequency.begin(), by_frequency.end(),
            [](const auto& x, const auto& y) {
              if (x.first != y.first) return x.first < y.first;
              return *x.second < *y.second;
            });
  std::unordered_map<std::string, uint32_t> token_id;
  token_id.reserve(by_frequency.size());
  for (uint32_t i = 0; i < by_frequency.size(); ++i) {
    token_id.emplace(*by_frequency[i].second, i);
  }
  result.vocabulary_size_ = token_id.size();

  // Pass 2: integer sets, sorted ascending.
  result.sets_.reserve(collection.size());
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    TokenSet set;
    set.entity = id;
    set.tokens.reserve(raw[id].size());
    for (const std::string& token : raw[id]) {
      set.tokens.push_back(token_id.at(token));
    }
    std::sort(set.tokens.begin(), set.tokens.end());
    result.sets_.push_back(std::move(set));
  }
  return result;
}

size_t SortedOverlap(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  // Adaptive: linear merge for comparable sizes, galloping search over the
  // longer vector when skewed. One kernel, shared with the matching
  // signature engine (util/intersect.h).
  return util::SortedIntersectSize({a.data(), a.size()},
                                   {b.data(), b.size()});
}

double SortedJaccard(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t overlap = SortedOverlap(a, b);
  return static_cast<double>(overlap) /
         static_cast<double>(a.size() + b.size() - overlap);
}

}  // namespace weber::simjoin
