#include "simjoin/all_pairs.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace weber::simjoin {

namespace {

bool ComparableUnderSetting(const TokenSetCollection& sets,
                            model::EntityId a, model::EntityId b) {
  const model::EntityCollection* collection = sets.collection();
  return collection == nullptr || collection->Comparable(a, b);
}

}  // namespace

std::vector<SimilarPair> NaiveJoin(const TokenSetCollection& sets,
                                   double jaccard_threshold,
                                   JoinStats* stats) {
  std::vector<SimilarPair> results;
  JoinStats local;
  const std::vector<TokenSet>& all = sets.sets();
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      if (!ComparableUnderSetting(sets, all[i].entity, all[j].entity)) {
        continue;
      }
      ++local.candidates;
      ++local.verifications;
      double sim = SortedJaccard(all[i].tokens, all[j].tokens);
      if (sim >= jaccard_threshold) {
        results.push_back({all[i].entity, all[j].entity, sim});
        ++local.results;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return results;
}

std::vector<SimilarPair> AllPairsJoin(const TokenSetCollection& sets,
                                      double jaccard_threshold,
                                      JoinStats* stats) {
  double t = std::clamp(jaccard_threshold, 0.0, 1.0);
  std::vector<SimilarPair> results;
  JoinStats local;

  // Process sets in ascending size order so the length filter can be
  // applied against already-indexed (smaller or equal) sets.
  std::vector<uint32_t> order(sets.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::vector<TokenSet>& all = sets.sets();
  std::sort(order.begin(), order.end(), [&all](uint32_t x, uint32_t y) {
    if (all[x].size() != all[y].size()) return all[x].size() < all[y].size();
    return all[x].entity < all[y].entity;
  });

  // Inverted index over indexed prefixes: token -> set indices.
  std::unordered_map<uint32_t, std::vector<uint32_t>> index;
  std::vector<uint32_t> candidate_of;  // Scratch: candidate set indices.
  std::vector<uint32_t> last_seen(sets.size(), UINT32_MAX);

  for (uint32_t probe_rank = 0; probe_rank < order.size(); ++probe_rank) {
    uint32_t x = order[probe_rank];
    const TokenSet& set_x = all[x];
    if (set_x.tokens.empty()) continue;
    size_t size_x = set_x.size();
    size_t min_size =
        static_cast<size_t>(std::ceil(t * static_cast<double>(size_x)));
    size_t prefix_x =
        size_x - static_cast<size_t>(std::ceil(t * size_x)) + 1;

    candidate_of.clear();
    for (size_t p = 0; p < prefix_x && p < set_x.tokens.size(); ++p) {
      auto it = index.find(set_x.tokens[p]);
      if (it == index.end()) continue;
      for (uint32_t y : it->second) {
        if (all[y].size() < min_size) continue;  // Length filter.
        if (last_seen[y] == probe_rank) continue;  // Already a candidate.
        last_seen[y] = probe_rank;
        candidate_of.push_back(y);
      }
    }

    for (uint32_t y : candidate_of) {
      if (!ComparableUnderSetting(sets, set_x.entity, all[y].entity)) {
        continue;
      }
      ++local.candidates;
      ++local.verifications;
      double sim = SortedJaccard(set_x.tokens, all[y].tokens);
      if (sim >= t) {
        model::EntityId a = std::min(set_x.entity, all[y].entity);
        model::EntityId b = std::max(set_x.entity, all[y].entity);
        results.push_back({a, b, sim});
        ++local.results;
      }
    }

    // Index x's prefix for future probes.
    for (size_t p = 0; p < prefix_x && p < set_x.tokens.size(); ++p) {
      index[set_x.tokens[p]].push_back(x);
    }
  }
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace weber::simjoin
