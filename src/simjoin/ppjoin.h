#ifndef WEBER_SIMJOIN_PPJOIN_H_
#define WEBER_SIMJOIN_PPJOIN_H_

#include <vector>

#include "simjoin/token_sets.h"

namespace weber::simjoin {

/// PPJoin (Xiao et al., TODS'11) self-join under Jaccard: AllPairs prefix
/// filtering plus the positional filter — a candidate is dropped when the
/// overlap accumulated in the prefixes plus the maximum possible overlap
/// in the remaining suffixes cannot reach the required overlap
/// ceil(t/(1+t) * (|x|+|y|)). Returns pairs with Jaccard >= t.
std::vector<SimilarPair> PPJoin(const TokenSetCollection& sets,
                                double jaccard_threshold,
                                JoinStats* stats = nullptr);

}  // namespace weber::simjoin

#endif  // WEBER_SIMJOIN_PPJOIN_H_
