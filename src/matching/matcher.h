#ifndef WEBER_MATCHING_MATCHER_H_
#define WEBER_MATCHING_MATCHER_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/entity.h"
#include "model/ground_truth.h"
#include "text/tfidf.h"
#include "util/random.h"

namespace weber::matching {

/// A pairwise similarity function over entity descriptions; the "match"
/// phase of the ER framework (Fig. 1 of the tutorial). Implementations
/// must be usable on merged descriptions too (iterative ER compares the
/// unions of previously matched descriptions).
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Similarity of two descriptions in [0, 1].
  virtual double Similarity(const model::EntityDescription& a,
                            const model::EntityDescription& b) const = 0;

  virtual std::string name() const = 0;
};

/// Decision wrapper: a matcher plus a threshold.
class ThresholdMatcher {
 public:
  ThresholdMatcher(const Matcher* matcher, double threshold)
      : matcher_(matcher), threshold_(threshold) {}

  bool Matches(const model::EntityDescription& a,
               const model::EntityDescription& b) const {
    return matcher_->Similarity(a, b) >= threshold_;
  }

  double Similarity(const model::EntityDescription& a,
                    const model::EntityDescription& b) const {
    return matcher_->Similarity(a, b);
  }

  double threshold() const { return threshold_; }
  const Matcher& matcher() const { return *matcher_; }

 private:
  const Matcher* matcher_;  // Not owned.
  double threshold_;
};

/// Schema-agnostic matcher: Jaccard similarity of the distinct value-token
/// sets of the two descriptions. The workhorse for heterogeneous Web data
/// where attribute names cannot be aligned a priori.
class TokenJaccardMatcher : public Matcher {
 public:
  double Similarity(const model::EntityDescription& a,
                    const model::EntityDescription& b) const override;
  std::string name() const override { return "TokenJaccard"; }
};

/// Overlap-coefficient matcher: |A ∩ B| / min(|A|, |B|) over the distinct
/// value-token sets. Unlike Jaccard, this similarity is monotone under
/// merging: a merged description only gains tokens, so it never loses a
/// match either constituent had against a smaller record. That is (the
/// token-level analogue of) the representativity property the Swoosh
/// family assumes of its match function, making this the natural matcher
/// for merging-based iterative ER.
class TokenOverlapMatcher : public Matcher {
 public:
  double Similarity(const model::EntityDescription& a,
                    const model::EntityDescription& b) const override;
  std::string name() const override { return "TokenOverlap"; }
};

/// A per-attribute rule used by WeightedAttributeMatcher.
struct AttributeRule {
  /// Attribute name on either side.
  std::string attribute;
  /// Relative weight of this attribute (normalised internally).
  double weight = 1.0;
  /// Similarity of the attribute's first values: Jaro-Winkler when true,
  /// otherwise token Jaccard of the values' tokens.
  bool use_jaro_winkler = true;
};

/// Schema-aware matcher for sources with (partially) aligned schemas:
/// weighted average of per-attribute value similarities. Attributes
/// missing on either side contribute zero, so descriptions with disjoint
/// schemas score low — exactly the failure mode the tutorial ascribes to
/// schema-based techniques on Web data.
class WeightedAttributeMatcher : public Matcher {
 public:
  explicit WeightedAttributeMatcher(std::vector<AttributeRule> rules)
      : rules_(std::move(rules)) {}

  double Similarity(const model::EntityDescription& a,
                    const model::EntityDescription& b) const override;
  std::string name() const override { return "WeightedAttribute"; }

  const std::vector<AttributeRule>& rules() const { return rules_; }

 private:
  std::vector<AttributeRule> rules_;
};

/// TF-IDF cosine matcher: weighs rare tokens higher. Fit once on the
/// collection; Similarity vectorises on the fly so it also works on
/// merged descriptions.
class TfIdfCosineMatcher : public Matcher {
 public:
  explicit TfIdfCosineMatcher(const model::EntityCollection& collection)
      : model_(text::TfIdfModel::Fit(collection)) {}

  double Similarity(const model::EntityDescription& a,
                    const model::EntityDescription& b) const override;
  std::string name() const override { return "TfIdfCosine"; }

  const text::TfIdfModel& model() const { return model_; }

 private:
  text::TfIdfModel model_;
};

/// Combines component matchers into one score. Useful when no single
/// similarity captures all evidence: e.g., token Jaccard for long
/// descriptions plus Jaro-Winkler-based attribute rules for short ones.
class CompositeMatcher : public Matcher {
 public:
  enum class Combine {
    /// Weighted arithmetic mean of component scores.
    kWeightedAverage,
    /// Maximum component score (evidence from any angle suffices).
    kMax,
    /// Minimum component score (all angles must agree).
    kMin,
  };

  /// Components are borrowed and must outlive the composite. Weights are
  /// only used by kWeightedAverage and are normalised internally.
  CompositeMatcher(std::vector<const Matcher*> components,
                   std::vector<double> weights,
                   Combine combine = Combine::kWeightedAverage)
      : components_(std::move(components)),
        weights_(std::move(weights)),
        combine_(combine) {}

  double Similarity(const model::EntityDescription& a,
                    const model::EntityDescription& b) const override;
  std::string name() const override { return "Composite"; }

  const std::vector<const Matcher*>& components() const { return components_; }
  const std::vector<double>& weights() const { return weights_; }
  Combine combine() const { return combine_; }

 private:
  std::vector<const Matcher*> components_;
  std::vector<double> weights_;
  Combine combine_;
};

/// Ground-truth-backed oracle with configurable noise: returns a high
/// similarity for true matches and a low one for non-matches, flipping
/// the verdict with probability `error_rate`. Stands in for the expensive
/// and imperfect resolution functions (crowd, domain experts, learned
/// models) that progressive ER assumes; deterministic per pair.
class OracleMatcher : public Matcher {
 public:
  /// Entities are identified by their position in `collection`; the
  /// matcher resolves descriptions back to ids via their URIs.
  OracleMatcher(const model::EntityCollection& collection,
                const model::GroundTruth& truth, double error_rate = 0.0,
                uint64_t seed = 11);

  double Similarity(const model::EntityDescription& a,
                    const model::EntityDescription& b) const override;
  std::string name() const override { return "Oracle"; }

  /// Oracle verdict for two already-resolved collection ids: the id-level
  /// core of Similarity, which resolves URIs to ids first.
  double SimilarityById(model::EntityId a, model::EntityId b) const;

  const model::EntityCollection& collection() const { return collection_; }

 private:
  const model::EntityCollection& collection_;
  const model::GroundTruth& truth_;
  double error_rate_;
  uint64_t seed_;
  /// URI -> id, built once at construction (first id wins on duplicate
  /// URIs, like EntityCollection::FindByUri). Keys view the collection's
  /// own uri strings, so no per-lookup allocation either.
  std::unordered_map<std::string_view, model::EntityId> uri_to_id_;
};

}  // namespace weber::matching

#endif  // WEBER_MATCHING_MATCHER_H_
