#ifndef WEBER_MATCHING_CLUSTERING_H_
#define WEBER_MATCHING_CLUSTERING_H_

#include <vector>

#include "matching/match_graph.h"
#include "model/ground_truth.h"

namespace weber::matching {

/// Entity clusters: each inner vector is one resolved real-world entity
/// (ids of its descriptions). Singletons are included.
using Clusters = std::vector<std::vector<model::EntityId>>;

/// Transitive closure of the match graph: connected components. The
/// standard final step for dirty ER, where "same-as" is assumed
/// transitive.
Clusters ConnectedComponents(const MatchGraph& graph);

/// Center clustering (Haveliwala et al.): edges are scanned heaviest
/// first; the first time a node appears it becomes a cluster center, and
/// non-center nodes attach to the first center they share an edge with.
/// More precise than connected components on noisy match graphs because
/// chains through weak hubs do not collapse clusters together.
Clusters CenterClustering(const MatchGraph& graph);

/// Merge-center clustering: like center clustering, but when an edge
/// connects two centers their clusters are merged. A middle ground
/// between center clustering and connected components.
Clusters MergeCenterClustering(const MatchGraph& graph);

/// Expands clusters into the set of intra-cluster pairs (the pairwise view
/// used by precision/recall evaluation).
std::vector<model::IdPair> ClusterPairs(const Clusters& clusters);

}  // namespace weber::matching

#endif  // WEBER_MATCHING_CLUSTERING_H_
