#include "matching/signatures.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/executor.h"
#include "obs/metrics.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/check.h"
#include "util/intersect.h"

namespace weber::matching {

namespace {

constexpr size_t kNoIndex = static_cast<size_t>(-1);

void Bump(obs::Counter* counter) {
  if (counter != nullptr) counter->Add(1);
}

// ---------------------------------------------------------------------------
// Required-overlap filters.
//
// Early exit must never change a verdict, so the threshold comparison is
// moved into the integer domain: the smallest intersection count r whose
// similarity clears the threshold under the *exact* double division the
// string path performs. The closed-form guess only seeds the search; the
// fix-up loops below re-check the real double expression, so r is correct
// even when the guess is off by an ulp. Similarity is monotone in the
// intersection count (for fixed set sizes), hence verdict == (|A∩B| >= r).
// ---------------------------------------------------------------------------

/// Smallest o with double(o) / double(size_a + size_b - o) >= t, or
/// min(size_a, size_b) + 1 when no feasible o qualifies. Caller handles
/// size_a == size_b == 0 (similarity 1 by convention).
size_t RequiredOverlapJaccard(size_t size_a, size_t size_b, double t) {
  size_t total = size_a + size_b;
  size_t cap = std::min(size_a, size_b);
  auto sim = [total](size_t o) {
    return static_cast<double>(o) / static_cast<double>(total - o);
  };
  if (std::isnan(t)) return cap + 1;  // sim >= NaN is false for every o.
  if (!(t > 0.0)) return 0;           // sim(0) == 0.0 >= t already.
  double guess = std::ceil(t * static_cast<double>(total) / (1.0 + t));
  size_t r = guess >= static_cast<double>(cap + 1)
                 ? cap + 1
                 : static_cast<size_t>(std::max(guess, 0.0));
  while (r > 0 && sim(r - 1) >= t) --r;
  while (r <= cap && !(sim(r) >= t)) ++r;
  return r;
}

/// Smallest o with double(o) / double(smaller) >= t, or smaller + 1 when
/// none qualifies. Caller handles smaller == 0.
size_t RequiredOverlapCoefficient(size_t smaller, double t) {
  auto sim = [smaller](size_t o) {
    return static_cast<double>(o) / static_cast<double>(smaller);
  };
  if (std::isnan(t)) return smaller + 1;
  if (!(t > 0.0)) return 0;
  double guess = std::ceil(t * static_cast<double>(smaller));
  size_t r = guess >= static_cast<double>(smaller + 1)
                 ? smaller + 1
                 : static_cast<size_t>(std::max(guess, 0.0));
  while (r > 0 && sim(r - 1) >= t) --r;
  while (r <= smaller && !(sim(r) >= t)) ++r;
  return r;
}

/// First index in [from, data.size()) whose token id is >= key; the
/// TfIdfTerm analogue of util::GallopLowerBound for sparse vectors.
size_t GallopLowerBoundPairs(std::span<const TfIdfTerm> data, size_t from,
                             uint32_t key) {
  size_t n = data.size();
  if (from >= n || data[from].token >= key) return from;
  size_t lo = from;
  size_t step = 1;
  while (lo + step < n && data[lo + step].token < key) {
    lo += step;
    step <<= 1;
  }
  size_t hi = lo + step < n ? lo + step : n;
  ++lo;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    WEBER_DCHECK_LT(mid, n) << "gallop window escaped the sequence";
    if (data[mid].token < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Dot product of two sparse unit vectors. Both strategies accumulate the
/// matched products in ascending token-id order — the order TfIdfModel::
/// Cosine uses — so the sum is bit-equal no matter which one runs.
double SparseDot(std::span<const TfIdfTerm> a, std::span<const TfIdfTerm> b) {
  if (a.size() > b.size()) std::swap(a, b);
  double dot = 0.0;
  if (!a.empty() && a.size() * util::kGallopRatio < b.size()) {
    size_t at = 0;
    for (const TfIdfTerm& term : a) {
      at = GallopLowerBoundPairs(b, at, term.token);
      if (at == b.size()) break;
      if (b[at].token == term.token) {
        dot += term.weight * b[at].weight;
        ++at;
      }
    }
    return dot;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].token == b[j].token) {
      dot += a[i].weight * b[j].weight;
      ++i;
      ++j;
    } else if (a[i].token < b[j].token) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

/// Scores a pair via the string twin on provider-resolved descriptions;
/// the shared fallback of every prepared matcher. An unresolvable id
/// scores 0.0 — wired consumers always install a provider that covers
/// every id they compare.
double StringFallback(const Matcher& twin, const SignatureStore& store,
                      const PreparedCounters& counters, model::EntityId a,
                      model::EntityId b) {
  Bump(counters.fallbacks);
  const model::EntityDescription* desc_a = store.description(a);
  const model::EntityDescription* desc_b = store.description(b);
  if (desc_a == nullptr || desc_b == nullptr) return 0.0;
  return twin.Similarity(*desc_a, *desc_b);
}

// ---------------------------------------------------------------------------
// Prepared matchers.
// ---------------------------------------------------------------------------

class PreparedTokenJaccard final : public PreparedMatcher {
 public:
  PreparedTokenJaccard(const TokenJaccardMatcher& twin,
                       const SignatureStore& store)
      : twin_(twin), store_(store), counters_(PreparedCounters::Ambient()) {}

  double Similarity(model::EntityId a, model::EntityId b) const override {
    if (!store_.contains(a) || !store_.contains(b)) {
      return StringFallback(twin_, store_, counters_, a, b);
    }
    Bump(counters_.comparisons);
    const PostingView ta = store_.posting(a);
    const PostingView tb = store_.posting(b);
    size_t inter = PostingIntersectSize(ta, tb);
    size_t union_size = size_t{ta.size} + tb.size - inter;
    if (union_size == 0) return 1.0;
    return static_cast<double>(inter) / static_cast<double>(union_size);
  }

  bool Matches(model::EntityId a, model::EntityId b,
               double threshold) const override {
    if (!store_.contains(a) || !store_.contains(b)) {
      return StringFallback(twin_, store_, counters_, a, b) >= threshold;
    }
    Bump(counters_.comparisons);
    const PostingView ta = store_.posting(a);
    const PostingView tb = store_.posting(b);
    if (ta.empty() && tb.empty()) return 1.0 >= threshold;
    size_t required = RequiredOverlapJaccard(ta.size, tb.size, threshold);
    if (required > std::min<size_t>(ta.size, tb.size)) {
      Bump(counters_.filter_hits);
      return false;
    }
    if (required == 0) {
      Bump(counters_.filter_hits);
      return true;
    }
    return PostingIntersectAtLeast(ta, tb, required);
  }

  std::string name() const override { return "Prepared(TokenJaccard)"; }

 private:
  const TokenJaccardMatcher& twin_;
  const SignatureStore& store_;
  PreparedCounters counters_;
};

class PreparedTokenOverlap final : public PreparedMatcher {
 public:
  PreparedTokenOverlap(const TokenOverlapMatcher& twin,
                       const SignatureStore& store)
      : twin_(twin), store_(store), counters_(PreparedCounters::Ambient()) {}

  double Similarity(model::EntityId a, model::EntityId b) const override {
    if (!store_.contains(a) || !store_.contains(b)) {
      return StringFallback(twin_, store_, counters_, a, b);
    }
    Bump(counters_.comparisons);
    const PostingView ta = store_.posting(a);
    const PostingView tb = store_.posting(b);
    size_t smaller = std::min<size_t>(ta.size, tb.size);
    if (smaller == 0) return ta.size == tb.size ? 1.0 : 0.0;
    size_t inter = PostingIntersectSize(ta, tb);
    return static_cast<double>(inter) / static_cast<double>(smaller);
  }

  bool Matches(model::EntityId a, model::EntityId b,
               double threshold) const override {
    if (!store_.contains(a) || !store_.contains(b)) {
      return StringFallback(twin_, store_, counters_, a, b) >= threshold;
    }
    Bump(counters_.comparisons);
    const PostingView ta = store_.posting(a);
    const PostingView tb = store_.posting(b);
    size_t smaller = std::min<size_t>(ta.size, tb.size);
    if (smaller == 0) {
      return (ta.size == tb.size ? 1.0 : 0.0) >= threshold;
    }
    size_t required = RequiredOverlapCoefficient(smaller, threshold);
    if (required > smaller) {
      Bump(counters_.filter_hits);
      return false;
    }
    if (required == 0) {
      Bump(counters_.filter_hits);
      return true;
    }
    return PostingIntersectAtLeast(ta, tb, required);
  }

  std::string name() const override { return "Prepared(TokenOverlap)"; }

 private:
  const TokenOverlapMatcher& twin_;
  const SignatureStore& store_;
  PreparedCounters counters_;
};

class PreparedTfIdfCosine final : public PreparedMatcher {
 public:
  PreparedTfIdfCosine(const TfIdfCosineMatcher& twin,
                      const SignatureStore& store)
      : twin_(twin), store_(store), counters_(PreparedCounters::Ambient()) {}

  // No Matches override: a partial dot product admits no sound bound
  // against the threshold (remaining weights are unknown), so the decision
  // always computes the full similarity.
  double Similarity(model::EntityId a, model::EntityId b) const override {
    if (!store_.has_tfidf(a) || !store_.has_tfidf(b)) {
      return StringFallback(twin_, store_, counters_, a, b);
    }
    Bump(counters_.comparisons);
    return SparseDot(store_.tfidf(a), store_.tfidf(b));
  }

  std::string name() const override { return "Prepared(TfIdfCosine)"; }

 private:
  const TfIdfCosineMatcher& twin_;
  const SignatureStore& store_;
  PreparedCounters counters_;
};

class PreparedWeightedAttribute final : public PreparedMatcher {
 public:
  PreparedWeightedAttribute(const WeightedAttributeMatcher& twin,
                            const SignatureStore& store,
                            std::vector<size_t> rule_slots)
      : twin_(twin),
        store_(store),
        rule_slots_(std::move(rule_slots)),
        counters_(PreparedCounters::Ambient()) {}

  double Similarity(model::EntityId a, model::EntityId b) const override {
    if (!store_.has_attributes(a) || !store_.has_attributes(b)) {
      return StringFallback(twin_, store_, counters_, a, b);
    }
    Bump(counters_.comparisons);
    auto slots_a = store_.attribute_slots(a);
    auto slots_b = store_.attribute_slots(b);
    double total_weight = 0.0;
    double score = 0.0;
    const std::vector<AttributeRule>& rules = twin_.rules();
    for (size_t k = 0; k < rules.size(); ++k) {
      const AttributeRule& rule = rules[k];
      total_weight += rule.weight;
      const SignatureStore::AttributeSlot& slot_a = slots_a[rule_slots_[k]];
      const SignatureStore::AttributeSlot& slot_b = slots_b[rule_slots_[k]];
      if (slot_a.value_index == SignatureStore::kNoValue ||
          slot_b.value_index == SignatureStore::kNoValue) {
        continue;
      }
      double sim;
      if (rule.use_jaro_winkler) {
        sim = text::JaroWinklerSimilarity(store_.value(slot_a.value_index),
                                          store_.value(slot_b.value_index));
      } else {
        auto ta = store_.slot_tokens(slot_a);
        auto tb = store_.slot_tokens(slot_b);
        size_t inter = util::SortedIntersectSize(ta, tb);
        size_t union_size = ta.size() + tb.size() - inter;
        sim = union_size == 0 ? 1.0
                              : static_cast<double>(inter) /
                                    static_cast<double>(union_size);
      }
      score += rule.weight * sim;
    }
    if (total_weight <= 0.0) return 0.0;
    return score / total_weight;
  }

  std::string name() const override { return "Prepared(WeightedAttribute)"; }

 private:
  const WeightedAttributeMatcher& twin_;
  const SignatureStore& store_;
  std::vector<size_t> rule_slots_;  // rules()[k] -> attribute slot index.
  PreparedCounters counters_;
};

/// Prepared wrapper for a composite component the engine cannot intern:
/// always scores via the string twin, so a Composite can still prepare the
/// components it does understand.
class PreparedStringBridge final : public PreparedMatcher {
 public:
  PreparedStringBridge(const Matcher& twin, const SignatureStore& store)
      : twin_(twin), store_(store), counters_(PreparedCounters::Ambient()) {}

  double Similarity(model::EntityId a, model::EntityId b) const override {
    return StringFallback(twin_, store_, counters_, a, b);
  }

  std::string name() const override {
    return "PreparedBridge(" + twin_.name() + ")";
  }

 private:
  const Matcher& twin_;
  const SignatureStore& store_;
  PreparedCounters counters_;
};

class PreparedComposite final : public PreparedMatcher {
 public:
  PreparedComposite(const CompositeMatcher& twin,
                    std::vector<std::unique_ptr<PreparedMatcher>> components)
      : twin_(twin), components_(std::move(components)) {}

  double Similarity(model::EntityId a, model::EntityId b) const override {
    if (components_.empty()) return 0.0;
    switch (twin_.combine()) {
      case CompositeMatcher::Combine::kWeightedAverage: {
        const std::vector<double>& weights = twin_.weights();
        double total_weight = 0.0;
        double score = 0.0;
        for (size_t i = 0; i < components_.size(); ++i) {
          double weight = i < weights.size() ? weights[i] : 1.0;
          total_weight += weight;
          score += weight * components_[i]->Similarity(a, b);
        }
        return total_weight > 0.0 ? score / total_weight : 0.0;
      }
      case CompositeMatcher::Combine::kMax: {
        double best = 0.0;
        for (const auto& component : components_) {
          best = std::max(best, component->Similarity(a, b));
        }
        return best;
      }
      case CompositeMatcher::Combine::kMin: {
        double worst = 1.0;
        for (const auto& component : components_) {
          worst = std::min(worst, component->Similarity(a, b));
        }
        return worst;
      }
    }
    return 0.0;
  }

  bool Matches(model::EntityId a, model::EntityId b,
               double threshold) const override {
    if (components_.empty()) return 0.0 >= threshold;
    switch (twin_.combine()) {
      case CompositeMatcher::Combine::kMax:
        // max(0.0, sims) >= t  <=>  some sim >= t, or 0.0 >= t.
        for (const auto& component : components_) {
          if (component->Matches(a, b, threshold)) return true;
        }
        return 0.0 >= threshold;
      case CompositeMatcher::Combine::kMin:
        // min(1.0, sims) >= t  <=>  every sim >= t and 1.0 >= t.
        for (const auto& component : components_) {
          if (!component->Matches(a, b, threshold)) return false;
        }
        return 1.0 >= threshold;
      case CompositeMatcher::Combine::kWeightedAverage:
        break;  // No per-component shortcut is sound for an average.
    }
    return Similarity(a, b) >= threshold;
  }

  std::string name() const override { return "Prepared(Composite)"; }

 private:
  const CompositeMatcher& twin_;
  std::vector<std::unique_ptr<PreparedMatcher>> components_;
};

class PreparedOracle final : public PreparedMatcher {
 public:
  PreparedOracle(const OracleMatcher& twin, const SignatureStore& store)
      : twin_(twin), store_(store), counters_(PreparedCounters::Ambient()) {
    // The string path resolves each description's URI through the
    // collection per pair; on duplicate URIs the first id wins. Resolving
    // every id once here reproduces that canonicalisation exactly.
    const model::EntityCollection& collection = *store.collection();
    canonical_.reserve(collection.size());
    for (const model::EntityDescription& description :
         collection.descriptions()) {
      canonical_.push_back(
          collection.FindByUri(description.uri()).value_or(0));
    }
  }

  double Similarity(model::EntityId a, model::EntityId b) const override {
    if (a >= canonical_.size() || b >= canonical_.size()) {
      return StringFallback(twin_, store_, counters_, a, b);
    }
    Bump(counters_.comparisons);
    return twin_.SimilarityById(canonical_[a], canonical_[b]);
  }

  std::string name() const override { return "Prepared(Oracle)"; }

 private:
  const OracleMatcher& twin_;
  const SignatureStore& store_;
  std::vector<model::EntityId> canonical_;
  PreparedCounters counters_;
};

void CollectOptions(const Matcher& matcher, SignatureOptions& options) {
  if (const auto* tfidf = dynamic_cast<const TfIdfCosineMatcher*>(&matcher)) {
    options.tfidf_model = &tfidf->model();
    return;
  }
  if (const auto* weighted =
          dynamic_cast<const WeightedAttributeMatcher*>(&matcher)) {
    for (const AttributeRule& rule : weighted->rules()) {
      if (std::find(options.attributes.begin(), options.attributes.end(),
                    rule.attribute) == options.attributes.end()) {
        options.attributes.push_back(rule.attribute);
      }
    }
    return;
  }
  if (const auto* composite = dynamic_cast<const CompositeMatcher*>(&matcher)) {
    for (const Matcher* component : composite->components()) {
      CollectOptions(*component, options);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SignatureStore
// ---------------------------------------------------------------------------

SignatureStore::SignatureStore(SignatureOptions options)
    : options_(std::move(options)) {}

SignatureStore SignatureStore::Build(const model::EntityCollection& collection,
                                     SignatureOptions options) {
  SignatureStore store(std::move(options));
  store.collection_ = &collection;
  store.provider_ =
      [&collection](model::EntityId id) -> const model::EntityDescription* {
    // lint: allow(indexed-access) the ternary bounds-checks id itself
    return id < collection.size() ? &collection.descriptions()[id] : nullptr;
  };
  size_t n = collection.size();
  if (n == 0) return store;

  // Pass 1 (parallel): tokenise every entity; each chunk records its local
  // vocabulary in first-occurrence order.
  struct ChunkVocab {
    std::unordered_set<std::string> seen;
    std::vector<std::string> order;
  };
  size_t chunks = std::min(n, core::EffectiveParallelism());
  std::vector<ChunkVocab> partial(chunks);
  std::vector<std::vector<std::string>> entity_tokens(n);
  core::Executor::Shared().ParallelChunks(
      n, chunks, [&](size_t chunk, size_t begin, size_t end) {
        ChunkVocab& local = partial[chunk];
        for (size_t i = begin; i < end; ++i) {
          entity_tokens[i] = text::ValueTokens(collection.descriptions()[i],
                                               store.options_.normalize);
          for (const std::string& token : entity_tokens[i]) {
            if (local.seen.insert(token).second) local.order.push_back(token);
          }
        }
      });
  // Chunks are contiguous in entity order, so merging their vocabularies
  // serially in chunk order assigns ids by global first occurrence — the
  // same vocabulary for any chunk count.
  for (ChunkVocab& local : partial) {
    for (std::string& token : local.order) {
      store.vocabulary_.try_emplace(
          std::move(token), static_cast<uint32_t>(store.vocabulary_.size()));
    }
  }

  // Pass 2 (parallel): translate each entity into its signature parts.
  struct BuiltAttribute {
    bool present = false;
    std::string value;
    std::vector<uint32_t> tokens;
  };
  struct BuiltEntity {
    std::vector<uint32_t> tokens;
    text::TfIdfVector tfidf;
    std::vector<BuiltAttribute> attributes;
  };
  std::vector<BuiltEntity> built(n);
  const text::TfIdfModel* model = store.options_.tfidf_model;
  const std::vector<std::string>& attributes = store.options_.attributes;
  core::Executor::Shared().ParallelFor(n, [&](size_t i) {
    const model::EntityDescription& description = collection.descriptions()[i];
    BuiltEntity& out = built[i];
    out.tokens.reserve(entity_tokens[i].size());
    for (const std::string& token : entity_tokens[i]) {
      out.tokens.push_back(store.vocabulary_.find(token)->second);
    }
    std::sort(out.tokens.begin(), out.tokens.end());
    // ValueTokens returns distinct strings and the vocabulary is a
    // bijection, so the sorted ids must already form a set — the contract
    // every intersection kernel downstream relies on.
    WEBER_DCHECK_UNIQUE(out.tokens.begin(), out.tokens.end())
        << "entity " << i << " interned a non-set token signature";
    if (model != nullptr) out.tfidf = model->Vectorize(description);
    out.attributes.resize(attributes.size());
    for (size_t k = 0; k < attributes.size(); ++k) {
      auto value = description.FirstValueOf(attributes[k]);
      if (!value.has_value()) continue;
      BuiltAttribute& attr = out.attributes[k];
      attr.present = true;
      attr.value = std::string(*value);
      // Every token of any value is already in the vocabulary (ValueTokens
      // covers all attribute values with the same normalisation).
      for (const std::string& token :
           text::NormalizeAndTokenize(*value, store.options_.normalize)) {
        attr.tokens.push_back(store.vocabulary_.find(token)->second);
      }
      std::sort(attr.tokens.begin(), attr.tokens.end());
      attr.tokens.erase(std::unique(attr.tokens.begin(), attr.tokens.end()),
                        attr.tokens.end());
    }
  });

  // Serial append into the arenas, in entity order.
  size_t total_tokens = 0;
  size_t total_tfidf = 0;
  for (const BuiltEntity& be : built) {
    total_tfidf += be.tfidf.entries.size();
    for (const BuiltAttribute& attr : be.attributes) {
      total_tokens += attr.tokens.size();
    }
  }
  std::vector<uint32_t>& tokens = store.tokens_.MutableVector();
  std::vector<TfIdfTerm>& tfidf = store.tfidf_.MutableVector();
  std::vector<Entry>& entries = store.entries_.MutableVector();
  std::vector<AttributeSlot>& slots = store.attribute_slots_.MutableVector();
  tokens.reserve(total_tokens);
  tfidf.reserve(total_tfidf);
  entries.reserve(n);
  slots.reserve(n * attributes.size());
  for (BuiltEntity& be : built) {
    Entry entry;
    entry.posting = store.posting_arena_.AppendSorted(be.tokens);
    if (model != nullptr) {
      entry.has_tfidf = true;
      entry.tfidf_offset = static_cast<uint32_t>(tfidf.size());
      entry.tfidf_count = static_cast<uint32_t>(be.tfidf.entries.size());
      for (const auto& [token, weight] : be.tfidf.entries) {
        tfidf.push_back(TfIdfTerm{token, 0, weight});
      }
    }
    if (!attributes.empty()) {
      entry.has_attributes = true;
      entry.attribute_offset = static_cast<uint32_t>(slots.size());
      for (BuiltAttribute& attr : be.attributes) {
        AttributeSlot slot;
        if (attr.present) {
          slot.value_index = static_cast<uint32_t>(store.values_.size());
          store.values_.push_back(std::move(attr.value));
          slot.token_offset = static_cast<uint32_t>(tokens.size());
          slot.token_count = static_cast<uint32_t>(attr.tokens.size());
          tokens.insert(tokens.end(), attr.tokens.begin(), attr.tokens.end());
        }
        slots.push_back(slot);
      }
    }
    entry.present = true;
    entries.push_back(entry);
  }
  return store;
}

void SignatureStore::Absorb(model::EntityId id,
                            const model::EntityDescription& description) {
  Entry& entry = EnsureSlot(id);
  if (entry.present) Release(id);  // Re-absorbing abandons the old bytes.
  entry.posting = posting_arena_.AppendSorted(
      InternIds(text::ValueTokens(description, options_.normalize)));
  if (options_.tfidf_model != nullptr) FillTfIdf(entry, description);
  if (!options_.attributes.empty()) FillAttributes(entry, description);
  entry.present = true;
}

void SignatureStore::AbsorbPrepared(model::EntityId id,
                                    InternedSignature signature) {
  Entry& entry = EnsureSlot(id);
  if (entry.present) Release(id);  // Re-absorbing abandons the old bytes.
  entry.posting = posting_arena_.AppendSorted(signature.token_ids);
  if (options_.tfidf_model != nullptr) {
    entry.has_tfidf = true;
    entry.tfidf_offset = static_cast<uint32_t>(tfidf_.size());
    entry.tfidf_count = static_cast<uint32_t>(signature.tfidf.entries.size());
    std::vector<TfIdfTerm>& arena = tfidf_.MutableVector();
    for (const auto& [token, weight] : signature.tfidf.entries) {
      arena.push_back(TfIdfTerm{token, 0, weight});
    }
  }
  if (!options_.attributes.empty()) {
    WEBER_DCHECK_EQ(signature.attributes.size(), options_.attributes.size())
        << "prepared signature built against different attribute options";
    entry.has_attributes = true;
    entry.attribute_offset = static_cast<uint32_t>(attribute_slots_.size());
    std::vector<AttributeSlot> slots(options_.attributes.size());
    std::vector<uint32_t>& tokens = tokens_.MutableVector();
    for (size_t k = 0; k < slots.size(); ++k) {
      InternedSignature::Attribute& attr = signature.attributes[k];
      if (!attr.present) continue;
      AttributeSlot& slot = slots[k];
      slot.value_index = static_cast<uint32_t>(values_.size());
      values_.push_back(std::move(attr.value));
      slot.token_offset = static_cast<uint32_t>(tokens.size());
      slot.token_count = static_cast<uint32_t>(attr.token_ids.size());
      tokens.insert(tokens.end(), attr.token_ids.begin(),
                    attr.token_ids.end());
    }
    std::vector<AttributeSlot>& arena = attribute_slots_.MutableVector();
    arena.insert(arena.end(), slots.begin(), slots.end());
  }
  entry.present = true;
}

model::EntityId SignatureStore::AppendMerged(model::EntityId a,
                                             model::EntityId b) {
  // Merging reads both constituents' arena spans; an absent entry would
  // alias whatever bytes sit at offset 0 and silently corrupt the merge.
  WEBER_CHECK(contains(a)) << "AppendMerged: constituent " << a
                           << " has no signature";
  WEBER_CHECK(contains(b)) << "AppendMerged: constituent " << b
                           << " has no signature";
  Entry merged;
  // Chunk-wise union; AppendUnion stages in scratch storage, so the
  // views staying valid while the arena grows is its contract, not ours.
  merged.posting = posting_arena_.AppendUnion(posting(a), posting(b));
  // merged.has_tfidf stays false: TF-IDF weighs raw occurrence counts,
  // which the constituents' distinct-token signatures do not retain.
  if (entries_[a].has_attributes && entries_[b].has_attributes) {
    // Stage a's and b's slots before detaching the arena: the spans may
    // alias snapshot-borrowed memory the first mutation would retire.
    std::vector<AttributeSlot> staged;
    staged.reserve(options_.attributes.size());
    auto slots_a = attribute_slots(a);
    auto slots_b = attribute_slots(b);
    for (size_t k = 0; k < options_.attributes.size(); ++k) {
      // FirstValueOf on the merged description sees a's pairs first.
      staged.push_back(slots_a[k].value_index != kNoValue ? slots_a[k]
                                                          : slots_b[k]);
    }
    std::vector<AttributeSlot>& slots = attribute_slots_.MutableVector();
    merged.has_attributes = true;
    merged.attribute_offset = static_cast<uint32_t>(slots.size());
    slots.insert(slots.end(), staged.begin(), staged.end());
  }
  merged.present = true;
  auto id = static_cast<model::EntityId>(entries_.size());
  entries_.push_back(merged);
  return id;
}

void SignatureStore::Release(model::EntityId id) {
  if (!contains(id)) return;
  // lint: allow(indexed-access) contains(id) above bounds-checks id
  const Entry& entry = entries_[id];
  uint64_t bytes = posting_arena_.RefBytes(entry.posting);
  if (entry.has_tfidf) {
    bytes += uint64_t{entry.tfidf_count} * sizeof(TfIdfTerm);
  }
  if (entry.has_attributes) {
    for (const AttributeSlot& slot : attribute_slots(id)) {
      bytes += sizeof(AttributeSlot) +
               uint64_t{slot.token_count} * sizeof(uint32_t);
      if (slot.value_index != kNoValue) bytes += values_[slot.value_index].size();
    }
  }
  released_bytes_ += bytes;
  // lint: allow(indexed-access) contains(id) above bounds-checks id
  entries_.MutableVector()[id] = Entry{};
}

size_t SignatureStore::AttributeIndex(std::string_view attribute) const {
  for (size_t i = 0; i < options_.attributes.size(); ++i) {
    if (options_.attributes[i] == attribute) return i;
  }
  return kNoIndex;
}

size_t SignatureStore::ArenaBytes() const {
  size_t bytes = posting_arena_.ByteSize() +
                 tokens_.size() * sizeof(uint32_t) +
                 tfidf_.size() * sizeof(TfIdfTerm) +
                 attribute_slots_.size() * sizeof(AttributeSlot) +
                 entries_.size() * sizeof(Entry);
  for (const std::string& value : values_) bytes += value.size();
  return bytes;
}

void SignatureStore::PublishMetrics(double build_seconds) const {
  obs::MetricsRegistry* registry = obs::Current();
  if (registry == nullptr) return;
  registry->GetHistogram("weber.matching.signature.build_seconds")
      .Record(build_seconds);
  registry->GetGauge("weber.matching.signature.entities")
      .Set(static_cast<double>(entries_.size()));
  registry->GetGauge("weber.matching.signature.vocabulary")
      .Set(static_cast<double>(vocabulary_size()));
  registry->GetGauge("weber.matching.signature.arena_bytes")
      .Set(static_cast<double>(ArenaBytes()));
  registry->GetGauge("weber.matching.signature.released_bytes")
      .Set(static_cast<double>(released_bytes_));
  registry->GetGauge("weber.matching.signature.posting_bytes")
      .Set(static_cast<double>(posting_arena_.ByteSize()));
  registry->GetGauge("weber.matching.signature.array_chunks")
      .Set(static_cast<double>(posting_arena_.array_chunks()));
  registry->GetGauge("weber.matching.signature.bitset_chunks")
      .Set(static_cast<double>(posting_arena_.bitset_chunks()));
  // Kernel dispatch state, surfaced alongside the signature gauges so one
  // metrics snapshot pins which intersection code path produced it.
  registry->GetGauge("weber.matching.kernel.level")
      .Set(static_cast<double>(util::ActiveIntersectKernel()));
  registry->GetGauge("weber.matching.kernel.cpu_level")
      .Set(static_cast<double>(util::CpuBestKernel()));
  registry->GetGauge("weber.matching.kernel.forced_scalar")
      .Set(util::KernelForcedScalar() ? 1.0 : 0.0);
}

SignatureStore::Entry& SignatureStore::EnsureSlot(model::EntityId id) {
  std::vector<Entry>& entries = entries_.MutableVector();
  if (id >= entries.size()) entries.resize(size_t{id} + 1);
  // lint: allow(indexed-access) resized above to cover id
  return entries[id];
}

uint32_t SignatureStore::InternToken(const std::string& token) {
  if (!pending_vocab_offsets_.empty()) HydrateVocabulary();
  auto [it, inserted] =
      vocabulary_.try_emplace(token, static_cast<uint32_t>(vocabulary_.size()));
  return it->second;
}

void SignatureStore::HydrateVocabulary() {
  // Ids were assigned in first-occurrence order when the snapshot's source
  // store interned them; restoring id i from slot i reproduces the map
  // exactly, so post-load interning continues the same id sequence.
  size_t count = PendingVocabularyCount();
  vocabulary_.reserve(count);
  const char* blob = pending_vocab_blob_.data();
  for (size_t i = 0; i < count; ++i) {
    uint32_t begin = pending_vocab_offsets_[i];
    uint32_t end = pending_vocab_offsets_[i + 1];
    vocabulary_.emplace(std::string(blob + begin, blob + end),
                        static_cast<uint32_t>(i));
  }
  pending_vocab_blob_.clear();
  pending_vocab_offsets_.clear();
}

std::vector<uint32_t> SignatureStore::InternIds(
    const std::vector<std::string>& tokens) {
  std::vector<uint32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) ids.push_back(InternToken(token));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::pair<uint32_t, uint32_t> SignatureStore::InternSortedSet(
    const std::vector<std::string>& tokens) {
  std::vector<uint32_t> ids = InternIds(tokens);
  std::vector<uint32_t>& arena = tokens_.MutableVector();
  auto offset = static_cast<uint32_t>(arena.size());
  arena.insert(arena.end(), ids.begin(), ids.end());
  return {offset, static_cast<uint32_t>(ids.size())};
}

void SignatureStore::FillAttributes(
    Entry& entry, const model::EntityDescription& description) {
  entry.has_attributes = true;
  entry.attribute_offset = static_cast<uint32_t>(attribute_slots_.size());
  // Slots for this entry must be contiguous: build them first, then append
  // (InternSortedSet grows the token arena in between).
  std::vector<AttributeSlot> slots(options_.attributes.size());
  for (size_t k = 0; k < options_.attributes.size(); ++k) {
    auto value = description.FirstValueOf(options_.attributes[k]);
    if (!value.has_value()) continue;
    AttributeSlot& slot = slots[k];
    slot.value_index = static_cast<uint32_t>(values_.size());
    values_.emplace_back(*value);
    auto [offset, count] =
        InternSortedSet(text::NormalizeAndTokenize(*value, options_.normalize));
    slot.token_offset = offset;
    slot.token_count = count;
  }
  std::vector<AttributeSlot>& arena = attribute_slots_.MutableVector();
  arena.insert(arena.end(), slots.begin(), slots.end());
}

void SignatureStore::FillTfIdf(Entry& entry,
                               const model::EntityDescription& description) {
  text::TfIdfVector vec = options_.tfidf_model->Vectorize(description);
  entry.has_tfidf = true;
  entry.tfidf_offset = static_cast<uint32_t>(tfidf_.size());
  entry.tfidf_count = static_cast<uint32_t>(vec.entries.size());
  std::vector<TfIdfTerm>& arena = tfidf_.MutableVector();
  for (const auto& [token, weight] : vec.entries) {
    arena.push_back(TfIdfTerm{token, 0, weight});
  }
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

PreparedCounters PreparedCounters::Ambient() {
  PreparedCounters counters;
  obs::MetricsRegistry* registry = obs::Current();
  if (registry == nullptr) return counters;
  counters.comparisons =
      &registry->GetCounter("weber.matching.signature.comparisons");
  counters.filter_hits =
      &registry->GetCounter("weber.matching.signature.filter_hits");
  counters.fallbacks =
      &registry->GetCounter("weber.matching.signature.fallbacks");
  return counters;
}

SignatureOptions OptionsFor(const Matcher& matcher) {
  SignatureOptions options;
  CollectOptions(matcher, options);
  return options;
}

bool Preparable(const Matcher& matcher) {
  if (dynamic_cast<const TokenJaccardMatcher*>(&matcher) != nullptr ||
      dynamic_cast<const TokenOverlapMatcher*>(&matcher) != nullptr ||
      dynamic_cast<const TfIdfCosineMatcher*>(&matcher) != nullptr ||
      dynamic_cast<const WeightedAttributeMatcher*>(&matcher) != nullptr ||
      dynamic_cast<const OracleMatcher*>(&matcher) != nullptr) {
    return true;
  }
  return dynamic_cast<const CompositeMatcher*>(&matcher) != nullptr;
}

std::unique_ptr<PreparedMatcher> Prepare(const Matcher& matcher,
                                         const SignatureStore& store) {
  if (const auto* jaccard = dynamic_cast<const TokenJaccardMatcher*>(&matcher)) {
    return std::make_unique<PreparedTokenJaccard>(*jaccard, store);
  }
  if (const auto* overlap = dynamic_cast<const TokenOverlapMatcher*>(&matcher)) {
    return std::make_unique<PreparedTokenOverlap>(*overlap, store);
  }
  if (const auto* tfidf = dynamic_cast<const TfIdfCosineMatcher*>(&matcher)) {
    // Vectors from a different model would not be bit-equal.
    if (store.options().tfidf_model != &tfidf->model()) return nullptr;
    return std::make_unique<PreparedTfIdfCosine>(*tfidf, store);
  }
  if (const auto* weighted =
          dynamic_cast<const WeightedAttributeMatcher*>(&matcher)) {
    std::vector<size_t> rule_slots;
    rule_slots.reserve(weighted->rules().size());
    for (const AttributeRule& rule : weighted->rules()) {
      size_t slot = store.AttributeIndex(rule.attribute);
      if (slot == kNoIndex) return nullptr;
      rule_slots.push_back(slot);
    }
    return std::make_unique<PreparedWeightedAttribute>(*weighted, store,
                                                       std::move(rule_slots));
  }
  if (const auto* composite = dynamic_cast<const CompositeMatcher*>(&matcher)) {
    std::vector<std::unique_ptr<PreparedMatcher>> components;
    components.reserve(composite->components().size());
    for (const Matcher* component : composite->components()) {
      std::unique_ptr<PreparedMatcher> prepared = Prepare(*component, store);
      if (prepared == nullptr) {
        prepared = std::make_unique<PreparedStringBridge>(*component, store);
      }
      components.push_back(std::move(prepared));
    }
    return std::make_unique<PreparedComposite>(*composite,
                                               std::move(components));
  }
  if (const auto* oracle = dynamic_cast<const OracleMatcher*>(&matcher)) {
    // The canonical-id table only reproduces the string path when the
    // store interned the very collection the oracle resolves against.
    if (store.collection() != &oracle->collection()) return nullptr;
    return std::make_unique<PreparedOracle>(*oracle, store);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Cross-store matchers — the same arithmetic as the Prepared* twins above,
// with the two signatures resolved from independent stores. Any change to
// a Prepared matcher's scoring must be mirrored here (serve_test pins the
// bit-equality).
// ---------------------------------------------------------------------------

namespace {

/// Cross-store analogue of StringFallback: each store resolves its own id.
double CrossStringFallback(const Matcher& twin,
                           const PreparedCounters& counters,
                           const SignatureStore& sa, model::EntityId a,
                           const SignatureStore& sb, model::EntityId b) {
  Bump(counters.fallbacks);
  const model::EntityDescription* desc_a = sa.description(a);
  const model::EntityDescription* desc_b = sb.description(b);
  if (desc_a == nullptr || desc_b == nullptr) return 0.0;
  return twin.Similarity(*desc_a, *desc_b);
}

class CrossTokenJaccard final : public CrossStoreMatcher {
 public:
  explicit CrossTokenJaccard(const TokenJaccardMatcher& twin)
      : twin_(twin), counters_(PreparedCounters::Ambient()) {}

  double Similarity(const SignatureStore& sa, model::EntityId a,
                    const SignatureStore& sb,
                    model::EntityId b) const override {
    if (!sa.contains(a) || !sb.contains(b)) {
      return CrossStringFallback(twin_, counters_, sa, a, sb, b);
    }
    Bump(counters_.comparisons);
    const PostingView ta = sa.posting(a);
    const PostingView tb = sb.posting(b);
    size_t inter = PostingIntersectSize(ta, tb);
    size_t union_size = size_t{ta.size} + tb.size - inter;
    if (union_size == 0) return 1.0;
    return static_cast<double>(inter) / static_cast<double>(union_size);
  }

  bool Matches(const SignatureStore& sa, model::EntityId a,
               const SignatureStore& sb, model::EntityId b,
               double threshold) const override {
    if (!sa.contains(a) || !sb.contains(b)) {
      return CrossStringFallback(twin_, counters_, sa, a, sb, b) >= threshold;
    }
    Bump(counters_.comparisons);
    const PostingView ta = sa.posting(a);
    const PostingView tb = sb.posting(b);
    if (ta.empty() && tb.empty()) return 1.0 >= threshold;
    size_t required = RequiredOverlapJaccard(ta.size, tb.size, threshold);
    if (required > std::min<size_t>(ta.size, tb.size)) {
      Bump(counters_.filter_hits);
      return false;
    }
    if (required == 0) {
      Bump(counters_.filter_hits);
      return true;
    }
    return PostingIntersectAtLeast(ta, tb, required);
  }

  std::string name() const override { return "Cross(TokenJaccard)"; }

 private:
  const TokenJaccardMatcher& twin_;
  PreparedCounters counters_;
};

class CrossTokenOverlap final : public CrossStoreMatcher {
 public:
  explicit CrossTokenOverlap(const TokenOverlapMatcher& twin)
      : twin_(twin), counters_(PreparedCounters::Ambient()) {}

  double Similarity(const SignatureStore& sa, model::EntityId a,
                    const SignatureStore& sb,
                    model::EntityId b) const override {
    if (!sa.contains(a) || !sb.contains(b)) {
      return CrossStringFallback(twin_, counters_, sa, a, sb, b);
    }
    Bump(counters_.comparisons);
    const PostingView ta = sa.posting(a);
    const PostingView tb = sb.posting(b);
    size_t smaller = std::min<size_t>(ta.size, tb.size);
    if (smaller == 0) return ta.size == tb.size ? 1.0 : 0.0;
    size_t inter = PostingIntersectSize(ta, tb);
    return static_cast<double>(inter) / static_cast<double>(smaller);
  }

  bool Matches(const SignatureStore& sa, model::EntityId a,
               const SignatureStore& sb, model::EntityId b,
               double threshold) const override {
    if (!sa.contains(a) || !sb.contains(b)) {
      return CrossStringFallback(twin_, counters_, sa, a, sb, b) >= threshold;
    }
    Bump(counters_.comparisons);
    const PostingView ta = sa.posting(a);
    const PostingView tb = sb.posting(b);
    size_t smaller = std::min<size_t>(ta.size, tb.size);
    if (smaller == 0) {
      return (ta.size == tb.size ? 1.0 : 0.0) >= threshold;
    }
    size_t required = RequiredOverlapCoefficient(smaller, threshold);
    if (required > smaller) {
      Bump(counters_.filter_hits);
      return false;
    }
    if (required == 0) {
      Bump(counters_.filter_hits);
      return true;
    }
    return PostingIntersectAtLeast(ta, tb, required);
  }

  std::string name() const override { return "Cross(TokenOverlap)"; }

 private:
  const TokenOverlapMatcher& twin_;
  PreparedCounters counters_;
};

class CrossTfIdfCosine final : public CrossStoreMatcher {
 public:
  explicit CrossTfIdfCosine(const TfIdfCosineMatcher& twin)
      : twin_(twin), counters_(PreparedCounters::Ambient()) {}

  // No Matches override, for the same reason as PreparedTfIdfCosine.
  double Similarity(const SignatureStore& sa, model::EntityId a,
                    const SignatureStore& sb,
                    model::EntityId b) const override {
    if (!sa.has_tfidf(a) || !sb.has_tfidf(b)) {
      return CrossStringFallback(twin_, counters_, sa, a, sb, b);
    }
    Bump(counters_.comparisons);
    return SparseDot(sa.tfidf(a), sb.tfidf(b));
  }

  std::string name() const override { return "Cross(TfIdfCosine)"; }

 private:
  const TfIdfCosineMatcher& twin_;
  PreparedCounters counters_;
};

class CrossWeightedAttribute final : public CrossStoreMatcher {
 public:
  CrossWeightedAttribute(const WeightedAttributeMatcher& twin,
                         std::vector<size_t> rule_slots)
      : twin_(twin),
        rule_slots_(std::move(rule_slots)),
        counters_(PreparedCounters::Ambient()) {}

  double Similarity(const SignatureStore& sa, model::EntityId a,
                    const SignatureStore& sb,
                    model::EntityId b) const override {
    if (!sa.has_attributes(a) || !sb.has_attributes(b)) {
      return CrossStringFallback(twin_, counters_, sa, a, sb, b);
    }
    Bump(counters_.comparisons);
    auto slots_a = sa.attribute_slots(a);
    auto slots_b = sb.attribute_slots(b);
    double total_weight = 0.0;
    double score = 0.0;
    const std::vector<AttributeRule>& rules = twin_.rules();
    for (size_t k = 0; k < rules.size(); ++k) {
      const AttributeRule& rule = rules[k];
      total_weight += rule.weight;
      const SignatureStore::AttributeSlot& slot_a = slots_a[rule_slots_[k]];
      const SignatureStore::AttributeSlot& slot_b = slots_b[rule_slots_[k]];
      if (slot_a.value_index == SignatureStore::kNoValue ||
          slot_b.value_index == SignatureStore::kNoValue) {
        continue;
      }
      double sim;
      if (rule.use_jaro_winkler) {
        sim = text::JaroWinklerSimilarity(sa.value(slot_a.value_index),
                                          sb.value(slot_b.value_index));
      } else {
        auto ta = sa.slot_tokens(slot_a);
        auto tb = sb.slot_tokens(slot_b);
        size_t inter = util::SortedIntersectSize(ta, tb);
        size_t union_size = ta.size() + tb.size() - inter;
        sim = union_size == 0 ? 1.0
                              : static_cast<double>(inter) /
                                    static_cast<double>(union_size);
      }
      score += rule.weight * sim;
    }
    if (total_weight <= 0.0) return 0.0;
    return score / total_weight;
  }

  std::string name() const override { return "Cross(WeightedAttribute)"; }

 private:
  const WeightedAttributeMatcher& twin_;
  std::vector<size_t> rule_slots_;  // rules()[k] -> attribute slot index.
  PreparedCounters counters_;
};

/// Composite component the engine cannot cross-prepare: always the string
/// path, mirroring PreparedStringBridge.
class CrossStringBridge final : public CrossStoreMatcher {
 public:
  explicit CrossStringBridge(const Matcher& twin)
      : twin_(twin), counters_(PreparedCounters::Ambient()) {}

  double Similarity(const SignatureStore& sa, model::EntityId a,
                    const SignatureStore& sb,
                    model::EntityId b) const override {
    return CrossStringFallback(twin_, counters_, sa, a, sb, b);
  }

  std::string name() const override {
    return "CrossBridge(" + twin_.name() + ")";
  }

 private:
  const Matcher& twin_;
  PreparedCounters counters_;
};

class CrossComposite final : public CrossStoreMatcher {
 public:
  CrossComposite(const CompositeMatcher& twin,
                 std::vector<std::unique_ptr<CrossStoreMatcher>> components)
      : twin_(twin), components_(std::move(components)) {}

  double Similarity(const SignatureStore& sa, model::EntityId a,
                    const SignatureStore& sb,
                    model::EntityId b) const override {
    if (components_.empty()) return 0.0;
    switch (twin_.combine()) {
      case CompositeMatcher::Combine::kWeightedAverage: {
        const std::vector<double>& weights = twin_.weights();
        double total_weight = 0.0;
        double score = 0.0;
        for (size_t i = 0; i < components_.size(); ++i) {
          double weight = i < weights.size() ? weights[i] : 1.0;
          total_weight += weight;
          score += weight * components_[i]->Similarity(sa, a, sb, b);
        }
        return total_weight > 0.0 ? score / total_weight : 0.0;
      }
      case CompositeMatcher::Combine::kMax: {
        double best = 0.0;
        for (const auto& component : components_) {
          best = std::max(best, component->Similarity(sa, a, sb, b));
        }
        return best;
      }
      case CompositeMatcher::Combine::kMin: {
        double worst = 1.0;
        for (const auto& component : components_) {
          worst = std::min(worst, component->Similarity(sa, a, sb, b));
        }
        return worst;
      }
    }
    return 0.0;
  }

  bool Matches(const SignatureStore& sa, model::EntityId a,
               const SignatureStore& sb, model::EntityId b,
               double threshold) const override {
    if (components_.empty()) return 0.0 >= threshold;
    switch (twin_.combine()) {
      case CompositeMatcher::Combine::kMax:
        for (const auto& component : components_) {
          if (component->Matches(sa, a, sb, b, threshold)) return true;
        }
        return 0.0 >= threshold;
      case CompositeMatcher::Combine::kMin:
        for (const auto& component : components_) {
          if (!component->Matches(sa, a, sb, b, threshold)) return false;
        }
        return 1.0 >= threshold;
      case CompositeMatcher::Combine::kWeightedAverage:
        break;  // No per-component shortcut is sound for an average.
    }
    return Similarity(sa, a, sb, b) >= threshold;
  }

  std::string name() const override { return "Cross(Composite)"; }

 private:
  const CompositeMatcher& twin_;
  std::vector<std::unique_ptr<CrossStoreMatcher>> components_;
};

}  // namespace

std::unique_ptr<CrossStoreMatcher> PrepareCross(
    const Matcher& matcher, const SignatureOptions& options) {
  if (const auto* jaccard =
          dynamic_cast<const TokenJaccardMatcher*>(&matcher)) {
    return std::make_unique<CrossTokenJaccard>(*jaccard);
  }
  if (const auto* overlap =
          dynamic_cast<const TokenOverlapMatcher*>(&matcher)) {
    return std::make_unique<CrossTokenOverlap>(*overlap);
  }
  if (const auto* tfidf = dynamic_cast<const TfIdfCosineMatcher*>(&matcher)) {
    // Vectors from a different model would not be bit-equal.
    if (options.tfidf_model != &tfidf->model()) return nullptr;
    return std::make_unique<CrossTfIdfCosine>(*tfidf);
  }
  if (const auto* weighted =
          dynamic_cast<const WeightedAttributeMatcher*>(&matcher)) {
    std::vector<size_t> rule_slots;
    rule_slots.reserve(weighted->rules().size());
    for (const AttributeRule& rule : weighted->rules()) {
      auto it = std::find(options.attributes.begin(), options.attributes.end(),
                          rule.attribute);
      if (it == options.attributes.end()) return nullptr;
      rule_slots.push_back(
          static_cast<size_t>(it - options.attributes.begin()));
    }
    return std::make_unique<CrossWeightedAttribute>(*weighted,
                                                    std::move(rule_slots));
  }
  if (const auto* composite = dynamic_cast<const CompositeMatcher*>(&matcher)) {
    std::vector<std::unique_ptr<CrossStoreMatcher>> components;
    components.reserve(composite->components().size());
    for (const Matcher* component : composite->components()) {
      std::unique_ptr<CrossStoreMatcher> cross =
          PrepareCross(*component, options);
      if (cross == nullptr) {
        cross = std::make_unique<CrossStringBridge>(*component);
      }
      components.push_back(std::move(cross));
    }
    return std::make_unique<CrossComposite>(*composite,
                                            std::move(components));
  }
  // OracleMatcher: its canonical-id table is bound to one collection and
  // cannot be partitioned; unknown matcher types stay on the string path.
  return nullptr;
}

}  // namespace weber::matching
