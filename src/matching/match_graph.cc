#include "matching/match_graph.h"

#include "util/check.h"

namespace weber::matching {

bool MatchGraph::AddMatch(model::EntityId a, model::EntityId b,
                          double score) {
  if (a == b) return false;
  model::IdPair pair = model::IdPair::Of(a, b);
  WEBER_DCHECK_LT(pair.low, pair.high)
      << "IdPair::Of stopped normalising; the match set would hold "
      << "duplicate undirected edges";
  if (!members_.insert(pair).second) return false;
  matches_.push_back({pair.low, pair.high, score});
  return true;
}

std::vector<model::IdPair> MatchGraph::Pairs() const {
  std::vector<model::IdPair> pairs;
  pairs.reserve(matches_.size());
  for (const ScoredPair& match : matches_) pairs.push_back(match.pair());
  return pairs;
}

}  // namespace weber::matching
