#include "matching/match_graph.h"

namespace weber::matching {

bool MatchGraph::AddMatch(model::EntityId a, model::EntityId b,
                          double score) {
  if (a == b) return false;
  model::IdPair pair = model::IdPair::Of(a, b);
  if (!members_.insert(pair).second) return false;
  matches_.push_back({pair.low, pair.high, score});
  return true;
}

std::vector<model::IdPair> MatchGraph::Pairs() const {
  std::vector<model::IdPair> pairs;
  pairs.reserve(matches_.size());
  for (const ScoredPair& match : matches_) pairs.push_back(match.pair());
  return pairs;
}

}  // namespace weber::matching
