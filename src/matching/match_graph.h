#ifndef WEBER_MATCHING_MATCH_GRAPH_H_
#define WEBER_MATCHING_MATCH_GRAPH_H_

#include <vector>

#include "model/ground_truth.h"

namespace weber::matching {

/// A scored match decision.
struct ScoredPair {
  model::EntityId a;
  model::EntityId b;
  double score;

  model::IdPair pair() const { return model::IdPair::Of(a, b); }
};

/// The accumulating output of the match phase: the pairs declared
/// matching, with scores, plus fast membership tests. Feeds the update
/// phase of iterative/progressive ER and the final clustering.
class MatchGraph {
 public:
  explicit MatchGraph(size_t num_entities) : num_entities_(num_entities) {}

  /// Records a match; ignores self-pairs and duplicates. Returns true if
  /// the pair was new.
  bool AddMatch(model::EntityId a, model::EntityId b, double score = 1.0);

  bool Contains(model::EntityId a, model::EntityId b) const {
    return members_.contains(model::IdPair::Of(a, b));
  }

  const std::vector<ScoredPair>& matches() const { return matches_; }
  size_t NumMatches() const { return matches_.size(); }
  size_t num_entities() const { return num_entities_; }

  /// The matched pairs as canonical IdPairs.
  std::vector<model::IdPair> Pairs() const;

 private:
  size_t num_entities_;
  std::vector<ScoredPair> matches_;
  model::IdPairSet members_;
};

}  // namespace weber::matching

#endif  // WEBER_MATCHING_MATCH_GRAPH_H_
