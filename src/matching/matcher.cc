#include "matching/matcher.h"

#include <algorithm>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace weber::matching {

double TokenJaccardMatcher::Similarity(
    const model::EntityDescription& a,
    const model::EntityDescription& b) const {
  return text::JaccardSimilarity(text::ValueTokens(a), text::ValueTokens(b));
}

double TokenOverlapMatcher::Similarity(
    const model::EntityDescription& a,
    const model::EntityDescription& b) const {
  return text::OverlapCoefficient(text::ValueTokens(a), text::ValueTokens(b));
}

double WeightedAttributeMatcher::Similarity(
    const model::EntityDescription& a,
    const model::EntityDescription& b) const {
  double total_weight = 0.0;
  double score = 0.0;
  for (const AttributeRule& rule : rules_) {
    total_weight += rule.weight;
    auto value_a = a.FirstValueOf(rule.attribute);
    auto value_b = b.FirstValueOf(rule.attribute);
    if (!value_a.has_value() || !value_b.has_value()) continue;
    double sim;
    if (rule.use_jaro_winkler) {
      sim = text::JaroWinklerSimilarity(*value_a, *value_b);
    } else {
      sim = text::JaccardSimilarity(
          text::NormalizeAndTokenize(*value_a),
          text::NormalizeAndTokenize(*value_b));
    }
    score += rule.weight * sim;
  }
  if (total_weight <= 0.0) return 0.0;
  return score / total_weight;
}

double TfIdfCosineMatcher::Similarity(
    const model::EntityDescription& a,
    const model::EntityDescription& b) const {
  return text::TfIdfModel::Cosine(model_.Vectorize(a), model_.Vectorize(b));
}

double CompositeMatcher::Similarity(const model::EntityDescription& a,
                                    const model::EntityDescription& b) const {
  if (components_.empty()) return 0.0;
  switch (combine_) {
    case Combine::kWeightedAverage: {
      double total_weight = 0.0;
      double score = 0.0;
      for (size_t i = 0; i < components_.size(); ++i) {
        double weight = i < weights_.size() ? weights_[i] : 1.0;
        total_weight += weight;
        score += weight * components_[i]->Similarity(a, b);
      }
      return total_weight > 0.0 ? score / total_weight : 0.0;
    }
    case Combine::kMax: {
      double best = 0.0;
      for (const Matcher* component : components_) {
        best = std::max(best, component->Similarity(a, b));
      }
      return best;
    }
    case Combine::kMin: {
      double worst = 1.0;
      for (const Matcher* component : components_) {
        worst = std::min(worst, component->Similarity(a, b));
      }
      return worst;
    }
  }
  return 0.0;
}

OracleMatcher::OracleMatcher(const model::EntityCollection& collection,
                             const model::GroundTruth& truth,
                             double error_rate, uint64_t seed)
    : collection_(collection),
      truth_(truth),
      error_rate_(error_rate),
      seed_(seed) {
  uri_to_id_.reserve(collection.size());
  for (size_t i = 0; i < collection.size(); ++i) {
    uri_to_id_.emplace(collection.descriptions()[i].uri(),
                       static_cast<model::EntityId>(i));
  }
}

double OracleMatcher::Similarity(const model::EntityDescription& a,
                                 const model::EntityDescription& b) const {
  auto id_a = uri_to_id_.find(std::string_view(a.uri()));
  auto id_b = uri_to_id_.find(std::string_view(b.uri()));
  if (id_a == uri_to_id_.end() || id_b == uri_to_id_.end()) return 0.0;
  return SimilarityById(id_a->second, id_b->second);
}

double OracleMatcher::SimilarityById(model::EntityId a,
                                     model::EntityId b) const {
  bool is_match = truth_.IsMatch(a, b);
  if (error_rate_ > 0.0) {
    // Deterministic per-pair noise: seed an Rng from the pair identity.
    model::IdPair pair = model::IdPair::Of(a, b);
    util::Rng rng(seed_ ^ model::IdPairHash{}(pair));
    if (rng.NextBool(error_rate_)) is_match = !is_match;
  }
  return is_match ? 1.0 : 0.0;
}

}  // namespace weber::matching
