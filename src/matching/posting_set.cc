#include "matching/posting_set.h"

#include <algorithm>

#include "util/check.h"
#include "util/intersect.h"

namespace weber::matching {
namespace {

std::span<const uint16_t> ArraySpan(const PostingView& view,
                                    const PostingChunk& chunk) {
  return {view.arrays + chunk.offset, chunk.count};
}

const uint64_t* BitsetWords(const PostingView& view,
                            const PostingChunk& chunk) {
  return view.bitsets + chunk.offset;
}

/// Exact |ca ∩ cb| for one same-key chunk pair, routed to the layout
/// kernel (all four combinations land on util/intersect.h dispatch).
size_t ChunkPairSize(const PostingView& a, const PostingChunk& ca,
                     const PostingView& b, const PostingChunk& cb) {
  if (ca.bitset == 0 && cb.bitset == 0) {
    return util::SortedIntersectSizeU16(ArraySpan(a, ca), ArraySpan(b, cb));
  }
  if (ca.bitset != 0 && cb.bitset != 0) {
    return util::BitsetAndPopcount(BitsetWords(a, ca), BitsetWords(b, cb),
                                   kPostingBitsetWords);
  }
  if (ca.bitset != 0) {
    return util::BitsetContainsCount(ArraySpan(b, cb), BitsetWords(a, ca));
  }
  return util::BitsetContainsCount(ArraySpan(a, ca), BitsetWords(b, cb));
}

/// Decision twin of ChunkPairSize with element-level early exit where the
/// layout kernel supports it; exact verdict in every case.
bool ChunkPairAtLeast(const PostingView& a, const PostingChunk& ca,
                      const PostingView& b, const PostingChunk& cb,
                      size_t required) {
  if (ca.bitset == 0 && cb.bitset == 0) {
    return util::SortedIntersectAtLeastU16(ArraySpan(a, ca), ArraySpan(b, cb),
                                           required);
  }
  if (ca.bitset != 0 && cb.bitset != 0) {
    return util::BitsetAndPopcount(BitsetWords(a, ca), BitsetWords(b, cb),
                                   kPostingBitsetWords) >= required;
  }
  std::span<const uint16_t> keys =
      ca.bitset != 0 ? ArraySpan(b, cb) : ArraySpan(a, ca);
  const uint64_t* bits =
      ca.bitset != 0 ? BitsetWords(a, ca) : BitsetWords(b, cb);
  size_t count = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (count + (keys.size() - i) < required) return false;
    count += (bits[keys[i] >> 6] >> (keys[i] & 63)) & 1u;
    if (count >= required) return true;
  }
  return false;
}

void SetBit(std::vector<uint64_t>* words, size_t base, uint16_t low) {
  (*words)[base + (low >> 6)] |= uint64_t{1} << (low & 63);
}

}  // namespace

PostingRef PostingArena::AppendSorted(std::span<const uint32_t> values) {
  WEBER_DCHECK_UNIQUE(values.begin(), values.end())
      << "posting input not a sorted set";
  // Appending detaches snapshot-borrowed arenas into owned vectors (the
  // copy-on-write point of a writable store).
  std::vector<PostingChunk>& chunks = chunks_.MutableVector();
  std::vector<uint16_t>& array_values = array_values_.MutableVector();
  std::vector<uint64_t>& bitset_words = bitset_words_.MutableVector();
  PostingRef ref;
  ref.chunk_offset = static_cast<uint32_t>(chunks.size());
  ref.size = static_cast<uint32_t>(values.size());
  size_t at = 0;
  while (at < values.size()) {
    const uint16_t key = static_cast<uint16_t>(values[at] >> 16);
    size_t end = at + 1;
    while (end < values.size() &&
           static_cast<uint16_t>(values[end] >> 16) == key) {
      ++end;
    }
    const size_t count = end - at;
    PostingChunk chunk;
    chunk.key = key;
    chunk.count = static_cast<uint32_t>(count);
    if (count > kPostingArrayMax) {
      chunk.bitset = 1;
      chunk.offset = static_cast<uint32_t>(bitset_words.size());
      bitset_words.resize(bitset_words.size() + kPostingBitsetWords, 0);
      for (size_t v = at; v < end; ++v) {
        SetBit(&bitset_words, chunk.offset,
               static_cast<uint16_t>(values[v] & 0xffff));
      }
      ++bitset_chunks_;
    } else {
      chunk.offset = static_cast<uint32_t>(array_values.size());
      for (size_t v = at; v < end; ++v) {
        array_values.push_back(static_cast<uint16_t>(values[v] & 0xffff));
      }
      ++array_chunks_;
    }
    chunks.push_back(chunk);
    at = end;
  }
  ref.chunk_count = static_cast<uint32_t>(chunks.size()) - ref.chunk_offset;
  return ref;
}

PostingRef PostingArena::AppendUnion(const PostingView& a,
                                     const PostingView& b) {
  // Staged in scratch storage: the views may alias this arena, and an
  // arena append mid-union could reallocate the storage they read.
  std::vector<PostingChunk> chunks;
  std::vector<uint16_t> arrays;
  std::vector<uint64_t> words;
  size_t total = 0;

  auto copy_chunk = [&](const PostingView& view, const PostingChunk& chunk) {
    PostingChunk out = chunk;
    if (chunk.bitset != 0) {
      out.offset = static_cast<uint32_t>(words.size());
      const uint64_t* src = BitsetWords(view, chunk);
      words.insert(words.end(), src, src + kPostingBitsetWords);
    } else {
      out.offset = static_cast<uint32_t>(arrays.size());
      std::span<const uint16_t> src = ArraySpan(view, chunk);
      arrays.insert(arrays.end(), src.begin(), src.end());
    }
    chunks.push_back(out);
    total += out.count;
  };

  auto union_pair = [&](const PostingChunk& ca, const PostingChunk& cb) {
    PostingChunk out;
    out.key = ca.key;
    if (ca.bitset != 0 || cb.bitset != 0) {
      // At least one bitset: the union is at least as dense, so the
      // result stays a bitset (never downgrades).
      out.bitset = 1;
      out.offset = static_cast<uint32_t>(words.size());
      size_t count = 0;
      if (ca.bitset != 0 && cb.bitset != 0) {
        const uint64_t* wa = BitsetWords(a, ca);
        const uint64_t* wb = BitsetWords(b, cb);
        for (size_t w = 0; w < kPostingBitsetWords; ++w) {
          const uint64_t merged = wa[w] | wb[w];
          words.push_back(merged);
          count += static_cast<size_t>(__builtin_popcountll(merged));
        }
      } else {
        const PostingView& bit_view = ca.bitset != 0 ? a : b;
        const PostingChunk& bit_chunk = ca.bitset != 0 ? ca : cb;
        const PostingView& arr_view = ca.bitset != 0 ? b : a;
        const PostingChunk& arr_chunk = ca.bitset != 0 ? cb : ca;
        const uint64_t* src = BitsetWords(bit_view, bit_chunk);
        words.insert(words.end(), src, src + kPostingBitsetWords);
        count = bit_chunk.count;
        for (uint16_t low : ArraySpan(arr_view, arr_chunk)) {
          const uint64_t bit = uint64_t{1} << (low & 63);
          uint64_t& word = words[out.offset + (low >> 6)];
          count += (word & bit) == 0;
          word |= bit;
        }
      }
      out.count = static_cast<uint32_t>(count);
    } else {
      std::vector<uint16_t> merged;
      merged.reserve(static_cast<size_t>(ca.count) + cb.count);
      std::span<const uint16_t> sa = ArraySpan(a, ca);
      std::span<const uint16_t> sb = ArraySpan(b, cb);
      std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                     std::back_inserter(merged));
      out.count = static_cast<uint32_t>(merged.size());
      if (merged.size() > kPostingArrayMax) {
        out.bitset = 1;
        out.offset = static_cast<uint32_t>(words.size());
        words.resize(words.size() + kPostingBitsetWords, 0);
        for (uint16_t low : merged) SetBit(&words, out.offset, low);
      } else {
        out.offset = static_cast<uint32_t>(arrays.size());
        arrays.insert(arrays.end(), merged.begin(), merged.end());
      }
    }
    chunks.push_back(out);
    total += out.count;
  };

  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.chunks.size() && ib < b.chunks.size()) {
    const PostingChunk& ca = a.chunks[ia];
    const PostingChunk& cb = b.chunks[ib];
    if (ca.key < cb.key) {
      copy_chunk(a, ca);
      ++ia;
    } else if (cb.key < ca.key) {
      copy_chunk(b, cb);
      ++ib;
    } else {
      union_pair(ca, cb);
      ++ia;
      ++ib;
    }
  }
  for (; ia < a.chunks.size(); ++ia) copy_chunk(a, a.chunks[ia]);
  for (; ib < b.chunks.size(); ++ib) copy_chunk(b, b.chunks[ib]);

  // Commit the staged union: rebase scratch offsets onto the arenas. The
  // inputs were fully staged above, so detaching borrowed arenas here
  // cannot invalidate a read in flight.
  std::vector<PostingChunk>& arena_chunks = chunks_.MutableVector();
  std::vector<uint16_t>& arena_arrays = array_values_.MutableVector();
  std::vector<uint64_t>& arena_words = bitset_words_.MutableVector();
  PostingRef ref;
  ref.chunk_offset = static_cast<uint32_t>(arena_chunks.size());
  ref.chunk_count = static_cast<uint32_t>(chunks.size());
  ref.size = static_cast<uint32_t>(total);
  const uint32_t array_base = static_cast<uint32_t>(arena_arrays.size());
  const uint32_t bitset_base = static_cast<uint32_t>(arena_words.size());
  arena_arrays.insert(arena_arrays.end(), arrays.begin(), arrays.end());
  arena_words.insert(arena_words.end(), words.begin(), words.end());
  for (PostingChunk chunk : chunks) {
    if (chunk.bitset != 0) {
      chunk.offset += bitset_base;
      ++bitset_chunks_;
    } else {
      chunk.offset += array_base;
      ++array_chunks_;
    }
    arena_chunks.push_back(chunk);
  }
  return ref;
}

PostingView PostingArena::View(const PostingRef& ref) const {
  WEBER_DCHECK_LE(static_cast<size_t>(ref.chunk_offset) + ref.chunk_count,
                  chunks_.size())
      << "posting ref outside the arena directory";
  PostingView view;
  view.chunks = std::span<const PostingChunk>(chunks_.data(), chunks_.size())
                    .subspan(ref.chunk_offset, ref.chunk_count);
  view.arrays = array_values_.data();
  view.bitsets = bitset_words_.data();
  view.size = ref.size;
  return view;
}

void PostingArena::Decompress(const PostingRef& ref,
                              std::vector<uint32_t>* out) const {
  const PostingView view = View(ref);
  out->reserve(out->size() + ref.size);
  for (const PostingChunk& chunk : view.chunks) {
    const uint32_t high = static_cast<uint32_t>(chunk.key) << 16;
    if (chunk.bitset != 0) {
      const uint64_t* bits = BitsetWords(view, chunk);
      for (size_t w = 0; w < kPostingBitsetWords; ++w) {
        uint64_t word = bits[w];
        while (word != 0) {
          const unsigned bit =
              static_cast<unsigned>(__builtin_ctzll(word));
          out->push_back(high | static_cast<uint32_t>(w * 64 + bit));
          word &= word - 1;
        }
      }
    } else {
      for (uint16_t low : ArraySpan(view, chunk)) {
        out->push_back(high | low);
      }
    }
  }
}

size_t PostingArena::RefBytes(const PostingRef& ref) const {
  const PostingView view = View(ref);
  size_t bytes = view.chunks.size() * sizeof(PostingChunk);
  for (const PostingChunk& chunk : view.chunks) {
    bytes += chunk.bitset != 0 ? kPostingBitsetWords * sizeof(uint64_t)
                               : chunk.count * sizeof(uint16_t);
  }
  return bytes;
}

size_t PostingArena::ByteSize() const {
  return chunks_.size() * sizeof(PostingChunk) +
         array_values_.size() * sizeof(uint16_t) +
         bitset_words_.size() * sizeof(uint64_t);
}

size_t PostingIntersectSize(const PostingView& a, const PostingView& b) {
  if (a.empty() || b.empty()) return 0;
  size_t count = 0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.chunks.size() && ib < b.chunks.size()) {
    const PostingChunk& ca = a.chunks[ia];
    const PostingChunk& cb = b.chunks[ib];
    if (ca.key < cb.key) {
      ++ia;
    } else if (cb.key < ca.key) {
      ++ib;
    } else {
      count += ChunkPairSize(a, ca, b, cb);
      ++ia;
      ++ib;
    }
  }
  return count;
}

bool PostingIntersectAtLeast(const PostingView& a, const PostingView& b,
                             size_t required) {
  if (required == 0) return true;
  if (a.size < required || b.size < required) return false;  // Length filter.
  if (a.chunks.size() == 1 && b.chunks.size() == 1) {
    // Single-chunk sets (vocabularies under 65536 tokens) go straight to
    // the layout kernel, which keeps element-level early exit.
    const PostingChunk& ca = a.chunks.front();
    const PostingChunk& cb = b.chunks.front();
    if (ca.key != cb.key) return false;
    return ChunkPairAtLeast(a, ca, b, cb, required);
  }
  size_t count = 0;
  size_t rem_a = a.size;
  size_t rem_b = b.size;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.chunks.size() && ib < b.chunks.size()) {
    const PostingChunk& ca = a.chunks[ia];
    const PostingChunk& cb = b.chunks[ib];
    if (ca.key < cb.key) {
      rem_a -= ca.count;
      ++ia;
      continue;
    }
    if (cb.key < ca.key) {
      rem_b -= cb.count;
      ++ib;
      continue;
    }
    // Chunk-level abandon: even a full overlap of everything left on the
    // sparser side cannot reach the bound.
    if (count + std::min(rem_a, rem_b) < required) return false;
    count += ChunkPairSize(a, ca, b, cb);
    if (count >= required) return true;
    rem_a -= ca.count;
    rem_b -= cb.count;
    ++ia;
    ++ib;
  }
  return false;
}

}  // namespace weber::matching
