#ifndef WEBER_MATCHING_POSTING_SET_H_
#define WEBER_MATCHING_POSTING_SET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/arena_vec.h"

namespace weber::storage {
class SnapshotCodec;
}  // namespace weber::storage

namespace weber::matching {

/// Roaring-style compressed posting sets for the signature engine.
///
/// A posting set is a sorted set of u32 token ids split into chunks keyed
/// by the high 16 bits. Each chunk stores only the low 16 bits of its
/// members, in one of two layouts chosen by density:
///
///   * array chunk  — sorted distinct u16 values, up to kPostingArrayMax
///     entries (2 bytes per member);
///   * bitset chunk — 65536-bit bitmap (kPostingBitsetWords u64 words,
///     8 KB flat), used once a chunk would exceed kPostingArrayMax.
///
/// 8 KB equals 4096 u16 entries, so the switch point is exactly where the
/// bitmap becomes the smaller layout — the sparse common case costs half
/// of the flat u32 arena it replaces, and dense runs cost O(1) bits per
/// member. Intersections pick a kernel per chunk pair (array×array,
/// array×bitset, bitset×bitset) and route through util/intersect.h, so
/// the SIMD dispatch level applies transparently and every layout
/// combination counts exactly — bit-equal with intersecting the
/// decompressed sets.
///
/// All postings live in one shared PostingArena (chunk directory + array
/// arena + bitset arena) owned by the SignatureStore, mirroring the flat
/// token arena it replaces: appends never invalidate existing refs, and
/// released entries are accounted, not reclaimed (tombstone model).

/// Array-chunk capacity bound; beyond this a chunk is stored as a bitset.
inline constexpr size_t kPostingArrayMax = 4096;

/// 64-bit words per bitset chunk (65536 bits).
inline constexpr size_t kPostingBitsetWords = 1024;

/// Directory entry for one chunk of a posting set.
struct PostingChunk {
  uint16_t key = 0;       ///< High 16 bits shared by every member.
  uint16_t bitset = 0;    ///< 1 when the payload is a bitset chunk.
  uint32_t count = 0;     ///< Members in this chunk (1 .. 65536).
  uint32_t offset = 0;    ///< Array: first u16 in the array arena.
                          ///< Bitset: first word in the bitset arena.
};
// Snapshots write chunk directories in their in-memory layout; padding
// would leak indeterminate bytes into the file (and break bit-equality).
static_assert(sizeof(PostingChunk) == 12 && alignof(PostingChunk) == 4,
              "PostingChunk must stay padding-free for snapshot framing");

/// Handle to one posting set inside a PostingArena. Plain indices, so refs
/// survive arena growth (vectors may reallocate, offsets do not move).
struct PostingRef {
  uint32_t chunk_offset = 0;  ///< First chunk in the arena directory.
  uint32_t chunk_count = 0;   ///< Chunks in this set.
  uint32_t size = 0;          ///< Total members across chunks.
};

/// Borrowed, resolved view of one posting set: the chunk directory slice
/// plus the arena base pointers payload offsets index into. Invalidated
/// by arena appends (same lifetime rule as the spans it replaces).
struct PostingView {
  std::span<const PostingChunk> chunks;
  const uint16_t* arrays = nullptr;
  const uint64_t* bitsets = nullptr;
  uint32_t size = 0;

  bool empty() const { return size == 0; }
};

/// Shared storage for compressed posting sets.
class PostingArena {
 public:
  /// Compresses a strictly increasing u32 sequence into chunks and
  /// appends them. Contract-checked for sortedness under WEBER_HARDENED.
  PostingRef AppendSorted(std::span<const uint32_t> values);

  /// Appends the chunk-wise union of two posting sets (the R-Swoosh merge
  /// path). Views may alias this arena: the union is staged in scratch
  /// storage before any arena append, so neither input is invalidated
  /// mid-read. Array unions overflowing kPostingArrayMax upgrade to
  /// bitsets; bitset chunks never downgrade.
  PostingRef AppendUnion(const PostingView& a, const PostingView& b);

  /// Resolves a ref against the current arena bases.
  PostingView View(const PostingRef& ref) const;

  /// Appends the decompressed (sorted u32) members of `ref` to `out`.
  void Decompress(const PostingRef& ref, std::vector<uint32_t>* out) const;

  /// Bytes attributable to one posting set: directory + payload. Used for
  /// tombstone release accounting.
  size_t RefBytes(const PostingRef& ref) const;

  /// Total arena footprint in bytes (directory + both payload arenas).
  size_t ByteSize() const;

  /// Lifetime chunk counts by layout (appended, never decremented —
  /// released sets are tombstoned in place).
  size_t array_chunks() const { return array_chunks_; }
  size_t bitset_chunks() const { return bitset_chunks_; }

 private:
  friend class weber::storage::SnapshotCodec;

  // Copy-on-write arenas: owned vectors for stores built in memory,
  // borrowed mmap sections for snapshot-loaded stores (the first append
  // detaches into an owned copy — see util/arena_vec.h).
  util::ArenaVec<PostingChunk> chunks_;
  util::ArenaVec<uint16_t> array_values_;
  util::ArenaVec<uint64_t> bitset_words_;
  size_t array_chunks_ = 0;
  size_t bitset_chunks_ = 0;
};

/// |a ∩ b| across chunk pairs, exact for every layout combination.
size_t PostingIntersectSize(const PostingView& a, const PostingView& b);

/// True iff |a ∩ b| >= required. Abandons at chunk granularity as soon as
/// the remaining members of either side cannot reach `required` (and at
/// element granularity inside single-chunk sets, the common case for
/// vocabularies under 65536 tokens). The verdict is exact; required == 0
/// is trivially true.
bool PostingIntersectAtLeast(const PostingView& a, const PostingView& b,
                             size_t required);

}  // namespace weber::matching

#endif  // WEBER_MATCHING_POSTING_SET_H_
