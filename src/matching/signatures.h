#ifndef WEBER_MATCHING_SIGNATURES_H_
#define WEBER_MATCHING_SIGNATURES_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "matching/matcher.h"
#include "matching/posting_set.h"
#include "model/entity.h"
#include "text/normalizer.h"
#include "text/tfidf.h"
#include "util/arena_vec.h"

namespace weber::obs {
class Counter;
}  // namespace weber::obs

namespace weber::storage {
class SnapshotCodec;
}  // namespace weber::storage

namespace weber::matching {

/// One entry of a sparse TF-IDF vector in the signature arena. The
/// explicit layout (instead of std::pair<uint32_t, double>) keeps the
/// struct padding-free so snapshots can frame the arena byte-for-byte.
struct TfIdfTerm {
  uint32_t token = 0;
  uint32_t reserved = 0;  ///< Always 0; keeps the 16-byte layout explicit.
  double weight = 0.0;
};
static_assert(sizeof(TfIdfTerm) == 16 && alignof(TfIdfTerm) == 8,
              "TfIdfTerm must stay padding-free for snapshot framing");

/// What a SignatureStore materialises per entity. Token-id sets are always
/// built; the TF-IDF vectors and per-attribute caches are opt-in because
/// only their matchers pay for them.
struct SignatureOptions {
  /// Normalisation applied before interning — must equal the options the
  /// string-path matchers use (they all use the defaults).
  text::NormalizeOptions normalize;

  /// Precompute one sparse TF-IDF vector per entity with this model
  /// (borrowed; must outlive the store). Null skips the vectors.
  const text::TfIdfModel* tfidf_model = nullptr;

  /// Attributes whose first value (raw string + interned sorted token ids)
  /// is cached per entity, for WeightedAttributeMatcher rules.
  std::vector<std::string> attributes;
};

/// A signature computed away from the store (the sharded resolver's
/// parallel intern phase): the sorted distinct value-token ids, the sparse
/// TF-IDF vector when the store carries a model, and one cache per
/// configured attribute. Token ids must come from the same logical
/// vocabulary the target store's ids are drawn from — AbsorbPrepared
/// appends the arenas verbatim, with no re-interning.
struct InternedSignature {
  std::vector<uint32_t> token_ids;  ///< Sorted distinct value-token ids.
  text::TfIdfVector tfidf;          ///< Ignored without a store model.
  struct Attribute {
    bool present = false;
    std::string value;                ///< Raw first value.
    std::vector<uint32_t> token_ids;  ///< Sorted distinct ids of its tokens.
  };
  /// Parallel to SignatureOptions::attributes (empty when none configured).
  std::vector<Attribute> attributes;
};

/// Interned, comparison-ready view of entity descriptions.
///
/// The token vocabulary is interned once — executor-parallel over
/// contiguous entity chunks, with the chunk vocabularies merged serially
/// in chunk order, so token ids follow global first-occurrence order for
/// any thread count — and every entity's signature lives in shared arenas:
///   - the value-token set (ValueTokens, sorted distinct ids) as a
///     compressed posting set (roaring-style array/bitset chunks, see
///     matching/posting_set.h),
///   - optionally a unit-length sparse TF-IDF vector (ascending token id),
///   - optionally, per configured attribute, the raw first value plus the
///     sorted distinct token ids of its normalised form (flat uint32).
///
/// The store is growable: Absorb interns one more description (incremental
/// ingest), AppendMerged derives a merged signature from two existing ones
/// by sorted union — no re-tokenisation — and Release tombstones a slot.
/// Arenas are append-only; Release only detaches the entry and accounts
/// the freed bytes (weber.matching.signature.released_bytes).
class SignatureStore {
 public:
  static constexpr uint32_t kNoValue = UINT32_MAX;

  /// One cached attribute of one entity.
  struct AttributeSlot {
    uint32_t value_index = kNoValue;  // Into values(); kNoValue = absent.
    uint32_t token_offset = 0;        // Into the token arena.
    uint32_t token_count = 0;
  };

  SignatureStore() = default;
  explicit SignatureStore(SignatureOptions options);

  /// Builds signatures for every description of the collection (slot ==
  /// EntityId). Parallel and deterministic: bit-identical arenas for any
  /// thread count. The collection is borrowed as the default description
  /// provider for string-path fallbacks.
  static SignatureStore Build(const model::EntityCollection& collection,
                              SignatureOptions options = {});

  /// Interns `description` into slot `id` (slots above the current size
  /// are created on demand). New tokens extend the vocabulary; not
  /// thread-safe against concurrent readers.
  void Absorb(model::EntityId id, const model::EntityDescription& description);

  /// Interns a pre-built signature into slot `id` without touching the
  /// vocabulary: arena-append only, so concurrent const reads of *other*
  /// slots stay safe in externally synchronised pipelines. The signature's
  /// token ids must come from the vocabulary this store scores against;
  /// produces byte-identical arenas to Absorb(id, description) when the
  /// signature was derived from `description` with matching options.
  void AbsorbPrepared(model::EntityId id, InternedSignature signature);

  /// Derives the signature of merge(a, b) — a's pairs first, then b's, the
  /// MergeFrom order — into a fresh slot and returns its id. Token ids are
  /// the sorted union of the constituents; attribute slots take a's value
  /// when present, else b's (exactly FirstValueOf on the merged
  /// description). TF-IDF vectors are not derivable from the constituents
  /// (they weigh raw occurrence counts), so merged slots have none and
  /// TF-IDF scoring falls back to the string path.
  model::EntityId AppendMerged(model::EntityId a, model::EntityId b);

  /// Tombstones a slot: contains(id) becomes false and the slot's arena
  /// bytes are accounted as released. The arena memory itself is append-
  /// only and reclaimed when the store is destroyed.
  void Release(model::EntityId id);

  bool contains(model::EntityId id) const {
    return id < entries_.size() && entries_[id].present;
  }

  /// Compressed value-token set of a contained slot. Invalidated by any
  /// store mutation (same lifetime rule as the spans it replaced).
  PostingView posting(model::EntityId id) const {
    return posting_arena_.View(entries_[id].posting);
  }

  /// Count of value tokens in a contained slot.
  size_t token_count(model::EntityId id) const {
    return entries_[id].posting.size;
  }

  /// Decompressed (sorted distinct u32) value-token ids of a contained
  /// slot — the diagnostic/test accessor; the scoring paths stay on
  /// posting() and never materialise this.
  std::vector<uint32_t> TokenSet(model::EntityId id) const {
    std::vector<uint32_t> out;
    posting_arena_.Decompress(entries_[id].posting, &out);
    return out;
  }

  bool has_tfidf(model::EntityId id) const {
    return contains(id) && entries_[id].has_tfidf;
  }
  std::span<const TfIdfTerm> tfidf(model::EntityId id) const {
    const Entry& e = entries_[id];
    return {tfidf_.data() + e.tfidf_offset, e.tfidf_count};
  }

  bool has_attributes(model::EntityId id) const {
    return contains(id) && entries_[id].has_attributes;
  }
  /// The cached slots of a contained id, parallel to options().attributes.
  std::span<const AttributeSlot> attribute_slots(model::EntityId id) const {
    const Entry& e = entries_[id];
    return {attribute_slots_.data() + e.attribute_offset,
            options_.attributes.size()};
  }
  const std::string& value(uint32_t value_index) const {
    return values_[value_index];
  }
  std::span<const uint32_t> slot_tokens(const AttributeSlot& slot) const {
    return {tokens_.data() + slot.token_offset, slot.token_count};
  }

  /// Index of `attribute` in options().attributes, or npos.
  size_t AttributeIndex(std::string_view attribute) const;

  const SignatureOptions& options() const { return options_; }
  size_t size() const { return entries_.size(); }
  size_t vocabulary_size() const {
    return vocabulary_.empty() ? PendingVocabularyCount()
                               : vocabulary_.size();
  }

  /// The collection Build() interned (slot == EntityId for its ids), or
  /// null for stores grown purely via Absorb. PreparedOracle needs it to
  /// precompute the URI-canonical ids the string path resolves per pair.
  const model::EntityCollection* collection() const { return collection_; }

  /// Approximate resident arena footprint, for the
  /// weber.matching.signature.arena_bytes gauge.
  size_t ArenaBytes() const;
  uint64_t released_bytes() const { return released_bytes_; }

  /// Resolves an id to its description for string-path fallbacks. The
  /// default provider (installed by Build) reads the source collection;
  /// algorithms that mint merged slots install their own. The returned
  /// pointer is only used for the duration of one similarity call.
  using DescriptionProvider =
      std::function<const model::EntityDescription*(model::EntityId)>;
  void SetDescriptionProvider(DescriptionProvider provider) {
    provider_ = std::move(provider);
  }
  const model::EntityDescription* description(model::EntityId id) const {
    return provider_ ? provider_(id) : nullptr;
  }

  /// Publishes build/arena gauges and counters to the ambient registry
  /// (weber.matching.signature.*); no-op when detached.
  void PublishMetrics(double build_seconds) const;

 private:
  friend class weber::storage::SnapshotCodec;

  struct Entry {
    PostingRef posting;  // Compressed value-token set.
    uint32_t tfidf_offset = 0;
    uint32_t tfidf_count = 0;
    uint32_t attribute_offset = 0;
    bool present = false;
    bool has_tfidf = false;
    bool has_attributes = false;
    uint8_t reserved = 0;  // Keeps the struct padding-free for snapshots.
  };
  static_assert(sizeof(Entry) == 28 && alignof(Entry) == 4,
                "Entry must stay padding-free for snapshot framing");

  Entry& EnsureSlot(model::EntityId id);
  uint32_t InternToken(const std::string& token);
  /// Hydrates a snapshot-loaded vocabulary blob into the hash map; called
  /// before the first post-load intern so zero-copy opens stay O(1).
  void HydrateVocabulary();
  size_t PendingVocabularyCount() const {
    return pending_vocab_offsets_.empty() ? 0
                                          : pending_vocab_offsets_.size() - 1;
  }
  /// Interns `tokens` and returns their sorted distinct ids.
  std::vector<uint32_t> InternIds(const std::vector<std::string>& tokens);
  /// Appends the sorted distinct ids of `tokens` (interning new ones) to
  /// the flat token arena; returns {offset, count}. Attribute slots only —
  /// value-token sets go through the posting arena.
  std::pair<uint32_t, uint32_t> InternSortedSet(
      const std::vector<std::string>& tokens);
  void FillAttributes(Entry& entry,
                      const model::EntityDescription& description);
  void FillTfIdf(Entry& entry, const model::EntityDescription& description);

  SignatureOptions options_;
  std::unordered_map<std::string, uint32_t> vocabulary_;
  // Snapshot-loaded vocabulary awaiting hydration: token strings packed
  // into one blob with an offsets directory (offsets.size() == count + 1),
  // borrowed straight from the mapping until the first intern needs the
  // hash map.
  util::ArenaVec<char> pending_vocab_blob_;
  util::ArenaVec<uint32_t> pending_vocab_offsets_;
  util::ArenaVec<Entry> entries_;
  PostingArena posting_arena_;                        // Value-token sets.
  util::ArenaVec<uint32_t> tokens_;                   // Attribute token ids.
  util::ArenaVec<TfIdfTerm> tfidf_;                   // TF-IDF arena.
  util::ArenaVec<AttributeSlot> attribute_slots_;     // Attribute arena.
  std::vector<std::string> values_;                   // Raw first values.
  uint64_t released_bytes_ = 0;
  const model::EntityCollection* collection_ = nullptr;
  DescriptionProvider provider_;
};

/// A pairwise similarity over interned signatures: the prepared twin of a
/// Matcher. Similarity(a, b) is bit-equal to the twin's string-path
/// Similarity on the descriptions behind a and b; Matches(a, b, t) is the
/// same verdict as Similarity(a, b) >= t but may prove it cheaper (length
/// and required-overlap filters). Ids without a signature fall back to the
/// string twin via the store's description provider.
class PreparedMatcher {
 public:
  virtual ~PreparedMatcher() = default;

  virtual double Similarity(model::EntityId a, model::EntityId b) const = 0;

  /// Decision with early-exit; identical verdict to
  /// Similarity(a, b) >= threshold for every input.
  virtual bool Matches(model::EntityId a, model::EntityId b,
                       double threshold) const {
    return Similarity(a, b) >= threshold;
  }

  virtual std::string name() const = 0;
};

/// Instrumentation handles shared by the prepared matchers; bound to the
/// ambient registry once at Prepare() time (hot paths must not take the
/// registry lock per pair). Null pointers = detached.
struct PreparedCounters {
  obs::Counter* comparisons = nullptr;
  obs::Counter* filter_hits = nullptr;
  obs::Counter* fallbacks = nullptr;

  /// Binds to obs::Current(), or leaves everything null when detached.
  static PreparedCounters Ambient();
};

/// The SignatureOptions a store must be built with for Prepare(matcher)
/// to succeed: attribute caches for WeightedAttribute rules, a TF-IDF
/// model for TfIdfCosine, the union over Composite components.
SignatureOptions OptionsFor(const Matcher& matcher);

/// True when Prepare(matcher, store) can succeed for a store built with
/// OptionsFor(matcher) — lets callers skip the store build entirely for
/// matcher types the engine does not know.
bool Preparable(const Matcher& matcher);

/// Builds the prepared twin of `matcher` over `store`, or null when the
/// matcher type is unknown or the store lacks what it needs (the caller
/// then stays on the string path). Composite components that cannot be
/// prepared individually are wrapped to score via the string path.
std::unique_ptr<PreparedMatcher> Prepare(const Matcher& matcher,
                                         const SignatureStore& store);

/// A prepared similarity over signatures that live in *different* stores
/// (the sharded resolver keeps one SignatureStore per entity shard).
/// PostingView and the TF-IDF/attribute spans are self-contained, so the
/// arithmetic is the same as the single-store PreparedMatcher twins —
/// Similarity and Matches are bit-equal to the string path for the same
/// inputs. Both stores must be built with the SignatureOptions the
/// matcher was cross-prepared against and share one logical vocabulary.
class CrossStoreMatcher {
 public:
  virtual ~CrossStoreMatcher() = default;

  virtual double Similarity(const SignatureStore& sa, model::EntityId a,
                            const SignatureStore& sb,
                            model::EntityId b) const = 0;

  /// Same verdict as Similarity(...) >= threshold, possibly cheaper.
  virtual bool Matches(const SignatureStore& sa, model::EntityId a,
                       const SignatureStore& sb, model::EntityId b,
                       double threshold) const {
    return Similarity(sa, a, sb, b) >= threshold;
  }

  virtual std::string name() const = 0;
};

/// Builds the cross-store twin of `matcher` for stores configured with
/// `options` (normally OptionsFor(matcher)), or null when the matcher
/// cannot score across stores (unknown types; OracleMatcher, whose
/// canonical-id table is bound to one collection; TfIdfCosine against a
/// different model). Composite components that cannot be cross-prepared
/// are bridged through the string path, mirroring Prepare().
std::unique_ptr<CrossStoreMatcher> PrepareCross(
    const Matcher& matcher, const SignatureOptions& options);

}  // namespace weber::matching

#endif  // WEBER_MATCHING_SIGNATURES_H_
