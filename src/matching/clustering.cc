#include "matching/clustering.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/union_find.h"

namespace weber::matching {

namespace {

Clusters GroupsToClusters(util::UnionFind& forest) {
  return forest.Groups(/*include_singletons=*/true);
}

// Clustering closes the matching phase; report its volume when a metrics
// registry is attached.
void ReportClustering(const MatchGraph& graph, const Clusters& clusters) {
  if (obs::MetricsRegistry* registry = obs::Current()) {
    registry->GetCounter("weber.matching.clusterings").Increment();
    registry->GetCounter("weber.matching.graph_edges")
        .Add(graph.matches().size());
    registry->GetCounter("weber.matching.clusters_formed")
        .Add(clusters.size());
  }
}

std::vector<ScoredPair> EdgesHeaviestFirst(const MatchGraph& graph) {
  std::vector<ScoredPair> edges = graph.matches();
  std::sort(edges.begin(), edges.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return edges;
}

}  // namespace

Clusters ConnectedComponents(const MatchGraph& graph) {
  util::UnionFind forest(graph.num_entities());
  for (const ScoredPair& edge : graph.matches()) {
    forest.Union(edge.a, edge.b);
  }
  Clusters clusters = GroupsToClusters(forest);
  ReportClustering(graph, clusters);
  return clusters;
}

Clusters CenterClustering(const MatchGraph& graph) {
  enum class Role : uint8_t { kUnassigned, kCenter, kAttached };
  std::vector<Role> role(graph.num_entities(), Role::kUnassigned);
  util::UnionFind forest(graph.num_entities());
  for (const ScoredPair& edge : EdgesHeaviestFirst(graph)) {
    Role& role_a = role[edge.a];
    Role& role_b = role[edge.b];
    if (role_a == Role::kUnassigned && role_b == Role::kUnassigned) {
      role_a = Role::kCenter;
      role_b = Role::kAttached;
      forest.Union(edge.a, edge.b);
    } else if (role_a == Role::kCenter && role_b == Role::kUnassigned) {
      role_b = Role::kAttached;
      forest.Union(edge.a, edge.b);
    } else if (role_b == Role::kCenter && role_a == Role::kUnassigned) {
      role_a = Role::kAttached;
      forest.Union(edge.a, edge.b);
    }
    // Center-center and attached-* edges are ignored.
  }
  Clusters clusters = GroupsToClusters(forest);
  ReportClustering(graph, clusters);
  return clusters;
}

Clusters MergeCenterClustering(const MatchGraph& graph) {
  enum class Role : uint8_t { kUnassigned, kCenter, kAttached };
  std::vector<Role> role(graph.num_entities(), Role::kUnassigned);
  util::UnionFind forest(graph.num_entities());
  for (const ScoredPair& edge : EdgesHeaviestFirst(graph)) {
    Role& role_a = role[edge.a];
    Role& role_b = role[edge.b];
    if (role_a == Role::kUnassigned && role_b == Role::kUnassigned) {
      role_a = Role::kCenter;
      role_b = Role::kAttached;
      forest.Union(edge.a, edge.b);
    } else if (role_a == Role::kCenter && role_b == Role::kUnassigned) {
      role_b = Role::kAttached;
      forest.Union(edge.a, edge.b);
    } else if (role_b == Role::kCenter && role_a == Role::kUnassigned) {
      role_a = Role::kAttached;
      forest.Union(edge.a, edge.b);
    } else if (role_a == Role::kCenter && role_b == Role::kCenter) {
      forest.Union(edge.a, edge.b);  // Merge the two clusters.
    }
  }
  Clusters clusters = GroupsToClusters(forest);
  ReportClustering(graph, clusters);
  return clusters;
}

std::vector<model::IdPair> ClusterPairs(const Clusters& clusters) {
  std::vector<model::IdPair> pairs;
  for (const std::vector<model::EntityId>& cluster : clusters) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        pairs.push_back(model::IdPair::Of(cluster[i], cluster[j]));
      }
    }
  }
  return pairs;
}

}  // namespace weber::matching
