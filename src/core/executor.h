#ifndef WEBER_CORE_EXECUTOR_H_
#define WEBER_CORE_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace weber::core {

/// Point-in-time view of an executor's lifetime counters.
struct ExecutorStats {
  size_t workers = 0;
  /// Tasks handed to the pool (one per TaskGroup::Run / chunk).
  uint64_t tasks_submitted = 0;
  /// Tasks executed to completion (by workers or helping waiters).
  uint64_t tasks_run = 0;
  /// Tasks a thread took from another worker's deque.
  uint64_t steals = 0;
  /// High-water mark of tasks queued and not yet started.
  uint64_t max_queue_depth = 0;
  /// Tasks queued and not yet started at snapshot time (the instantaneous
  /// backlog the telemetry sampler turns into a queue-depth curve).
  uint64_t queue_depth = 0;
  /// Per-worker CPU seconds spent inside tasks (index == worker).
  std::vector<double> worker_busy_seconds;
  /// CPU seconds spent inside tasks by non-pool threads helping in Wait().
  double helper_busy_seconds = 0.0;
  /// Wall seconds since the executor was constructed.
  double uptime_seconds = 0.0;
};

/// A process-wide work-stealing thread pool.
///
/// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
/// cache-friendly for nested submission) while idle workers steal from the
/// front (FIFO, oldest task first). Threads blocked in TaskGroup::Wait()
/// execute queued tasks instead of sleeping, so nested parallel regions
/// (a task that itself calls ParallelFor) cannot deadlock even when every
/// pool thread is busy. An executor constructed with one worker spawns no
/// threads at all: tasks run inline on the submitting/waiting thread — the
/// graceful single-thread fallback.
///
/// All pipeline hot paths share Shared(); its size is WEBER_NUM_THREADS
/// when set, else max(hardware_concurrency, 4) so parallel code paths are
/// exercised (and race-checked) even on single-core containers. The
/// effective *parallelism* of a region — how many chunks ParallelFor cuts —
/// is controlled separately by ScopedParallelism, so a pipeline configured
/// with num_threads=1 runs serially on a warm pool without respawning
/// threads.
class Executor {
  struct GroupState;

 public:
  /// num_workers == 0 picks the default described above; 1 spawns no
  /// threads (inline execution); N > 1 spawns N worker threads.
  explicit Executor(size_t num_workers = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide pool used by all parallel hot paths.
  static Executor& Shared();

  size_t num_workers() const { return queues_.size(); }

  /// A set of tasks completed together. Run() submits, Wait() blocks until
  /// all tasks finished, executing queued tasks itself while it waits.
  /// Rethrows the first exception any task threw. The destructor waits
  /// (and swallows the exception) if Wait() was not called.
  class TaskGroup {
   public:
    explicit TaskGroup(Executor& executor);
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    void Run(std::function<void()> fn);
    void Wait();

   private:
    Executor& executor_;
    std::shared_ptr<GroupState> state_;
  };

  /// Runs fn(chunk, begin, end) for `chunks` contiguous chunks covering
  /// [0, n), sized ceil(n / chunks) like the historical MapReduce phases
  /// (trailing chunks may be empty and are not dispatched). chunk_cpu, when
  /// non-null, receives one thread-CPU-seconds entry per chunk regardless
  /// of which thread ran it — the input of the *_balance_speedup metrics.
  /// Runs inline when only one chunk is non-empty. Rethrows the first
  /// chunk exception.
  void ParallelChunks(
      size_t n, size_t chunks,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& fn,
      std::vector<double>* chunk_cpu = nullptr);

  /// Runs fn(i) for i in [0, n), cut into EffectiveParallelism() chunks.
  /// fn must be safe to call concurrently for distinct i. Publishes the
  /// chunk balance speedup (sum of chunk CPU over max chunk CPU) to the
  /// ambient metrics registry under weber.executor.*.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Deterministic parallel fold: each chunk folds its range serially with
  /// `fold`, chunk results are combined with `combine` in ascending chunk
  /// order on the calling thread. The chunk count is pinned to
  /// EffectiveParallelism(), so the result is reproducible for a fixed
  /// parallelism (floating-point folds still depend on that chunk count —
  /// hot paths needing bit-equality across thread counts must not reduce
  /// floating point in parallel).
  template <typename T>
  T ParallelReduce(size_t n, T identity,
                   const std::function<T(size_t index, T acc)>& fold,
                   const std::function<T(T, T)>& combine) {
    if (n == 0) return identity;
    size_t chunks = ChunksFor(n);
    std::vector<T> partial(chunks, identity);
    ParallelChunks(n, chunks, [&](size_t c, size_t begin, size_t end) {
      T acc = identity;
      for (size_t i = begin; i < end; ++i) acc = fold(i, acc);
      partial[c] = acc;
    });
    T result = identity;
    for (T& p : partial) result = combine(std::move(result), std::move(p));
    return result;
  }

  ExecutorStats Snapshot() const;

  /// Re-expresses the stats on the ambient metrics registry (no-op when
  /// none is attached): counter deltas since the previous publish for
  /// volumes, gauges for workers / queue depth / aggregate utilization,
  /// and a per-worker utilization histogram.
  void PublishMetrics() EXCLUDES(publish_mu_);

 private:
  struct Task {
    std::function<void()> fn;
    std::shared_ptr<GroupState> group;
  };
  struct alignas(64) WorkerQueue {
    util::Mutex mu;
    std::deque<Task> tasks GUARDED_BY(mu);
  };

  friend class TaskGroup;

  void Enqueue(Task task) EXCLUDES(sleep_mu_);
  bool TryRunOneTask(int self);
  bool PopOwn(size_t w, Task* task);
  bool StealFrom(int self, Task* task);
  void RunTask(int self, Task& task);
  void WorkerLoop(size_t w) EXCLUDES(sleep_mu_);
  size_t ChunksFor(size_t n) const;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  util::Mutex sleep_mu_;
  util::CondVar sleep_cv_;
  std::atomic<uint64_t> pending_{0};
  bool stop_ GUARDED_BY(sleep_mu_) = false;

  std::atomic<size_t> next_queue_{0};
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::vector<std::unique_ptr<std::atomic<double>>> worker_busy_;
  std::atomic<double> helper_busy_{0.0};
  std::chrono::steady_clock::time_point start_time_;

  // Delta baseline for PublishMetrics.
  util::Mutex publish_mu_;
  ExecutorStats last_published_ GUARDED_BY(publish_mu_);
};

/// Scoped override of the ambient parallelism: how many chunks
/// Executor::ParallelFor cuts a range into (1 = serial inline execution).
/// Thread-local, so concurrent pipelines with different num_threads do not
/// interfere. Passing 0 leaves the previous value in place, mirroring
/// obs::ScopedRegistry, so callers can install an optional config field
/// unconditionally.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(size_t parallelism);
  ~ScopedParallelism();

  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;

 private:
  size_t prev_;
  bool installed_;
};

/// The parallelism parallel regions should use on this thread: the
/// innermost ScopedParallelism override, else Shared().num_workers().
size_t EffectiveParallelism();

}  // namespace weber::core

#endif  // WEBER_CORE_EXECUTOR_H_
