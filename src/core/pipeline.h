#ifndef WEBER_CORE_PIPELINE_H_
#define WEBER_CORE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "blocking/block.h"
#include "blocking/sorted_neighborhood.h"
#include "blocking/token_blocking.h"
#include "eval/blocking_metrics.h"
#include "eval/progressive_curve.h"
#include "matching/clustering.h"
#include "matching/matcher.h"
#include "metablocking/pruning_schemes.h"
#include "model/entity.h"
#include "model/ground_truth.h"
#include "progressive/scheduler.h"
#include "storage/options.h"

namespace weber::obs {
class MetricsRegistry;
}  // namespace weber::obs

namespace weber::core {

/// Incremental (resolve-on-ingest) execution of the pipeline: the
/// collection is replayed through an incremental::ResolveService in
/// ingest batches instead of being blocked and matched in one shot.
///
/// With merge_propagation off the result is *replay-equivalent*: the
/// final clusters equal the batch pipeline over the same collection with
/// a TokenBlocking blocker built from `index` (same options, purging cap
/// 0), for any batch_size and any num_threads. Dirty-ER only.
struct IncrementalMode {
  /// Entities per ingest batch (0 -> 64).
  size_t batch_size = 64;

  /// When > 1, the stream runs through the hash-partitioned
  /// serve::ShardedResolver with this many shards instead of the
  /// single-store resolver. Replay is bit-equal to shards == 1 for any
  /// count; parallelism scales with the shard count. Requires sn_window
  /// == 0 and merge_propagation off (both are single-shard features);
  /// durability uses per-shard WALs (snapshot_every is ignored).
  size_t shards = 1;

  /// Delta token-index configuration. A non-zero max_block_size applies
  /// purging online, which trades replay exactness for bounded postings.
  blocking::TokenBlockingOptions index;

  /// Optional incremental sorted-neighbourhood pass (>= 2 enables; emits
  /// a superset of the batch windows, so it also forgoes replay
  /// exactness).
  size_t sn_window = 0;
  blocking::SortedOrderOptions sn_options;

  /// R-Swoosh-style merge propagation (serial, representative-level
  /// scoring with re-blocking of merged clusters).
  bool merge_propagation = false;

  /// Durability: when non-empty, the run's resolver recovers from and
  /// write-ahead logs to this directory (see storage::DurableResolver),
  /// and the pipeline finishes with a checkpoint. Requires
  /// merge_propagation off.
  std::string data_dir;
  /// Checkpoint every N durable ops (0 = only the final checkpoint).
  uint64_t snapshot_every = 0;
  storage::FsyncPolicy fsync = storage::FsyncPolicy::kBatch;
};

/// Which clustering closes the pipeline.
enum class ClusteringAlgorithm {
  kConnectedComponents,
  kCenter,
  kMergeCenter,
};

/// Configuration of the end-to-end ER pipeline of Fig. 1:
///   Blocking -> (block cleaning / meta-blocking) -> Scheduling ->
///   Matching -> Update -> ... -> Clustering.
/// Stage objects are borrowed, not owned; they must outlive the pipeline
/// run.
struct PipelineConfig {
  /// Blocking phase (required unless `incremental` is set).
  const blocking::Blocker* blocker = nullptr;

  /// When set, the run streams the collection through the incremental
  /// resolver instead of the batch phases below. The blocker, block
  /// cleaning, meta-blocking, scheduler, budget and clustering choice are
  /// ignored (the delta token index blocks, union-find components
  /// cluster); matcher, match_threshold, num_threads and metrics apply
  /// unchanged.
  std::optional<IncrementalMode> incremental;

  /// Optional block cleaning: automatic purging of oversized blocks and
  /// per-entity block filtering (1.0 = keep all).
  bool auto_purge = false;
  double filter_ratio = 1.0;

  /// Optional meta-blocking; when set, the candidate pairs are the pruned
  /// blocking-graph edges instead of all distinct block pairs.
  std::optional<std::pair<metablocking::WeightScheme,
                          metablocking::PruningScheme>>
      meta_blocking;

  /// Scheduling phase: builds the pair scheduler from the candidate list.
  /// Default: a static schedule in candidate order (non-progressive).
  std::function<std::unique_ptr<progressive::PairScheduler>(
      const model::EntityCollection&, std::vector<model::IdPair>)>
      make_scheduler;

  /// Matching phase (required): matcher plus decision threshold.
  const matching::Matcher* matcher = nullptr;
  double match_threshold = 0.5;

  /// Score candidate pairs over interned signatures (SignatureStore +
  /// PreparedMatcher) instead of re-tokenising both descriptions per pair.
  /// Bit-equal to the string path for every matcher and thread count, so
  /// this only trades a one-off interning pass for much cheaper
  /// comparisons; matchers the engine cannot prepare fall back to the
  /// string path automatically. Off = always score from raw strings.
  bool prepared_matching = true;

  /// Comparison budget (0 = run the schedule to exhaustion).
  uint64_t budget = 0;

  /// Final clustering.
  ClusteringAlgorithm clustering = ClusteringAlgorithm::kConnectedComponents;

  /// Parallelism of the run: how many chunks the parallel hot paths
  /// (blocking index build, meta-blocking weighting/pruning, batched
  /// matching) cut their work into. 0 = use the shared executor's worker
  /// count; 1 = fully serial. Every stage is bit-deterministic across
  /// values of this knob, so it only trades wall-clock for cores.
  size_t num_threads = 0;

  /// Optional observability sink. When set, the run installs it as the
  /// ambient registry (obs::ScopedRegistry) so every layer — blockers,
  /// meta-blocking, the progressive runner, MapReduce jobs — reports into
  /// it, and the run itself emits one span per Fig. 1 phase plus
  /// `weber.pipeline.*` counters. When null (the default) instrumentation
  /// costs one relaxed atomic load per site.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Everything a pipeline run reports.
struct PipelineResult {
  /// Blocking quality (against the supplied truth).
  eval::BlockingQuality blocking_quality;
  /// Candidate pairs entering the scheduling phase.
  uint64_t candidates = 0;
  /// Comparisons executed by the matching phase.
  uint64_t comparisons = 0;
  /// Pairs declared matching.
  std::vector<model::IdPair> matches;
  /// Final clusters (singletons included).
  matching::Clusters clusters;
  /// Progressive trajectory of true-match discovery.
  eval::ProgressiveCurve curve{0};
  /// Incremental mode only: the resolver store's collection when it
  /// differs from the run's input — durable recovery pre-populates the
  /// store, so matches/clusters carry store ids past the input's range.
  /// Resolve ids against this collection when present.
  std::optional<model::EntityCollection> store_collection;
  /// Per-phase wall-clock seconds.
  double blocking_seconds = 0.0;
  double scheduling_seconds = 0.0;
  double matching_seconds = 0.0;
};

/// Runs the pipeline on a collection. `truth` drives the quality metrics
/// and the progressive curve; pass an empty GroundTruth when unknown (the
/// pipeline itself never peeks at it for decisions).
PipelineResult RunPipeline(const model::EntityCollection& collection,
                           const model::GroundTruth& truth,
                           const PipelineConfig& config);

/// Name of the Fig. 1 phase a pipeline run is currently executing
/// ("ingest", "blocking", "scheduling", "prepare", "matching",
/// "clustering"), or nullptr outside any run. Written by the driving
/// thread only; intended for crash/check-failure context handlers (see
/// util::SetCheckContextHandler), where a slightly stale answer from a
/// worker thread is acceptable.
const char* ActivePipelinePhase();

}  // namespace weber::core

#endif  // WEBER_CORE_PIPELINE_H_
