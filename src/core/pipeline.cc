#include "core/pipeline.h"

#include <cassert>
#include <limits>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "util/timer.h"

namespace weber::core {

PipelineResult RunPipeline(const model::EntityCollection& collection,
                           const model::GroundTruth& truth,
                           const PipelineConfig& config) {
  assert(config.blocker != nullptr && "pipeline needs a blocker");
  assert(config.matcher != nullptr && "pipeline needs a matcher");
  PipelineResult result;
  util::Timer timer;

  // ---- Blocking phase (plus optional cleaning). ----
  blocking::BlockCollection blocks = config.blocker->Build(collection);
  if (config.auto_purge) {
    blocking::AutoPurgeBlocks(blocks);
  }
  if (config.filter_ratio < 1.0) {
    blocks = blocking::FilterBlocks(blocks, config.filter_ratio);
  }
  result.blocking_quality = eval::EvaluateBlocks(blocks, truth);
  result.blocking_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // ---- Candidate generation: meta-blocking or distinct block pairs. ----
  std::vector<model::IdPair> candidates;
  if (config.meta_blocking.has_value()) {
    candidates = metablocking::MetaBlock(blocks,
                                         config.meta_blocking->first,
                                         config.meta_blocking->second);
  } else {
    blocks.VisitDistinctPairs(
        [&candidates](model::EntityId a, model::EntityId b) {
          candidates.push_back(model::IdPair::Of(a, b));
        });
  }
  result.candidates = candidates.size();

  // ---- Scheduling phase. ----
  std::unique_ptr<progressive::PairScheduler> scheduler;
  if (config.make_scheduler) {
    scheduler = config.make_scheduler(collection, std::move(candidates));
  } else {
    scheduler = std::make_unique<progressive::StaticListScheduler>(
        std::move(candidates));
  }
  result.scheduling_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // ---- Matching + update phases under the budget. ----
  matching::ThresholdMatcher threshold_matcher(config.matcher,
                                               config.match_threshold);
  uint64_t budget = config.budget == 0
                        ? std::numeric_limits<uint64_t>::max()
                        : config.budget;
  progressive::ProgressiveRunResult run = progressive::RunProgressive(
      collection, *scheduler, threshold_matcher, budget, truth);
  result.comparisons = run.comparisons;
  result.matches = std::move(run.reported);
  result.curve = std::move(run.curve);
  result.matching_seconds = timer.ElapsedSeconds();

  // ---- Clustering. ----
  matching::MatchGraph graph(collection.size());
  for (const model::IdPair& pair : result.matches) {
    graph.AddMatch(pair.low, pair.high);
  }
  switch (config.clustering) {
    case ClusteringAlgorithm::kConnectedComponents:
      result.clusters = matching::ConnectedComponents(graph);
      break;
    case ClusteringAlgorithm::kCenter:
      result.clusters = matching::CenterClustering(graph);
      break;
    case ClusteringAlgorithm::kMergeCenter:
      result.clusters = matching::MergeCenterClustering(graph);
      break;
  }
  return result;
}

}  // namespace weber::core
