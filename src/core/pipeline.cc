#include "core/pipeline.h"

#include <cassert>
#include <limits>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "core/executor.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace weber::core {

PipelineResult RunPipeline(const model::EntityCollection& collection,
                           const model::GroundTruth& truth,
                           const PipelineConfig& config) {
  assert(config.blocker != nullptr && "pipeline needs a blocker");
  assert(config.matcher != nullptr && "pipeline needs a matcher");
  PipelineResult result;
  util::Timer timer;

  // Make the configured registry ambient for every nested layer; a null
  // config.metrics leaves any caller-installed registry in place.
  obs::ScopedRegistry attach(config.metrics);
  obs::MetricsRegistry* registry = obs::Current();
  obs::Span pipeline_span(registry, "pipeline");
  // Pin the parallelism of every hot path for the whole run; 0 keeps the
  // shared executor's worker count (or an enclosing override).
  ScopedParallelism parallelism(config.num_threads);

  // ---- Blocking phase (plus optional cleaning). ----
  blocking::BlockCollection blocks;
  {
    obs::Span span(registry, "blocking");
    blocks = config.blocker->Build(collection);
    size_t blocks_before_cleaning = blocks.NumBlocks();
    if (config.auto_purge) {
      blocking::AutoPurgeBlocks(blocks);
    }
    size_t blocks_after_purge = blocks.NumBlocks();
    if (config.filter_ratio < 1.0) {
      blocks = blocking::FilterBlocks(blocks, config.filter_ratio);
    }
    if (registry != nullptr) {
      registry->GetCounter("weber.pipeline.purged_blocks")
          .Add(blocks_before_cleaning - blocks_after_purge);
      registry->GetCounter("weber.pipeline.blocks")
          .Add(blocks.NumBlocks());
    }
  }
  result.blocking_quality = eval::EvaluateBlocks(blocks, truth);
  result.blocking_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // ---- Candidate generation: meta-blocking or distinct block pairs. ----
  std::vector<model::IdPair> candidates;
  std::unique_ptr<progressive::PairScheduler> scheduler;
  {
    obs::Span span(registry, "scheduling");
    if (config.meta_blocking.has_value()) {
      candidates = metablocking::MetaBlock(blocks,
                                           config.meta_blocking->first,
                                           config.meta_blocking->second);
    } else {
      blocks.VisitDistinctPairs(
          [&candidates](model::EntityId a, model::EntityId b) {
            candidates.push_back(model::IdPair::Of(a, b));
          });
    }
    result.candidates = candidates.size();
    if (registry != nullptr) {
      registry->GetCounter("weber.pipeline.candidates")
          .Add(result.candidates);
    }

    if (config.make_scheduler) {
      scheduler = config.make_scheduler(collection, std::move(candidates));
    } else {
      scheduler = std::make_unique<progressive::StaticListScheduler>(
          std::move(candidates));
    }
  }
  result.scheduling_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // ---- Matching + update phases under the budget. ----
  {
    obs::Span span(registry, "matching");
    matching::ThresholdMatcher threshold_matcher(config.matcher,
                                                 config.match_threshold);
    uint64_t budget = config.budget == 0
                          ? std::numeric_limits<uint64_t>::max()
                          : config.budget;
    progressive::ProgressiveRunResult run = progressive::RunProgressive(
        collection, *scheduler, threshold_matcher, budget, truth);
    result.comparisons = run.comparisons;
    result.matches = std::move(run.reported);
    result.curve = std::move(run.curve);
  }
  result.matching_seconds = timer.ElapsedSeconds();

  // ---- Clustering. ----
  {
    obs::Span span(registry, "clustering");
    matching::MatchGraph graph(collection.size());
    for (const model::IdPair& pair : result.matches) {
      graph.AddMatch(pair.low, pair.high);
    }
    switch (config.clustering) {
      case ClusteringAlgorithm::kConnectedComponents:
        result.clusters = matching::ConnectedComponents(graph);
        break;
      case ClusteringAlgorithm::kCenter:
        result.clusters = matching::CenterClustering(graph);
        break;
      case ClusteringAlgorithm::kMergeCenter:
        result.clusters = matching::MergeCenterClustering(graph);
        break;
    }
  }

  if (registry != nullptr) {
    registry->GetCounter("weber.pipeline.comparisons").Add(result.comparisons);
    registry->GetCounter("weber.pipeline.matches").Add(result.matches.size());
    registry->GetCounter("weber.pipeline.clusters")
        .Add(result.clusters.size());
    registry->GetCounter("weber.pipeline.runs").Increment();
    // Flush what the executor accumulated during this run (tasks, steals,
    // utilization) into the same registry as the pipeline counters.
    Executor::Shared().PublishMetrics();
  }
  return result;
}

}  // namespace weber::core
