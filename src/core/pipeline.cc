#include "core/pipeline.h"

#include <cassert>
#include <limits>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "core/executor.h"
#include "incremental/serving.h"
#include "matching/signatures.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace weber::core {

namespace {

/// The resolve-on-ingest execution: replays the collection through a
/// ResolveService in batches, then reads quality, clusters and counters
/// back out of the resolver. With merge propagation off this reproduces
/// the batch result exactly (see IncrementalMode).
PipelineResult RunIncrementalPipeline(const model::EntityCollection& collection,
                                      const model::GroundTruth& truth,
                                      const PipelineConfig& config) {
  assert(config.matcher != nullptr && "pipeline needs a matcher");
  assert(collection.setting() == model::ErSetting::kDirty &&
         "incremental mode resolves dirty collections");
  PipelineResult result;
  util::Timer timer;

  obs::ScopedRegistry attach(config.metrics);
  obs::MetricsRegistry* registry = obs::Current();
  obs::Span pipeline_span(registry, "pipeline");
  ScopedParallelism parallelism(config.num_threads);

  const IncrementalMode& mode = *config.incremental;
  incremental::ServiceOptions service_options;
  service_options.max_batch = mode.batch_size == 0 ? 64 : mode.batch_size;
  service_options.resolver.match_threshold = config.match_threshold;
  service_options.resolver.index = mode.index;
  service_options.resolver.sn_window = mode.sn_window;
  service_options.resolver.sn_options = mode.sn_options;
  service_options.resolver.merge_propagation = mode.merge_propagation;
  service_options.resolver.prepared_matching = config.prepared_matching;
  service_options.resolver.metrics = registry;

  incremental::ResolveService service(config.matcher, service_options);
  eval::ProgressiveCurve curve(truth.NumMatches());
  service.resolver().set_comparison_observer(
      [&curve, &truth](const model::IdPair& pair, bool matched) {
        curve.Record(matched && truth.IsMatch(pair));
      });

  // ---- Ingest: blocking + matching + update, interleaved per batch. ----
  {
    obs::Span span(registry, "ingest");
    std::vector<model::EntityDescription> batch;
    batch.reserve(service_options.max_batch);
    for (model::EntityId id = 0; id < collection.size(); ++id) {
      batch.push_back(collection.at(id));
      if (batch.size() == service_options.max_batch) {
        service.Ingest(std::move(batch));
        batch.clear();
        batch.reserve(service_options.max_batch);
      }
    }
    if (!batch.empty()) service.Ingest(std::move(batch));
  }
  result.matching_seconds = timer.ElapsedSeconds();
  timer.Restart();

  incremental::IncrementalResolver& resolver = service.resolver();

  // ---- Blocking quality, from the delta index's exported blocks. ----
  {
    obs::Span span(registry, "blocking");
    blocking::BlockCollection blocks =
        resolver.IndexBlocks(&resolver.store().collection());
    result.blocking_quality = eval::EvaluateBlocks(blocks, truth);
    if (registry != nullptr) {
      registry->GetCounter("weber.pipeline.blocks").Add(blocks.NumBlocks());
    }
  }
  result.blocking_seconds = timer.ElapsedSeconds();

  // ---- Clustering: the union-find components the resolver maintained. --
  {
    obs::Span span(registry, "clustering");
    result.clusters = resolver.Clusters();
  }

  result.candidates = resolver.candidates();
  result.comparisons = resolver.comparisons();
  result.matches = resolver.matches();
  result.curve = std::move(curve);

  if (registry != nullptr) {
    registry->GetCounter("weber.pipeline.candidates").Add(result.candidates);
    registry->GetCounter("weber.pipeline.comparisons").Add(result.comparisons);
    registry->GetCounter("weber.pipeline.matches").Add(result.matches.size());
    registry->GetCounter("weber.pipeline.clusters")
        .Add(result.clusters.size());
    registry->GetCounter("weber.pipeline.runs").Increment();
    Executor::Shared().PublishMetrics();
  }
  return result;
}

}  // namespace

PipelineResult RunPipeline(const model::EntityCollection& collection,
                           const model::GroundTruth& truth,
                           const PipelineConfig& config) {
  if (config.incremental.has_value()) {
    return RunIncrementalPipeline(collection, truth, config);
  }
  assert(config.blocker != nullptr && "pipeline needs a blocker");
  assert(config.matcher != nullptr && "pipeline needs a matcher");
  PipelineResult result;
  util::Timer timer;

  // Make the configured registry ambient for every nested layer; a null
  // config.metrics leaves any caller-installed registry in place.
  obs::ScopedRegistry attach(config.metrics);
  obs::MetricsRegistry* registry = obs::Current();
  obs::Span pipeline_span(registry, "pipeline");
  // Pin the parallelism of every hot path for the whole run; 0 keeps the
  // shared executor's worker count (or an enclosing override).
  ScopedParallelism parallelism(config.num_threads);

  // ---- Blocking phase (plus optional cleaning). ----
  blocking::BlockCollection blocks;
  {
    obs::Span span(registry, "blocking");
    blocks = config.blocker->Build(collection);
    size_t blocks_before_cleaning = blocks.NumBlocks();
    if (config.auto_purge) {
      blocking::AutoPurgeBlocks(blocks);
    }
    size_t blocks_after_purge = blocks.NumBlocks();
    if (config.filter_ratio < 1.0) {
      blocks = blocking::FilterBlocks(blocks, config.filter_ratio);
    }
    if (registry != nullptr) {
      registry->GetCounter("weber.pipeline.purged_blocks")
          .Add(blocks_before_cleaning - blocks_after_purge);
      registry->GetCounter("weber.pipeline.blocks")
          .Add(blocks.NumBlocks());
    }
  }
  result.blocking_quality = eval::EvaluateBlocks(blocks, truth);
  result.blocking_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // ---- Candidate generation: meta-blocking or distinct block pairs. ----
  std::vector<model::IdPair> candidates;
  std::unique_ptr<progressive::PairScheduler> scheduler;
  {
    obs::Span span(registry, "scheduling");
    if (config.meta_blocking.has_value()) {
      candidates = metablocking::MetaBlock(blocks,
                                           config.meta_blocking->first,
                                           config.meta_blocking->second);
    } else {
      blocks.VisitDistinctPairs(
          [&candidates](model::EntityId a, model::EntityId b) {
            candidates.push_back(model::IdPair::Of(a, b));
          });
    }
    result.candidates = candidates.size();
    if (registry != nullptr) {
      registry->GetCounter("weber.pipeline.candidates")
          .Add(result.candidates);
    }

    if (config.make_scheduler) {
      scheduler = config.make_scheduler(collection, std::move(candidates));
    } else {
      scheduler = std::make_unique<progressive::StaticListScheduler>(
          std::move(candidates));
    }
  }
  result.scheduling_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // ---- Matching + update phases under the budget. ----
  {
    obs::Span span(registry, "matching");
    matching::ThresholdMatcher threshold_matcher(config.matcher,
                                                 config.match_threshold);
    // Intern the collection once and score over signatures; bit-equal to
    // the string path, so the knob only trades build time for pair cost.
    std::optional<matching::SignatureStore> signatures;
    std::unique_ptr<matching::PreparedMatcher> prepared;
    if (config.prepared_matching && matching::Preparable(*config.matcher)) {
      obs::Span prepare_span(registry, "prepare");
      util::Timer prepare_timer;
      signatures.emplace(matching::SignatureStore::Build(
          collection, matching::OptionsFor(*config.matcher)));
      prepared = matching::Prepare(*config.matcher, *signatures);
      if (prepared != nullptr) {
        signatures->PublishMetrics(prepare_timer.ElapsedSeconds());
      }
    }
    uint64_t budget = config.budget == 0
                          ? std::numeric_limits<uint64_t>::max()
                          : config.budget;
    progressive::ProgressiveRunResult run = progressive::RunProgressive(
        collection, *scheduler, threshold_matcher, budget, truth,
        prepared.get());
    result.comparisons = run.comparisons;
    result.matches = std::move(run.reported);
    result.curve = std::move(run.curve);
  }
  result.matching_seconds = timer.ElapsedSeconds();

  // ---- Clustering. ----
  {
    obs::Span span(registry, "clustering");
    matching::MatchGraph graph(collection.size());
    for (const model::IdPair& pair : result.matches) {
      graph.AddMatch(pair.low, pair.high);
    }
    switch (config.clustering) {
      case ClusteringAlgorithm::kConnectedComponents:
        result.clusters = matching::ConnectedComponents(graph);
        break;
      case ClusteringAlgorithm::kCenter:
        result.clusters = matching::CenterClustering(graph);
        break;
      case ClusteringAlgorithm::kMergeCenter:
        result.clusters = matching::MergeCenterClustering(graph);
        break;
    }
  }

  if (registry != nullptr) {
    registry->GetCounter("weber.pipeline.comparisons").Add(result.comparisons);
    registry->GetCounter("weber.pipeline.matches").Add(result.matches.size());
    registry->GetCounter("weber.pipeline.clusters")
        .Add(result.clusters.size());
    registry->GetCounter("weber.pipeline.runs").Increment();
    // Flush what the executor accumulated during this run (tasks, steals,
    // utilization) into the same registry as the pipeline counters.
    Executor::Shared().PublishMetrics();
  }
  return result;
}

}  // namespace weber::core
