#include "core/pipeline.h"

#include <atomic>
#include <limits>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "core/executor.h"
#include "incremental/serving.h"
#include "matching/signatures.h"
#include "serve/service.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace weber::core {

namespace {

/// Phase the driving thread is currently executing, for check-failure
/// diagnostics (see ActivePipelinePhase). Stored as a pointer to a string
/// literal so readers in a crashing process never chase freed memory.
std::atomic<const char*> g_active_phase{nullptr};

/// Marks the enclosing scope as a named pipeline phase. Nests: leaving a
/// scope restores the phase that was active when it was entered.
class PhaseScope {
 public:
  explicit PhaseScope(const char* phase)
      : previous_(g_active_phase.exchange(phase, std::memory_order_relaxed)) {}
  ~PhaseScope() { g_active_phase.store(previous_, std::memory_order_relaxed); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const char* previous_;
};

/// The sharded resolve-on-ingest execution (IncrementalMode::shards > 1):
/// the same stream replayed through a serve::ShardedResolveService, whose
/// result is bit-equal to the single-shard path below.
PipelineResult RunShardedIncrementalPipeline(
    const model::EntityCollection& collection, const model::GroundTruth& truth,
    const PipelineConfig& config) {
  WEBER_CHECK(config.matcher != nullptr) << "pipeline needs a matcher";
  WEBER_CHECK(collection.setting() == model::ErSetting::kDirty)
      << "incremental mode resolves dirty collections";
  const IncrementalMode& mode = *config.incremental;
  WEBER_CHECK(mode.sn_window == 0 && !mode.merge_propagation)
      << "sorted-neighbourhood and merge propagation are single-shard "
         "features (shards == 1)";
  PipelineResult result;
  util::Timer timer;

  obs::ScopedRegistry attach(config.metrics);
  obs::MetricsRegistry* registry = obs::Current();
  obs::Span pipeline_span(registry, "pipeline");

  serve::ShardedServiceOptions service_options;
  service_options.max_batch = mode.batch_size == 0 ? 64 : mode.batch_size;
  service_options.resolver.shards = mode.shards;
  service_options.resolver.match_threshold = config.match_threshold;
  service_options.resolver.index = mode.index;
  service_options.resolver.prepared_matching = config.prepared_matching;
  service_options.resolver.metrics = registry;
  service_options.resolver.data_dir = mode.data_dir;
  service_options.resolver.fsync = mode.fsync;

  serve::ShardedResolveService service(config.matcher, service_options);
  WEBER_CHECK(service.recovery_status().ok())
      << "durable recovery failed: "
      << service.recovery_status().ToString();
  eval::ProgressiveCurve curve(truth.NumMatches());
  service.resolver().set_comparison_observer(
      [&curve, &truth](const model::IdPair& pair, bool matched) {
        curve.Record(matched && truth.IsMatch(pair));
      });

  {
    obs::Span span(registry, "ingest");
    PhaseScope phase("ingest");
    std::vector<model::EntityDescription> batch;
    batch.reserve(service_options.max_batch);
    for (model::EntityId id = 0; id < collection.size(); ++id) {
      batch.push_back(collection.at(id));
      if (batch.size() == service_options.max_batch) {
        serve::ShardedResolveService::IngestResult ingest =
            service.Ingest(std::move(batch));
        WEBER_CHECK(ingest.status == serve::ServeErrc::kOk)
            << "sharded ingest failed: "
            << serve::ServeErrcName(ingest.status);
        batch.clear();
        batch.reserve(service_options.max_batch);
      }
    }
    if (!batch.empty()) {
      serve::ShardedResolveService::IngestResult ingest =
          service.Ingest(std::move(batch));
      WEBER_CHECK(ingest.status == serve::ServeErrc::kOk)
          << "sharded ingest failed: "
          << serve::ServeErrcName(ingest.status);
    }
  }
  result.matching_seconds = timer.ElapsedSeconds();
  timer.Restart();

  serve::ShardedResolver& resolver = service.resolver();
  model::EntityCollection store_collection = resolver.CollectionSnapshot();

  {
    obs::Span span(registry, "blocking");
    PhaseScope phase("blocking");
    blocking::BlockCollection blocks =
        resolver.IndexBlocks(&store_collection);
    result.blocking_quality = eval::EvaluateBlocks(blocks, truth);
    if (registry != nullptr) {
      registry->GetCounter("weber.pipeline.blocks").Add(blocks.NumBlocks());
    }
  }
  result.blocking_seconds = timer.ElapsedSeconds();

  {
    obs::Span span(registry, "clustering");
    PhaseScope phase("clustering");
    result.clusters = resolver.Clusters();
  }

  result.candidates = resolver.candidates();
  result.comparisons = resolver.comparisons();
  result.matches = resolver.matches();
  result.curve = std::move(curve);
  if (resolver.size() != collection.size()) {
    result.store_collection = std::move(store_collection);
  }

  {
    obs::Span span(registry, "checkpoint");
    PhaseScope phase("checkpoint");
    storage::Status status = resolver.Checkpoint();
    WEBER_CHECK(status.ok())
        << "final checkpoint failed: " << status.ToString();
  }

  if (registry != nullptr) {
    registry->GetCounter("weber.pipeline.candidates").Add(result.candidates);
    registry->GetCounter("weber.pipeline.comparisons").Add(result.comparisons);
    registry->GetCounter("weber.pipeline.matches").Add(result.matches.size());
    registry->GetCounter("weber.pipeline.clusters")
        .Add(result.clusters.size());
    registry->GetCounter("weber.pipeline.runs").Increment();
    Executor::Shared().PublishMetrics();
  }
  return result;
}

/// The resolve-on-ingest execution: replays the collection through a
/// ResolveService in batches, then reads quality, clusters and counters
/// back out of the resolver. With merge propagation off this reproduces
/// the batch result exactly (see IncrementalMode).
PipelineResult RunIncrementalPipeline(const model::EntityCollection& collection,
                                      const model::GroundTruth& truth,
                                      const PipelineConfig& config) {
  WEBER_CHECK(config.matcher != nullptr) << "pipeline needs a matcher";
  WEBER_CHECK(collection.setting() == model::ErSetting::kDirty)
      << "incremental mode resolves dirty collections";
  PipelineResult result;
  util::Timer timer;

  obs::ScopedRegistry attach(config.metrics);
  obs::MetricsRegistry* registry = obs::Current();
  obs::Span pipeline_span(registry, "pipeline");
  ScopedParallelism parallelism(config.num_threads);

  const IncrementalMode& mode = *config.incremental;
  incremental::ServiceOptions service_options;
  service_options.max_batch = mode.batch_size == 0 ? 64 : mode.batch_size;
  service_options.resolver.match_threshold = config.match_threshold;
  service_options.resolver.index = mode.index;
  service_options.resolver.sn_window = mode.sn_window;
  service_options.resolver.sn_options = mode.sn_options;
  service_options.resolver.merge_propagation = mode.merge_propagation;
  service_options.resolver.prepared_matching = config.prepared_matching;
  service_options.resolver.metrics = registry;
  if (!mode.data_dir.empty()) {
    storage::DurabilityOptions durability;
    durability.data_dir = mode.data_dir;
    durability.snapshot_every = mode.snapshot_every;
    durability.fsync = mode.fsync;
    service_options.durability = durability;
  }

  incremental::ResolveService service(config.matcher, service_options);
  WEBER_CHECK(service.recovery_status().ok())
      << "durable recovery failed: "
      << service.recovery_status().ToString();
  eval::ProgressiveCurve curve(truth.NumMatches());
  service.resolver().set_comparison_observer(
      [&curve, &truth](const model::IdPair& pair, bool matched) {
        curve.Record(matched && truth.IsMatch(pair));
      });

  // ---- Ingest: blocking + matching + update, interleaved per batch. ----
  {
    obs::Span span(registry, "ingest");
    PhaseScope phase("ingest");
    std::vector<model::EntityDescription> batch;
    batch.reserve(service_options.max_batch);
    for (model::EntityId id = 0; id < collection.size(); ++id) {
      batch.push_back(collection.at(id));
      if (batch.size() == service_options.max_batch) {
        service.Ingest(std::move(batch));
        batch.clear();
        batch.reserve(service_options.max_batch);
      }
    }
    if (!batch.empty()) service.Ingest(std::move(batch));
  }
  result.matching_seconds = timer.ElapsedSeconds();
  timer.Restart();

  incremental::IncrementalResolver& resolver = service.resolver();

  // ---- Blocking quality, from the delta index's exported blocks. ----
  {
    obs::Span span(registry, "blocking");
    PhaseScope phase("blocking");
    blocking::BlockCollection blocks =
        resolver.IndexBlocks(&resolver.store().collection());
    result.blocking_quality = eval::EvaluateBlocks(blocks, truth);
    if (registry != nullptr) {
      registry->GetCounter("weber.pipeline.blocks").Add(blocks.NumBlocks());
    }
  }
  result.blocking_seconds = timer.ElapsedSeconds();

  // ---- Clustering: the union-find components the resolver maintained. --
  {
    obs::Span span(registry, "clustering");
    PhaseScope phase("clustering");
    result.clusters = resolver.Clusters();
  }

  result.candidates = resolver.candidates();
  result.comparisons = resolver.comparisons();
  result.matches = resolver.matches();
  result.curve = std::move(curve);
  if (resolver.store().size() != collection.size()) {
    result.store_collection = resolver.store().collection();
  }

  // ---- Durability: fold the run's WAL into a final snapshot. ----
  if (service.durable() != nullptr) {
    obs::Span span(registry, "checkpoint");
    PhaseScope phase("checkpoint");
    storage::Status status = service.Checkpoint();
    WEBER_CHECK(status.ok())
        << "final checkpoint failed: " << status.ToString();
  }

  if (registry != nullptr) {
    registry->GetCounter("weber.pipeline.candidates").Add(result.candidates);
    registry->GetCounter("weber.pipeline.comparisons").Add(result.comparisons);
    registry->GetCounter("weber.pipeline.matches").Add(result.matches.size());
    registry->GetCounter("weber.pipeline.clusters")
        .Add(result.clusters.size());
    registry->GetCounter("weber.pipeline.runs").Increment();
    Executor::Shared().PublishMetrics();
  }
  return result;
}

}  // namespace

const char* ActivePipelinePhase() {
  return g_active_phase.load(std::memory_order_relaxed);
}

PipelineResult RunPipeline(const model::EntityCollection& collection,
                           const model::GroundTruth& truth,
                           const PipelineConfig& config) {
  if (config.incremental.has_value()) {
    if (config.incremental->shards > 1) {
      return RunShardedIncrementalPipeline(collection, truth, config);
    }
    return RunIncrementalPipeline(collection, truth, config);
  }
  WEBER_CHECK(config.blocker != nullptr) << "pipeline needs a blocker";
  WEBER_CHECK(config.matcher != nullptr) << "pipeline needs a matcher";
  WEBER_CHECK_GT(config.filter_ratio, 0.0)
      << "filter_ratio must be positive (1.0 keeps every block)";
  PipelineResult result;
  util::Timer timer;

  // Make the configured registry ambient for every nested layer; a null
  // config.metrics leaves any caller-installed registry in place.
  obs::ScopedRegistry attach(config.metrics);
  obs::MetricsRegistry* registry = obs::Current();
  obs::Span pipeline_span(registry, "pipeline");
  // Pin the parallelism of every hot path for the whole run; 0 keeps the
  // shared executor's worker count (or an enclosing override).
  ScopedParallelism parallelism(config.num_threads);

  // ---- Blocking phase (plus optional cleaning). ----
  blocking::BlockCollection blocks;
  {
    obs::Span span(registry, "blocking");
    PhaseScope phase("blocking");
    blocks = config.blocker->Build(collection);
    size_t blocks_before_cleaning = blocks.NumBlocks();
    if (config.auto_purge) {
      blocking::AutoPurgeBlocks(blocks);
    }
    size_t blocks_after_purge = blocks.NumBlocks();
    if (config.filter_ratio < 1.0) {
      blocks = blocking::FilterBlocks(blocks, config.filter_ratio);
    }
    if (registry != nullptr) {
      registry->GetCounter("weber.pipeline.purged_blocks")
          .Add(blocks_before_cleaning - blocks_after_purge);
      registry->GetCounter("weber.pipeline.blocks")
          .Add(blocks.NumBlocks());
    }
  }
  result.blocking_quality = eval::EvaluateBlocks(blocks, truth);
  result.blocking_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // ---- Candidate generation: meta-blocking or distinct block pairs. ----
  std::vector<model::IdPair> candidates;
  std::unique_ptr<progressive::PairScheduler> scheduler;
  {
    obs::Span span(registry, "scheduling");
    PhaseScope phase("scheduling");
    if (config.meta_blocking.has_value()) {
      candidates = metablocking::MetaBlock(blocks,
                                           config.meta_blocking->first,
                                           config.meta_blocking->second);
    } else {
      blocks.VisitDistinctPairs(
          [&candidates](model::EntityId a, model::EntityId b) {
            candidates.push_back(model::IdPair::Of(a, b));
          });
    }
    result.candidates = candidates.size();
    if (registry != nullptr) {
      registry->GetCounter("weber.pipeline.candidates")
          .Add(result.candidates);
    }

    if (config.make_scheduler) {
      scheduler = config.make_scheduler(collection, std::move(candidates));
    } else {
      scheduler = std::make_unique<progressive::StaticListScheduler>(
          std::move(candidates));
    }
    WEBER_CHECK(scheduler != nullptr)
        << "make_scheduler returned null; the matching phase needs a "
        << "schedule";
  }
  result.scheduling_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // ---- Matching + update phases under the budget. ----
  {
    obs::Span span(registry, "matching");
    PhaseScope phase("matching");
    matching::ThresholdMatcher threshold_matcher(config.matcher,
                                                 config.match_threshold);
    // Intern the collection once and score over signatures; bit-equal to
    // the string path, so the knob only trades build time for pair cost.
    std::optional<matching::SignatureStore> signatures;
    std::unique_ptr<matching::PreparedMatcher> prepared;
    if (config.prepared_matching && matching::Preparable(*config.matcher)) {
      obs::Span prepare_span(registry, "prepare");
      PhaseScope prepare_phase("prepare");
      util::Timer prepare_timer;
      signatures.emplace(matching::SignatureStore::Build(
          collection, matching::OptionsFor(*config.matcher)));
      prepared = matching::Prepare(*config.matcher, *signatures);
      if (prepared != nullptr) {
        signatures->PublishMetrics(prepare_timer.ElapsedSeconds());
      }
    }
    uint64_t budget = config.budget == 0
                          ? std::numeric_limits<uint64_t>::max()
                          : config.budget;
    progressive::ProgressiveRunResult run = progressive::RunProgressive(
        collection, *scheduler, threshold_matcher, budget, truth,
        prepared.get());
    result.comparisons = run.comparisons;
    result.matches = std::move(run.reported);
    result.curve = std::move(run.curve);
  }
  result.matching_seconds = timer.ElapsedSeconds();

  // ---- Clustering. ----
  {
    obs::Span span(registry, "clustering");
    PhaseScope phase("clustering");
    matching::MatchGraph graph(collection.size());
    for (const model::IdPair& pair : result.matches) {
      graph.AddMatch(pair.low, pair.high);
    }
    switch (config.clustering) {
      case ClusteringAlgorithm::kConnectedComponents:
        result.clusters = matching::ConnectedComponents(graph);
        break;
      case ClusteringAlgorithm::kCenter:
        result.clusters = matching::CenterClustering(graph);
        break;
      case ClusteringAlgorithm::kMergeCenter:
        result.clusters = matching::MergeCenterClustering(graph);
        break;
    }
  }

  if (registry != nullptr) {
    registry->GetCounter("weber.pipeline.comparisons").Add(result.comparisons);
    registry->GetCounter("weber.pipeline.matches").Add(result.matches.size());
    registry->GetCounter("weber.pipeline.clusters")
        .Add(result.clusters.size());
    registry->GetCounter("weber.pipeline.runs").Increment();
    // Flush what the executor accumulated during this run (tasks, steals,
    // utilization) into the same registry as the pipeline counters.
    Executor::Shared().PublishMetrics();
  }
  return result;
}

}  // namespace weber::core
