#include "core/executor.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace weber::core {

namespace {

// Which pool (if any) the current thread belongs to, and its worker index.
// Helpers (threads blocked in Wait) keep tl_worker == -1.
thread_local Executor* tl_executor = nullptr;
thread_local int tl_worker = -1;

// The ambient registry's flight recorder when armed, else nullptr. One
// relaxed atomic load + one branch on the cold (disabled) path.
obs::EventLog* ActiveEventLog() {
  obs::MetricsRegistry* registry = obs::Current();
  if (registry == nullptr) return nullptr;
  obs::EventLog& log = registry->events();
  return log.enabled() ? &log : nullptr;
}

// Last event log this thread named its track in, so the (idempotent)
// NameThread call runs once per thread per recorder, not once per task.
thread_local const obs::EventLog* tl_named_log = nullptr;

// Set by a successful StealFrom, consumed by the RunTask that follows on
// the same thread: the steal event is recorded there, stamped with the
// task's begin time, so stealing itself takes no clock read and no
// flight-recorder lock while holding a victim queue's mutex.
thread_local bool tl_stole_last = false;

void NameTrackOnce(obs::EventLog* log, int self) {
  if (tl_named_log == log) return;
  log->NameThread(self >= 0 ? "worker " + std::to_string(self) : "helper");
  tl_named_log = log;
}

// Innermost ScopedParallelism override; 0 = unset.
thread_local size_t tl_parallelism = 0;

size_t DefaultWorkerCount() {
  if (const char* env = std::getenv("WEBER_NUM_THREADS")) {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && parsed > 0) {
      return std::min<size_t>(parsed, 64);
    }
  }
  // At least 4 so parallel paths (and their races, under TSan) are
  // exercised even on single-core containers, matching the historical
  // engine that spawned as many threads as the job requested.
  size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(hw, 4);
}

}  // namespace

struct Executor::GroupState {
  std::atomic<uint64_t> remaining{0};
  util::Mutex mu;
  util::CondVar cv;
  util::Mutex error_mu;
  std::exception_ptr error GUARDED_BY(error_mu);

  void SetError(std::exception_ptr e) EXCLUDES(error_mu) {
    util::MutexLock lock(error_mu);
    if (error == nullptr) error = std::move(e);
  }

  void Finish() EXCLUDES(mu) {
    uint64_t before = remaining.fetch_sub(1, std::memory_order_acq_rel);
    // Task-group balance: every Finish must pair with one Run. A zero
    // here means a task completed twice (or Finish ran without Run) and
    // the counter wrapped — Wait() would block forever or return early.
    WEBER_CHECK_GE(before, uint64_t{1})
        << "task group finished more tasks than were submitted";
    if (before == 1) {
      util::MutexLock lock(mu);
      cv.NotifyAll();
    }
  }
};

// ------------------------------------------------------------- TaskGroup

Executor::TaskGroup::TaskGroup(Executor& executor)
    : executor_(executor), state_(std::make_shared<GroupState>()) {}

Executor::TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // A group abandoned without Wait() swallows the task error.
  }
}

void Executor::TaskGroup::Run(std::function<void()> fn) {
  state_->remaining.fetch_add(1, std::memory_order_acq_rel);
  executor_.Enqueue(Task{std::move(fn), state_});
}

void Executor::TaskGroup::Wait() {
  int self = (tl_executor == &executor_) ? tl_worker : -1;
  while (state_->remaining.load(std::memory_order_acquire) > 0) {
    if (executor_.TryRunOneTask(self)) continue;
    // Nothing runnable: our tasks are executing on other threads. Sleep
    // briefly but keep helping, in case new (e.g. nested) tasks appear.
    util::MutexLock lock(state_->mu);
    if (state_->remaining.load(std::memory_order_acquire) > 0) {
      state_->cv.WaitFor(state_->mu, std::chrono::milliseconds(1));
    }
  }
  WEBER_DCHECK_EQ(state_->remaining.load(std::memory_order_acquire),
                  uint64_t{0})
      << "Wait returned with tasks outstanding";
  std::exception_ptr error;
  {
    util::MutexLock lock(state_->error_mu);
    error = state_->error;
    state_->error = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

// -------------------------------------------------------------- Executor

Executor::Executor(size_t num_workers) {
  if (num_workers == 0) num_workers = DefaultWorkerCount();
  WEBER_CHECK_GE(num_workers, size_t{1})
      << "executor needs at least one worker slot";
  queues_.reserve(num_workers);
  worker_busy_.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
    worker_busy_.push_back(std::make_unique<std::atomic<double>>(0.0));
  }
  start_time_ = std::chrono::steady_clock::now();
  last_published_.worker_busy_seconds.assign(num_workers, 0.0);
  // One worker means inline execution: tasks are drained by whoever waits.
  if (num_workers < 2) return;
  threads_.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

Executor::~Executor() {
  {
    util::MutexLock lock(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

Executor& Executor::Shared() {
  static Executor shared(0);
  return shared;
}

void Executor::Enqueue(Task task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  size_t idx;
  if (tl_executor == this && tl_worker >= 0) {
    idx = static_cast<size_t>(tl_worker);  // Own deque: LIFO locality.
  } else {
    idx = next_queue_.fetch_add(1, std::memory_order_relaxed) %
          queues_.size();
  }
  {
    WorkerQueue& queue = *queues_[idx];
    util::MutexLock lock(queue.mu);
    queue.tasks.push_back(std::move(task));
  }
  uint64_t depth = pending_.fetch_add(1, std::memory_order_release) + 1;
  uint64_t observed = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > observed &&
         !max_queue_depth_.compare_exchange_weak(
             observed, depth, std::memory_order_relaxed)) {
  }
  if (!threads_.empty()) {
    // The empty critical section pairs with the predicate evaluation in
    // WorkerLoop so the notify cannot slot between a worker reading
    // pending_ == 0 and starting to sleep (lost wakeup).
    { util::MutexLock lock(sleep_mu_); }
    sleep_cv_.NotifyOne();
  }
}

bool Executor::PopOwn(size_t w, Task* task) {
  WEBER_DCHECK_LT(w, queues_.size()) << "worker index out of range";
  WorkerQueue& queue = *queues_[w];
  util::MutexLock lock(queue.mu);
  if (queue.tasks.empty()) return false;
  *task = std::move(queue.tasks.back());
  queue.tasks.pop_back();
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool Executor::StealFrom(int self, Task* task) {
  size_t nq = queues_.size();
  size_t start = self >= 0
                     ? static_cast<size_t>(self) + 1
                     : next_queue_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < nq; ++i) {
    size_t victim = (start + i) % nq;
    if (self >= 0 && victim == static_cast<size_t>(self)) continue;
    WorkerQueue& queue = *queues_[victim];
    util::MutexLock lock(queue.mu);
    if (queue.tasks.empty()) continue;
    *task = std::move(queue.tasks.front());  // FIFO end: oldest task.
    queue.tasks.pop_front();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    steals_.fetch_add(1, std::memory_order_relaxed);
    tl_stole_last = true;
    return true;
  }
  return false;
}

void Executor::RunTask(int self, Task& task) {
  obs::EventLog* log = ActiveEventLog();
  bool stolen = tl_stole_last;
  tl_stole_last = false;
  double trace_begin = log != nullptr ? obs::TraceClockNow() : 0.0;
  double cpu_start = util::ThreadCpuSeconds();
  try {
    task.fn();
  } catch (...) {
    task.group->SetError(std::current_exception());
  }
  if (log != nullptr) {
    NameTrackOnce(log, self);
    if (stolen) {
      log->RecordComplete("steal", trace_begin, trace_begin, "executor");
    }
    log->RecordComplete("task", trace_begin, obs::TraceClockNow(),
                        "executor");
  }
  double busy = util::ThreadCpuSeconds() - cpu_start;
  if (self >= 0) {
    worker_busy_[static_cast<size_t>(self)]->fetch_add(
        busy, std::memory_order_relaxed);
  } else {
    helper_busy_.fetch_add(busy, std::memory_order_relaxed);
  }
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<GroupState> group = std::move(task.group);
  task = Task{};  // Drop the closure before signalling completion.
  group->Finish();
}

bool Executor::TryRunOneTask(int self) {
  Task task;
  bool got = (self >= 0 && PopOwn(static_cast<size_t>(self), &task)) ||
             StealFrom(self, &task);
  if (!got) return false;
  RunTask(self, task);
  return true;
}

void Executor::WorkerLoop(size_t w) {
  tl_executor = this;
  tl_worker = static_cast<int>(w);
  Task task;
  while (true) {
    if (PopOwn(w, &task) || StealFrom(static_cast<int>(w), &task)) {
      RunTask(static_cast<int>(w), task);
      continue;
    }
    util::MutexLock lock(sleep_mu_);
    while (!stop_ && pending_.load(std::memory_order_acquire) == 0) {
      sleep_cv_.Wait(sleep_mu_);
    }
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

size_t Executor::ChunksFor(size_t n) const {
  size_t parallelism = tl_parallelism;
  if (parallelism == 0) parallelism = std::max<size_t>(num_workers(), 1);
  return std::min(n, parallelism);
}

void Executor::ParallelChunks(
    size_t n, size_t chunks,
    const std::function<void(size_t, size_t, size_t)>& fn,
    std::vector<double>* chunk_cpu) {
  chunks = std::max<size_t>(chunks, 1);
  if (chunk_cpu != nullptr) chunk_cpu->assign(chunks, 0.0);
  if (n == 0) return;
  size_t chunk_size = (n + chunks - 1) / chunks;
  size_t live = (n + chunk_size - 1) / chunk_size;
  if (live <= 1) {
    double cpu_start = util::ThreadCpuSeconds();
    fn(0, 0, n);
    if (chunk_cpu != nullptr) {
      (*chunk_cpu)[0] = util::ThreadCpuSeconds() - cpu_start;
    }
    return;
  }
  TaskGroup group(*this);
  for (size_t c = 0; c < live; ++c) {
    size_t begin = c * chunk_size;
    size_t end = std::min(n, begin + chunk_size);
    WEBER_DCHECK_LT(begin, end) << "empty chunk dispatched";
    group.Run([&fn, chunk_cpu, c, begin, end] {
      double cpu_start = util::ThreadCpuSeconds();
      fn(c, begin, end);
      if (chunk_cpu != nullptr) {
        (*chunk_cpu)[c] = util::ThreadCpuSeconds() - cpu_start;
      }
    });
  }
  group.Wait();
}

void Executor::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = ChunksFor(n);
  if (chunks <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<double> chunk_cpu;
  ParallelChunks(
      n, chunks,
      [&fn](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) fn(i);
      },
      &chunk_cpu);
  if (obs::MetricsRegistry* registry = obs::Current()) {
    double sum = 0.0;
    double max = 0.0;
    for (double c : chunk_cpu) {
      sum += c;
      max = std::max(max, c);
    }
    double balance = max > 0.0 ? sum / max : 1.0;
    registry->GetCounter("weber.executor.parallel_fors").Increment();
    registry->GetGauge("weber.executor.balance_speedup").Set(balance);
    registry->GetHistogram("weber.executor.parallel_for_balance")
        .Record(balance);
  }
}

ExecutorStats Executor::Snapshot() const {
  ExecutorStats stats;
  stats.workers = queues_.size();
  stats.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  stats.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  stats.queue_depth = pending_.load(std::memory_order_relaxed);
  stats.worker_busy_seconds.reserve(worker_busy_.size());
  for (const auto& busy : worker_busy_) {
    stats.worker_busy_seconds.push_back(
        busy->load(std::memory_order_relaxed));
  }
  stats.helper_busy_seconds = helper_busy_.load(std::memory_order_relaxed);
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  return stats;
}

void Executor::PublishMetrics() {
  obs::MetricsRegistry* registry = obs::Current();
  if (registry == nullptr) return;
  util::MutexLock lock(publish_mu_);
  ExecutorStats now = Snapshot();
  const ExecutorStats& prev = last_published_;
  registry->GetCounter("weber.executor.tasks_run")
      .Add(now.tasks_run - prev.tasks_run);
  registry->GetCounter("weber.executor.tasks_submitted")
      .Add(now.tasks_submitted - prev.tasks_submitted);
  registry->GetCounter("weber.executor.steals")
      .Add(now.steals - prev.steals);
  registry->GetGauge("weber.executor.workers")
      .Set(static_cast<double>(now.workers));
  registry->GetGauge("weber.executor.max_queue_depth")
      .Set(static_cast<double>(now.max_queue_depth));
  registry->GetGauge("weber.executor.queue_depth")
      .Set(static_cast<double>(now.queue_depth));
  registry->GetGauge("weber.executor.helper_busy_seconds")
      .Set(now.helper_busy_seconds);
  registry->GetGauge("weber.executor.uptime_seconds")
      .Set(now.uptime_seconds);
  double wall = now.uptime_seconds - prev.uptime_seconds;
  if (wall > 0.0 && now.workers > 0) {
    double busy = now.helper_busy_seconds - prev.helper_busy_seconds;
    obs::Histogram& per_worker =
        registry->GetHistogram("weber.executor.worker_utilization");
    for (size_t w = 0; w < now.worker_busy_seconds.size(); ++w) {
      double prev_busy = w < prev.worker_busy_seconds.size()
                             ? prev.worker_busy_seconds[w]
                             : 0.0;
      double delta = now.worker_busy_seconds[w] - prev_busy;
      busy += delta;
      per_worker.Record(delta / wall);
    }
    registry->GetGauge("weber.executor.utilization")
        .Set(busy / (wall * static_cast<double>(now.workers)));
  }
  last_published_ = std::move(now);
}

// ---------------------------------------------------- ScopedParallelism

ScopedParallelism::ScopedParallelism(size_t parallelism)
    : prev_(tl_parallelism), installed_(parallelism != 0) {
  if (installed_) tl_parallelism = parallelism;
}

ScopedParallelism::~ScopedParallelism() {
  if (installed_) tl_parallelism = prev_;
}

size_t EffectiveParallelism() {
  if (tl_parallelism != 0) return tl_parallelism;
  return std::max<size_t>(Executor::Shared().num_workers(), 1);
}

}  // namespace weber::core
