#ifndef WEBER_MAPREDUCE_ENGINE_H_
#define WEBER_MAPREDUCE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/executor.h"
#include "util/check.h"
#include "util/timer.h"

namespace weber::mapreduce {

/// Timing and volume counters of one MapReduce job, mirroring what a
/// Hadoop job tracker would report.
struct JobStats {
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;
  /// Intermediate (key, value) pairs emitted by all mappers.
  uint64_t intermediate_pairs = 0;
  /// Distinct intermediate keys after grouping.
  uint64_t distinct_keys = 0;
  /// Sum over map workers of per-thread CPU seconds divided by the
  /// maximum single worker's CPU seconds: the speedup a perfectly
  /// parallel execution of this partitioning would achieve. Measured via
  /// thread CPU time so the metric is meaningful even when the host
  /// timeshares the workers on fewer cores.
  double map_balance_speedup = 1.0;
  /// Same for the reduce phase (one worker per partition).
  double reduce_balance_speedup = 1.0;

  double TotalSeconds() const {
    return map_seconds + shuffle_seconds + reduce_seconds;
  }
};

/// Re-expresses a JobStats on the ambient metrics registry (no-op when
/// none is attached): `weber.mapreduce.*` counters for volumes, phase
/// histograms for the timings, gauges for the balance speedups. The
/// engine calls this after every job, so JobStats stays a plain façade
/// for callers while the registry accumulates across jobs.
void PublishJobStats(const JobStats& stats);

/// Runs fn(i) for i in [0, n) split into `workers` contiguous chunks on
/// the shared work-stealing executor (core::Executor). fn must be safe to
/// call concurrently for distinct i. When worker_cpu is non-null it
/// receives one per-chunk CPU time entry per worker slot (see
/// JobStats::map_balance_speedup for why CPU time, not wall time).
void ParallelFor(size_t n, size_t workers,
                 const std::function<void(size_t)>& fn,
                 std::vector<double>* worker_cpu = nullptr);

/// Mixes a raw std::hash fingerprint with the splitmix64 finalizer before
/// the modulo that assigns intermediate keys to partitions. Identity
/// hashes (libstdc++ hashes integers to themselves) would otherwise
/// stripe sequential or strided key spaces onto a single reducer.
inline uint64_t MixFingerprint(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// In-process multi-threaded MapReduce engine.
///
/// This is the substrate standing in for the Hadoop clusters of Dedoop and
/// parallel meta-blocking: the same programming model (map -> shuffle by
/// key hash -> grouped reduce), with explicit per-phase barriers, hash
/// partitioning of the intermediate key space, and per-phase timing. Keys
/// must be hashable and equality-comparable.
template <typename Input, typename K, typename V, typename Output>
class MapReduceJob {
 public:
  /// Emit callback handed to mappers.
  using Emit = std::function<void(K, V)>;
  /// Mapper: consumes one input record, emits intermediate pairs.
  using MapFn = std::function<void(const Input&, const Emit&)>;
  /// Reducer: consumes one key and all its values, appends outputs.
  using ReduceFn =
      std::function<void(const K&, std::vector<V>&, std::vector<Output>&)>;

  MapReduceJob(MapFn map_fn, ReduceFn reduce_fn)
      : map_fn_(std::move(map_fn)), reduce_fn_(std::move(reduce_fn)) {}

  /// Executes the job over the inputs with the given parallelism and
  /// returns all reducer outputs (ordered by partition, then by the
  /// grouping order within the partition — callers needing a specific
  /// order must sort). Phases run as chunked tasks on the shared
  /// work-stealing executor instead of spawning fresh threads per phase.
  std::vector<Output> Run(const std::vector<Input>& inputs, size_t workers,
                          JobStats* stats = nullptr) const {
    workers = std::max<size_t>(workers, 1);
    if (inputs.empty()) {
      // Nothing to map: skip all three phases instead of dispatching
      // `workers` empty tasks per phase.
      JobStats job;
      PublishJobStats(job);
      if (stats != nullptr) *stats = job;
      return {};
    }
    size_t partitions = workers;
    util::Timer timer;
    core::Executor& executor = core::Executor::Shared();

    // ---- Map phase: each chunk fills its own per-partition buffers. ----
    std::vector<std::vector<std::vector<std::pair<K, V>>>> buffers(
        workers, std::vector<std::vector<std::pair<K, V>>>(partitions));
    std::vector<double> map_cpu;
    executor.ParallelChunks(
        inputs.size(), workers,
        [this, &inputs, &buffers, partitions](size_t w, size_t begin,
                                              size_t end) {
          Emit emit = [&buffers, w, partitions](K key, V value) {
            size_t p = MixFingerprint(std::hash<K>{}(key)) % partitions;
            WEBER_DCHECK_LT(p, buffers[w].size())
                << "partition function routed a key outside the partition "
                << "space";
            buffers[w][p].emplace_back(std::move(key), std::move(value));
          };
          for (size_t i = begin; i < end; ++i) {
            map_fn_(inputs[i], emit);
          }
        },
        &map_cpu);
    double map_seconds = timer.ElapsedSeconds();
    timer.Restart();

    // ---- Shuffle phase: group by key within each partition. ----
    std::vector<std::unordered_map<K, std::vector<V>>> grouped(partitions);
    uint64_t intermediate = 0;
    {
      std::vector<uint64_t> per_partition_pairs(partitions, 0);
      executor.ParallelChunks(
          partitions, partitions,
          [&buffers, &grouped, &per_partition_pairs, workers](
              size_t, size_t begin, size_t end) {
            for (size_t p = begin; p < end; ++p) {
              for (size_t w = 0; w < workers; ++w) {
                for (auto& [key, value] : buffers[w][p]) {
                  grouped[p][std::move(key)].push_back(std::move(value));
                  ++per_partition_pairs[p];
                }
                buffers[w][p].clear();
              }
            }
          });
      for (uint64_t c : per_partition_pairs) intermediate += c;
    }
    if (WEBER_DCHECK_IS_ON()) {
      // Every mapped pair must reach exactly one reducer: a non-empty
      // buffer here means the shuffle dropped work on the floor.
      for (const auto& worker_buffers : buffers) {
        for (const auto& bucket : worker_buffers) {
          WEBER_DCHECK(bucket.empty())
              << "shuffle left intermediate pairs behind";
        }
      }
    }
    double shuffle_seconds = timer.ElapsedSeconds();
    timer.Restart();

    // ---- Reduce phase: one task per partition. ----
    std::vector<std::vector<Output>> outputs(partitions);
    std::vector<double> reduce_cpu;
    uint64_t distinct_keys = 0;
    executor.ParallelChunks(
        partitions, partitions,
        [this, &grouped, &outputs](size_t, size_t begin, size_t end) {
          for (size_t p = begin; p < end; ++p) {
            for (auto& [key, values] : grouped[p]) {
              reduce_fn_(key, values, outputs[p]);
            }
          }
        },
        &reduce_cpu);
    for (const auto& g : grouped) distinct_keys += g.size();
    double reduce_seconds = timer.ElapsedSeconds();

    JobStats job;
    job.map_seconds = map_seconds;
    job.shuffle_seconds = shuffle_seconds;
    job.reduce_seconds = reduce_seconds;
    job.intermediate_pairs = intermediate;
    job.distinct_keys = distinct_keys;
    auto balance = [](const std::vector<double>& cpu) {
      double sum = 0.0;
      double max = 0.0;
      for (double c : cpu) {
        sum += c;
        max = std::max(max, c);
      }
      return max > 0.0 ? sum / max : 1.0;
    };
    job.map_balance_speedup = balance(map_cpu);
    job.reduce_balance_speedup = balance(reduce_cpu);
    PublishJobStats(job);
    if (stats != nullptr) *stats = job;

    std::vector<Output> all;
    size_t total = 0;
    for (const auto& part : outputs) total += part.size();
    all.reserve(total);
    for (auto& part : outputs) {
      all.insert(all.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return all;
  }

 private:
  MapFn map_fn_;
  ReduceFn reduce_fn_;
};

}  // namespace weber::mapreduce

#endif  // WEBER_MAPREDUCE_ENGINE_H_
