#ifndef WEBER_MAPREDUCE_PARALLEL_META_BLOCKING_H_
#define WEBER_MAPREDUCE_PARALLEL_META_BLOCKING_H_

#include <vector>

#include "mapreduce/engine.h"
#include "metablocking/pruning_schemes.h"

namespace weber::mapreduce {

/// Per-phase timings of a parallel meta-blocking run.
struct ParallelMetaBlockingStats {
  /// The MapReduce job that builds the entity-to-blocks index.
  JobStats index_job;
  /// Parallel edge weighting + node-local pruning.
  double weighting_seconds = 0.0;
  /// Load-balance speedup of the weighting phase: sum over workers of
  /// per-thread CPU seconds over the max single worker (the speedup ideal
  /// cores would realise; see JobStats::map_balance_speedup).
  double weighting_balance_speedup = 1.0;
  /// Final vote combination (union / reciprocal semantics).
  double combine_seconds = 0.0;
};

/// Parallel meta-blocking (Efthymiou et al., Inf. Syst.'17), entity-based
/// strategy: a MapReduce job builds the entity-to-blocks index; the
/// weighting and node-centric pruning of each node then proceed in
/// parallel, each node seeing only its own block list and those of its
/// co-occurring neighbours. Produces exactly the pairs of the sequential
/// metablocking::MetaBlock for the same schemes.
std::vector<model::IdPair> ParallelMetaBlock(
    const blocking::BlockCollection& blocks,
    metablocking::WeightScheme weights, metablocking::PruningScheme pruning,
    const metablocking::PruneOptions& options, size_t workers,
    ParallelMetaBlockingStats* stats = nullptr);

}  // namespace weber::mapreduce

#endif  // WEBER_MAPREDUCE_PARALLEL_META_BLOCKING_H_
