#ifndef WEBER_MAPREDUCE_PARALLEL_TOKEN_BLOCKING_H_
#define WEBER_MAPREDUCE_PARALLEL_TOKEN_BLOCKING_H_

#include "blocking/block.h"
#include "blocking/token_blocking.h"
#include "mapreduce/engine.h"

namespace weber::mapreduce {

/// Token blocking as a MapReduce job (the Dedoop-style parallelisation of
/// Section II): mappers tokenize entity descriptions and emit
/// (token, entity-id) pairs; reducers materialise one block per token.
/// Produces the same blocks as the sequential TokenBlocking (up to block
/// order).
blocking::BlockCollection ParallelTokenBlocking(
    const model::EntityCollection& collection, size_t workers,
    const blocking::TokenBlockingOptions& options = {},
    JobStats* stats = nullptr);

}  // namespace weber::mapreduce

#endif  // WEBER_MAPREDUCE_PARALLEL_TOKEN_BLOCKING_H_
