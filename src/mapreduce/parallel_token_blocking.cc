#include "mapreduce/parallel_token_blocking.h"

#include <algorithm>
#include <string>

#include "text/tokenizer.h"

namespace weber::mapreduce {

blocking::BlockCollection ParallelTokenBlocking(
    const model::EntityCollection& collection, size_t workers,
    const blocking::TokenBlockingOptions& options, JobStats* stats) {
  // Inputs are entity ids; the mapper looks descriptions up in the shared
  // read-only collection (the "distributed cache" of the Hadoop original).
  std::vector<model::EntityId> ids(collection.size());
  for (model::EntityId id = 0; id < collection.size(); ++id) ids[id] = id;

  MapReduceJob<model::EntityId, std::string, model::EntityId,
               blocking::Block>
      job(
          [&collection, &options](const model::EntityId& id,
                                  const auto& emit) {
            for (std::string& token :
                 text::ValueTokens(collection[id], options.normalize)) {
              if (token.size() < options.min_token_length) continue;
              emit(std::move(token), id);
            }
          },
          [&options](const std::string& token,
                     std::vector<model::EntityId>& ids_of_token,
                     std::vector<blocking::Block>& out) {
            if (ids_of_token.size() < 2) return;
            if (options.max_block_size != 0 &&
                ids_of_token.size() > options.max_block_size) {
              return;
            }
            out.push_back(blocking::Block{token, std::move(ids_of_token)});
          });

  std::vector<blocking::Block> raw = job.Run(ids, workers, stats);
  // Deterministic output order regardless of partitioning.
  std::sort(raw.begin(), raw.end(),
            [](const blocking::Block& x, const blocking::Block& y) {
              return x.key < y.key;
            });
  blocking::BlockCollection result(&collection);
  for (blocking::Block& block : raw) {
    result.AddBlock(std::move(block));
  }
  return result;
}

}  // namespace weber::mapreduce
