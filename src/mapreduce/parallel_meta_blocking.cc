#include "mapreduce/parallel_meta_blocking.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "metablocking/blocking_graph.h"
#include "util/timer.h"

namespace weber::mapreduce {

namespace {

using metablocking::PruningScheme;
using metablocking::WeightScheme;

struct NeighborStats {
  uint32_t common_blocks = 0;
  double arcs_sum = 0.0;
};

// Gathers, for node v, every comparable co-occurring neighbour with the
// number of shared blocks and the ARCS partial sum.
std::unordered_map<model::EntityId, NeighborStats> GatherNeighbors(
    model::EntityId v, const blocking::BlockCollection& blocks,
    const std::vector<std::vector<uint32_t>>& entity_blocks,
    const std::vector<uint64_t>& cardinality) {
  std::unordered_map<model::EntityId, NeighborStats> neighbors;
  const model::EntityCollection* collection = blocks.collection();
  for (uint32_t b : entity_blocks[v]) {
    double arcs = cardinality[b] > 0
                      ? 1.0 / static_cast<double>(cardinality[b])
                      : 0.0;
    for (model::EntityId u : blocks.blocks()[b].entities) {
      if (u == v) continue;
      if (collection != nullptr && !collection->Comparable(u, v)) continue;
      NeighborStats& stats = neighbors[u];
      ++stats.common_blocks;
      stats.arcs_sum += arcs;
    }
  }
  return neighbors;
}

double WeightOf(WeightScheme scheme, model::EntityId v, model::EntityId u,
                const NeighborStats& stats,
                const std::vector<std::vector<uint32_t>>& entity_blocks,
                const std::vector<uint32_t>& degree, double num_blocks,
                double num_nodes) {
  switch (scheme) {
    case WeightScheme::kCbs:
      return stats.common_blocks;
    case WeightScheme::kEcbs: {
      double blocks_v = static_cast<double>(entity_blocks[v].size());
      double blocks_u = static_cast<double>(entity_blocks[u].size());
      return stats.common_blocks * std::log(num_blocks / blocks_v) *
             std::log(num_blocks / blocks_u);
    }
    case WeightScheme::kJs: {
      double union_size = static_cast<double>(entity_blocks[v].size() +
                                              entity_blocks[u].size()) -
                          stats.common_blocks;
      return union_size > 0 ? stats.common_blocks / union_size : 0.0;
    }
    case WeightScheme::kEjs: {
      double union_size = static_cast<double>(entity_blocks[v].size() +
                                              entity_blocks[u].size()) -
                          stats.common_blocks;
      double js = union_size > 0 ? stats.common_blocks / union_size : 0.0;
      double deg_v = std::max<uint32_t>(degree[v], 1);
      double deg_u = std::max<uint32_t>(degree[u], 1);
      return js * std::log(num_nodes / deg_v) * std::log(num_nodes / deg_u);
    }
    case WeightScheme::kArcs:
      return stats.arcs_sum;
  }
  return 0.0;
}

bool HeavierOrEarlier(const metablocking::WeightedEdge& x,
                      const metablocking::WeightedEdge& y) {
  if (x.weight != y.weight) return x.weight > y.weight;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

double BalanceSpeedup(const std::vector<double>& worker_cpu) {
  double sum = 0.0;
  double max = 0.0;
  for (double c : worker_cpu) {
    sum += c;
    max = std::max(max, c);
  }
  return max > 0.0 ? sum / max : 1.0;
}

}  // namespace

std::vector<model::IdPair> ParallelMetaBlock(
    const blocking::BlockCollection& blocks, WeightScheme weights,
    PruningScheme pruning, const metablocking::PruneOptions& options,
    size_t workers, ParallelMetaBlockingStats* stats) {
  workers = std::max<size_t>(workers, 1);
  ParallelMetaBlockingStats local_stats;

  // ---- Stage 1 (MapReduce): entity-to-blocks index. ----
  std::vector<uint32_t> block_ids(blocks.NumBlocks());
  for (uint32_t b = 0; b < blocks.NumBlocks(); ++b) block_ids[b] = b;
  MapReduceJob<uint32_t, model::EntityId, uint32_t,
               std::pair<model::EntityId, std::vector<uint32_t>>>
      index_job(
          [&blocks](const uint32_t& b, const auto& emit) {
            for (model::EntityId id : blocks.blocks()[b].entities) {
              emit(id, b);
            }
          },
          [](const model::EntityId& id, std::vector<uint32_t>& ids,
             auto& out) {
            std::sort(ids.begin(), ids.end());
            out.emplace_back(id, std::move(ids));
          });
  auto index_pairs = index_job.Run(block_ids, workers, &local_stats.index_job);

  size_t num_nodes = blocks.collection() != nullptr
                         ? blocks.collection()->size()
                         : 0;
  for (const auto& [id, list] : index_pairs) {
    num_nodes = std::max<size_t>(num_nodes, id + 1);
  }
  std::vector<std::vector<uint32_t>> entity_blocks(num_nodes);
  for (auto& [id, list] : index_pairs) {
    entity_blocks[id] = std::move(list);
  }

  std::vector<uint64_t> cardinality(blocks.NumBlocks());
  for (uint32_t b = 0; b < blocks.NumBlocks(); ++b) {
    const blocking::Block& block = blocks.blocks()[b];
    cardinality[b] = blocks.collection() != nullptr
                         ? block.NumComparisons(*blocks.collection())
                         : block.size() * (block.size() - 1) / 2;
  }

  util::Timer timer;

  // EJS needs global node degrees first (one parallel pass).
  std::vector<uint32_t> degree;
  if (weights == WeightScheme::kEjs) {
    degree.assign(num_nodes, 0);
    ParallelFor(num_nodes, workers, [&](size_t v) {
      degree[v] = static_cast<uint32_t>(
          GatherNeighbors(static_cast<model::EntityId>(v), blocks,
                          entity_blocks, cardinality)
              .size());
    });
  }

  double num_blocks = std::max<double>(blocks.NumBlocks(), 1.0);
  double num_nodes_d = std::max<double>(num_nodes, 1.0);

  std::vector<model::IdPair> result;
  if (pruning == PruningScheme::kWep || pruning == PruningScheme::kCep) {
    // Edge-parallel: each edge is materialised once, at its lower
    // endpoint; global thresholding afterwards.
    std::vector<std::vector<metablocking::WeightedEdge>> per_node_edges(
        num_nodes);
    std::vector<double> worker_cpu;
    ParallelFor(
        num_nodes, workers,
        [&](size_t v_index) {
          model::EntityId v = static_cast<model::EntityId>(v_index);
          auto neighbors =
              GatherNeighbors(v, blocks, entity_blocks, cardinality);
          for (const auto& [u, ns] : neighbors) {
            if (u < v) continue;  // Materialise at the lower endpoint only.
            double w = WeightOf(weights, v, u, ns, entity_blocks, degree,
                                num_blocks, num_nodes_d);
            per_node_edges[v_index].push_back({v, u, w});
          }
        },
        &worker_cpu);
    local_stats.weighting_seconds = timer.ElapsedSeconds();
    local_stats.weighting_balance_speedup = BalanceSpeedup(worker_cpu);
    timer.Restart();

    std::vector<metablocking::WeightedEdge> edges;
    for (auto& part : per_node_edges) {
      edges.insert(edges.end(), part.begin(), part.end());
    }
    if (pruning == PruningScheme::kWep) {
      double mean = 0.0;
      for (const auto& edge : edges) mean += edge.weight;
      mean = edges.empty() ? 0.0 : mean / static_cast<double>(edges.size());
      for (const auto& edge : edges) {
        if (edge.weight >= mean) result.push_back(edge.pair());
      }
    } else {
      uint64_t assignments = 0;
      for (const blocking::Block& block : blocks.blocks()) {
        assignments += block.size();
      }
      uint64_t budget = std::max<uint64_t>(assignments / 2, 1);
      std::sort(edges.begin(), edges.end(), HeavierOrEarlier);
      if (edges.size() > budget) edges.resize(budget);
      for (const auto& edge : edges) result.push_back(edge.pair());
    }
    local_stats.combine_seconds = timer.ElapsedSeconds();
  } else {
    // Node-parallel WNP / CNP: each node retains a subset of its incident
    // edges; union or intersection of the two endpoint votes afterwards.
    uint64_t assignments = 0;
    for (const blocking::Block& block : blocks.blocks()) {
      assignments += block.size();
    }
    size_t k = static_cast<size_t>(std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(
               static_cast<double>(assignments) /
               std::max<size_t>(num_nodes, 1)))));

    std::vector<std::vector<model::IdPair>> retained_of_node(num_nodes);
    std::vector<double> worker_cpu;
    ParallelFor(
        num_nodes, workers,
        [&](size_t v_index) {
          model::EntityId v = static_cast<model::EntityId>(v_index);
          auto neighbors =
              GatherNeighbors(v, blocks, entity_blocks, cardinality);
          if (neighbors.empty()) return;
          std::vector<metablocking::WeightedEdge> incident;
          incident.reserve(neighbors.size());
          for (const auto& [u, ns] : neighbors) {
            double w = WeightOf(weights, v, u, ns, entity_blocks, degree,
                                num_blocks, num_nodes_d);
            model::IdPair pair = model::IdPair::Of(v, u);
            incident.push_back({pair.low, pair.high, w});
          }
          std::vector<model::IdPair>& retained = retained_of_node[v_index];
          if (pruning == PruningScheme::kWnp) {
            double mean = 0.0;
            for (const auto& edge : incident) mean += edge.weight;
            mean /= static_cast<double>(incident.size());
            for (const auto& edge : incident) {
              if (edge.weight >= mean) retained.push_back(edge.pair());
            }
          } else {  // CNP.
            size_t keep = std::min(k, incident.size());
            std::partial_sort(incident.begin(), incident.begin() + keep,
                              incident.end(), HeavierOrEarlier);
            for (size_t i = 0; i < keep; ++i) {
              retained.push_back(incident[i].pair());
            }
          }
        },
        &worker_cpu);
    local_stats.weighting_seconds = timer.ElapsedSeconds();
    local_stats.weighting_balance_speedup = BalanceSpeedup(worker_cpu);
    timer.Restart();

    std::unordered_map<model::IdPair, uint8_t, model::IdPairHash> votes;
    for (const auto& retained : retained_of_node) {
      for (const model::IdPair& pair : retained) {
        ++votes[pair];
      }
    }
    uint8_t needed = options.reciprocal ? 2 : 1;
    for (const auto& [pair, count] : votes) {
      if (count >= needed) result.push_back(pair);
    }
    local_stats.combine_seconds = timer.ElapsedSeconds();
  }

  std::sort(result.begin(), result.end());
  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace weber::mapreduce
