#include "mapreduce/engine.h"

#include <algorithm>

#include "obs/metrics.h"

namespace weber::mapreduce {

void PublishJobStats(const JobStats& stats) {
  obs::MetricsRegistry* registry = obs::Current();
  if (registry == nullptr) return;
  registry->GetCounter("weber.mapreduce.jobs").Increment();
  registry->GetCounter("weber.mapreduce.intermediate_pairs")
      .Add(stats.intermediate_pairs);
  registry->GetCounter("weber.mapreduce.distinct_keys")
      .Add(stats.distinct_keys);
  registry->GetHistogram("weber.mapreduce.map_seconds")
      .Record(stats.map_seconds);
  registry->GetHistogram("weber.mapreduce.shuffle_seconds")
      .Record(stats.shuffle_seconds);
  registry->GetHistogram("weber.mapreduce.reduce_seconds")
      .Record(stats.reduce_seconds);
  registry->GetGauge("weber.mapreduce.map_balance_speedup")
      .Set(stats.map_balance_speedup);
  registry->GetGauge("weber.mapreduce.reduce_balance_speedup")
      .Set(stats.reduce_balance_speedup);
}

void ParallelFor(size_t n, size_t workers,
                 const std::function<void(size_t)>& fn,
                 std::vector<double>* worker_cpu) {
  workers = std::max<size_t>(workers, 1);
  if (worker_cpu != nullptr) worker_cpu->assign(workers, 0.0);
  if (n == 0) return;
  if (workers == 1) {
    double cpu_start = util::ThreadCpuSeconds();
    for (size_t i = 0; i < n; ++i) fn(i);
    if (worker_cpu != nullptr) {
      (*worker_cpu)[0] = util::ThreadCpuSeconds() - cpu_start;
    }
    return;
  }
  size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&fn, worker_cpu, w, begin, end] {
      double cpu_start = util::ThreadCpuSeconds();
      for (size_t i = begin; i < end; ++i) fn(i);
      if (worker_cpu != nullptr) {
        (*worker_cpu)[w] = util::ThreadCpuSeconds() - cpu_start;
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace weber::mapreduce
