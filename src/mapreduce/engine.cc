#include "mapreduce/engine.h"

#include <algorithm>

namespace weber::mapreduce {

void ParallelFor(size_t n, size_t workers,
                 const std::function<void(size_t)>& fn,
                 std::vector<double>* worker_cpu) {
  workers = std::max<size_t>(workers, 1);
  if (worker_cpu != nullptr) worker_cpu->assign(workers, 0.0);
  if (n == 0) return;
  if (workers == 1) {
    double cpu_start = util::ThreadCpuSeconds();
    for (size_t i = 0; i < n; ++i) fn(i);
    if (worker_cpu != nullptr) {
      (*worker_cpu)[0] = util::ThreadCpuSeconds() - cpu_start;
    }
    return;
  }
  size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&fn, worker_cpu, w, begin, end] {
      double cpu_start = util::ThreadCpuSeconds();
      for (size_t i = begin; i < end; ++i) fn(i);
      if (worker_cpu != nullptr) {
        (*worker_cpu)[w] = util::ThreadCpuSeconds() - cpu_start;
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace weber::mapreduce
