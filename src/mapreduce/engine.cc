#include "mapreduce/engine.h"

#include <algorithm>

#include "obs/metrics.h"

namespace weber::mapreduce {

void PublishJobStats(const JobStats& stats) {
  obs::MetricsRegistry* registry = obs::Current();
  if (registry == nullptr) return;
  registry->GetCounter("weber.mapreduce.jobs").Increment();
  registry->GetCounter("weber.mapreduce.intermediate_pairs")
      .Add(stats.intermediate_pairs);
  registry->GetCounter("weber.mapreduce.distinct_keys")
      .Add(stats.distinct_keys);
  registry->GetHistogram("weber.mapreduce.map_seconds")
      .Record(stats.map_seconds);
  registry->GetHistogram("weber.mapreduce.shuffle_seconds")
      .Record(stats.shuffle_seconds);
  registry->GetHistogram("weber.mapreduce.reduce_seconds")
      .Record(stats.reduce_seconds);
  registry->GetGauge("weber.mapreduce.map_balance_speedup")
      .Set(stats.map_balance_speedup);
  registry->GetGauge("weber.mapreduce.reduce_balance_speedup")
      .Set(stats.reduce_balance_speedup);
}

void ParallelFor(size_t n, size_t workers,
                 const std::function<void(size_t)>& fn,
                 std::vector<double>* worker_cpu) {
  workers = std::max<size_t>(workers, 1);
  core::Executor::Shared().ParallelChunks(
      n, workers,
      [&fn](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) fn(i);
      },
      worker_cpu);
}

}  // namespace weber::mapreduce
