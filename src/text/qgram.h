#ifndef WEBER_TEXT_QGRAM_H_
#define WEBER_TEXT_QGRAM_H_

#include <string>
#include <string_view>
#include <vector>

namespace weber::text {

/// Returns the overlapping character q-grams of the input, in order of
/// appearance (duplicates preserved). Inputs shorter than q yield a single
/// gram equal to the whole input (if non-empty). Requires q >= 1.
std::vector<std::string> QGrams(std::string_view input, size_t q);

/// Returns the distinct q-grams of the input.
std::vector<std::string> DistinctQGrams(std::string_view input, size_t q);

/// Returns the padded q-grams: the input is framed with q-1 leading '#'
/// and q-1 trailing '$' characters so that boundary characters participate
/// in q grams each, as in classic q-gram similarity joins.
std::vector<std::string> PaddedQGrams(std::string_view input, size_t q);

}  // namespace weber::text

#endif  // WEBER_TEXT_QGRAM_H_
