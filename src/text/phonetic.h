#ifndef WEBER_TEXT_PHONETIC_H_
#define WEBER_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace weber::text {

/// American Soundex code of a word: first letter plus three digits
/// (e.g., "robert" and "rupert" both encode as R163). Non-alphabetic
/// input yields an empty code. The classic phonetic blocking key of the
/// record-linkage literature: names that sound alike block together even
/// when spelled differently.
std::string Soundex(std::string_view word);

/// A lighter phonetic normal form (NYSIIS-inspired): collapses common
/// letter groups (PH->F, KN->N, WR->R, ...) and strips vowels after the
/// first letter, without Soundex's fixed 4-character truncation. Retains
/// more discriminating power on long names.
std::string PhoneticKey(std::string_view word);

}  // namespace weber::text

#endif  // WEBER_TEXT_PHONETIC_H_
