#ifndef WEBER_TEXT_TFIDF_H_
#define WEBER_TEXT_TFIDF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/entity.h"

namespace weber::text {

/// A sparse TF-IDF vector: token id -> weight, pre-normalised to unit
/// length so that dot product equals cosine similarity.
struct TfIdfVector {
  /// (token id, weight) entries sorted by token id.
  std::vector<std::pair<uint32_t, double>> entries;
};

/// TF-IDF vectoriser over the value tokens of an entity collection.
///
/// Builds a vocabulary and document frequencies from the collection and
/// turns each description into a unit-length sparse vector. Used by the
/// canopy-clustering blocker and by similarity matchers that weigh rare
/// tokens higher than ubiquitous ones.
class TfIdfModel {
 public:
  /// Fits the model on the collection: assigns token ids and computes
  /// smoothed inverse document frequencies
  /// idf(t) = ln(1 + N / (1 + df(t))).
  static TfIdfModel Fit(const model::EntityCollection& collection);

  /// Vectorises a description against the fitted vocabulary. Unknown
  /// tokens are skipped.
  TfIdfVector Vectorize(const model::EntityDescription& entity) const;

  /// Cosine similarity of two unit vectors (their dot product).
  static double Cosine(const TfIdfVector& a, const TfIdfVector& b);

  /// Vectorises every description in the collection (index == EntityId).
  std::vector<TfIdfVector> VectorizeAll(
      const model::EntityCollection& collection) const;

  size_t vocabulary_size() const { return idf_.size(); }

  /// Returns the token id of a token, or -1 if unknown.
  int64_t TokenId(const std::string& token) const;

 private:
  std::unordered_map<std::string, uint32_t> vocabulary_;
  std::vector<double> idf_;  // Indexed by token id.
};

}  // namespace weber::text

#endif  // WEBER_TEXT_TFIDF_H_
