#ifndef WEBER_TEXT_NORMALIZER_H_
#define WEBER_TEXT_NORMALIZER_H_

#include <string>
#include <string_view>

namespace weber::text {

/// Options controlling string normalisation before tokenisation.
struct NormalizeOptions {
  /// Lowercase ASCII letters.
  bool lowercase = true;
  /// Replace punctuation with spaces (so "J.Smith" tokenises as two words).
  bool strip_punctuation = true;
  /// Collapse runs of whitespace into a single space and trim the ends.
  bool collapse_whitespace = true;
};

/// Returns the normalised form of the input under the given options.
/// Operates byte-wise on ASCII; non-ASCII bytes pass through unchanged,
/// which is sufficient for the synthetic corpora used here.
std::string Normalize(std::string_view input,
                      const NormalizeOptions& options = {});

}  // namespace weber::text

#endif  // WEBER_TEXT_NORMALIZER_H_
