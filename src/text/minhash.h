#ifndef WEBER_TEXT_MINHASH_H_
#define WEBER_TEXT_MINHASH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace weber::text {

/// MinHash signatures over token sets: `num_hashes` independent
/// permutations approximated by seeded 64-bit mixers; the agreement rate
/// of two signatures is an unbiased estimator of the Jaccard similarity
/// of the underlying sets. The standard sketch behind LSH blocking at
/// web scale.
class MinHasher {
 public:
  explicit MinHasher(size_t num_hashes = 64, uint64_t seed = 1);

  /// Signature of a token multiset (duplicates are irrelevant).
  std::vector<uint64_t> Signature(
      const std::vector<std::string>& tokens) const;

  /// Fraction of agreeing positions: the Jaccard estimate. Signatures
  /// must come from the same MinHasher.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

  size_t num_hashes() const { return salts_.size(); }

 private:
  std::vector<uint64_t> salts_;
};

}  // namespace weber::text

#endif  // WEBER_TEXT_MINHASH_H_
