#include "text/qgram.h"

#include <unordered_set>

namespace weber::text {

std::vector<std::string> QGrams(std::string_view input, size_t q) {
  std::vector<std::string> grams;
  if (input.empty() || q == 0) return grams;
  if (input.size() <= q) {
    grams.emplace_back(input);
    return grams;
  }
  grams.reserve(input.size() - q + 1);
  for (size_t i = 0; i + q <= input.size(); ++i) {
    grams.emplace_back(input.substr(i, q));
  }
  return grams;
}

std::vector<std::string> DistinctQGrams(std::string_view input, size_t q) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> distinct;
  for (std::string& gram : QGrams(input, q)) {
    if (seen.insert(gram).second) distinct.push_back(std::move(gram));
  }
  return distinct;
}

std::vector<std::string> PaddedQGrams(std::string_view input, size_t q) {
  if (input.empty() || q == 0) return {};
  if (q == 1) return QGrams(input, q);
  std::string padded;
  padded.reserve(input.size() + 2 * (q - 1));
  padded.append(q - 1, '#');
  padded.append(input);
  padded.append(q - 1, '$');
  return QGrams(padded, q);
}

}  // namespace weber::text
