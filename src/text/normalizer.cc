#include "text/normalizer.h"

#include <cctype>

namespace weber::text {

std::string Normalize(std::string_view input,
                      const NormalizeOptions& options) {
  std::string out;
  out.reserve(input.size());
  for (unsigned char c : input) {
    if (options.lowercase && std::isupper(c)) {
      c = static_cast<unsigned char>(std::tolower(c));
    }
    if (options.strip_punctuation && std::ispunct(c)) c = ' ';
    out.push_back(static_cast<char>(c));
  }
  if (!options.collapse_whitespace) return out;

  std::string collapsed;
  collapsed.reserve(out.size());
  bool in_space = true;  // Leading spaces are trimmed.
  for (unsigned char c : out) {
    if (std::isspace(c)) {
      if (!in_space) collapsed.push_back(' ');
      in_space = true;
    } else {
      collapsed.push_back(static_cast<char>(c));
      in_space = false;
    }
  }
  if (!collapsed.empty() && collapsed.back() == ' ') collapsed.pop_back();
  return collapsed;
}

}  // namespace weber::text
