#include "text/tokenizer.h"

#include <algorithm>
#include <unordered_set>

namespace weber::text {

std::vector<std::string> TokenizeWords(std::string_view input) {
  std::vector<std::string> tokens;
  size_t start = 0;
  while (start < input.size()) {
    size_t end = input.find(' ', start);
    if (end == std::string_view::npos) end = input.size();
    if (end > start) tokens.emplace_back(input.substr(start, end - start));
    start = end + 1;
  }
  return tokens;
}

std::vector<std::string> NormalizeAndTokenize(
    std::string_view input, const NormalizeOptions& options) {
  return TokenizeWords(Normalize(input, options));
}

namespace {

std::vector<std::string> DistinctTokensOfValues(
    const model::EntityDescription& entity, std::string_view attribute,
    bool all_attributes, const NormalizeOptions& options) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> tokens;
  for (const model::AttributeValue& pair : entity.pairs()) {
    if (!all_attributes && pair.attribute != attribute) continue;
    for (std::string& token : NormalizeAndTokenize(pair.value, options)) {
      if (seen.insert(token).second) tokens.push_back(std::move(token));
    }
  }
  return tokens;
}

}  // namespace

std::vector<std::string> ValueTokens(const model::EntityDescription& entity,
                                     const NormalizeOptions& options) {
  return DistinctTokensOfValues(entity, /*attribute=*/{},
                                /*all_attributes=*/true, options);
}

std::vector<std::string> AttributeValueTokens(
    const model::EntityDescription& entity, std::string_view attribute,
    const NormalizeOptions& options) {
  return DistinctTokensOfValues(entity, attribute,
                                /*all_attributes=*/false, options);
}

}  // namespace weber::text
