#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "text/qgram.h"

namespace weber::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter string.
  if (a.empty()) return b.size();
  // Single-row dynamic program over the shorter string.
  std::vector<size_t> row(a.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t diagonal = row[0];  // dp[j-1][0]
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, substitute});
    }
  }
  return row[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t window =
      std::max(a.size(), b.size()) / 2 > 0
          ? std::max(a.size(), b.size()) / 2 - 1
          : 0;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * prefix_scale * (1.0 - jaro);
}

namespace {

// Returns (|A ∩ B|, |A|, |B|) over distinct tokens.
struct SetStats {
  size_t intersection;
  size_t size_a;
  size_t size_b;
};

SetStats ComputeSetStats(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  std::unordered_set<std::string_view> set_a(a.begin(), a.end());
  std::unordered_set<std::string_view> set_b(b.begin(), b.end());
  const auto& smaller = set_a.size() <= set_b.size() ? set_a : set_b;
  const auto& larger = set_a.size() <= set_b.size() ? set_b : set_a;
  size_t intersection = 0;
  for (std::string_view token : smaller) {
    if (larger.contains(token)) ++intersection;
  }
  return {intersection, set_a.size(), set_b.size()};
}

}  // namespace

size_t OverlapSize(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  return ComputeSetStats(a, b).intersection;
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  SetStats stats = ComputeSetStats(a, b);
  size_t union_size = stats.size_a + stats.size_b - stats.intersection;
  if (union_size == 0) return 1.0;
  return static_cast<double>(stats.intersection) / union_size;
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  SetStats stats = ComputeSetStats(a, b);
  if (stats.size_a + stats.size_b == 0) return 1.0;
  return 2.0 * stats.intersection / (stats.size_a + stats.size_b);
}

double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  SetStats stats = ComputeSetStats(a, b);
  if (stats.size_a == 0 || stats.size_b == 0) {
    return stats.size_a == stats.size_b ? 1.0 : 0.0;
  }
  return stats.intersection /
         std::sqrt(static_cast<double>(stats.size_a) * stats.size_b);
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  SetStats stats = ComputeSetStats(a, b);
  size_t smaller = std::min(stats.size_a, stats.size_b);
  if (smaller == 0) return stats.size_a == stats.size_b ? 1.0 : 0.0;
  return static_cast<double>(stats.intersection) / smaller;
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty()) return b.empty() ? 1.0 : 0.0;
  if (b.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& token_a : a) {
    double best = 0.0;
    for (const std::string& token_b : b) {
      best = std::max(best, JaroWinklerSimilarity(token_a, token_b));
    }
    total += best;
  }
  return total / a.size();
}

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  return JaccardSimilarity(DistinctQGrams(a, q), DistinctQGrams(b, q));
}

}  // namespace weber::text
