#ifndef WEBER_TEXT_TOKENIZER_H_
#define WEBER_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/entity.h"
#include "text/normalizer.h"

namespace weber::text {

/// Splits a normalised string into whitespace-delimited tokens.
std::vector<std::string> TokenizeWords(std::string_view input);

/// Normalises then tokenises the input.
std::vector<std::string> NormalizeAndTokenize(
    std::string_view input, const NormalizeOptions& options = {});

/// Returns the distinct tokens appearing in any attribute value of the
/// description (schema-agnostic: attribute names are ignored). This is the
/// token universe that token blocking and meta-blocking build on.
std::vector<std::string> ValueTokens(const model::EntityDescription& entity,
                                     const NormalizeOptions& options = {});

/// Returns the distinct tokens of one attribute's values only.
std::vector<std::string> AttributeValueTokens(
    const model::EntityDescription& entity, std::string_view attribute,
    const NormalizeOptions& options = {});

}  // namespace weber::text

#endif  // WEBER_TEXT_TOKENIZER_H_
