#include "text/phonetic.h"

#include <cctype>

namespace weber::text {

namespace {

// Soundex digit classes; 0 means "not coded" (vowels and h/w/y).
char SoundexDigit(char c) {
  switch (c) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

char LowerAlpha(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  if (!std::isalpha(u)) return '\0';
  return static_cast<char>(std::tolower(u));
}

}  // namespace

std::string Soundex(std::string_view word) {
  // Find the first alphabetic character.
  size_t start = 0;
  while (start < word.size() && LowerAlpha(word[start]) == '\0') ++start;
  if (start == word.size()) return {};

  char first = LowerAlpha(word[start]);
  std::string code(1, static_cast<char>(std::toupper(first)));
  char previous_digit = SoundexDigit(first);
  for (size_t i = start + 1; i < word.size() && code.size() < 4; ++i) {
    char c = LowerAlpha(word[i]);
    if (c == '\0') break;  // Stop at the first non-letter.
    if (c == 'h' || c == 'w') continue;  // Transparent to adjacency.
    char digit = SoundexDigit(c);
    if (digit != '0' && digit != previous_digit) {
      code.push_back(digit);
    }
    previous_digit = digit;
  }
  code.resize(4, '0');
  return code;
}

std::string PhoneticKey(std::string_view word) {
  // Lowercase alphabetic prefix of the word.
  std::string letters;
  for (char raw : word) {
    char c = LowerAlpha(raw);
    if (c == '\0') break;
    letters.push_back(c);
  }
  if (letters.empty()) return {};

  // Leading digraph replacements.
  auto starts_with = [&letters](std::string_view prefix) {
    return letters.size() >= prefix.size() &&
           std::string_view(letters).substr(0, prefix.size()) == prefix;
  };
  if (starts_with("kn") || starts_with("gn") || starts_with("pn")) {
    letters.erase(0, 1);
  } else if (starts_with("wr")) {
    letters.erase(0, 1);
  } else if (starts_with("ps")) {
    letters.erase(0, 1);
  } else if (starts_with("x")) {
    letters[0] = 's';
  }

  // Interior digraphs.
  std::string collapsed;
  for (size_t i = 0; i < letters.size(); ++i) {
    if (i + 1 < letters.size()) {
      std::string_view pair = std::string_view(letters).substr(i, 2);
      if (pair == "ph") {
        collapsed.push_back('f');
        ++i;
        continue;
      }
      if (pair == "gh") {
        collapsed.push_back('g');
        ++i;
        continue;
      }
      if (pair == "ck") {
        collapsed.push_back('k');
        ++i;
        continue;
      }
      if (pair == "sh" || pair == "ch") {
        collapsed.push_back('x');  // Shared sibilant bucket.
        ++i;
        continue;
      }
    }
    collapsed.push_back(letters[i] == 'z' ? 's' : letters[i]);
  }

  // Keep the first letter; drop vowels after it; squeeze repeats.
  std::string key(1, collapsed[0]);
  for (size_t i = 1; i < collapsed.size(); ++i) {
    char c = collapsed[i];
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' ||
        c == 'y' || c == 'h' || c == 'w') {
      continue;
    }
    if (c != key.back()) key.push_back(c);
  }
  return key;
}

}  // namespace weber::text
