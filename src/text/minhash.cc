#include "text/minhash.h"

#include <functional>
#include <limits>

#include "util/random.h"

namespace weber::text {

namespace {

// Mixes a base hash with a per-function salt (SplitMix64 finaliser).
uint64_t Mix(uint64_t value, uint64_t salt) {
  uint64_t z = value ^ salt;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

MinHasher::MinHasher(size_t num_hashes, uint64_t seed) {
  util::Rng rng(seed);
  salts_.reserve(num_hashes);
  for (size_t i = 0; i < num_hashes; ++i) {
    salts_.push_back(rng.Next());
  }
}

std::vector<uint64_t> MinHasher::Signature(
    const std::vector<std::string>& tokens) const {
  std::vector<uint64_t> signature(salts_.size(),
                                  std::numeric_limits<uint64_t>::max());
  for (const std::string& token : tokens) {
    uint64_t base = std::hash<std::string>{}(token);
    for (size_t h = 0; h < salts_.size(); ++h) {
      uint64_t value = Mix(base, salts_[h]);
      if (value < signature[h]) signature[h] = value;
    }
  }
  return signature;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace weber::text
