#ifndef WEBER_TEXT_SIMILARITY_H_
#define WEBER_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace weber::text {

// ---------------------------------------------------------------------------
// Character-based similarities
// ---------------------------------------------------------------------------

/// Levenshtein (edit) distance: minimum number of single-character
/// insertions, deletions and substitutions turning a into b.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Edit distance normalised to a similarity in [0, 1]:
/// 1 - distance / max(|a|, |b|). Two empty strings have similarity 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1]: Jaro boosted by a common-prefix bonus
/// (prefix scaling factor p, prefix capped at 4 characters).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

// ---------------------------------------------------------------------------
// Token-set similarities. Inputs need not be sorted or deduplicated; each
// function works on the distinct-token sets of its arguments.
// ---------------------------------------------------------------------------

/// |A ∩ B| over distinct tokens.
size_t OverlapSize(const std::vector<std::string>& a,
                   const std::vector<std::string>& b);

/// Jaccard: |A ∩ B| / |A ∪ B|. Two empty sets have similarity 1.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Dice: 2|A ∩ B| / (|A| + |B|).
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// Set cosine: |A ∩ B| / sqrt(|A| * |B|).
double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);

/// Overlap coefficient: |A ∩ B| / min(|A|, |B|).
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Monge-Elkan: the mean over tokens of a of the best Jaro-Winkler match in
/// b. Asymmetric by definition; callers wanting symmetry should average the
/// two directions.
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

/// Jaccard similarity of the q-gram sets of two strings; a robust default
/// for dirty attribute values.
double QGramJaccard(std::string_view a, std::string_view b, size_t q = 3);

}  // namespace weber::text

#endif  // WEBER_TEXT_SIMILARITY_H_
