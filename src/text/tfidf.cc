#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"

namespace weber::text {

TfIdfModel TfIdfModel::Fit(const model::EntityCollection& collection) {
  TfIdfModel fitted;
  std::vector<uint32_t> document_frequency;
  for (const model::EntityDescription& entity : collection.descriptions()) {
    for (const std::string& token : ValueTokens(entity)) {
      auto [it, inserted] = fitted.vocabulary_.emplace(
          token, static_cast<uint32_t>(document_frequency.size()));
      if (inserted) {
        document_frequency.push_back(1);
      } else {
        ++document_frequency[it->second];
      }
    }
  }
  double n = static_cast<double>(collection.size());
  fitted.idf_.resize(document_frequency.size());
  for (size_t i = 0; i < document_frequency.size(); ++i) {
    fitted.idf_[i] = std::log1p(n / (1.0 + document_frequency[i]));
  }
  return fitted;
}

TfIdfVector TfIdfModel::Vectorize(
    const model::EntityDescription& entity) const {
  // Term frequencies over distinct value tokens (ValueTokens dedups, so tf
  // here is 0/1; we still count raw occurrences across attribute values).
  std::unordered_map<uint32_t, double> weights;
  for (const model::AttributeValue& pair : entity.pairs()) {
    for (const std::string& token : NormalizeAndTokenize(pair.value)) {
      auto it = vocabulary_.find(token);
      if (it == vocabulary_.end()) continue;
      weights[it->second] += idf_[it->second];
    }
  }
  TfIdfVector vec;
  vec.entries.assign(weights.begin(), weights.end());
  std::sort(vec.entries.begin(), vec.entries.end());
  double norm = 0.0;
  for (const auto& [id, w] : vec.entries) norm += w * w;
  if (norm > 0.0) {
    norm = std::sqrt(norm);
    for (auto& [id, w] : vec.entries) w /= norm;
  }
  return vec;
}

double TfIdfModel::Cosine(const TfIdfVector& a, const TfIdfVector& b) {
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].first == b.entries[j].first) {
      dot += a.entries[i].second * b.entries[j].second;
      ++i;
      ++j;
    } else if (a.entries[i].first < b.entries[j].first) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

std::vector<TfIdfVector> TfIdfModel::VectorizeAll(
    const model::EntityCollection& collection) const {
  std::vector<TfIdfVector> vectors;
  vectors.reserve(collection.size());
  for (const model::EntityDescription& entity : collection.descriptions()) {
    vectors.push_back(Vectorize(entity));
  }
  return vectors;
}

int64_t TfIdfModel::TokenId(const std::string& token) const {
  auto it = vocabulary_.find(token);
  if (it == vocabulary_.end()) return -1;
  return it->second;
}

}  // namespace weber::text
