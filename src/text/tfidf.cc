#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "core/executor.h"
#include "text/tokenizer.h"

namespace weber::text {

TfIdfModel TfIdfModel::Fit(const model::EntityCollection& collection) {
  TfIdfModel fitted;
  // Token ids follow first-occurrence order over the serial scan. To keep
  // that order under parallel fitting, each contiguous entity chunk
  // records its tokens in local first-occurrence order, and the chunk
  // results are merged serially in chunk order: the first chunk that saw a
  // token globally is the one that assigns its id, which is exactly the
  // serial assignment for any chunk count.
  struct ChunkVocab {
    std::unordered_map<std::string, uint32_t> local_id;
    std::vector<std::string> tokens;  // Local first-occurrence order.
    std::vector<uint32_t> counts;     // Occurrences, indexed by local id.
  };
  size_t chunks = std::min<size_t>(
      std::max<size_t>(collection.size(), 1), core::EffectiveParallelism());
  std::vector<ChunkVocab> partial(chunks);
  core::Executor::Shared().ParallelChunks(
      collection.size(), chunks,
      [&collection, &partial](size_t chunk, size_t begin, size_t end) {
        ChunkVocab& local = partial[chunk];
        for (size_t i = begin; i < end; ++i) {
          for (const std::string& token :
               ValueTokens(collection.descriptions()[i])) {
            auto [it, inserted] = local.local_id.emplace(
                token, static_cast<uint32_t>(local.tokens.size()));
            if (inserted) {
              local.tokens.push_back(token);
              local.counts.push_back(1);
            } else {
              ++local.counts[it->second];
            }
          }
        }
      });
  std::vector<uint32_t> document_frequency;
  for (ChunkVocab& local : partial) {
    for (size_t t = 0; t < local.tokens.size(); ++t) {
      auto [it, inserted] = fitted.vocabulary_.emplace(
          std::move(local.tokens[t]),
          static_cast<uint32_t>(document_frequency.size()));
      if (inserted) {
        document_frequency.push_back(local.counts[t]);
      } else {
        document_frequency[it->second] += local.counts[t];
      }
    }
  }
  double n = static_cast<double>(collection.size());
  fitted.idf_.resize(document_frequency.size());
  for (size_t i = 0; i < document_frequency.size(); ++i) {
    fitted.idf_[i] = std::log1p(n / (1.0 + document_frequency[i]));
  }
  return fitted;
}

TfIdfVector TfIdfModel::Vectorize(
    const model::EntityDescription& entity) const {
  // Term frequencies over distinct value tokens (ValueTokens dedups, so tf
  // here is 0/1; we still count raw occurrences across attribute values).
  std::unordered_map<uint32_t, double> weights;
  for (const model::AttributeValue& pair : entity.pairs()) {
    for (const std::string& token : NormalizeAndTokenize(pair.value)) {
      auto it = vocabulary_.find(token);
      if (it == vocabulary_.end()) continue;
      weights[it->second] += idf_[it->second];
    }
  }
  TfIdfVector vec;
  vec.entries.assign(weights.begin(), weights.end());
  std::sort(vec.entries.begin(), vec.entries.end());
  double norm = 0.0;
  for (const auto& [id, w] : vec.entries) norm += w * w;
  if (norm > 0.0) {
    norm = std::sqrt(norm);
    for (auto& [id, w] : vec.entries) w /= norm;
  }
  return vec;
}

double TfIdfModel::Cosine(const TfIdfVector& a, const TfIdfVector& b) {
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].first == b.entries[j].first) {
      dot += a.entries[i].second * b.entries[j].second;
      ++i;
      ++j;
    } else if (a.entries[i].first < b.entries[j].first) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

std::vector<TfIdfVector> TfIdfModel::VectorizeAll(
    const model::EntityCollection& collection) const {
  // Each description vectorises independently against the (now read-only)
  // fitted model, into its own pre-sized slot.
  std::vector<TfIdfVector> vectors(collection.size());
  core::Executor::Shared().ParallelFor(collection.size(), [&](size_t i) {
    vectors[i] = Vectorize(collection.descriptions()[i]);
  });
  return vectors;
}

int64_t TfIdfModel::TokenId(const std::string& token) const {
  auto it = vocabulary_.find(token);
  if (it == vocabulary_.end()) return -1;
  return it->second;
}

}  // namespace weber::text
