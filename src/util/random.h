#ifndef WEBER_UTIL_RANDOM_H_
#define WEBER_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace weber::util {

/// Deterministic pseudo-random number generator used across the library.
///
/// All stochastic components of weber (corpus generation, noise injection,
/// canopy seeding, ...) draw from this class so that every experiment is
/// reproducible from a single seed. The implementation is SplitMix64-based:
/// small, fast, and stable across platforms, unlike std::mt19937 whose
/// distribution helpers are not portable across standard libraries.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed.
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniformly distributed integer in [0, bound); bound == 0
  /// returns 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniformly distributed integer in [lo, hi] inclusive.
  /// Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns a uniformly distributed double in [0, 1).
  double NextDouble();

  /// Returns true with the given probability (clamped to [0, 1]).
  bool NextBool(double probability);

  /// Returns a sample from a (truncated) zipf-like distribution over
  /// [0, n): index i is drawn with probability proportional to
  /// 1 / (i + 1)^skew. Used to model the skewed popularity of tokens and
  /// links in Web data. Requires n > 0.
  size_t NextZipf(size_t n, double skew);

  /// Returns a sample from a geometric distribution with success
  /// probability p in (0, 1]: the number of failures before the first
  /// success.
  size_t NextGeometric(double p);

  /// Returns a random lowercase ASCII string of the given length.
  std::string NextToken(size_t length);

  /// Shuffles the elements of the vector in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Draws k distinct indices from [0, n) uniformly at random. If k >= n,
  /// returns all indices 0..n-1 (shuffled).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_;
};

}  // namespace weber::util

#endif  // WEBER_UTIL_RANDOM_H_
