#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace weber::util {

namespace {

std::atomic<CheckContextHandler> g_context_handler{nullptr};

}  // namespace

CheckContextHandler SetCheckContextHandler(CheckContextHandler handler) {
  return g_context_handler.exchange(handler, std::memory_order_acq_rel);
}

namespace internal {

CheckFailureStream::CheckFailureStream(const char* file, int line,
                                       const char* expr,
                                       const char* values) {
  stream_ << "weber: " << file << ":" << line << ": " << expr << " failed";
  if (values != nullptr) stream_ << ": " << values;
  stream_ << ": ";
}

CheckFailureStream::~CheckFailureStream() {
  std::string message = stream_.str();
  if (CheckContextHandler handler =
          g_context_handler.load(std::memory_order_acquire)) {
    // The handler must not fail a check itself; swallow anything it throws
    // so the original failure still reaches the log.
    try {
      message += " [context: " + handler() + "]";
    } catch (...) {
      message += " [context: <handler threw>]";
    }
  }
  message += '\n';
  std::fputs(message.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace weber::util
