#include "util/union_find.h"

#include <numeric>
#include <unordered_map>

#include "util/check.h"

namespace weber::util {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), uint32_t{0});
}

uint32_t UnionFind::Find(uint32_t x) {
  WEBER_DCHECK_LT(x, parent_.size()) << "Find on an unissued element";
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // Path halving.
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  // Union by size: the surviving root's size must absorb the other's so
  // SizeOf stays exact and ranks stay balanced.
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  WEBER_DCHECK_GE(size_[ra], size_[rb]) << "union-by-size rank inverted";
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  WEBER_DCHECK_GE(num_sets_, size_t{1}) << "set count underflow";
  --num_sets_;
  return true;
}

void UnionFind::Grow(size_t n) {
  size_t old = parent_.size();
  if (n <= old) return;
  parent_.resize(n);
  size_.resize(n, 1);
  for (size_t i = old; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  num_sets_ += n - old;
  WEBER_DCHECK_EQ(parent_.size(), size_.size())
      << "parallel arrays diverged in Grow";
}

std::vector<std::vector<uint32_t>> UnionFind::Groups(
    bool include_singletons) {
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_root;
  by_root.reserve(num_sets_);
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    by_root[Find(i)].push_back(i);
  }
  std::vector<std::vector<uint32_t>> groups;
  groups.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    if (!include_singletons && members.size() < 2) continue;
    groups.push_back(std::move(members));
  }
  return groups;
}

}  // namespace weber::util
