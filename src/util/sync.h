#ifndef WEBER_UTIL_SYNC_H_
#define WEBER_UTIL_SYNC_H_

// The one sanctioned home of raw standard-library synchronisation
// primitives (lint rule: raw-sync). Everything else in src/ locks through
// weber::util::Mutex / MutexLock / CondVar, whose operations carry Clang
// thread-safety capability annotations (Hutchins et al., "C/C++ Thread
// Safety Analysis", SCAM 2014). Under clang with -Wthread-safety the
// compiler then proves, per translation unit, that every GUARDED_BY field
// is only touched with its mutex held and that every REQUIRES contract is
// met at each call site; under GCC the annotations compile away and the
// types are zero-cost wrappers. CI builds the whole tree with
// -Werror=thread-safety-analysis, so a missing guard is a build break,
// not a TSan coin flip.

#include <chrono>              // lint: allow(raw-sync)
#include <condition_variable>  // lint: allow(raw-sync)
#include <mutex>               // lint: allow(raw-sync)

// Attribute spelling: clang understands the capability attribute family;
// other compilers see empty token soup.
#if defined(__clang__)
#define WEBER_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define WEBER_THREAD_ANNOTATION_(x)
#endif

// The annotation vocabulary, in the order a reader meets it: a CAPABILITY
// type is something that can be held; GUARDED_BY ties data to it;
// REQUIRES/ACQUIRE/RELEASE/EXCLUDES state a function's contract; a
// SCOPED_CAPABILITY type holds it RAII-style.
#define WEBER_CAPABILITY(x) WEBER_THREAD_ANNOTATION_(capability(x))
#define WEBER_SCOPED_CAPABILITY WEBER_THREAD_ANNOTATION_(scoped_lockable)
#define WEBER_GUARDED_BY(x) WEBER_THREAD_ANNOTATION_(guarded_by(x))
#define WEBER_PT_GUARDED_BY(x) WEBER_THREAD_ANNOTATION_(pt_guarded_by(x))
#define WEBER_REQUIRES(...) \
  WEBER_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define WEBER_ACQUIRE(...) \
  WEBER_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define WEBER_RELEASE(...) \
  WEBER_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define WEBER_EXCLUDES(...) \
  WEBER_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define WEBER_RETURN_CAPABILITY(x) \
  WEBER_THREAD_ANNOTATION_(lock_returned(x))
#define WEBER_NO_THREAD_SAFETY_ANALYSIS \
  WEBER_THREAD_ANNOTATION_(no_thread_safety_analysis)

// Unprefixed spellings used throughout src/ — the names the analysis
// literature and the annotations themselves are read by. Guarded so a
// vendored header defining its own (e.g. an abseil drop-in) wins quietly.
#ifndef GUARDED_BY
#define GUARDED_BY(x) WEBER_GUARDED_BY(x)
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) WEBER_PT_GUARDED_BY(x)
#endif
#ifndef REQUIRES
#define REQUIRES(...) WEBER_REQUIRES(__VA_ARGS__)
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) WEBER_ACQUIRE(__VA_ARGS__)
#endif
#ifndef RELEASE
#define RELEASE(...) WEBER_RELEASE(__VA_ARGS__)
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) WEBER_EXCLUDES(__VA_ARGS__)
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY WEBER_SCOPED_CAPABILITY
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS WEBER_NO_THREAD_SAFETY_ANALYSIS
#endif

namespace weber::util {

class CondVar;

/// A std::mutex carrying the `mutex` capability. Prefer MutexLock for
/// scoped holds; the bare Lock()/Unlock() pair exists for the rare
/// hand-over-hand or release-in-the-middle pattern (e.g. a coalescing
/// leader dropping the queue lock while it runs the batch), where the
/// analysis still checks that every path rebalances.
class WEBER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WEBER_ACQUIRE() { mu_.lock(); }
  void Unlock() WEBER_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // lint: allow(raw-sync)
};

/// RAII holder of a Mutex (SCOPED_CAPABILITY). Relockable: Unlock() may
/// drop the mutex mid-scope and Lock() re-take it; the destructor releases
/// only if currently held. The analysis tracks the held/not-held state
/// through these calls, so an early return while unlocked is fine and a
/// double unlock is a compile error under clang.
class WEBER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WEBER_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() WEBER_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() WEBER_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() WEBER_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to a Mutex at each wait. There is no
/// predicate overload on purpose: a predicate lambda is analysed as a
/// separate function and so cannot read GUARDED_BY fields without its own
/// annotations — callers write the standard `while (!pred) cv.Wait(mu);`
/// loop instead, which the analysis checks in place.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires before returning.
  /// May wake spuriously; always re-check the predicate.
  void Wait(Mutex& mu) WEBER_REQUIRES(mu) {
    AdoptedLock lock(mu);
    cv_.wait(lock.lock);
  }

  /// Wait bounded by a duration. Returns true if woken (or spurious)
  /// before the timeout, false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      WEBER_REQUIRES(mu) {
    AdoptedLock lock(mu);
    return cv_.wait_for(lock.lock, timeout) == std::cv_status::no_timeout;
  }

  /// Wait bounded by a deadline. Returns true if woken (or spurious)
  /// before the deadline, false on timeout — so `while (!pred &&
  /// cv.WaitUntil(mu, deadline)) {}` re-waits spurious wakeups without
  /// extending the deadline.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 std::chrono::time_point<Clock, Duration> deadline)
      WEBER_REQUIRES(mu) {
    AdoptedLock lock(mu);
    return cv_.wait_until(lock.lock, deadline) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // Wraps the caller-held Mutex in the unique_lock std::condition_variable
  // demands, without double-locking: adopt on entry, release (not unlock)
  // on exit — the mutex is held again when wait returns, exactly as the
  // REQUIRES contract promises the caller.
  struct AdoptedLock {
    explicit AdoptedLock(Mutex& mu) : lock(mu.mu_, std::adopt_lock) {}
    ~AdoptedLock() { lock.release(); }
    std::unique_lock<std::mutex> lock;  // lint: allow(raw-sync)
  };

  std::condition_variable cv_;  // lint: allow(raw-sync)
};

}  // namespace weber::util

#endif  // WEBER_UTIL_SYNC_H_
