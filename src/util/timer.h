#ifndef WEBER_UTIL_TIMER_H_
#define WEBER_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace weber::util {

/// Monotonic wall-clock stopwatch used by benches and the progressive
/// budget accounting.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Returns elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns elapsed microseconds since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU seconds consumed by the calling thread so far. Used by the
/// MapReduce engine to measure per-worker load independently of how the
/// host timeshares its cores (on a single-core machine, wall clock cannot
/// show parallel speedup, but per-thread CPU time still exposes the load
/// balance the partitioning achieves).
double ThreadCpuSeconds();

}  // namespace weber::util

#endif  // WEBER_UTIL_TIMER_H_
