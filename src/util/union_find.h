#ifndef WEBER_UTIL_UNION_FIND_H_
#define WEBER_UTIL_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace weber::util {

/// Disjoint-set forest with union by size and path halving.
///
/// Used by match clustering (connected components), iterative blocking
/// (merge tracking), and the corpus generator (duplicate cluster
/// bookkeeping).
class UnionFind {
 public:
  /// Creates n singleton sets, labelled 0..n-1.
  explicit UnionFind(size_t n);

  /// Returns the representative of x's set.
  uint32_t Find(uint32_t x);

  /// Merges the sets containing a and b. Returns true if they were
  /// previously distinct.
  bool Union(uint32_t a, uint32_t b);

  /// Returns true if a and b are in the same set.
  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Returns the size of the set containing x.
  size_t SizeOf(uint32_t x) { return size_[Find(x)]; }

  /// Returns the number of disjoint sets.
  size_t num_sets() const { return num_sets_; }

  /// Returns the number of elements.
  size_t num_elements() const { return parent_.size(); }

  /// Grows the structure to hold n elements (new elements are singletons).
  /// No-op if n <= num_elements().
  void Grow(size_t n);

  /// Returns the members of each non-singleton set, grouped by
  /// representative. Singletons are omitted when include_singletons is
  /// false.
  std::vector<std::vector<uint32_t>> Groups(bool include_singletons = false);

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_sets_;
};

}  // namespace weber::util

#endif  // WEBER_UTIL_UNION_FIND_H_
