#ifndef WEBER_UTIL_ARENA_VEC_H_
#define WEBER_UTIL_ARENA_VEC_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace weber::util {

/// A flat arena of trivially-copyable elements that is either *owned* (a
/// plain std::vector, the mutable state of a live store) or *borrowed* (a
/// read-only view into externally owned memory — in practice an mmap-ed
/// snapshot section, kept alive by a shared keep-alive handle).
///
/// Borrowing is what makes snapshot loading zero-copy: the storage layer
/// writes arenas in their in-memory layout, so a loaded store can point
/// its ArenaVecs straight into the mapping without touching the payload
/// bytes. The first mutation detaches — the borrowed contents are copied
/// into an owned vector once, and the arena behaves like a vector from
/// then on (the eager-copy fallback path for writable stores). Reads never
/// branch on more than the owned/borrowed flag, and hot paths that resolve
/// base pointers once (PostingView, spans) are unaffected.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec elements must be trivially copyable: borrowed "
                "arenas reinterpret raw mapped bytes");

 public:
  ArenaVec() = default;

  /// Wraps externally owned memory. `keepalive` must keep `data` valid for
  /// as long as any copy of this ArenaVec (or a detached copy of its
  /// keepalive) lives — the storage layer passes the mapped file handle.
  static ArenaVec Borrowed(const T* data, size_t size,
                           std::shared_ptr<const void> keepalive) {
    ArenaVec vec;
    vec.borrowed_data_ = data;
    vec.borrowed_size_ = size;
    vec.keepalive_ = std::move(keepalive);
    vec.borrowed_ = true;
    return vec;
  }

  bool borrowed() const { return borrowed_; }

  size_t size() const { return borrowed_ ? borrowed_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T* data() const { return borrowed_ ? borrowed_data_ : owned_.data(); }

  const T& operator[](size_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  /// Mutable access: detaches from borrowed memory (one copy) and hands
  /// out the owned vector. Every mutation site routes through here, so
  /// the copy-on-write point is explicit in the caller.
  std::vector<T>& MutableVector() {
    Detach();
    return owned_;
  }

  void push_back(const T& value) { MutableVector().push_back(value); }
  void clear() {
    owned_.clear();
    borrowed_data_ = nullptr;
    borrowed_size_ = 0;
    keepalive_.reset();
    borrowed_ = false;
  }

  /// Replaces the contents with an owned vector (snapshot eager-load path).
  void Assign(std::vector<T> values) {
    clear();
    owned_ = std::move(values);
  }

 private:
  void Detach() {
    if (!borrowed_) return;
    owned_.assign(borrowed_data_, borrowed_data_ + borrowed_size_);
    borrowed_data_ = nullptr;
    borrowed_size_ = 0;
    keepalive_.reset();
    borrowed_ = false;
  }

  std::vector<T> owned_;
  const T* borrowed_data_ = nullptr;
  size_t borrowed_size_ = 0;
  std::shared_ptr<const void> keepalive_;
  bool borrowed_ = false;
};

}  // namespace weber::util

#endif  // WEBER_UTIL_ARENA_VEC_H_
