#ifndef WEBER_UTIL_CHECK_H_
#define WEBER_UTIL_CHECK_H_

#include <cstddef>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>

/// Contract macros for the invariants the pipeline's correctness rests on
/// (sorted token-id arenas, ordered commits, stable entity ids, balanced
/// task groups). Zero dependencies beyond the standard library.
///
///   WEBER_CHECK(cond)            always on; streams a message and aborts
///   WEBER_CHECK_EQ/NE/LT/LE/GT/GE(a, b)
///                                always on; prints both operand values
///   WEBER_CHECK_SORTED(first, last)
///                                range is non-decreasing
///   WEBER_CHECK_UNIQUE(first, last)
///                                range is strictly increasing (sorted and
///                                duplicate-free)
///   WEBER_DCHECK* twins         compiled out in plain Release builds;
///                                active in Debug (NDEBUG unset) and in any
///                                build configured with -DWEBER_HARDENED=ON
///
/// Every macro evaluates its arguments exactly once when active and not at
/// all when compiled out (so conditions must be side-effect free). All of
/// them accept trailing streamed context:
///
///   WEBER_CHECK_LT(id, store.size()) << "stale id from " << source;
///
/// On failure the process writes one line to stderr —
///
///   weber: <file>:<line>: WEBER_CHECK_EQ(a, b) failed: <a> vs <b>: <extra>
///   [context: <handler output>]
///
/// — and aborts. The optional context handler (SetCheckContextHandler) lets
/// binaries append run state (active pipeline phase, config) to that line,
/// so field failures are diagnosable from a single log entry.

namespace weber::util {

/// Returns a one-line description of the current run state, appended to
/// every check-failure message. Must be async-signal tolerant in the sense
/// of not failing checks itself.
using CheckContextHandler = std::string (*)();

/// Installs `handler` (nullptr clears). Returns the previous handler.
CheckContextHandler SetCheckContextHandler(CheckContextHandler handler);

namespace internal {

/// Failure sink: collects the prefix plus any streamed extras, then prints
/// and aborts in the destructor (end of the failing full-expression).
class CheckFailureStream {
 public:
  /// `values` is the pre-rendered operand text ("3 vs 5") or nullptr.
  CheckFailureStream(const char* file, int line, const char* expr,
                     const char* values);
  ~CheckFailureStream();  // Prints to stderr and aborts; never returns.

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

template <typename T>
void StreamValue(std::ostream& os, const T& value) {
  if constexpr (requires(std::ostream& o, const T& v) { o << v; }) {
    os << value;
  } else {
    os << "<unprintable>";
  }
}

/// Compares with `cmp`; on failure renders "lhs vs rhs" for the message.
/// Returns nullptr (no allocation) on the success path.
template <typename A, typename B, typename Cmp>
std::unique_ptr<std::string> CheckOp(const A& a, const B& b, Cmp cmp) {
  if (cmp(a, b)) [[likely]] {
    return nullptr;
  }
  std::ostringstream os;
  StreamValue(os, a);
  os << " vs ";
  StreamValue(os, b);
  return std::make_unique<std::string>(os.str());
}

template <typename It>
std::unique_ptr<std::string> CheckSortedRange(It first, It last,
                                              bool strict) {
  if (first == last) return nullptr;
  size_t index = 0;
  for (It prev = first, it = std::next(first); it != last;
       ++prev, ++it, ++index) {
    bool ok = strict ? (*prev < *it) : !(*it < *prev);
    if (!ok) {
      std::ostringstream os;
      os << (strict ? "not strictly increasing" : "not sorted")
         << " at index " << index + 1 << ": ";
      StreamValue(os, *prev);
      os << (strict ? " !< " : " > ");
      StreamValue(os, *it);
      return std::make_unique<std::string>(os.str());
    }
  }
  return nullptr;
}

/// Swallows streamed extras of a compiled-out WEBER_DCHECK*.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Type-checks (but never evaluates) the operands of a compiled-out
/// contract; always false so the dead branch is eliminated.
template <typename... T>
constexpr bool AlwaysFalse(T&&...) {
  return false;
}

}  // namespace internal
}  // namespace weber::util

// The `for` carrier makes each macro a single statement that supports a
// trailing `<< extra` while evaluating the condition exactly once; the
// body constructs the failure sink whose destructor aborts, so the loop
// never iterates.
#define WEBER_CHECK(cond)                                                   \
  for (bool weber_check_ok_ = static_cast<bool>(cond); !weber_check_ok_;)   \
  ::weber::util::internal::CheckFailureStream(                              \
      __FILE__, __LINE__, "WEBER_CHECK(" #cond ")", nullptr)                \
      .stream()

#define WEBER_CHECK_OP_(opname, op, a, b)                                   \
  for (auto weber_check_result_ = ::weber::util::internal::CheckOp(         \
           (a), (b),                                                        \
           [](const auto& weber_l_, const auto& weber_r_) {                 \
             return weber_l_ op weber_r_;                                   \
           });                                                              \
       weber_check_result_ != nullptr;)                                     \
  ::weber::util::internal::CheckFailureStream(                              \
      __FILE__, __LINE__, "WEBER_CHECK_" opname "(" #a ", " #b ")",         \
      weber_check_result_->c_str())                                         \
      .stream()

#define WEBER_CHECK_EQ(a, b) WEBER_CHECK_OP_("EQ", ==, a, b)
#define WEBER_CHECK_NE(a, b) WEBER_CHECK_OP_("NE", !=, a, b)
#define WEBER_CHECK_LT(a, b) WEBER_CHECK_OP_("LT", <, a, b)
#define WEBER_CHECK_LE(a, b) WEBER_CHECK_OP_("LE", <=, a, b)
#define WEBER_CHECK_GT(a, b) WEBER_CHECK_OP_("GT", >, a, b)
#define WEBER_CHECK_GE(a, b) WEBER_CHECK_OP_("GE", >=, a, b)

#define WEBER_CHECK_RANGE_(opname, strict, first, last)                     \
  for (auto weber_check_result_ =                                           \
           ::weber::util::internal::CheckSortedRange((first), (last),       \
                                                     (strict));             \
       weber_check_result_ != nullptr;)                                     \
  ::weber::util::internal::CheckFailureStream(                              \
      __FILE__, __LINE__,                                                   \
      "WEBER_CHECK_" opname "(" #first ", " #last ")",                      \
      weber_check_result_->c_str())                                         \
      .stream()

#define WEBER_CHECK_SORTED(first, last) \
  WEBER_CHECK_RANGE_("SORTED", false, first, last)
#define WEBER_CHECK_UNIQUE(first, last) \
  WEBER_CHECK_RANGE_("UNIQUE", true, first, last)

// WEBER_DCHECK* gate: on when asserts are (Debug) or when the build opted
// into hardened mode; a plain Release/RelWithDebInfo build compiles them
// out entirely (conditions are type-checked but never evaluated).
#if !defined(NDEBUG) || defined(WEBER_HARDENED)
#define WEBER_DCHECK_IS_ON() 1
#define WEBER_DCHECK(cond) WEBER_CHECK(cond)
#define WEBER_DCHECK_EQ(a, b) WEBER_CHECK_EQ(a, b)
#define WEBER_DCHECK_NE(a, b) WEBER_CHECK_NE(a, b)
#define WEBER_DCHECK_LT(a, b) WEBER_CHECK_LT(a, b)
#define WEBER_DCHECK_LE(a, b) WEBER_CHECK_LE(a, b)
#define WEBER_DCHECK_GT(a, b) WEBER_CHECK_GT(a, b)
#define WEBER_DCHECK_GE(a, b) WEBER_CHECK_GE(a, b)
#define WEBER_DCHECK_SORTED(first, last) WEBER_CHECK_SORTED(first, last)
#define WEBER_DCHECK_UNIQUE(first, last) WEBER_CHECK_UNIQUE(first, last)
#else
#define WEBER_DCHECK_IS_ON() 0
#define WEBER_DCHECK_DISABLED_(...)                                  \
  while (false && ::weber::util::internal::AlwaysFalse(__VA_ARGS__)) \
  ::weber::util::internal::NullStream()
#define WEBER_DCHECK(cond) WEBER_DCHECK_DISABLED_(cond)
#define WEBER_DCHECK_EQ(a, b) WEBER_DCHECK_DISABLED_((a) == (b))
#define WEBER_DCHECK_NE(a, b) WEBER_DCHECK_DISABLED_((a) != (b))
#define WEBER_DCHECK_LT(a, b) WEBER_DCHECK_DISABLED_((a) < (b))
#define WEBER_DCHECK_LE(a, b) WEBER_DCHECK_DISABLED_((a) <= (b))
#define WEBER_DCHECK_GT(a, b) WEBER_DCHECK_DISABLED_((a) > (b))
#define WEBER_DCHECK_GE(a, b) WEBER_DCHECK_DISABLED_((a) >= (b))
#define WEBER_DCHECK_SORTED(first, last) \
  WEBER_DCHECK_DISABLED_((first), (last))
#define WEBER_DCHECK_UNIQUE(first, last) \
  WEBER_DCHECK_DISABLED_((first), (last))
#endif

#endif  // WEBER_UTIL_CHECK_H_
