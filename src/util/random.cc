#include "util/random.h"

#include <cmath>
#include <numeric>

#include "util/check.h"

namespace weber::util {

uint64_t Rng::Next() {
  // SplitMix64 step.
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  WEBER_DCHECK_LE(lo, hi) << "documented contract: lo <= hi";
  if (lo >= hi) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return NextDouble() < probability;
}

size_t Rng::NextZipf(size_t n, double skew) {
  // Inverse-CDF sampling over the truncated harmonic distribution. The
  // normalisation constant is recomputed per call for simplicity; callers
  // that need throughput should cache a ZipfTable instead (see datagen).
  WEBER_DCHECK_GT(n, size_t{0}) << "documented contract: n > 0";
  if (n <= 1) return 0;
  double norm = 0.0;
  for (size_t i = 0; i < n; ++i) norm += 1.0 / std::pow(i + 1.0, skew);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(i + 1.0, skew);
    if (u <= acc) return i;
  }
  return n - 1;
}

size_t Rng::NextGeometric(double p) {
  WEBER_DCHECK_GT(p, 0.0) << "documented contract: p in (0, 1]";
  if (p >= 1.0) return 0;
  if (p <= 0.0) return 0;
  double u = NextDouble();
  // floor(log(1-u) / log(1-p)) failures before first success.
  return static_cast<size_t>(std::log1p(-u) / std::log1p(-p));
}

std::string Rng::NextToken(size_t length) {
  std::string token(length, 'a');
  for (size_t i = 0; i < length; ++i) {
    token[i] = static_cast<char>('a' + NextBounded(26));
  }
  return token;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  Shuffle(indices);
  if (k < n) indices.resize(k);
  return indices;
}

}  // namespace weber::util
