#include "util/intersect.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define WEBER_X86 1
#endif

namespace weber::util {
namespace {

using detail::IntersectOps;
using detail::kScalarOps;

// ---------------------------------------------------------------------------
// SIMD kernels. Each computes the exact same count as the scalar reference
// in intersect.h — the block algorithms only change how many comparisons
// happen per instruction, never which elements are considered equal — so
// dispatch is invisible to every consumer. Function-level target
// attributes keep the rest of the build free of SIMD codegen; the table is
// only pointed here after the CPUID probe confirms the level.
// ---------------------------------------------------------------------------

#ifdef WEBER_X86

// --- u32 blocked merge (balanced sizes) ------------------------------------
//
// The classic all-pairs block intersection: compare an 8-lane window of a
// against all 8 rotations of an 8-lane window of b, then advance the
// window whose maximum is smaller (both on a tie). Every equal pair is
// seen in exactly one window pair because windows advance by whole blocks,
// and strictly-increasing inputs guarantee each value matches at most one
// lane — so popcounting the combined equality mask is exact.

__attribute__((target("avx2"))) size_t Avx2BlockIntersectU32(
    std::span<const uint32_t> a, std::span<const uint32_t> b, size_t* ai,
    size_t* bi) {
  const size_t na = a.size();
  const size_t nb = b.size();
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  if (na >= 8 && nb >= 8) {
    // Rotation index vectors: rot[r] sends lane k to lane (k + r) % 8.
    const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    while (i + 8 <= na && j + 8 <= nb) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
      __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + j));
      __m256i eq = _mm256_cmpeq_epi32(va, vb);
      for (int r = 1; r < 8; ++r) {
        vb = _mm256_permutevar8x32_epi32(vb, rot1);
        eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
      }
      count += static_cast<size_t>(
          __builtin_popcount(static_cast<unsigned>(
              _mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
      const uint32_t amax = a[i + 7];
      const uint32_t bmax = b[j + 7];
      if (amax <= bmax) i += 8;
      if (bmax <= amax) j += 8;
    }
  }
  *ai = i;
  *bi = j;
  return count;
}

__attribute__((target("sse4.2"))) size_t Sse4BlockIntersectU32(
    std::span<const uint32_t> a, std::span<const uint32_t> b, size_t* ai,
    size_t* bi) {
  const size_t na = a.size();
  const size_t nb = b.size();
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(eq,
                      _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));
    eq = _mm_or_si128(eq,
                      _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)));
    eq = _mm_or_si128(eq,
                      _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)))));
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  *ai = i;
  *bi = j;
  return count;
}

// --- u32 vectorised probe (skewed sizes) -----------------------------------
//
// Walks the small side; for each key, gallops over fixed 8-element blocks
// of the big side to the unique block whose maximum is >= key, then tests
// membership with one broadcast compare instead of the final binary-search
// levels plus an equality probe. Blocks only move forward (keys ascend),
// so the whole pass reads the big side once.

// Smallest block start s in {from, from+8, ...} < full with
// big[s + 7] >= key, or `full` when none. `from` and `full` are multiples
// of 8, from <= full <= big's size.
size_t BlockLowerBound(const uint32_t* big, size_t full, size_t from,
                       uint32_t key) {
  size_t lo = from;
  if (lo >= full || big[lo + 7] >= key) return lo;
  // Invariant: big[lo + 7] < key.
  size_t step = 8;
  while (lo + step < full && big[lo + step + 7] < key) {
    lo += step;
    step <<= 1;
  }
  size_t hi = lo + step < full ? lo + step : full;  // max >= key or == full.
  lo += 8;
  while (lo < hi) {
    size_t mid = lo + ((hi - lo) / 16) * 8;
    if (big[mid + 7] < key) {
      lo = mid + 8;
    } else {
      hi = mid;
    }
  }
  return lo;
}

__attribute__((target("avx2"))) size_t Avx2ProbeIntersectU32(
    std::span<const uint32_t> small, std::span<const uint32_t> big) {
  const size_t full = big.size() & ~size_t{7};
  size_t count = 0;
  size_t block = 0;
  size_t si = 0;
  for (; si < small.size(); ++si) {
    const uint32_t key = small[si];
    block = BlockLowerBound(big.data(), full, block, key);
    if (block == full) break;  // Only big's 8-wide tail can match now.
    const __m256i vkey = _mm256_set1_epi32(static_cast<int>(key));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(big.data() + block));
    count += _mm256_movemask_ps(
                 _mm256_castsi256_ps(_mm256_cmpeq_epi32(vkey, vb))) != 0;
  }
  if (si < small.size() && full < big.size()) {
    count += GallopIntersectSize(small.subspan(si), big.subspan(full));
  }
  return count;
}

__attribute__((target("sse4.2"))) size_t Sse4ProbeIntersectU32(
    std::span<const uint32_t> small, std::span<const uint32_t> big) {
  // Same structure with 8-element blocks tested as two 4-lane compares:
  // the block lower bound is shared, only the membership probe narrows.
  const size_t full = big.size() & ~size_t{7};
  size_t count = 0;
  size_t block = 0;
  size_t si = 0;
  for (; si < small.size(); ++si) {
    const uint32_t key = small[si];
    block = BlockLowerBound(big.data(), full, block, key);
    if (block == full) break;
    const __m128i vkey = _mm_set1_epi32(static_cast<int>(key));
    const __m128i lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(big.data() + block));
    const __m128i hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(big.data() + block + 4));
    const __m128i eq = _mm_or_si128(_mm_cmpeq_epi32(vkey, lo),
                                    _mm_cmpeq_epi32(vkey, hi));
    count += _mm_movemask_ps(_mm_castsi128_ps(eq)) != 0;
  }
  if (si < small.size() && full < big.size()) {
    count += GallopIntersectSize(small.subspan(si), big.subspan(full));
  }
  return count;
}

// --- u32 adaptive dispatch rows --------------------------------------------

size_t Avx2IntersectSizeU32(std::span<const uint32_t> small,
                            std::span<const uint32_t> big) {
  if (small.size() * kGallopRatio < big.size()) {
    return Avx2ProbeIntersectU32(small, big);
  }
  size_t i = 0;
  size_t j = 0;
  size_t count = Avx2BlockIntersectU32(small, big, &i, &j);
  return count + MergeIntersectSize(small.subspan(i), big.subspan(j));
}

size_t Sse4IntersectSizeU32(std::span<const uint32_t> small,
                            std::span<const uint32_t> big) {
  if (small.size() * kGallopRatio < big.size()) {
    return Sse4ProbeIntersectU32(small, big);
  }
  size_t i = 0;
  size_t j = 0;
  size_t count = Sse4BlockIntersectU32(small, big, &i, &j);
  return count + MergeIntersectSize(small.subspan(i), big.subspan(j));
}

// The decision kernels block-count with the same SIMD loops and re-check
// the two-sided abandon/success bounds between blocks; the final verdict
// is delegated to the scalar kernel on the unconsumed tails with the
// already-proven overlap subtracted, so the verdict is exactly
// |small ∩ big| >= required for every input.

template <size_t kBlock>
bool BlockIntersectAtLeast(std::span<const uint32_t> small,
                           std::span<const uint32_t> big, size_t required,
                           size_t (*block_fn)(std::span<const uint32_t>,
                                              std::span<const uint32_t>,
                                              size_t*, size_t*)) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i + kBlock <= small.size() && j + kBlock <= big.size()) {
    if (count + std::min(small.size() - i, big.size() - j) < required) {
      return false;
    }
    size_t bi = 0;
    size_t bj = 0;
    count += block_fn(small.subspan(i, kBlock), big.subspan(j, kBlock), &bi,
                      &bj);
    const uint32_t amax = small[i + kBlock - 1];
    const uint32_t bmax = big[j + kBlock - 1];
    if (amax <= bmax) i += kBlock;
    if (bmax <= amax) j += kBlock;
    if (count >= required) return true;
  }
  if (count >= required) return true;
  return detail::ScalarIntersectAtLeast(small.subspan(i), big.subspan(j),
                                        required - count);
}

bool Avx2IntersectAtLeastU32(std::span<const uint32_t> small,
                             std::span<const uint32_t> big, size_t required) {
  if (small.size() * kGallopRatio < big.size()) {
    return detail::ScalarIntersectAtLeast(small, big, required);
  }
  return BlockIntersectAtLeast<8>(small, big, required,
                                  &Avx2BlockIntersectU32);
}

bool Sse4IntersectAtLeastU32(std::span<const uint32_t> small,
                             std::span<const uint32_t> big, size_t required) {
  if (small.size() * kGallopRatio < big.size()) {
    return detail::ScalarIntersectAtLeast(small, big, required);
  }
  return BlockIntersectAtLeast<4>(small, big, required,
                                  &Sse4BlockIntersectU32);
}

// --- u16 array-chunk kernels -----------------------------------------------
//
// Posting-set array chunks hold at most 4096 sorted u16 values. The block
// scheme is the same all-pairs compare, 8 u16 lanes per 128-bit vector
// with byte-granular rotations (alignr). 128-bit vectors serve both SIMD
// levels: a 256-bit u16 rotation needs cross-lane permutes that erase the
// wider vectors' gain at chunk sizes (see DESIGN.md, "Kernel dispatch").

__attribute__((target("sse4.2"))) size_t Sse4BlockIntersectU16(
    std::span<const uint16_t> a, std::span<const uint16_t> b, size_t* ai,
    size_t* bi) {
  const size_t na = a.size();
  const size_t nb = b.size();
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
    __m128i eq = _mm_cmpeq_epi16(va, vb);
    __m128i rb = vb;
    for (int r = 1; r < 8; ++r) {
      rb = _mm_alignr_epi8(rb, rb, 2);
      eq = _mm_or_si128(eq, _mm_cmpeq_epi16(va, rb));
    }
    // Each equal u16 lane contributes two set bytes to the mask.
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
                 _mm_movemask_epi8(eq)))) /
             2;
    const uint16_t amax = a[i + 7];
    const uint16_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  *ai = i;
  *bi = j;
  return count;
}

size_t Sse4IntersectSizeU16(std::span<const uint16_t> a,
                            std::span<const uint16_t> b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = Sse4BlockIntersectU16(a, b, &i, &j);
  return count + detail::ScalarIntersectSizeU16(a.subspan(i), b.subspan(j));
}

bool Sse4IntersectAtLeastU16(std::span<const uint16_t> a,
                             std::span<const uint16_t> b, size_t required) {
  if (required == 0) return true;
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i + 8 <= a.size() && j + 8 <= b.size()) {
    if (count + std::min(a.size() - i, b.size() - j) < required) return false;
    size_t bi = 0;
    size_t bj = 0;
    count += Sse4BlockIntersectU16(a.subspan(i, 8), b.subspan(j, 8), &bi, &bj);
    const uint16_t amax = a[i + 7];
    const uint16_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
    if (count >= required) return true;
  }
  if (count >= required) return true;
  return detail::ScalarIntersectAtLeastU16(a.subspan(i), b.subspan(j),
                                           required - count);
}

// --- bitset-chunk kernels --------------------------------------------------

// AVX2 positional popcount via the classic 4-bit lookup: split each byte
// of (a & b) into nibbles, translate both through a per-lane popcount
// table, and horizontally sum with SAD against zero — no 8-bit counter
// ever exceeds 8, so the accumulation is exact.
__attribute__((target("avx2"))) size_t Avx2BitsetAndPopcount(
    const uint64_t* a, const uint64_t* b, size_t words) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i v = _mm256_and_si256(va, vb);
    const __m256i lo = _mm256_shuffle_epi8(lookup,
                                           _mm256_and_si256(v, low_mask));
    const __m256i hi = _mm256_shuffle_epi8(
        lookup, _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask));
    const __m256i bytes = _mm256_add_epi8(lo, hi);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes,
                                                _mm256_setzero_si256()));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  size_t count = static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] +
                                     lanes[3]);
  for (; w < words; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return count;
}

__attribute__((target("sse4.2"))) size_t Sse4BitsetAndPopcount(
    const uint64_t* a, const uint64_t* b, size_t words) {
  // SSE4.2 guarantees the hardware POPCNT instruction, which is already
  // the fast path for 64-bit words; wider tricks only pay from AVX2 up.
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(
        _mm_popcnt_u64(static_cast<unsigned long long>(a[w] & b[w])));
  }
  return count;
}

constexpr IntersectOps kSse4Ops = {
    &Sse4IntersectSizeU32,  &Sse4IntersectAtLeastU32,
    &Sse4IntersectSizeU16,  &Sse4IntersectAtLeastU16,
    &Sse4BitsetAndPopcount,
};

constexpr IntersectOps kAvx2Ops = {
    &Avx2IntersectSizeU32,  &Avx2IntersectAtLeastU32,
    &Sse4IntersectSizeU16,  &Sse4IntersectAtLeastU16,
    &Avx2BitsetAndPopcount,
};

#endif  // WEBER_X86

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------

const IntersectOps* OpsFor(IntersectKernel kernel) {
#ifdef WEBER_X86
  switch (kernel) {
    case IntersectKernel::kAvx2:
      return &kAvx2Ops;
    case IntersectKernel::kSse4:
      return &kSse4Ops;
    case IntersectKernel::kScalar:
      return &kScalarOps;
  }
#else
  (void)kernel;
#endif
  return &kScalarOps;
}

bool ForcedScalar() {
#ifdef WEBER_FORCE_SCALAR_KERNELS
  return true;
#else
  const char* env = std::getenv("WEBER_FORCE_SCALAR_KERNELS");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
#endif
}

IntersectKernel ProbeCpu() {
#ifdef WEBER_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return IntersectKernel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return IntersectKernel::kSse4;
#endif
  return IntersectKernel::kScalar;
}

struct DispatchState {
  IntersectKernel cpu_best;
  bool forced_scalar;
  std::atomic<IntersectKernel> active;

  DispatchState()
      : cpu_best(ProbeCpu()),
        forced_scalar(ForcedScalar()),
        active(forced_scalar ? IntersectKernel::kScalar : cpu_best) {
    detail::g_intersect_ops.store(OpsFor(active.load()),
                                  std::memory_order_relaxed);
  }
};

DispatchState& State() {
  static DispatchState state;
  return state;
}

// Touch the state during static initialisation so ordinary binaries run
// on the best kernel from the first intersection; a consumer that races
// ahead of this initialiser just runs scalar, which is bit-equal.
const bool g_dispatch_initialised = (State(), true);

}  // namespace

namespace detail {

size_t BenchBlockMergeIntersect(std::span<const uint32_t> small,
                                std::span<const uint32_t> big) {
#ifdef WEBER_X86
  const IntersectKernel best = State().cpu_best;
  size_t i = 0;
  size_t j = 0;
  if (best == IntersectKernel::kAvx2) {
    size_t count = Avx2BlockIntersectU32(small, big, &i, &j);
    return count + MergeIntersectSize(small.subspan(i), big.subspan(j));
  }
  if (best == IntersectKernel::kSse4) {
    size_t count = Sse4BlockIntersectU32(small, big, &i, &j);
    return count + MergeIntersectSize(small.subspan(i), big.subspan(j));
  }
#endif
  return MergeIntersectSize(small, big);
}

size_t BenchProbeIntersect(std::span<const uint32_t> small,
                           std::span<const uint32_t> big) {
#ifdef WEBER_X86
  const IntersectKernel best = State().cpu_best;
  if (best == IntersectKernel::kAvx2) return Avx2ProbeIntersectU32(small, big);
  if (best == IntersectKernel::kSse4) return Sse4ProbeIntersectU32(small, big);
#endif
  return GallopIntersectSize(small, big);
}

}  // namespace detail

const char* KernelName(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kScalar:
      return "scalar";
    case IntersectKernel::kSse4:
      return "sse4";
    case IntersectKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

IntersectKernel CpuBestKernel() { return State().cpu_best; }

bool KernelForcedScalar() { return State().forced_scalar; }

IntersectKernel ActiveIntersectKernel() {
  return State().active.load(std::memory_order_relaxed);
}

bool SetIntersectKernel(IntersectKernel kernel) {
  DispatchState& state = State();
  if (kernel != IntersectKernel::kScalar) {
    if (state.forced_scalar) return false;
    if (static_cast<int>(kernel) > static_cast<int>(state.cpu_best)) {
      return false;
    }
  }
  state.active.store(kernel, std::memory_order_relaxed);
  detail::g_intersect_ops.store(OpsFor(kernel), std::memory_order_relaxed);
  return true;
}

void ResetIntersectKernel() {
  DispatchState& state = State();
  SetIntersectKernel(state.forced_scalar ? IntersectKernel::kScalar
                                         : state.cpu_best);
}

}  // namespace weber::util
