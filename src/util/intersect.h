#ifndef WEBER_UTIL_INTERSECT_H_
#define WEBER_UTIL_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "util/check.h"

namespace weber::util {

/// Sorted-id intersection kernels shared by the simjoin verifiers and the
/// matching signature engine. All inputs are strictly increasing uint32
/// sequences; every function returns exact counts, so callers that derive
/// similarities from them are bit-equal regardless of which strategy the
/// adaptive dispatch picks.

/// Size ratio above which the adaptive kernels switch from the linear
/// merge to galloping search over the longer sequence. Galloping costs
/// O(small * log(big)); the merge costs O(small + big).
inline constexpr size_t kGallopRatio = 16;

/// First index in [from, data.size()) with data[index] >= key, found by
/// doubling probes followed by a binary search of the last gallop window.
inline size_t GallopLowerBound(std::span<const uint32_t> data, size_t from,
                               uint32_t key) {
  size_t n = data.size();
  WEBER_DCHECK_LE(from, n) << "gallop start beyond the sequence";
  if (from >= n || data[from] >= key) return from;
  // Invariant: data[lo] < key.
  size_t lo = from;
  size_t step = 1;
  while (lo + step < n && data[lo + step] < key) {
    lo += step;
    step <<= 1;
  }
  size_t hi = lo + step < n ? lo + step : n;  // data[hi] >= key or hi == n.
  ++lo;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    WEBER_DCHECK_LT(mid, n) << "gallop window escaped the sequence";
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// |a ∩ b| by galloping: walk the smaller sequence, gallop in the larger.
inline size_t GallopIntersectSize(std::span<const uint32_t> small,
                                  std::span<const uint32_t> big) {
  size_t count = 0;
  size_t at = 0;
  for (uint32_t key : small) {
    at = GallopLowerBound(big, at, key);
    if (at == big.size()) break;
    if (big[at] == key) {
      ++count;
      ++at;
    }
  }
  return count;
}

/// |a ∩ b| by the classic linear merge.
inline size_t MergeIntersectSize(std::span<const uint32_t> a,
                                 std::span<const uint32_t> b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

/// |a ∩ b|, adaptively choosing merge or galloping by the size skew.
inline size_t SortedIntersectSize(std::span<const uint32_t> a,
                                  std::span<const uint32_t> b) {
  WEBER_DCHECK_UNIQUE(a.begin(), a.end()) << "kernel input not a sorted set";
  WEBER_DCHECK_UNIQUE(b.begin(), b.end()) << "kernel input not a sorted set";
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (a.size() * kGallopRatio < b.size()) return GallopIntersectSize(a, b);
  return MergeIntersectSize(a, b);
}

/// Decision kernel: true iff |a ∩ b| >= required. Abandons as soon as the
/// remaining elements cannot reach `required` (overlap upper-bound filter)
/// and succeeds as soon as they must (the verdict — never the exact count —
/// is what the caller needs). required == 0 is trivially true.
inline bool SortedIntersectAtLeast(std::span<const uint32_t> a,
                                   std::span<const uint32_t> b,
                                   size_t required) {
  WEBER_DCHECK_UNIQUE(a.begin(), a.end()) << "kernel input not a sorted set";
  WEBER_DCHECK_UNIQUE(b.begin(), b.end()) << "kernel input not a sorted set";
  if (required == 0) return true;
  if (a.size() > b.size()) std::swap(a, b);
  if (a.size() < required) return false;  // Length filter.
  size_t count = 0;
  if (a.size() * kGallopRatio < b.size()) {
    size_t at = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      if (count + (a.size() - i) < required) return false;
      at = GallopLowerBound(b, at, a[i]);
      if (at == b.size()) return count >= required;
      if (b[at] == a[i]) {
        if (++count >= required) return true;
        ++at;
      }
    }
    return false;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    size_t possible = count + std::min(a.size() - i, b.size() - j);
    if (possible < required) return false;
    if (a[i] == b[j]) {
      if (++count >= required) return true;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace weber::util

#endif  // WEBER_UTIL_INTERSECT_H_
