#ifndef WEBER_UTIL_INTERSECT_H_
#define WEBER_UTIL_INTERSECT_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "util/check.h"

namespace weber::util {

/// Sorted-id intersection kernels shared by the simjoin verifiers and the
/// matching signature engine. All inputs are strictly increasing
/// sequences; every function returns exact counts, so callers that derive
/// similarities from them are bit-equal regardless of which strategy —
/// scalar merge, galloping search, or a SIMD block kernel — the runtime
/// dispatch picks.
///
/// Dispatch model: the public entry points (`SortedIntersectSize`,
/// `SortedIntersectAtLeast`, and the u16/bitset chunk primitives below)
/// route through a process-wide kernel table selected once at startup by
/// CPUID — scalar, SSE4, or AVX2 — and overridable for debugging via
/// `SetIntersectKernel` (er_cli `--kernel=`) or the
/// `WEBER_FORCE_SCALAR_KERNELS` environment variable / CMake option. The
/// scalar kernels in this header are the always-available reference; the
/// SIMD paths (src/util/intersect.cc) compute identical counts, so the
/// choice is invisible to every consumer.

/// Size ratio above which the adaptive kernels switch from the linear
/// strategy (merge, or SIMD block merge) to the skewed one (gallop, or
/// SIMD block probe) over the longer sequence. Galloping costs
/// O(small * log(big)); the merge costs O(small + big). Tuned from the
/// BM_Kernel_Crossover sweep in bench_matching (see DESIGN.md, "Kernel
/// dispatch"): the scalar merge/gallop pair breaks even at ratio ~32
/// (107k vs 108k intersects/s), the AVX2 block-merge/probe pair between
/// 16 and 32 (merge +5% at 16, probe +20% at 32). One constant serves
/// both paths; 24 splits the two measured crossings and is within a few
/// percent of optimal for each.
inline constexpr size_t kGallopRatio = 24;

/// One SIMD instruction-set level of the kernel table. Values are ordered:
/// higher levels strictly extend lower ones.
enum class IntersectKernel : int {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
};

/// Human-readable kernel name ("scalar", "sse4", "avx2").
const char* KernelName(IntersectKernel kernel);

/// Best level this CPU supports (cached CPUID probe). Unaffected by
/// forcing or overrides.
IntersectKernel CpuBestKernel();

/// True when dispatch is pinned to scalar by the WEBER_FORCE_SCALAR_KERNELS
/// environment variable or compile-time definition.
bool KernelForcedScalar();

/// The level the dispatch table currently routes to.
IntersectKernel ActiveIntersectKernel();

/// Re-points the dispatch table at `kernel`. Returns false (and leaves the
/// table unchanged) when the CPU lacks the level or scalar is forced;
/// requesting kScalar always succeeds. Not thread-safe against in-flight
/// intersections — call between parallel regions (every kernel computes
/// identical results, so a racy read would still be correct, but the
/// switch itself must not tear).
bool SetIntersectKernel(IntersectKernel kernel);

/// Restores the startup choice: CpuBestKernel(), or scalar when forced.
void ResetIntersectKernel();

// ---------------------------------------------------------------------------
// Scalar reference kernels (always available, used by the dispatch table's
// scalar row and as the bit-equality oracle in tests).
// ---------------------------------------------------------------------------

/// First index in [from, data.size()) with data[index] >= key, found by
/// doubling probes followed by a binary search of the last gallop window.
inline size_t GallopLowerBound(std::span<const uint32_t> data, size_t from,
                               uint32_t key) {
  size_t n = data.size();
  WEBER_DCHECK_LE(from, n) << "gallop start beyond the sequence";
  if (from >= n || data[from] >= key) return from;
  // Invariant: data[lo] < key.
  size_t lo = from;
  size_t step = 1;
  while (lo + step < n && data[lo + step] < key) {
    lo += step;
    step <<= 1;
  }
  size_t hi = lo + step < n ? lo + step : n;  // data[hi] >= key or hi == n.
  ++lo;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    WEBER_DCHECK_LT(mid, n) << "gallop window escaped the sequence";
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// |a ∩ b| by galloping: walk the smaller sequence, gallop in the larger.
inline size_t GallopIntersectSize(std::span<const uint32_t> small,
                                  std::span<const uint32_t> big) {
  size_t count = 0;
  size_t at = 0;
  for (uint32_t key : small) {
    at = GallopLowerBound(big, at, key);
    if (at == big.size()) break;
    if (big[at] == key) {
      ++count;
      ++at;
    }
  }
  return count;
}

/// |a ∩ b| by the classic linear merge.
inline size_t MergeIntersectSize(std::span<const uint32_t> a,
                                 std::span<const uint32_t> b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

namespace detail {

/// Scalar |small ∩ big| with small.size() <= big.size(), both non-empty:
/// the adaptive merge/gallop reference the dispatch table's scalar row
/// points at.
inline size_t ScalarIntersectSize(std::span<const uint32_t> small,
                                  std::span<const uint32_t> big) {
  if (small.size() * kGallopRatio < big.size()) {
    return GallopIntersectSize(small, big);
  }
  return MergeIntersectSize(small, big);
}

/// Scalar decision kernel with small.size() <= big.size() and
/// 1 <= required <= small.size(): true iff |small ∩ big| >= required,
/// abandoning as soon as the remaining elements of *either* side cannot
/// reach `required` and succeeding as soon as the bound is met.
inline bool ScalarIntersectAtLeast(std::span<const uint32_t> small,
                                   std::span<const uint32_t> big,
                                   size_t required) {
  size_t count = 0;
  if (small.size() * kGallopRatio < big.size()) {
    size_t at = 0;
    for (size_t i = 0; i < small.size(); ++i) {
      // Abandon on the overlap upper bound: neither small's tail nor
      // big's unscanned tail may be able to supply the missing matches.
      if (count + std::min(small.size() - i, big.size() - at) < required) {
        return false;
      }
      at = GallopLowerBound(big, at, small[i]);
      if (at == big.size()) return count >= required;
      if (big[at] == small[i]) {
        if (++count >= required) return true;
        ++at;
      }
    }
    return false;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < small.size() && j < big.size()) {
    size_t possible = count + std::min(small.size() - i, big.size() - j);
    if (possible < required) return false;
    if (small[i] == big[j]) {
      if (++count >= required) return true;
      ++i;
      ++j;
    } else if (small[i] < big[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// Scalar |a ∩ b| over sorted distinct u16 chunk arrays (any sizes).
inline size_t ScalarIntersectSizeU16(std::span<const uint16_t> a,
                                     std::span<const uint16_t> b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

/// Scalar u16 decision twin: true iff |a ∩ b| >= required (required == 0
/// is trivially true), with the same two-sided abandon bound as the u32
/// kernel.
inline bool ScalarIntersectAtLeastU16(std::span<const uint16_t> a,
                                      std::span<const uint16_t> b,
                                      size_t required) {
  if (required == 0) return true;
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (count + std::min(a.size() - i, b.size() - j) < required) return false;
    if (a[i] == b[j]) {
      if (++count >= required) return true;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// Scalar popcount(a & b) over `words` 64-bit words.
inline size_t ScalarBitsetAndPopcount(const uint64_t* a, const uint64_t* b,
                                      size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return count;
}

/// The kernel table one dispatch level routes through. u32 entries take
/// (small, big) pre-swapped so small.size() <= big.size(), both non-empty;
/// u32 at_least additionally has 1 <= required <= small.size(). The u16
/// and bitset entries take chunk payloads as stored (any order).
struct IntersectOps {
  size_t (*u32_size)(std::span<const uint32_t>, std::span<const uint32_t>);
  bool (*u32_at_least)(std::span<const uint32_t>, std::span<const uint32_t>,
                       size_t);
  size_t (*u16_size)(std::span<const uint16_t>, std::span<const uint16_t>);
  bool (*u16_at_least)(std::span<const uint16_t>, std::span<const uint16_t>,
                       size_t);
  size_t (*bitset_and_popcount)(const uint64_t*, const uint64_t*, size_t);
};

inline constexpr IntersectOps kScalarOps = {
    &ScalarIntersectSize,        &ScalarIntersectAtLeast,
    &ScalarIntersectSizeU16,     &ScalarIntersectAtLeastU16,
    &ScalarBitsetAndPopcount,
};

/// The active table. Constant-initialised to scalar so any static
/// initialiser that intersects before the dispatch probe runs is still
/// exact; upgraded once at startup and by SetIntersectKernel. Relaxed
/// atomics: every table computes identical results, so readers need no
/// ordering — the atomic only prevents torn pointers.
inline constinit std::atomic<const IntersectOps*> g_intersect_ops{
    &kScalarOps};

inline const IntersectOps& ActiveOps() {
  return *g_intersect_ops.load(std::memory_order_relaxed);
}

/// Tuning hooks for the BM_Kernel_Crossover microbench: the two u32
/// strategies the best SIMD level chooses between at kGallopRatio, each
/// callable directly so the crossover can be measured across the whole
/// size-ratio sweep (the public entry points would switch mid-sweep).
/// Preconditions match the ops table: small.size() <= big.size(), both
/// non-empty. On CPUs without SIMD they fall back to the scalar merge and
/// gallop. Not for production call sites — use SortedIntersectSize.
size_t BenchBlockMergeIntersect(std::span<const uint32_t> small,
                                std::span<const uint32_t> big);
size_t BenchProbeIntersect(std::span<const uint32_t> small,
                           std::span<const uint32_t> big);

}  // namespace detail

// ---------------------------------------------------------------------------
// Public dispatching entry points.
// ---------------------------------------------------------------------------

/// |a ∩ b|, routed through the active kernel (adaptive merge/gallop on
/// scalar; blocked merge / vectorised probe on SIMD levels).
inline size_t SortedIntersectSize(std::span<const uint32_t> a,
                                  std::span<const uint32_t> b) {
  WEBER_DCHECK_UNIQUE(a.begin(), a.end()) << "kernel input not a sorted set";
  WEBER_DCHECK_UNIQUE(b.begin(), b.end()) << "kernel input not a sorted set";
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  return detail::ActiveOps().u32_size(a, b);
}

/// Decision kernel: true iff |a ∩ b| >= required. Abandons as soon as the
/// remaining elements cannot reach `required` (overlap upper-bound filter)
/// and succeeds as soon as they must (the verdict — never the exact count —
/// is what the caller needs). required == 0 is trivially true.
inline bool SortedIntersectAtLeast(std::span<const uint32_t> a,
                                   std::span<const uint32_t> b,
                                   size_t required) {
  WEBER_DCHECK_UNIQUE(a.begin(), a.end()) << "kernel input not a sorted set";
  WEBER_DCHECK_UNIQUE(b.begin(), b.end()) << "kernel input not a sorted set";
  if (required == 0) return true;
  if (a.size() > b.size()) std::swap(a, b);
  if (a.size() < required) return false;  // Length filter.
  return detail::ActiveOps().u32_at_least(a, b, required);
}

/// |a ∩ b| over sorted distinct u16 sequences — the array×array posting-
/// chunk kernel (see matching/posting_set.h).
inline size_t SortedIntersectSizeU16(std::span<const uint16_t> a,
                                     std::span<const uint16_t> b) {
  return detail::ActiveOps().u16_size(a, b);
}

/// Decision twin of SortedIntersectSizeU16: true iff |a ∩ b| >= required.
inline bool SortedIntersectAtLeastU16(std::span<const uint16_t> a,
                                      std::span<const uint16_t> b,
                                      size_t required) {
  return detail::ActiveOps().u16_at_least(a, b, required);
}

/// popcount(a & b) over `words` 64-bit words — the bitset×bitset posting-
/// chunk kernel, and the path where SIMD pays most.
inline size_t BitsetAndPopcount(const uint64_t* a, const uint64_t* b,
                                size_t words) {
  return detail::ActiveOps().bitset_and_popcount(a, b, words);
}

/// Count of `keys` present in the 65536-bit chunk bitset — the
/// array×bitset posting-chunk kernel. Bit tests are dependent scattered
/// loads, so no SIMD variant exists; one scalar implementation serves all
/// dispatch levels.
inline size_t BitsetContainsCount(std::span<const uint16_t> keys,
                                  const uint64_t* bits) {
  size_t count = 0;
  for (uint16_t key : keys) {
    count += (bits[key >> 6] >> (key & 63)) & 1u;
  }
  return count;
}

}  // namespace weber::util

#endif  // WEBER_UTIL_INTERSECT_H_
