#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace weber::obs {

namespace {

SpanSnapshot CopyNode(const Trace::Node& node) {
  SpanSnapshot snap;
  snap.name = node.name;
  snap.wall_seconds = node.wall_seconds;
  snap.cpu_seconds = node.cpu_seconds;
  snap.tid = node.tid;
  snap.begin_seconds = node.begin_seconds;
  snap.end_seconds = node.end_seconds;
  snap.open = node.open;
  snap.children.reserve(node.children.size());
  for (const auto& child : node.children) {
    snap.children.push_back(CopyNode(*child));
  }
  return snap;
}

}  // namespace

double TraceClockNow() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---------------------------------------------------------------- EventLog

void EventLog::Enable(size_t capacity) {
  util::MutexLock lock(names_mu_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    size_t effective = std::max<size_t>(capacity, 1);
    capacity_.store(effective, std::memory_order_relaxed);
    size_t per_shard = effective / kShards + 1;
    for (Shard& shard : shards_) {
      util::MutexLock shard_lock(shard.mu);
      shard.events.reserve(std::min<size_t>(per_shard, 1024));
    }
    // Release-publish: a recorder that observes enabled_ == true (acquire,
    // see enabled()) must also observe the capacity_ written above —
    // otherwise a concurrent RecordComplete could race the plain write and
    // admit events against the stale default capacity.
    enabled_.store(true, std::memory_order_release);
  }
}

void EventLog::RecordComplete(std::string_view name, double begin_seconds,
                              double end_seconds,
                              std::string_view category) {
  if (!enabled()) return;
  uint32_t tid = TraceThreadId();
  Shard& shard = shards_[tid % kShards];
  util::MutexLock lock(shard.mu);
  for (MergeSlot& slot : shard.merge_slots) {
    if (slot.name_key != name.data() || slot.tid != tid) continue;
    TraceEvent& prev = shard.events[slot.index];
    if (prev.name == name && prev.category == category &&
        begin_seconds >= prev.end_seconds &&
        begin_seconds - prev.end_seconds <= kMergeGapSeconds &&
        end_seconds - prev.begin_seconds <= kMaxMergedSpanSeconds) {
      prev.end_seconds = end_seconds;
      ++prev.count;
      return;
    }
    // Same track+name but too far apart (or too long merged): start a
    // fresh event and repoint the slot at it below.
    if (size_.load(std::memory_order_relaxed) >=
        capacity_.load(std::memory_order_relaxed)) {
      ++shard.dropped;
      return;
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    slot.index = shard.events.size();
    TraceEvent& event = shard.events.emplace_back();
    event.name = std::string(name);
    event.category = std::string(category);
    event.tid = tid;
    event.begin_seconds = begin_seconds;
    event.end_seconds = end_seconds;
    return;
  }
  if (size_.load(std::memory_order_relaxed) >=
      capacity_.load(std::memory_order_relaxed)) {
    ++shard.dropped;
    return;
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  MergeSlot slot;
  slot.name_key = name.data();
  slot.tid = tid;
  slot.index = shard.events.size();
  shard.merge_slots.push_back(slot);
  TraceEvent& event = shard.events.emplace_back();
  event.name = std::string(name);
  event.category = std::string(category);
  event.tid = tid;
  event.begin_seconds = begin_seconds;
  event.end_seconds = end_seconds;
}

void EventLog::RecordInstant(std::string_view name,
                             std::string_view category) {
  double now = TraceClockNow();
  RecordComplete(name, now, now, category);
}

void EventLog::NameThread(std::string_view name) {
  uint32_t tid = TraceThreadId();
  util::MutexLock lock(names_mu_);
  thread_names_.emplace(tid, std::string(name));
}

EventLog::LogSnapshot EventLog::Snapshot() const {
  LogSnapshot snap;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    snap.events.insert(snap.events.end(), shard.events.begin(),
                       shard.events.end());
    snap.dropped += shard.dropped;
  }
  std::sort(snap.events.begin(), snap.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_seconds != b.begin_seconds
                         ? a.begin_seconds < b.begin_seconds
                         : a.tid < b.tid;
            });
  {
    util::MutexLock lock(names_mu_);
    snap.thread_names = thread_names_;
  }
  return snap;
}

// ------------------------------------------------------------------- Trace

Trace::Node* Trace::OpenSpan(std::string_view name) {
  double begin = TraceClockNow();
  uint32_t tid = TraceThreadId();
  util::MutexLock lock(mu_);
  auto node = std::make_unique<Node>();
  node->name = std::string(name);
  node->tid = tid;
  node->begin_seconds = begin;
  node->end_seconds = begin;
  node->parent = current_;
  Node* raw = node.get();
  if (current_ != nullptr) {
    current_->children.push_back(std::move(node));
  } else {
    roots_.push_back(std::move(node));
  }
  current_ = raw;
  return raw;
}

void Trace::CloseSpan(Node* node, double wall_seconds, double cpu_seconds) {
  util::MutexLock lock(mu_);
  node->wall_seconds = wall_seconds;
  node->cpu_seconds = cpu_seconds;
  node->end_seconds = node->begin_seconds + wall_seconds;
  node->open = false;
  if (current_ == node) {
    current_ = node->parent;
  }
}

std::vector<SpanSnapshot> Trace::Snapshot() const {
  util::MutexLock lock(mu_);
  std::vector<SpanSnapshot> roots;
  roots.reserve(roots_.size());
  for (const auto& root : roots_) {
    roots.push_back(CopyNode(*root));
  }
  return roots;
}

bool Trace::empty() const {
  util::MutexLock lock(mu_);
  return roots_.empty();
}

Span::Span(Trace* trace, std::string_view name) : trace_(trace) {
  if (trace_ == nullptr) return;
  node_ = trace_->OpenSpan(name);
  cpu_start_ = util::ThreadCpuSeconds();
  timer_.Restart();
}

Span::Span(MetricsRegistry* registry, std::string_view name)
    : Span(registry != nullptr ? &registry->trace() : nullptr, name) {}

Span::~Span() {
  if (node_ == nullptr) return;
  trace_->CloseSpan(node_, timer_.ElapsedSeconds(),
                    util::ThreadCpuSeconds() - cpu_start_);
}

ScopedTimer::ScopedTimer(MetricsRegistry* registry,
                         std::string_view histogram_name)
    : registry_(registry) {
  if (registry_ == nullptr) return;
  name_ = std::string(histogram_name);
  timer_.Restart();
}

ScopedTimer::~ScopedTimer() {
  if (registry_ == nullptr) return;
  registry_->GetHistogram(name_).Record(timer_.ElapsedSeconds());
}

}  // namespace weber::obs
