#include "obs/trace.h"

#include "obs/metrics.h"

namespace weber::obs {

namespace {

SpanSnapshot CopyNode(const Trace::Node& node) {
  SpanSnapshot snap;
  snap.name = node.name;
  snap.wall_seconds = node.wall_seconds;
  snap.cpu_seconds = node.cpu_seconds;
  snap.open = node.open;
  snap.children.reserve(node.children.size());
  for (const auto& child : node.children) {
    snap.children.push_back(CopyNode(*child));
  }
  return snap;
}

}  // namespace

Trace::Node* Trace::OpenSpan(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto node = std::make_unique<Node>();
  node->name = std::string(name);
  node->parent = current_;
  Node* raw = node.get();
  if (current_ != nullptr) {
    current_->children.push_back(std::move(node));
  } else {
    roots_.push_back(std::move(node));
  }
  current_ = raw;
  return raw;
}

void Trace::CloseSpan(Node* node, double wall_seconds, double cpu_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  node->wall_seconds = wall_seconds;
  node->cpu_seconds = cpu_seconds;
  node->open = false;
  if (current_ == node) {
    current_ = node->parent;
  }
}

std::vector<SpanSnapshot> Trace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanSnapshot> roots;
  roots.reserve(roots_.size());
  for (const auto& root : roots_) {
    roots.push_back(CopyNode(*root));
  }
  return roots;
}

bool Trace::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_.empty();
}

Span::Span(Trace* trace, std::string_view name) : trace_(trace) {
  if (trace_ == nullptr) return;
  node_ = trace_->OpenSpan(name);
  cpu_start_ = util::ThreadCpuSeconds();
  timer_.Restart();
}

Span::Span(MetricsRegistry* registry, std::string_view name)
    : Span(registry != nullptr ? &registry->trace() : nullptr, name) {}

Span::~Span() {
  if (node_ == nullptr) return;
  trace_->CloseSpan(node_, timer_.ElapsedSeconds(),
                    util::ThreadCpuSeconds() - cpu_start_);
}

ScopedTimer::ScopedTimer(MetricsRegistry* registry,
                         std::string_view histogram_name)
    : registry_(registry) {
  if (registry_ == nullptr) return;
  name_ = std::string(histogram_name);
  timer_.Restart();
}

ScopedTimer::~ScopedTimer() {
  if (registry_ == nullptr) return;
  registry_->GetHistogram(name_).Record(timer_.ElapsedSeconds());
}

}  // namespace weber::obs
