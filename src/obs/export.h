#ifndef WEBER_OBS_EXPORT_H_
#define WEBER_OBS_EXPORT_H_

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace weber::obs {

/// Human-readable dump of a registry snapshot: the trace tree indented by
/// depth, then counters, gauges, and histogram summaries, each section
/// sorted by metric name.
class TextExporter {
 public:
  void Export(const RegistrySnapshot& snapshot, std::ostream& out) const;
  void Export(const MetricsRegistry& registry, std::ostream& out) const;
};

/// JSON serialization of a registry snapshot with stable key names:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {name: {count,sum,min,max,mean,p50,p95,p99,p999}},
///    "trace": [{name,wall_seconds,cpu_seconds,children:[...]}]}
/// The shape is flat enough to drop into a BENCH_*.json trajectory point.
class JsonExporter {
 public:
  void Export(const RegistrySnapshot& snapshot, std::ostream& out) const;
  void Export(const MetricsRegistry& registry, std::ostream& out) const;
  std::string ToString(const RegistrySnapshot& snapshot) const;
  std::string ToString(const MetricsRegistry& registry) const;
};

/// Chrome trace-event ("Perfetto") serialization of a registry snapshot:
/// a {"traceEvents": [...]} document loadable by ui.perfetto.dev or
/// chrome://tracing. The span tree becomes complete ('X') events on the
/// opening thread's track; flight-recorder events (executor task runs and
/// steals, see EventLog) become 'X' events — instants degrade to 'i' —
/// on their own per-thread tracks; thread names are emitted as 'M'
/// metadata records. Timestamps are trace-clock microseconds.
class TraceEventExporter {
 public:
  void Export(const RegistrySnapshot& snapshot, std::ostream& out) const;
  void Export(const MetricsRegistry& registry, std::ostream& out) const;
  std::string ToString(const RegistrySnapshot& snapshot) const;
  std::string ToString(const MetricsRegistry& registry) const;
};

}  // namespace weber::obs

#endif  // WEBER_OBS_EXPORT_H_
