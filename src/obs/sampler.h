#ifndef WEBER_OBS_SAMPLER_H_
#define WEBER_OBS_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/sync.h"

namespace weber::obs {

/// Point-in-time process resource usage, read from getrusage(2) and
/// /proc/self/statm. On systems without /proc the RSS falls back to the
/// getrusage peak; fields that cannot be read stay zero.
struct ProcessStats {
  uint64_t rss_bytes = 0;
  double user_cpu_seconds = 0.0;
  double system_cpu_seconds = 0.0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
};

ProcessStats ReadProcessStats();

/// Compressed histogram view carried per telemetry sample: enough to plot
/// latency curves (count + tail quantiles) without shipping every bucket.
struct HistogramPoint {
  uint64_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// One tick of the telemetry sampler: everything the registry and the
/// process knew at that instant, stamped on the shared trace clock.
struct TelemetrySample {
  double t_seconds = 0.0;
  ProcessStats process;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramPoint> histograms;
};

/// Background thread that snapshots a MetricsRegistry plus process stats
/// every interval into a bounded ring buffer, turning the point-in-time
/// `--metrics-json` snapshot into time series: queue-depth, ingest-rate,
/// RSS and arena-byte curves over a run. Start() records an immediate
/// first sample and Stop() a final one, so even a run shorter than one
/// interval yields a two-point series. The ring keeps the newest
/// `capacity` samples; total_samples() keeps counting past the wrap.
class TelemetrySampler {
 public:
  struct Options {
    /// Milliseconds between samples. Must be >= 1.
    int interval_ms = 100;
    /// Ring-buffer capacity in samples.
    size_t capacity = 4096;
    /// The registry to snapshot. Must outlive the sampler.
    MetricsRegistry* registry = nullptr;
    /// Optional hook run before every sample, e.g. to re-publish executor
    /// stats so queue-depth gauges are fresh each tick.
    std::function<void()> tick_hook;
  };

  explicit TelemetrySampler(Options options);
  /// Stops the sampling thread if still running.
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Takes one sample now and launches the periodic thread. Idempotent.
  void Start();

  /// Joins the sampling thread and records one final sample. Idempotent;
  /// safe to call concurrently with a running sampler from one thread.
  void Stop();

  /// Takes a single sample synchronously on the calling thread.
  void SampleOnce();

  /// The retained samples, oldest first.
  std::vector<TelemetrySample> Samples() const;

  /// Samples taken over the sampler's lifetime, including overwritten ones.
  uint64_t total_samples() const {
    return total_samples_.load(std::memory_order_relaxed);
  }

  /// Writes the retained samples as JSON Lines, one object per sample:
  ///   {"t":..,"rss_bytes":..,"user_cpu_seconds":..,"system_cpu_seconds":..,
  ///    "minor_faults":..,"major_faults":..,"counters":{..},"gauges":{..},
  ///    "histograms":{name:{"count":..,"p50":..,"p99":..,"p999":..}}}
  void ExportJsonl(std::ostream& out) const;

 private:
  void Loop() EXCLUDES(stop_mu_);

  Options options_;

  mutable util::Mutex ring_mu_;
  // Sized options_.capacity once full.
  std::vector<TelemetrySample> ring_ GUARDED_BY(ring_mu_);
  size_t next_slot_ GUARDED_BY(ring_mu_) = 0;
  std::atomic<uint64_t> total_samples_{0};

  util::Mutex stop_mu_;
  util::CondVar stop_cv_;
  bool stop_requested_ GUARDED_BY(stop_mu_) = false;
  bool running_ GUARDED_BY(stop_mu_) = false;
  // Written in Start() and joined in Stop(), both on the single control
  // thread the API contract names — never touched by the Loop() thread.
  // lint: allow(threads) — dedicated observer thread, see Start().
  std::thread thread_;
};

}  // namespace weber::obs

#endif  // WEBER_OBS_SAMPLER_H_
