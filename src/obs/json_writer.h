#ifndef WEBER_OBS_JSON_WRITER_H_
#define WEBER_OBS_JSON_WRITER_H_

// Tiny JSON formatting helpers shared by the observability exporters
// (export.cc, sampler.cc) and the bench report emitter. Writing only —
// parsing lives in the tests' JsonChecker.

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace weber::obs {

/// Shortest round-trippable representation; non-finite values (never
/// produced by healthy instrumentation) degrade to null to keep the
/// document parseable.
inline std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Quotes and escapes `text` as a JSON string literal.
inline std::string JsonQuote(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace weber::obs

#endif  // WEBER_OBS_JSON_WRITER_H_
