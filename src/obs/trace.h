#ifndef WEBER_OBS_TRACE_H_
#define WEBER_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"
#include "util/timer.h"

namespace weber::obs {

class MetricsRegistry;

/// Seconds elapsed on the process-wide monotonic trace clock. The epoch is
/// the first call in the process, so every span, flight-recorder event and
/// telemetry sample shares one time axis (the `ts` axis of the exported
/// Perfetto trace).
double TraceClockNow();

/// Small dense process-unique id for the calling thread: the trace track
/// it reports on. Ids are assigned in first-use order starting at 0.
uint32_t TraceThreadId();

/// One node of a captured trace tree: a named phase with its wall-clock
/// duration and the CPU time the opening thread spent inside it, stamped
/// with the opening thread's track id and trace-clock begin/end times.
struct SpanSnapshot {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  /// Track id of the thread that opened the span.
  uint32_t tid = 0;
  /// Trace-clock timestamps; end_seconds == begin_seconds while open.
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
  /// True when the span had not been closed at snapshot time.
  bool open = false;
  std::vector<SpanSnapshot> children;
};

/// One flat flight-recorder event: a named interval on a thread track.
/// Instant events carry end_seconds == begin_seconds. `count > 1` means
/// the interval stands for that many adjacent same-named occurrences the
/// log coalesced (exported as Perfetto `args.count`).
struct TraceEvent {
  std::string name;
  std::string category;
  uint32_t tid = 0;
  uint64_t count = 1;
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
};

/// Bounded in-memory log of flat trace events from *any* thread — the
/// flight recorder behind `--trace-json`. Disabled (the default) it costs
/// one relaxed atomic load per would-be event; enabled, records go to a
/// tid-affine shard so concurrent workers do not contend on one mutex.
///
/// Micro-events are coalesced: a record whose track already holds a
/// same-named event ending within kMergeGapSeconds extends that event and
/// bumps its `count` instead of appending, as long as the merged interval
/// stays under kMaxMergedSpanSeconds. A work-stealing executor running
/// microsecond tasks therefore produces hundreds of readable slices, not
/// hundreds of thousands of unrenderable ones — and recording stays cheap
/// enough to leave on during benchmarks.
///
/// When the capacity is reached further events are dropped and counted,
/// so a runaway run degrades to a truncated trace instead of unbounded
/// memory.
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 20;
  static constexpr size_t kShards = 16;
  /// A new event merges into its track's previous same-named event when
  /// the gap between them is at most this. Sized to bridge the pauses
  /// between executor task-group bursts, which are far shorter than any
  /// humanly visible timeline feature.
  static constexpr double kMergeGapSeconds = 100e-6;
  /// Cap on a merged event's total extent: bounds how much timeline
  /// resolution coalescing can cost.
  static constexpr double kMaxMergedSpanSeconds = 1e-3;

  struct LogSnapshot {
    /// All shards' events, sorted by (begin, tid).
    std::vector<TraceEvent> events;
    /// First-wins display names per track (worker 0, main, ...).
    std::map<uint32_t, std::string> thread_names;
    uint64_t dropped = 0;
  };

  /// Arms the log. Idempotent; capacity applies from the first call.
  void Enable(size_t capacity = kDefaultCapacity);

  /// Acquire pairs with the release store in Enable(): a caller that sees
  /// true also sees the capacity published before arming (see trace.cc).
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Records a completed interval on the calling thread's track (subject
  /// to coalescing, above). No-op while disabled.
  void RecordComplete(std::string_view name, double begin_seconds,
                      double end_seconds,
                      std::string_view category = "event");

  /// Records a zero-duration marker on the calling thread's track.
  void RecordInstant(std::string_view name,
                     std::string_view category = "event");

  /// Names the calling thread's track. First name wins, so an outer
  /// orchestrator ("main") is not renamed by later helper activity.
  void NameThread(std::string_view name);

  LogSnapshot Snapshot() const;

 private:
  /// Remembers where a (track, name) pair's latest event lives so the
  /// next record can try to merge into it. Keyed by the string_view's
  /// data pointer (instrumentation passes static literals); a content
  /// check happens before any merge, so a false miss only costs an
  /// append.
  struct MergeSlot {
    const void* name_key = nullptr;
    uint32_t tid = 0;
    size_t index = 0;
  };

  struct Shard {
    mutable util::Mutex mu;
    std::vector<TraceEvent> events GUARDED_BY(mu);
    std::vector<MergeSlot> merge_slots GUARDED_BY(mu);
    uint64_t dropped GUARDED_BY(mu) = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> size_{0};
  /// Written once, before the release store that arms enabled_; recorders
  /// read it only after an acquire load of enabled_ observes true. Atomic
  /// so an Enable() racing in-flight recorders is still a defined program.
  std::atomic<size_t> capacity_{kDefaultCapacity};
  Shard shards_[kShards];
  mutable util::Mutex names_mu_;
  std::map<uint32_t, std::string> thread_names_ GUARDED_BY(names_mu_);
};

/// A hierarchical phase trace: spans nest into the tree in the order they
/// are opened (phase -> sub-phase -> per-batch events). Spans must be
/// opened and closed in LIFO order from the orchestration thread — worker
/// threads report through counters/histograms and the EventLog instead,
/// keeping the tree linear and cheap.
class Trace {
 public:
  struct Node {
    std::string name;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
    uint32_t tid = 0;
    double begin_seconds = 0.0;
    double end_seconds = 0.0;
    bool open = true;
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
  };

  /// Opens a span under the currently open one (or as a new root),
  /// stamping the opening thread's track id and trace-clock time. The
  /// returned node stays valid for the lifetime of the trace.
  Node* OpenSpan(std::string_view name);

  /// Closes `node`, recording its measured durations.
  void CloseSpan(Node* node, double wall_seconds, double cpu_seconds);

  /// Deep copy of the tree so far; open spans are marked as such.
  std::vector<SpanSnapshot> Snapshot() const;

  bool empty() const;

 private:
  mutable util::Mutex mu_;
  std::vector<std::unique_ptr<Node>> roots_ GUARDED_BY(mu_);
  Node* current_ GUARDED_BY(mu_) = nullptr;
};

/// RAII span: opens on construction, closes on destruction with the
/// elapsed wall clock and the calling thread's CPU time. A null trace or
/// registry makes the span a no-op, so instrumentation sites pay nothing
/// when observability is detached.
class Span {
 public:
  Span(Trace* trace, std::string_view name);
  /// Convenience: spans into `registry->trace()`; null registry -> no-op.
  Span(MetricsRegistry* registry, std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Trace* trace_ = nullptr;
  Trace::Node* node_ = nullptr;
  util::Timer timer_;
  double cpu_start_ = 0.0;
};

/// RAII stopwatch: records its elapsed seconds into the named histogram
/// of the registry on destruction. Null registry -> no-op.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string_view histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_ = nullptr;
  std::string name_;
  util::Timer timer_;
};

}  // namespace weber::obs

#endif  // WEBER_OBS_TRACE_H_
