#ifndef WEBER_OBS_TRACE_H_
#define WEBER_OBS_TRACE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.h"

namespace weber::obs {

class MetricsRegistry;

/// One node of a captured trace tree: a named phase with its wall-clock
/// duration and the CPU time the opening thread spent inside it.
struct SpanSnapshot {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  /// True when the span had not been closed at snapshot time.
  bool open = false;
  std::vector<SpanSnapshot> children;
};

/// A hierarchical phase trace: spans nest into the tree in the order they
/// are opened (phase -> sub-phase -> per-batch events). Spans must be
/// opened and closed in LIFO order from the orchestration thread — worker
/// threads report through counters/histograms instead, keeping the tree
/// linear and cheap.
class Trace {
 public:
  struct Node {
    std::string name;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
    bool open = true;
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
  };

  /// Opens a span under the currently open one (or as a new root). The
  /// returned node stays valid for the lifetime of the trace.
  Node* OpenSpan(std::string_view name);

  /// Closes `node`, recording its measured durations.
  void CloseSpan(Node* node, double wall_seconds, double cpu_seconds);

  /// Deep copy of the tree so far; open spans are marked as such.
  std::vector<SpanSnapshot> Snapshot() const;

  bool empty() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Node>> roots_;
  Node* current_ = nullptr;
};

/// RAII span: opens on construction, closes on destruction with the
/// elapsed wall clock and the calling thread's CPU time. A null trace or
/// registry makes the span a no-op, so instrumentation sites pay nothing
/// when observability is detached.
class Span {
 public:
  Span(Trace* trace, std::string_view name);
  /// Convenience: spans into `registry->trace()`; null registry -> no-op.
  Span(MetricsRegistry* registry, std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Trace* trace_ = nullptr;
  Trace::Node* node_ = nullptr;
  util::Timer timer_;
  double cpu_start_ = 0.0;
};

/// RAII stopwatch: records its elapsed seconds into the named histogram
/// of the registry on destruction. Null registry -> no-op.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string_view histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_ = nullptr;
  std::string name_;
  util::Timer timer_;
};

}  // namespace weber::obs

#endif  // WEBER_OBS_TRACE_H_
