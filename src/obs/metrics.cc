#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace weber::obs {

namespace {

// Each thread gets a sticky shard index; modulo folds thread churn onto
// the fixed shard array.
size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard = next.fetch_add(1,
                                                   std::memory_order_relaxed);
  return shard;
}

void AtomicDoubleAdd(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMin(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value < observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMax(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value > observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

std::atomic<MetricsRegistry*> g_current{nullptr};

}  // namespace

// ---------------------------------------------------------------- Counter

void Counter::Add(uint64_t delta) {
  shards_[ThisThreadShard() % kShards].value.fetch_add(
      delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// ------------------------------------------------------------------ Gauge

void Gauge::Add(double delta) { AtomicDoubleAdd(value_, delta); }

// -------------------------------------------------------------- Histogram

const std::vector<double>& Histogram::DefaultBounds() {
  static const std::vector<double>& bounds = *new std::vector<double>([] {
    std::vector<double> b;
    // Two-resolution geometric grid. Below 1e-3 (sub-millisecond values,
    // where only p50-ish mass lives) ratio 10^0.05 keeps the table small;
    // from 1e-3 up — the serving-latency tail where p999 claims are made —
    // the ratio tightens to 10^0.025 so worst-case quantile error drops
    // from ~12% to ~6% (interpolation typically halves that again).
    for (int k = 0; k < 120; ++k) {
      b.push_back(std::pow(10.0, -9.0 + 0.05 * k));
    }
    for (int k = 0; k <= 480; ++k) {
      b.push_back(std::pow(10.0, -3.0 + 0.025 * k));
    }
    return b;
  }());
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Record(double value) {
  size_t bucket = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  // upper_bound leaves exact bound hits in the bucket *above*; pull them
  // back so that buckets mean (prev, bound].
  if (bucket > 0 && value == bounds_[bucket - 1]) --bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicDoubleAdd(sum_, value);
  AtomicDoubleMin(min_, value);
  AtomicDoubleMax(max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.reserve(buckets_.size());
  for (const std::atomic<uint64_t>& b : buckets_) {
    uint64_t c = b.load(std::memory_order_relaxed);
    snap.buckets.push_back(c);
    snap.count += c;
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  snap.max = snap.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      double lower = i == 0 ? min : bounds[i - 1];
      double upper = i < bounds.size() ? bounds[i] : max;
      double frac = static_cast<double>(rank - cumulative) /
                    static_cast<double>(buckets[i]);
      double value = lower + frac * (upper - lower);
      return std::clamp(value, min, max);
    }
    cumulative += buckets[i];
  }
  return max;
}

// ---------------------------------------------------------------- Registry

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  return GetHistogram(name, Histogram::DefaultBounds());
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

RegistrySnapshot MetricsRegistry::TakeSnapshot(bool include_events) const {
  RegistrySnapshot snap;
  {
    util::MutexLock lock(mu_);
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace(name, counter->Value());
    }
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges.emplace(name, gauge->Value());
    }
    for (const auto& [name, histogram] : histograms_) {
      snap.histograms.emplace(name, histogram->Snapshot());
    }
  }
  snap.trace = trace_.Snapshot();
  if (include_events && events_.enabled()) {
    EventLog::LogSnapshot events = events_.Snapshot();
    snap.events = std::move(events.events);
    snap.thread_names = std::move(events.thread_names);
    snap.dropped_events = events.dropped;
  }
  return snap;
}

// ----------------------------------------------------------------- Ambient

MetricsRegistry* Current() {
  return g_current.load(std::memory_order_relaxed);
}

ScopedRegistry::ScopedRegistry(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  prev_ = g_current.exchange(registry, std::memory_order_relaxed);
  installed_ = true;
}

ScopedRegistry::~ScopedRegistry() {
  if (installed_) {
    g_current.store(prev_, std::memory_order_relaxed);
  }
}

}  // namespace weber::obs
