#include "obs/sampler.h"

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ostream>
#include <utility>

#include "obs/json_writer.h"
#include "util/check.h"

namespace weber::obs {

ProcessStats ReadProcessStats() {
  ProcessStats stats;
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    stats.user_cpu_seconds =
        static_cast<double>(usage.ru_utime.tv_sec) +
        static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    stats.system_cpu_seconds =
        static_cast<double>(usage.ru_stime.tv_sec) +
        static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
    stats.minor_faults = static_cast<uint64_t>(usage.ru_minflt);
    stats.major_faults = static_cast<uint64_t>(usage.ru_majflt);
    // Fallback RSS: getrusage reports the peak in kilobytes.
    stats.rss_bytes = static_cast<uint64_t>(usage.ru_maxrss) * 1024;
  }
  // Current (not peak) RSS: /proc/self/statm field 2, in pages. Not data
  // I/O, so it stays outside the durability layer.
  // lint: allow(file-io) procfs telemetry read, no durability semantics
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    unsigned long long size_pages = 0;
    unsigned long long rss_pages = 0;
    if (std::fscanf(statm, "%llu %llu", &size_pages, &rss_pages) == 2) {
      long page = sysconf(_SC_PAGESIZE);
      if (page > 0) {
        stats.rss_bytes = static_cast<uint64_t>(rss_pages) *
                          static_cast<uint64_t>(page);
      }
    }
    std::fclose(statm);
  }
  return stats;
}

TelemetrySampler::TelemetrySampler(Options options)
    : options_(std::move(options)) {
  WEBER_CHECK(options_.registry != nullptr)
      << "TelemetrySampler needs a registry";
  WEBER_CHECK_GE(options_.interval_ms, 1) << "sample interval must be >= 1ms";
  WEBER_CHECK_GE(options_.capacity, size_t{2})
      << "ring must hold at least the first and final sample";
  ring_.reserve(options_.capacity);
}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::SampleOnce() {
  if (options_.tick_hook) options_.tick_hook();
  TelemetrySample sample;
  sample.t_seconds = TraceClockNow();
  sample.process = ReadProcessStats();
  // The sampler leaves a heartbeat in the registry it samples, so the
  // exported series always carries at least one weber.* counter curve.
  options_.registry->GetCounter("weber.obs.telemetry_samples").Increment();
  RegistrySnapshot snapshot =
      options_.registry->TakeSnapshot(/*include_events=*/false);
  sample.counters = std::move(snapshot.counters);
  sample.gauges = std::move(snapshot.gauges);
  for (const auto& [name, histogram] : snapshot.histograms) {
    HistogramPoint point;
    point.count = histogram.count;
    point.p50 = histogram.Quantile(0.50);
    point.p99 = histogram.Quantile(0.99);
    point.p999 = histogram.Quantile(0.999);
    sample.histograms.emplace(name, point);
  }
  util::MutexLock lock(ring_mu_);
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[next_slot_] = std::move(sample);
    next_slot_ = (next_slot_ + 1) % options_.capacity;
  }
  total_samples_.fetch_add(1, std::memory_order_relaxed);
}

void TelemetrySampler::Start() {
  {
    util::MutexLock lock(stop_mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  SampleOnce();
  // Not a parallelism escape hatch: the sampler is a mostly-sleeping
  // observer and must keep ticking while executor workers are saturated.
  // lint: allow(threads)
  thread_ = std::thread([this] { Loop(); });
}

void TelemetrySampler::Loop() {
  const std::chrono::milliseconds interval(options_.interval_ms);
  util::MutexLock lock(stop_mu_);
  while (!stop_requested_) {
    // Sleep out one full interval; spurious wakeups re-wait against the
    // same deadline, so the sampling cadence does not drift.
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (!stop_requested_ && stop_cv_.WaitUntil(stop_mu_, deadline)) {
    }
    if (stop_requested_) return;
    lock.Unlock();
    SampleOnce();
    lock.Lock();
  }
}

void TelemetrySampler::Stop() {
  {
    util::MutexLock lock(stop_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  SampleOnce();  // Final sample: the end-of-run state always lands.
  util::MutexLock lock(stop_mu_);
  running_ = false;
}

std::vector<TelemetrySample> TelemetrySampler::Samples() const {
  util::MutexLock lock(ring_mu_);
  std::vector<TelemetrySample> out;
  out.reserve(ring_.size());
  // next_slot_ is the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    size_t idx = ring_.size() < options_.capacity
                     ? i
                     : (next_slot_ + i) % options_.capacity;
    out.push_back(ring_[idx]);
  }
  return out;
}

void TelemetrySampler::ExportJsonl(std::ostream& out) const {
  for (const TelemetrySample& sample : Samples()) {
    out << "{\"t\":" << JsonNumber(sample.t_seconds)
        << ",\"rss_bytes\":" << sample.process.rss_bytes
        << ",\"user_cpu_seconds\":"
        << JsonNumber(sample.process.user_cpu_seconds)
        << ",\"system_cpu_seconds\":"
        << JsonNumber(sample.process.system_cpu_seconds)
        << ",\"minor_faults\":" << sample.process.minor_faults
        << ",\"major_faults\":" << sample.process.major_faults
        << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : sample.counters) {
      if (!first) out << ',';
      first = false;
      out << JsonQuote(name) << ':' << value;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : sample.gauges) {
      if (!first) out << ',';
      first = false;
      out << JsonQuote(name) << ':' << JsonNumber(value);
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, point] : sample.histograms) {
      if (!first) out << ',';
      first = false;
      out << JsonQuote(name) << ":{\"count\":" << point.count
          << ",\"p50\":" << JsonNumber(point.p50)
          << ",\"p99\":" << JsonNumber(point.p99)
          << ",\"p999\":" << JsonNumber(point.p999) << '}';
    }
    out << "}}\n";
  }
}

}  // namespace weber::obs
