#include "obs/export.h"

#include <ostream>
#include <sstream>
#include <string>

#include "obs/json_writer.h"

namespace weber::obs {

namespace {

void WriteSpanJson(const SpanSnapshot& span, std::ostream& out) {
  out << "{\"name\":" << JsonQuote(span.name)
      << ",\"wall_seconds\":" << JsonNumber(span.wall_seconds)
      << ",\"cpu_seconds\":" << JsonNumber(span.cpu_seconds)
      << ",\"tid\":" << span.tid
      << ",\"begin_seconds\":" << JsonNumber(span.begin_seconds);
  if (span.open) out << ",\"open\":true";
  out << ",\"children\":[";
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) out << ',';
    WriteSpanJson(span.children[i], out);
  }
  out << "]}";
}

void WriteSpanText(const SpanSnapshot& span, int depth, std::ostream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << span.name << ": wall=" << span.wall_seconds << "s cpu="
      << span.cpu_seconds << "s";
  if (span.open) out << " (open)";
  out << "\n";
  for (const SpanSnapshot& child : span.children) {
    WriteSpanText(child, depth + 1, out);
  }
}

// One Chrome trace-event object. Durations are clamped at zero so clock
// jitter can never emit the negative dur Perfetto rejects. `count > 1`
// (a coalesced micro-event run, see EventLog) is surfaced as args.count.
void WriteTraceEvent(const std::string& name, const std::string& category,
                     uint32_t tid, double begin_seconds, double end_seconds,
                     uint64_t count, std::ostream& out) {
  double dur_us = (end_seconds - begin_seconds) * 1e6;
  if (dur_us > 0.0) {
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
        << ",\"ts\":" << JsonNumber(begin_seconds * 1e6)
        << ",\"dur\":" << JsonNumber(dur_us);
  } else {
    out << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << tid
        << ",\"ts\":" << JsonNumber(begin_seconds * 1e6) << ",\"s\":\"t\"";
  }
  out << ",\"name\":" << JsonQuote(name)
      << ",\"cat\":" << JsonQuote(category);
  if (count > 1) out << ",\"args\":{\"count\":" << count << '}';
  out << '}';
}

void WriteSpanTraceEvents(const SpanSnapshot& span, bool* first,
                          std::ostream& out) {
  if (!*first) out << ',';
  *first = false;
  WriteTraceEvent(span.name, "phase", span.tid, span.begin_seconds,
                  span.end_seconds, /*count=*/1, out);
  for (const SpanSnapshot& child : span.children) {
    WriteSpanTraceEvents(child, first, out);
  }
}

}  // namespace

void TextExporter::Export(const RegistrySnapshot& snapshot,
                          std::ostream& out) const {
  if (!snapshot.trace.empty()) {
    out << "== trace ==\n";
    for (const SpanSnapshot& root : snapshot.trace) {
      WriteSpanText(root, 0, out);
    }
  }
  if (!snapshot.counters.empty()) {
    out << "== counters ==\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << name << " = " << value << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "== gauges ==\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << name << " = " << value << "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "== histograms ==\n";
    for (const auto& [name, h] : snapshot.histograms) {
      out << name << ": count=" << h.count << " mean=" << h.Mean()
          << " p50=" << h.Quantile(0.50) << " p95=" << h.Quantile(0.95)
          << " p99=" << h.Quantile(0.99) << " p999=" << h.Quantile(0.999)
          << " min=" << h.min << " max=" << h.max << "\n";
    }
  }
  if (!snapshot.events.empty()) {
    out << "== trace events ==\n";
    out << snapshot.events.size() << " events on "
        << snapshot.thread_names.size() << " named tracks";
    if (snapshot.dropped_events > 0) {
      out << " (" << snapshot.dropped_events << " dropped)";
    }
    out << "\n";
  }
}

void TextExporter::Export(const MetricsRegistry& registry,
                          std::ostream& out) const {
  Export(registry.TakeSnapshot(), out);
}

void JsonExporter::Export(const RegistrySnapshot& snapshot,
                          std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ',';
    first = false;
    out << JsonQuote(name) << ':' << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ',';
    first = false;
    out << JsonQuote(name) << ':' << JsonNumber(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << JsonQuote(name) << ":{\"count\":" << h.count
        << ",\"sum\":" << JsonNumber(h.sum)
        << ",\"min\":" << JsonNumber(h.min)
        << ",\"max\":" << JsonNumber(h.max)
        << ",\"mean\":" << JsonNumber(h.Mean())
        << ",\"p50\":" << JsonNumber(h.Quantile(0.50))
        << ",\"p95\":" << JsonNumber(h.Quantile(0.95))
        << ",\"p99\":" << JsonNumber(h.Quantile(0.99))
        << ",\"p999\":" << JsonNumber(h.Quantile(0.999)) << '}';
  }
  out << "},\"trace\":[";
  for (size_t i = 0; i < snapshot.trace.size(); ++i) {
    if (i > 0) out << ',';
    WriteSpanJson(snapshot.trace[i], out);
  }
  out << "]}";
}

void JsonExporter::Export(const MetricsRegistry& registry,
                          std::ostream& out) const {
  Export(registry.TakeSnapshot(), out);
}

std::string JsonExporter::ToString(const RegistrySnapshot& snapshot) const {
  std::ostringstream out;
  Export(snapshot, out);
  return out.str();
}

std::string JsonExporter::ToString(const MetricsRegistry& registry) const {
  std::ostringstream out;
  Export(registry, out);
  return out.str();
}

void TraceEventExporter::Export(const RegistrySnapshot& snapshot,
                                std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : snapshot.thread_names) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":" << JsonQuote(name)
        << "}}";
  }
  for (const SpanSnapshot& root : snapshot.trace) {
    WriteSpanTraceEvents(root, &first, out);
  }
  for (const TraceEvent& event : snapshot.events) {
    if (!first) out << ',';
    first = false;
    WriteTraceEvent(event.name, event.category, event.tid,
                    event.begin_seconds, event.end_seconds, event.count,
                    out);
  }
  out << "],\"otherData\":{\"dropped_events\":" << snapshot.dropped_events
      << "}}";
}

void TraceEventExporter::Export(const MetricsRegistry& registry,
                                std::ostream& out) const {
  Export(registry.TakeSnapshot(), out);
}

std::string TraceEventExporter::ToString(
    const RegistrySnapshot& snapshot) const {
  std::ostringstream out;
  Export(snapshot, out);
  return out.str();
}

std::string TraceEventExporter::ToString(
    const MetricsRegistry& registry) const {
  std::ostringstream out;
  Export(registry, out);
  return out.str();
}

}  // namespace weber::obs
