#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace weber::obs {

namespace {

// Shortest round-trippable representation; non-finite values (never
// produced by healthy instrumentation) degrade to null to keep the
// document parseable.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void WriteSpanJson(const SpanSnapshot& span, std::ostream& out) {
  out << "{\"name\":" << JsonString(span.name)
      << ",\"wall_seconds\":" << JsonNumber(span.wall_seconds)
      << ",\"cpu_seconds\":" << JsonNumber(span.cpu_seconds);
  if (span.open) out << ",\"open\":true";
  out << ",\"children\":[";
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) out << ',';
    WriteSpanJson(span.children[i], out);
  }
  out << "]}";
}

void WriteSpanText(const SpanSnapshot& span, int depth, std::ostream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << span.name << ": wall=" << span.wall_seconds << "s cpu="
      << span.cpu_seconds << "s";
  if (span.open) out << " (open)";
  out << "\n";
  for (const SpanSnapshot& child : span.children) {
    WriteSpanText(child, depth + 1, out);
  }
}

}  // namespace

void TextExporter::Export(const RegistrySnapshot& snapshot,
                          std::ostream& out) const {
  if (!snapshot.trace.empty()) {
    out << "== trace ==\n";
    for (const SpanSnapshot& root : snapshot.trace) {
      WriteSpanText(root, 0, out);
    }
  }
  if (!snapshot.counters.empty()) {
    out << "== counters ==\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << name << " = " << value << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "== gauges ==\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << name << " = " << value << "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "== histograms ==\n";
    for (const auto& [name, h] : snapshot.histograms) {
      out << name << ": count=" << h.count << " mean=" << h.Mean()
          << " p50=" << h.Quantile(0.50) << " p95=" << h.Quantile(0.95)
          << " p99=" << h.Quantile(0.99) << " min=" << h.min
          << " max=" << h.max << "\n";
    }
  }
}

void TextExporter::Export(const MetricsRegistry& registry,
                          std::ostream& out) const {
  Export(registry.TakeSnapshot(), out);
}

void JsonExporter::Export(const RegistrySnapshot& snapshot,
                          std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ',';
    first = false;
    out << JsonString(name) << ':' << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ',';
    first = false;
    out << JsonString(name) << ':' << JsonNumber(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << JsonString(name) << ":{\"count\":" << h.count
        << ",\"sum\":" << JsonNumber(h.sum)
        << ",\"min\":" << JsonNumber(h.min)
        << ",\"max\":" << JsonNumber(h.max)
        << ",\"mean\":" << JsonNumber(h.Mean())
        << ",\"p50\":" << JsonNumber(h.Quantile(0.50))
        << ",\"p95\":" << JsonNumber(h.Quantile(0.95))
        << ",\"p99\":" << JsonNumber(h.Quantile(0.99)) << '}';
  }
  out << "},\"trace\":[";
  for (size_t i = 0; i < snapshot.trace.size(); ++i) {
    if (i > 0) out << ',';
    WriteSpanJson(snapshot.trace[i], out);
  }
  out << "]}";
}

void JsonExporter::Export(const MetricsRegistry& registry,
                          std::ostream& out) const {
  Export(registry.TakeSnapshot(), out);
}

std::string JsonExporter::ToString(const MetricsRegistry& registry) const {
  std::ostringstream out;
  Export(registry, out);
  return out.str();
}

}  // namespace weber::obs
