#ifndef WEBER_OBS_METRICS_H_
#define WEBER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/sync.h"

namespace weber::obs {

/// Monotonic counter. Increments are sharded across cache-line-padded
/// atomics indexed by thread so that worker pools bumping the same
/// counter do not contend; Value() sums the shards.
class Counter {
 public:
  void Add(uint64_t delta);
  void Increment() { Add(1); }
  uint64_t Value() const;

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

/// A last-write-wins double value (ratios, thresholds, speedups).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated view of a histogram at snapshot time.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Ascending bucket upper bounds; buckets[i] counts values v with
  /// bounds[i-1] < v <= bounds[i]. buckets has one extra overflow slot
  /// for values above bounds.back().
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Streaming quantile estimate (q in [0,1]) by linear interpolation
  /// inside the bucket holding the q-th value, clamped to [min, max].
  /// Accuracy is bounded by the bucket width (default bounds: ~12%
  /// relative error worst case below 1e-3, ~6% in the >= 1e-3 tail where
  /// latency p999 claims are read off).
  double Quantile(double q) const;
};

/// Fixed-bucket histogram with streaming quantiles. Recording is one
/// relaxed atomic increment plus a branchless bucket search; safe for
/// concurrent use.
class Histogram {
 public:
  /// Geometric bounds covering 1e-9..1e9: ratio 10^0.05 (~1.122) below
  /// 1e-3 and a finer 10^0.025 (~1.059) tail above it, so duration
  /// histograms resolve p999 of millisecond-and-up latencies to ~6%
  /// worst-case instead of ~12%.
  static const std::vector<double>& DefaultBounds();

  explicit Histogram(std::vector<double> bounds);

  void Record(double value);
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Everything a registry knew at one instant; the unit exporters work on.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::vector<SpanSnapshot> trace;
  /// Flat flight-recorder events (empty unless the EventLog was enabled).
  std::vector<TraceEvent> events;
  std::map<uint32_t, std::string> thread_names;
  uint64_t dropped_events = 0;
};

/// Thread-safe registry of named counters, gauges, histograms and a phase
/// trace. Metric names follow `weber.<module>.<metric>`. Lookup takes a
/// mutex, so hot paths should fetch the metric handle once (references
/// remain stable for the registry's lifetime) or aggregate locally and
/// publish at phase end.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds);

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  /// The registry's flight recorder. Disabled by default; er_cli's
  /// --trace-json (or any embedder) arms it with events().Enable().
  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  /// `include_events = false` skips copying the flight-recorder buffer —
  /// the TelemetrySampler uses it so periodic sampling stays O(metrics)
  /// instead of O(recorded events).
  RegistrySnapshot TakeSnapshot(bool include_events = true) const;

 private:
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
  Trace trace_;
  EventLog events_;
};

/// The ambient registry instrumentation sites report to, or nullptr when
/// observability is detached (the default — sites then skip all work
/// beyond one relaxed atomic load).
MetricsRegistry* Current();

/// RAII installer of the ambient registry. Passing nullptr leaves the
/// previously installed registry in place, so nested components can
/// unconditionally construct one from an optional config field.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(MetricsRegistry* registry);
  ~ScopedRegistry();

  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  MetricsRegistry* prev_ = nullptr;
  bool installed_ = false;
};

}  // namespace weber::obs

#endif  // WEBER_OBS_METRICS_H_
