#include "blocking/block_purging.h"

#include <algorithm>
#include <vector>

namespace weber::blocking {

namespace {

uint64_t CardinalityOf(const BlockCollection& blocks, const Block& block) {
  return blocks.collection() != nullptr
             ? block.NumComparisons(*blocks.collection())
             : block.size() * (block.size() - 1) / 2;
}

}  // namespace

size_t PurgeBlocksAbove(BlockCollection& blocks, uint64_t max_comparisons) {
  std::vector<Block>& all = blocks.mutable_blocks();
  size_t before = all.size();
  all.erase(std::remove_if(all.begin(), all.end(),
                           [&blocks, max_comparisons](const Block& block) {
                             return CardinalityOf(blocks, block) >
                                    max_comparisons;
                           }),
            all.end());
  return before - all.size();
}

uint64_t AutoPurgeBlocks(BlockCollection& blocks, double efficiency_ratio) {
  if (blocks.empty()) return 0;

  // Aggregate per distinct cardinality tier, ascending.
  struct Tier {
    uint64_t cardinality;
    uint64_t total_comparisons;
    uint64_t total_assignments;  // Sum of block sizes.
  };
  std::vector<std::pair<uint64_t, const Block*>> by_cardinality;
  by_cardinality.reserve(blocks.NumBlocks());
  for (const Block& block : blocks.blocks()) {
    by_cardinality.emplace_back(CardinalityOf(blocks, block), &block);
  }
  std::sort(by_cardinality.begin(), by_cardinality.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });

  std::vector<Tier> tiers;
  for (const auto& [cardinality, block] : by_cardinality) {
    if (tiers.empty() || tiers.back().cardinality != cardinality) {
      tiers.push_back({cardinality, 0, 0});
    }
    tiers.back().total_comparisons += cardinality;
    tiers.back().total_assignments += block->size();
  }

  // Walk tiers from the largest down: purge the top tier while its own
  // assignments-per-comparison efficiency is markedly worse than the
  // efficiency of everything below it. Stop at the first tier that pulls
  // its weight. Uniform collections purge nothing (every tier is about
  // as efficient as the rest).
  uint64_t comparisons_below = 0;
  uint64_t assignments_below = 0;
  for (const Tier& tier : tiers) {
    comparisons_below += tier.total_comparisons;
    assignments_below += tier.total_assignments;
  }
  uint64_t threshold = tiers.back().cardinality;  // Keep everything.
  for (size_t i = tiers.size(); i-- > 1;) {
    comparisons_below -= tiers[i].total_comparisons;
    assignments_below -= tiers[i].total_assignments;
    if (comparisons_below == 0) break;
    double tier_efficiency =
        static_cast<double>(tiers[i].total_assignments) /
        static_cast<double>(tiers[i].total_comparisons);
    double below_efficiency = static_cast<double>(assignments_below) /
                              static_cast<double>(comparisons_below);
    if (tier_efficiency >= efficiency_ratio * below_efficiency) {
      break;  // This tier is efficient enough to keep.
    }
    threshold = tiers[i - 1].cardinality;
  }

  if (threshold >= tiers.back().cardinality) return 0;
  PurgeBlocksAbove(blocks, threshold);
  return threshold;
}

}  // namespace weber::blocking
