#include "blocking/block_filtering.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace weber::blocking {

BlockCollection FilterBlocks(const BlockCollection& blocks, double ratio) {
  ratio = std::clamp(ratio, 0.0, 1.0);
  BlockCollection result(blocks.collection());
  if (blocks.empty()) return result;
  if (ratio >= 1.0) {
    result = blocks;
    return result;
  }

  // Rank blocks by ascending cardinality (size is the standard proxy).
  std::vector<uint32_t> rank_of(blocks.NumBlocks());
  {
    std::vector<uint32_t> order(blocks.NumBlocks());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&blocks](uint32_t x, uint32_t y) {
                size_t sx = blocks.blocks()[x].size();
                size_t sy = blocks.blocks()[y].size();
                if (sx != sy) return sx < sy;
                return x < y;
              });
    for (uint32_t r = 0; r < order.size(); ++r) rank_of[order[r]] = r;
  }

  // For each entity keep its ceil(ratio * |blocks(e)|) smallest blocks.
  std::vector<std::vector<uint32_t>> entity_blocks = blocks.EntityToBlocks();
  std::vector<std::vector<model::EntityId>> kept(blocks.NumBlocks());
  for (model::EntityId id = 0; id < entity_blocks.size(); ++id) {
    std::vector<uint32_t>& mine = entity_blocks[id];
    if (mine.empty()) continue;
    size_t keep = static_cast<size_t>(
        std::ceil(ratio * static_cast<double>(mine.size())));
    keep = std::max<size_t>(keep, 1);
    std::sort(mine.begin(), mine.end(), [&rank_of](uint32_t x, uint32_t y) {
      return rank_of[x] < rank_of[y];
    });
    for (size_t k = 0; k < keep && k < mine.size(); ++k) {
      kept[mine[k]].push_back(id);
    }
  }

  for (uint32_t b = 0; b < kept.size(); ++b) {
    if (kept[b].size() < 2) continue;
    result.AddBlock(Block{blocks.blocks()[b].key, std::move(kept[b])});
  }
  return result;
}

}  // namespace weber::blocking
