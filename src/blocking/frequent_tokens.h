#ifndef WEBER_BLOCKING_FREQUENT_TOKENS_H_
#define WEBER_BLOCKING_FREQUENT_TOKENS_H_

#include <cstdint>
#include <string>

#include "blocking/block.h"

namespace weber::blocking {

/// Options for frequent-token-pair blocking.
struct FrequentTokenOptions {
  /// A token pair forms a block only if at least this many descriptions
  /// contain both tokens.
  size_t min_support = 2;
  /// Per description, at most this many of its rarest tokens participate
  /// in pair mining (bounds the quadratic pair expansion per entity).
  size_t max_tokens_per_entity = 8;
  /// Tokens appearing in more than this many descriptions are excluded
  /// from mining outright (stop-word guard); 0 disables the cap.
  size_t max_token_frequency = 256;
};

/// Frequent token-set blocking (inspired by [19], Miliaraki et al.,
/// SIGMOD'13, in the role Section II assigns it): instead of one block
/// per single token, build blocks for *pairs of tokens* that co-occur in
/// at least `min_support` descriptions. Requiring two shared tokens makes
/// each block far more discriminative than single-token blocks — fewer,
/// smaller blocks at a modest recall cost for descriptions that share
/// only one token with their duplicates.
class FrequentTokenPairBlocking : public Blocker {
 public:
  explicit FrequentTokenPairBlocking(FrequentTokenOptions options = {})
      : options_(options) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "FrequentTokenPairBlocking"; }

 private:
  FrequentTokenOptions options_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_FREQUENT_TOKENS_H_
