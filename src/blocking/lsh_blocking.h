#ifndef WEBER_BLOCKING_LSH_BLOCKING_H_
#define WEBER_BLOCKING_LSH_BLOCKING_H_

#include <cstdint>
#include <string>

#include "blocking/block.h"

namespace weber::blocking {

/// Options of MinHash-LSH blocking. With b bands of r rows each, the
/// probability that a pair with Jaccard s shares at least one band bucket
/// is 1 - (1 - s^r)^b — the classic S-curve whose threshold sits near
/// (1/b)^(1/r).
struct LshOptions {
  size_t bands = 16;
  size_t rows_per_band = 4;
  uint64_t seed = 1;
};

/// MinHash-LSH blocking: each description's value-token set is sketched
/// into bands*rows MinHash values; each band's row tuple is a bucket key,
/// and descriptions sharing any bucket co-occur in a block. Sub-quadratic
/// candidate generation whose recall/precision knob is the (bands, rows)
/// pair — the go-to technique when even token blocking's inverted index
/// is too dense.
class LshBlocking : public Blocker {
 public:
  explicit LshBlocking(LshOptions options = {}) : options_(options) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "LshBlocking"; }

  /// The Jaccard level at which a pair has ~50% co-occurrence
  /// probability: (1/b)^(1/r).
  double ThresholdEstimate() const;

 private:
  LshOptions options_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_LSH_BLOCKING_H_
