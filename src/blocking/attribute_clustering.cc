#include "blocking/attribute_clustering.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/union_find.h"

namespace weber::blocking {

namespace {

// Aggregated (bounded) token profile of one attribute.
using AttributeProfiles =
    std::map<std::string, std::unordered_set<std::string>>;

AttributeProfiles CollectProfiles(const model::EntityCollection& collection,
                                  size_t max_tokens) {
  AttributeProfiles profiles;
  for (const model::EntityDescription& entity : collection.descriptions()) {
    for (const model::AttributeValue& pair : entity.pairs()) {
      std::unordered_set<std::string>& profile = profiles[pair.attribute];
      if (profile.size() >= max_tokens) continue;
      for (std::string& token : text::NormalizeAndTokenize(pair.value)) {
        profile.insert(std::move(token));
        if (profile.size() >= max_tokens) break;
      }
    }
  }
  return profiles;
}

double ProfileJaccard(const std::unordered_set<std::string>& a,
                      const std::unordered_set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const auto& smaller = a.size() <= b.size() ? a : b;
  const auto& larger = a.size() <= b.size() ? b : a;
  size_t intersection = 0;
  for (const std::string& token : smaller) {
    if (larger.contains(token)) ++intersection;
  }
  size_t union_size = a.size() + b.size() - intersection;
  return union_size == 0 ? 1.0
                         : static_cast<double>(intersection) / union_size;
}

}  // namespace

std::unordered_map<std::string, uint32_t>
AttributeClusteringBlocking::ClusterAttributes(
    const model::EntityCollection& collection) const {
  AttributeProfiles profiles =
      CollectProfiles(collection, options_.max_tokens_per_attribute);
  std::vector<const std::string*> names;
  std::vector<const std::unordered_set<std::string>*> tokens;
  names.reserve(profiles.size());
  for (const auto& [name, profile] : profiles) {
    names.push_back(&name);
    tokens.push_back(&profile);
  }

  // Link every attribute to its most similar other attribute if the
  // similarity clears the threshold, then take connected components.
  util::UnionFind forest(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    double best = options_.link_threshold;
    int64_t best_j = -1;
    for (size_t j = 0; j < names.size(); ++j) {
      if (i == j) continue;
      double sim = ProfileJaccard(*tokens[i], *tokens[j]);
      if (sim > best) {
        best = sim;
        best_j = static_cast<int64_t>(j);
      }
    }
    if (best_j >= 0) {
      forest.Union(static_cast<uint32_t>(i), static_cast<uint32_t>(best_j));
    }
  }

  // Re-label roots densely; singleton attributes share one "glue" cluster
  // so that their tokens still block against each other (as in the
  // original method's catch-all cluster).
  std::unordered_map<uint32_t, uint32_t> root_to_cluster;
  std::unordered_map<std::string, uint32_t> assignment;
  uint32_t next_cluster = 1;  // Cluster 0 is the glue cluster.
  for (size_t i = 0; i < names.size(); ++i) {
    uint32_t root = forest.Find(static_cast<uint32_t>(i));
    uint32_t cluster;
    if (forest.SizeOf(root) < 2) {
      cluster = 0;
    } else {
      auto [it, inserted] = root_to_cluster.emplace(root, next_cluster);
      if (inserted) ++next_cluster;
      cluster = it->second;
    }
    assignment.emplace(*names[i], cluster);
  }
  return assignment;
}

BlockCollection AttributeClusteringBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  std::unordered_map<std::string, uint32_t> clusters =
      ClusterAttributes(collection);
  // (cluster, token) -> entities.
  std::map<std::string, std::vector<model::EntityId>> index;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    std::set<std::string> keys;  // Dedup per entity.
    for (const model::AttributeValue& pair : collection[id].pairs()) {
      auto it = clusters.find(pair.attribute);
      uint32_t cluster = it == clusters.end() ? 0 : it->second;
      for (const std::string& token : text::NormalizeAndTokenize(pair.value)) {
        keys.insert(std::to_string(cluster) + "#" + token);
      }
    }
    for (const std::string& key : keys) {
      index[key].push_back(id);
    }
  }
  BlockCollection result(&collection);
  for (auto& [key, entities] : index) {
    result.AddBlock(Block{key, std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
