#ifndef WEBER_BLOCKING_SORTED_NEIGHBORHOOD_H_
#define WEBER_BLOCKING_SORTED_NEIGHBORHOOD_H_

#include <string>
#include <vector>

#include "blocking/block.h"
#include "model/entity.h"

namespace weber::blocking {

/// Produces the sorted order of entity ids under a blocking key.
///
/// The key of a description defaults to the lexicographically smallest of
/// its normalised value tokens concatenated with its second-smallest —
/// a schema-agnostic stand-in for the hand-crafted keys of relational
/// sorted neighbourhood. A custom key attribute can be supplied instead.
struct SortedOrderOptions {
  /// When non-empty, the key is built from this attribute's first value.
  std::string key_attribute;
};

/// The blocking key of one description under the given options: the
/// normalised first value of the key attribute, or (schema-agnostic
/// default) the two lexicographically smallest value tokens. Exposed so
/// that incremental sorted-neighbourhood maintenance keys new entities
/// exactly like the batch sort.
std::string SortedNeighborhoodKey(const model::EntityDescription& entity,
                                  const SortedOrderOptions& options = {});

/// Returns entity ids sorted by their blocking key (ties by id). Also
/// exposes the keys themselves (parallel to the returned order) when
/// keys_out != nullptr.
std::vector<model::EntityId> SortedOrder(
    const model::EntityCollection& collection,
    const SortedOrderOptions& options = {},
    std::vector<std::string>* keys_out = nullptr);

/// Sorted-neighbourhood blocking: entities are sorted by blocking key and
/// a window of fixed size w slides over the order; each window position
/// forms one block of w consecutive entities, so entities at distance
/// < w in the sort are candidates.
class SortedNeighborhood : public Blocker {
 public:
  explicit SortedNeighborhood(size_t window, SortedOrderOptions options = {})
      : window_(window), options_(std::move(options)) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "SortedNeighborhood"; }

 private:
  size_t window_;
  SortedOrderOptions options_;
};

/// Multi-pass sorted neighbourhood: one sliding-window pass per key
/// definition, blocks unioned. The classic remedy for dirty keys — a
/// match missed because one key attribute is corrupted is usually caught
/// by a pass over another attribute.
class MultiPassSortedNeighborhood : public Blocker {
 public:
  MultiPassSortedNeighborhood(size_t window,
                              std::vector<SortedOrderOptions> passes)
      : window_(window), passes_(std::move(passes)) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "MultiPassSortedNeighborhood"; }

 private:
  size_t window_;
  std::vector<SortedOrderOptions> passes_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_SORTED_NEIGHBORHOOD_H_
