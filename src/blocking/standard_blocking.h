#ifndef WEBER_BLOCKING_STANDARD_BLOCKING_H_
#define WEBER_BLOCKING_STANDARD_BLOCKING_H_

#include <string>
#include <vector>

#include "blocking/block.h"
#include "model/entity.h"

namespace weber::blocking {

/// Builds the classic relational blocking key of a description: the
/// concatenation of the normalised first values of the given attributes,
/// optionally truncating each value to a prefix. Descriptions missing all
/// key attributes get an empty key.
std::string StandardBlockingKey(const model::EntityDescription& entity,
                                const std::vector<std::string>& attributes,
                                size_t value_prefix = 0);

/// Traditional schema-based (standard) blocking: descriptions are grouped
/// by equality of a key built from pre-selected attributes. Included as
/// the baseline the tutorial contrasts with schema-agnostic methods: on
/// heterogeneous Web data the key attributes are often missing or named
/// differently across sources, so matches are lost (low PC).
class StandardBlocking : public Blocker {
 public:
  /// Blocks on the given key attributes; values truncated to value_prefix
  /// characters when value_prefix > 0.
  StandardBlocking(std::vector<std::string> key_attributes,
                   size_t value_prefix = 0)
      : key_attributes_(std::move(key_attributes)),
        value_prefix_(value_prefix) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "StandardBlocking"; }

 private:
  std::vector<std::string> key_attributes_;
  size_t value_prefix_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_STANDARD_BLOCKING_H_
