#include "blocking/canopy_clustering.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/tfidf.h"
#include "util/random.h"

namespace weber::blocking {

BlockCollection CanopyClustering::BuildBlocks(
    const model::EntityCollection& collection) const {
  BlockCollection result(&collection);
  if (collection.size() < 2) return result;

  text::TfIdfModel model = text::TfIdfModel::Fit(collection);
  std::vector<text::TfIdfVector> vectors = model.VectorizeAll(collection);

  // Inverted index: token id -> entities containing it, to restrict cosine
  // evaluations to entities sharing at least one token with the seed.
  std::unordered_map<uint32_t, std::vector<model::EntityId>> postings;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    for (const auto& [token, weight] : vectors[id].entries) {
      postings[token].push_back(id);
    }
  }

  std::vector<bool> removed(collection.size(), false);
  std::vector<model::EntityId> pool(collection.size());
  for (model::EntityId id = 0; id < collection.size(); ++id) pool[id] = id;
  util::Rng rng(options_.seed);
  rng.Shuffle(pool);

  size_t canopy_id = 0;
  for (model::EntityId seed_entity : pool) {
    if (removed[seed_entity]) continue;
    removed[seed_entity] = true;

    // Gather candidates sharing a token with the seed.
    std::unordered_set<model::EntityId> candidates;
    for (const auto& [token, weight] : vectors[seed_entity].entries) {
      auto it = postings.find(token);
      if (it == postings.end()) continue;
      for (model::EntityId other : it->second) {
        if (other != seed_entity) candidates.insert(other);
      }
    }

    Block block;
    block.key = "canopy" + std::to_string(canopy_id++);
    block.entities.push_back(seed_entity);
    for (model::EntityId other : candidates) {
      double sim =
          text::TfIdfModel::Cosine(vectors[seed_entity], vectors[other]);
      if (sim >= options_.loose_threshold) {
        block.entities.push_back(other);
        if (sim >= options_.tight_threshold) removed[other] = true;
      }
    }
    result.AddBlock(std::move(block));
  }
  return result;
}

}  // namespace weber::blocking
