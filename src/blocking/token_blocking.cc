#include "blocking/token_blocking.h"

#include <map>
#include <unordered_map>

#include "text/tokenizer.h"

namespace weber::blocking {

BlockCollection TokenBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  // token -> entity ids. std::map keeps block order deterministic.
  std::map<std::string, std::vector<model::EntityId>> index;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    for (std::string& token :
         text::ValueTokens(collection[id], options_.normalize)) {
      if (token.size() < options_.min_token_length) continue;
      index[std::move(token)].push_back(id);
    }
  }
  BlockCollection result(&collection);
  for (auto& [token, entities] : index) {
    if (options_.max_block_size != 0 &&
        entities.size() > options_.max_block_size) {
      continue;
    }
    result.AddBlock(Block{token, std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
