#include "blocking/token_blocking.h"

#include <map>
#include <unordered_map>

#include "core/executor.h"
#include "text/tokenizer.h"

namespace weber::blocking {

BlockCollection TokenBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  // token -> entity ids. std::map keeps block order deterministic.
  // Tokenisation dominates the cost, so the entity range is cut into
  // contiguous chunks indexed independently; merging the chunk maps in
  // chunk order appends each token's entity ids ascending — exactly the
  // order the serial scan produces, for any chunk count.
  using TokenIndex = std::map<std::string, std::vector<model::EntityId>>;
  size_t chunks = std::min<size_t>(
      std::max<size_t>(collection.size(), 1), core::EffectiveParallelism());
  std::vector<TokenIndex> partial(chunks);
  core::Executor::Shared().ParallelChunks(
      collection.size(), chunks,
      [this, &collection, &partial](size_t chunk, size_t begin, size_t end) {
        TokenIndex& local = partial[chunk];
        for (size_t id = begin; id < end; ++id) {
          for (std::string& token : text::ValueTokens(
                   collection[static_cast<model::EntityId>(id)],
                   options_.normalize)) {
            if (token.size() < options_.min_token_length) continue;
            local[std::move(token)].push_back(
                static_cast<model::EntityId>(id));
          }
        }
      });
  TokenIndex index = std::move(partial[0]);
  for (size_t chunk = 1; chunk < chunks; ++chunk) {
    for (auto& [token, entities] : partial[chunk]) {
      std::vector<model::EntityId>& merged = index[token];
      merged.insert(merged.end(), entities.begin(), entities.end());
    }
  }
  BlockCollection result(&collection);
  for (auto& [token, entities] : index) {
    if (options_.max_block_size != 0 &&
        entities.size() > options_.max_block_size) {
      continue;
    }
    result.AddBlock(Block{token, std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
