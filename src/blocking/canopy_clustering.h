#ifndef WEBER_BLOCKING_CANOPY_CLUSTERING_H_
#define WEBER_BLOCKING_CANOPY_CLUSTERING_H_

#include <string>

#include "blocking/block.h"

namespace weber::blocking {

/// Options for canopy clustering. Similarities are TF-IDF cosine in
/// [0, 1]; tight_threshold must be >= loose_threshold.
struct CanopyOptions {
  /// Entities with similarity >= loose_threshold to the seed join the
  /// canopy (and may join more canopies later).
  double loose_threshold = 0.15;
  /// Entities with similarity >= tight_threshold are removed from the
  /// candidate pool and seed no further canopy.
  double tight_threshold = 0.35;
  /// Seed selection order (deterministic).
  uint64_t seed = 7;
};

/// Canopy clustering (McCallum et al.) used as a blocking method: cheap
/// TF-IDF cosine forms overlapping canopies; each canopy is a block.
/// Canopies overlap when loose < tight, which preserves recall across
/// cluster boundaries.
class CanopyClustering : public Blocker {
 public:
  explicit CanopyClustering(CanopyOptions options = {}) : options_(options) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "CanopyClustering"; }

 private:
  CanopyOptions options_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_CANOPY_CLUSTERING_H_
