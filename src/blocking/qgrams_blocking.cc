#include "blocking/qgrams_blocking.h"

#include <map>
#include <unordered_set>

#include "text/qgram.h"
#include "text/tokenizer.h"

namespace weber::blocking {

BlockCollection QGramsBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  std::map<std::string, std::vector<model::EntityId>> index;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    std::unordered_set<std::string> grams;
    for (const std::string& token : text::ValueTokens(collection[id])) {
      if (token.size() < min_token_length_) continue;
      for (std::string& gram : text::DistinctQGrams(token, q_)) {
        grams.insert(std::move(gram));
      }
    }
    for (const std::string& gram : grams) {
      index[gram].push_back(id);
    }
  }
  BlockCollection result(&collection);
  for (auto& [gram, entities] : index) {
    result.AddBlock(Block{gram, std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
