#ifndef WEBER_BLOCKING_BLOCK_PURGING_H_
#define WEBER_BLOCKING_BLOCK_PURGING_H_

#include <cstdint>

#include "blocking/block.h"

namespace weber::blocking {

/// Removes blocks whose comparison cardinality exceeds the threshold.
/// Returns the number of blocks removed. Oversized blocks stem from
/// stop-word-like tokens: they cost quadratically many comparisons while
/// contributing almost no unique matches.
size_t PurgeBlocksAbove(BlockCollection& blocks, uint64_t max_comparisons);

/// Automatic block purging (Papadakis et al.): groups blocks into tiers
/// of equal comparison cardinality and, walking from the largest tier
/// down, purges a tier while its marginal efficiency — block assignments
/// per comparison within the tier — is below `efficiency_ratio` times
/// the efficiency of the remaining (smaller) tiers. Stop-word blocks are
/// quadratically inefficient and get dropped; collections with a uniform
/// block-size profile (e.g., sorted-neighbourhood windows) are left
/// untouched. Returns the chosen cardinality threshold (0 when nothing
/// was purged).
uint64_t AutoPurgeBlocks(BlockCollection& blocks,
                         double efficiency_ratio = 0.25);

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_BLOCK_PURGING_H_
