#include "blocking/lsh_blocking.h"

#include <cmath>
#include <map>

#include "text/minhash.h"
#include "text/tokenizer.h"

namespace weber::blocking {

double LshBlocking::ThresholdEstimate() const {
  double b = static_cast<double>(std::max<size_t>(options_.bands, 1));
  double r = static_cast<double>(std::max<size_t>(options_.rows_per_band, 1));
  return std::pow(1.0 / b, 1.0 / r);
}

BlockCollection LshBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  size_t bands = std::max<size_t>(options_.bands, 1);
  size_t rows = std::max<size_t>(options_.rows_per_band, 1);
  text::MinHasher hasher(bands * rows, options_.seed);

  // Bucket key: band index + the band's row values, rendered to a string
  // (band-scoped so identical row tuples in different bands don't
  // collide).
  std::map<std::string, std::vector<model::EntityId>> buckets;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    std::vector<std::string> tokens = text::ValueTokens(collection[id]);
    if (tokens.empty()) continue;
    std::vector<uint64_t> signature = hasher.Signature(tokens);
    for (size_t band = 0; band < bands; ++band) {
      std::string key = "b" + std::to_string(band);
      for (size_t row = 0; row < rows; ++row) {
        key.push_back('#');
        key += std::to_string(signature[band * rows + row]);
      }
      buckets[std::move(key)].push_back(id);
    }
  }

  BlockCollection result(&collection);
  for (auto& [key, entities] : buckets) {
    result.AddBlock(Block{key, std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
