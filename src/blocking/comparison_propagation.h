#ifndef WEBER_BLOCKING_COMPARISON_PROPAGATION_H_
#define WEBER_BLOCKING_COMPARISON_PROPAGATION_H_

#include <functional>
#include <vector>

#include "blocking/block.h"
#include "model/ground_truth.h"

namespace weber::blocking {

/// Comparison propagation via the least-common-block-index (LeCoBI)
/// condition: a pair (a, b) is executed only inside the first block (in
/// block order) that contains both, so each distinct pair is visited
/// exactly once without materialising a hash set of executed pairs.
///
/// This is the hash-free redundancy eliminator used by block-centric
/// executors (iterative blocking, parallel processing); it needs only the
/// entity-to-blocks inverted index.
class ComparisonPropagation {
 public:
  explicit ComparisonPropagation(const BlockCollection& blocks);

  /// True if block_index is the least common block of a and b, i.e., the
  /// comparison (a, b) should be executed in this block.
  bool IsLeastCommonBlock(model::EntityId a, model::EntityId b,
                          uint32_t block_index) const;

  /// Visits every distinct comparable pair exactly once, in block order.
  void VisitPairs(
      const std::function<void(model::EntityId, model::EntityId)>& visitor)
      const;

  /// Counts distinct pairs without materialising them.
  uint64_t CountDistinctPairs() const;

  const std::vector<std::vector<uint32_t>>& entity_to_blocks() const {
    return entity_to_blocks_;
  }

 private:
  const BlockCollection& blocks_;
  std::vector<std::vector<uint32_t>> entity_to_blocks_;  // Ascending lists.
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_COMPARISON_PROPAGATION_H_
