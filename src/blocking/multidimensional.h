#ifndef WEBER_BLOCKING_MULTIDIMENSIONAL_H_
#define WEBER_BLOCKING_MULTIDIMENSIONAL_H_

#include <memory>
#include <string>
#include <vector>

#include "blocking/block.h"
#include "model/ground_truth.h"

namespace weber::blocking {

/// Multidimensional overlapping blocks (inspired by [17], Isele et al.,
/// WebDB'11): several blocking collections — typically one per similarity
/// dimension/function — are aggregated into a single collection that
/// keeps only the candidate pairs co-occurring in at least
/// `min_agreement` of the input collections. Agreement across dimensions
/// stands in for the original's multidimensional index overlap test:
/// pairs supported by several independent similarity views are far more
/// likely to match.
///
/// Returns a BlockCollection of one block per surviving pair (blocks_ of
/// size two), annotated with the agreement count in the key, so that all
/// downstream machinery (evaluation, scheduling, meta-blocking) applies
/// unchanged.
BlockCollection AggregateMultidimensional(
    const std::vector<const BlockCollection*>& dimensions,
    size_t min_agreement);

/// Convenience wrapper that builds each dimension from a blocker and
/// aggregates. Blockers are borrowed.
class MultidimensionalBlocking : public Blocker {
 public:
  MultidimensionalBlocking(std::vector<const Blocker*> dimensions,
                           size_t min_agreement)
      : dimensions_(std::move(dimensions)), min_agreement_(min_agreement) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "MultidimensionalBlocking"; }

 private:
  std::vector<const Blocker*> dimensions_;
  size_t min_agreement_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_MULTIDIMENSIONAL_H_
