#ifndef WEBER_BLOCKING_PHONETIC_BLOCKING_H_
#define WEBER_BLOCKING_PHONETIC_BLOCKING_H_

#include <string>

#include "blocking/block.h"

namespace weber::blocking {

/// Phonetic blocking: every value token is encoded with Soundex (or the
/// lighter PhoneticKey) and descriptions sharing a code co-occur. Catches
/// phonetic misspellings ("smith"/"smyth", "jon"/"john") that exact token
/// blocking misses, at the cost of bigger, less precise blocks — the
/// classic phonetic-encoding entry of Christen's indexing survey.
class PhoneticBlocking : public Blocker {
 public:
  /// use_soundex = false switches to the longer PhoneticKey codes
  /// (smaller blocks, less phonetic tolerance).
  explicit PhoneticBlocking(bool use_soundex = true,
                            size_t min_token_length = 3)
      : use_soundex_(use_soundex), min_token_length_(min_token_length) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "PhoneticBlocking"; }

 private:
  bool use_soundex_;
  size_t min_token_length_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_PHONETIC_BLOCKING_H_
