#include "blocking/multidimensional.h"

#include <unordered_map>

namespace weber::blocking {

BlockCollection AggregateMultidimensional(
    const std::vector<const BlockCollection*>& dimensions,
    size_t min_agreement) {
  const model::EntityCollection* collection = nullptr;
  for (const BlockCollection* dimension : dimensions) {
    if (dimension != nullptr && dimension->collection() != nullptr) {
      collection = dimension->collection();
      break;
    }
  }
  std::unordered_map<model::IdPair, uint32_t, model::IdPairHash> agreement;
  for (const BlockCollection* dimension : dimensions) {
    if (dimension == nullptr) continue;
    dimension->VisitDistinctPairs(
        [&agreement](model::EntityId a, model::EntityId b) {
          ++agreement[model::IdPair::Of(a, b)];
        });
  }
  BlockCollection result(collection);
  min_agreement = std::max<size_t>(min_agreement, 1);
  for (const auto& [pair, votes] : agreement) {
    if (votes < min_agreement) continue;
    Block block;
    block.key = std::to_string(pair.low) + "_" + std::to_string(pair.high) +
                "@" + std::to_string(votes);
    block.entities = {pair.low, pair.high};
    result.AddBlock(std::move(block));
  }
  return result;
}

BlockCollection MultidimensionalBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  std::vector<BlockCollection> built;
  built.reserve(dimensions_.size());
  for (const Blocker* blocker : dimensions_) {
    built.push_back(blocker->Build(collection));
  }
  std::vector<const BlockCollection*> views;
  views.reserve(built.size());
  for (const BlockCollection& dimension : built) {
    views.push_back(&dimension);
  }
  return AggregateMultidimensional(views, min_agreement_);
}

}  // namespace weber::blocking
