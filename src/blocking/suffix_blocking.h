#ifndef WEBER_BLOCKING_SUFFIX_BLOCKING_H_
#define WEBER_BLOCKING_SUFFIX_BLOCKING_H_

#include <string>

#include "blocking/block.h"

namespace weber::blocking {

/// Suffix-array blocking: every suffix (of length >= min_suffix_length) of
/// every value token defines a block; blocks exceeding max_block_size are
/// discarded, as in the original suffix-array indexing technique for record
/// linkage. Catches prefix typos that q-gram prefixes miss.
class SuffixBlocking : public Blocker {
 public:
  SuffixBlocking(size_t min_suffix_length = 4, size_t max_block_size = 64)
      : min_suffix_length_(min_suffix_length),
        max_block_size_(max_block_size) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "SuffixBlocking"; }

 private:
  size_t min_suffix_length_;
  size_t max_block_size_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_SUFFIX_BLOCKING_H_
