#include "blocking/prefix_infix_suffix.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "text/tokenizer.h"

namespace weber::blocking {

namespace {

bool IsNumericSegment(std::string_view segment) {
  if (segment.empty()) return false;
  return std::all_of(segment.begin(), segment.end(), [](unsigned char c) {
    return std::isdigit(c);
  });
}

}  // namespace

UriParts SplitUri(std::string_view uri) {
  UriParts parts;
  if (uri.empty()) return parts;

  // Segment boundaries: '/', '#', ':'. Find the last two segments.
  size_t last = uri.find_last_of("/#");
  if (last == std::string_view::npos) {
    parts.infix = std::string(uri);
    return parts;
  }
  std::string_view tail = uri.substr(last + 1);
  std::string_view head = uri.substr(0, last);

  if ((IsNumericSegment(tail) || tail.size() <= 2) && !head.empty()) {
    // Trailing id or short tag: treat as suffix, infix is the segment
    // before it.
    parts.suffix = std::string(tail);
    size_t prev = head.find_last_of("/#");
    if (prev == std::string_view::npos) {
      parts.infix = std::string(head);
    } else {
      parts.infix = std::string(head.substr(prev + 1));
      parts.prefix = std::string(head.substr(0, prev + 1));
    }
  } else {
    parts.infix = std::string(tail);
    parts.prefix = std::string(uri.substr(0, last + 1));
  }
  return parts;
}

BlockCollection PrefixInfixSuffixBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  std::map<std::string, std::vector<model::EntityId>> index;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    std::set<std::string> keys;
    UriParts parts = SplitUri(collection[id].uri());
    // Tokens of the infix; URI infixes use '_' and '-' which Normalize
    // already treats as punctuation.
    for (std::string& token : text::NormalizeAndTokenize(parts.infix)) {
      keys.insert("i#" + std::move(token));
    }
    if (!parts.suffix.empty()) keys.insert("s#" + parts.suffix);
    if (include_value_tokens_) {
      for (std::string& token : text::ValueTokens(collection[id])) {
        keys.insert("t#" + std::move(token));
      }
    }
    for (const std::string& key : keys) {
      index[key].push_back(id);
    }
  }
  BlockCollection result(&collection);
  for (auto& [key, entities] : index) {
    result.AddBlock(Block{key, std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
