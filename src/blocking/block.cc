#include "blocking/block.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace weber::blocking {

uint64_t Block::NumComparisons(
    const model::EntityCollection& collection) const {
  uint64_t n = entities.size();
  if (n < 2) return 0;
  if (collection.setting() == model::ErSetting::kDirty) {
    return n * (n - 1) / 2;
  }
  uint64_t from_first = 0;
  for (model::EntityId id : entities) {
    if (collection.InFirstSource(id)) ++from_first;
  }
  return from_first * (n - from_first);
}

void BlockCollection::AddBlock(Block block) {
  ++keys_emitted_;
  std::sort(block.entities.begin(), block.entities.end());
  block.entities.erase(
      std::unique(block.entities.begin(), block.entities.end()),
      block.entities.end());
  if (block.entities.size() < 2) return;
  // Every id a blocker emits must resolve in the collection: an out-of-
  // range id here would index out of bounds in EntityToBlocks and every
  // downstream consumer. entities is sorted, so checking back() covers all.
  if (collection_ != nullptr) {
    WEBER_CHECK_LT(block.entities.back(), collection_->size())
        << "block '" << block.key << "' names an entity outside the "
        << "collection";
  }
  if (collection_ != nullptr && block.NumComparisons(*collection_) == 0) {
    return;  // e.g., clean-clean block with entities from one source only.
  }
  blocks_.push_back(std::move(block));
}

uint64_t BlockCollection::TotalComparisonsWithRedundancy() const {
  uint64_t total = 0;
  for (const Block& block : blocks_) {
    total += collection_ != nullptr
                 ? block.NumComparisons(*collection_)
                 : block.size() * (block.size() - 1) / 2;
  }
  return total;
}

model::IdPairSet BlockCollection::DistinctPairs() const {
  model::IdPairSet pairs;
  VisitDistinctPairs([&pairs](model::EntityId a, model::EntityId b) {
    pairs.insert(model::IdPair::Of(a, b));
  });
  return pairs;
}

void BlockCollection::VisitDistinctPairs(
    const std::function<void(model::EntityId, model::EntityId)>& visitor)
    const {
  model::IdPairSet seen;
  for (const Block& block : blocks_) {
    for (size_t i = 0; i < block.entities.size(); ++i) {
      for (size_t j = i + 1; j < block.entities.size(); ++j) {
        model::EntityId a = block.entities[i];
        model::EntityId b = block.entities[j];
        if (collection_ != nullptr && !collection_->Comparable(a, b)) {
          continue;
        }
        if (seen.insert(model::IdPair::Of(a, b)).second) visitor(a, b);
      }
    }
  }
}

std::vector<std::vector<uint32_t>> BlockCollection::EntityToBlocks() const {
  size_t n = collection_ != nullptr ? collection_->size() : 0;
  if (n == 0) {
    for (const Block& block : blocks_) {
      for (model::EntityId id : block.entities) {
        n = std::max<size_t>(n, id + 1);
      }
    }
  }
  std::vector<std::vector<uint32_t>> index(n);
  for (uint32_t b = 0; b < blocks_.size(); ++b) {
    for (model::EntityId id : blocks_[b].entities) {
      WEBER_DCHECK_LT(id, index.size()) << "block entity outside the index";
      index[id].push_back(b);
    }
  }
  return index;
}

int64_t BlockCollection::LargestBlock() const {
  int64_t best = -1;
  size_t best_size = 0;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].size() > best_size) {
      best_size = blocks_[i].size();
      best = static_cast<int64_t>(i);
    }
  }
  return best;
}

void BlockCollection::SortBlocksBySize() {
  std::sort(blocks_.begin(), blocks_.end(),
            [](const Block& x, const Block& y) {
              if (x.entities.size() != y.entities.size()) {
                return x.entities.size() < y.entities.size();
              }
              return x.key < y.key;
            });
}

BlockCollection Blocker::Build(
    const model::EntityCollection& collection) const {
  obs::MetricsRegistry* registry = obs::Current();
  if (registry == nullptr) {
    BlockCollection blocks = BuildBlocks(collection);
    WEBER_DCHECK(blocks.collection() == nullptr ||
                 blocks.collection() == &collection)
        << name() << " returned blocks over a different collection";
    return blocks;
  }

  util::Timer timer;
  BlockCollection blocks = BuildBlocks(collection);
  WEBER_DCHECK(blocks.collection() == nullptr ||
               blocks.collection() == &collection)
      << name() << " returned blocks over a different collection";
  registry->GetHistogram("weber.blocking.build_seconds")
      .Record(timer.ElapsedSeconds());
  registry->GetCounter("weber.blocking.builds").Increment();
  registry->GetCounter("weber.blocking.keys_emitted")
      .Add(blocks.keys_emitted());
  registry->GetCounter("weber.blocking.blocks_built").Add(blocks.NumBlocks());
  registry->GetCounter("weber.blocking.comparisons_suggested")
      .Add(blocks.TotalComparisonsWithRedundancy());
  obs::Histogram& sizes = registry->GetHistogram("weber.blocking.block_size");
  for (const Block& block : blocks.blocks()) {
    sizes.Record(static_cast<double>(block.size()));
  }
  return blocks;
}

}  // namespace weber::blocking
