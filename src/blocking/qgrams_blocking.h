#ifndef WEBER_BLOCKING_QGRAMS_BLOCKING_H_
#define WEBER_BLOCKING_QGRAMS_BLOCKING_H_

#include <string>

#include "blocking/block.h"

namespace weber::blocking {

/// Q-grams blocking: every distinct character q-gram of every value token
/// defines a block. More redundancy (and thus higher recall under typos)
/// than token blocking, at the price of more and bigger blocks — the
/// classic robustness/cost trade-off surveyed in Section II.
class QGramsBlocking : public Blocker {
 public:
  explicit QGramsBlocking(size_t q = 3, size_t min_token_length = 3)
      : q_(q), min_token_length_(min_token_length) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "QGramsBlocking"; }

 private:
  size_t q_;
  size_t min_token_length_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_QGRAMS_BLOCKING_H_
