#ifndef WEBER_BLOCKING_ATTRIBUTE_CLUSTERING_H_
#define WEBER_BLOCKING_ATTRIBUTE_CLUSTERING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "blocking/block.h"

namespace weber::blocking {

/// Options for attribute-clustering blocking.
struct AttributeClusteringOptions {
  /// Minimum token-set similarity (Jaccard over value tokens aggregated per
  /// attribute) for two attributes to be linked into the same cluster.
  double link_threshold = 0.1;
  /// At most this many distinct tokens are sampled per attribute when
  /// computing attribute-to-attribute similarity.
  size_t max_tokens_per_attribute = 1000;
};

/// Attribute-clustering blocking (Papadakis et al., TKDE'13): attributes
/// are first clustered by the similarity of their aggregated value-token
/// sets (so "name" in KB1 and "label" in KB2 land in the same cluster);
/// token blocking is then applied per cluster, the block key being
/// (cluster, token). Compared to plain token blocking this avoids
/// co-occurrences caused by the same token appearing under semantically
/// unrelated attributes, trading a little recall for much better
/// precision on heterogeneous data.
class AttributeClusteringBlocking : public Blocker {
 public:
  explicit AttributeClusteringBlocking(
      AttributeClusteringOptions options = {})
      : options_(options) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "AttributeClusteringBlocking"; }

  /// Exposed for tests: maps each attribute name to its cluster id.
  std::unordered_map<std::string, uint32_t> ClusterAttributes(
      const model::EntityCollection& collection) const;

 private:
  AttributeClusteringOptions options_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_ATTRIBUTE_CLUSTERING_H_
