#include "blocking/suffix_blocking.h"

#include <map>
#include <unordered_set>

#include "text/tokenizer.h"

namespace weber::blocking {

BlockCollection SuffixBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  std::map<std::string, std::vector<model::EntityId>> index;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    std::unordered_set<std::string> suffixes;
    for (const std::string& token : text::ValueTokens(collection[id])) {
      if (token.size() < min_suffix_length_) continue;
      for (size_t start = 0; token.size() - start >= min_suffix_length_;
           ++start) {
        suffixes.insert(token.substr(start));
      }
    }
    for (const std::string& suffix : suffixes) {
      index[suffix].push_back(id);
    }
  }
  BlockCollection result(&collection);
  for (auto& [suffix, entities] : index) {
    if (max_block_size_ != 0 && entities.size() > max_block_size_) continue;
    result.AddBlock(Block{suffix, std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
