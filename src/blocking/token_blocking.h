#ifndef WEBER_BLOCKING_TOKEN_BLOCKING_H_
#define WEBER_BLOCKING_TOKEN_BLOCKING_H_

#include <string>

#include "blocking/block.h"
#include "text/normalizer.h"

namespace weber::blocking {

/// Options for schema-agnostic token blocking.
struct TokenBlockingOptions {
  /// Normalisation applied to attribute values before tokenisation.
  text::NormalizeOptions normalize;
  /// Tokens shorter than this do not form blocks (noise control).
  size_t min_token_length = 1;
  /// Blocks larger than this are dropped outright (0 = keep all). Most
  /// deployments instead run BlockPurging afterwards.
  size_t max_block_size = 0;
};

/// Schema-agnostic token blocking (Papadakis et al.): every distinct token
/// appearing in any attribute value defines a block containing all
/// descriptions featuring that token. Two descriptions co-occur if they
/// share at least one token, regardless of attribute names — the key
/// property that makes the method robust to the structural heterogeneity
/// of the Web of data.
class TokenBlocking : public Blocker {
 public:
  explicit TokenBlocking(TokenBlockingOptions options = {})
      : options_(options) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "TokenBlocking"; }

 private:
  TokenBlockingOptions options_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_TOKEN_BLOCKING_H_
