#include "blocking/comparison_propagation.h"

#include <algorithm>

namespace weber::blocking {

ComparisonPropagation::ComparisonPropagation(const BlockCollection& blocks)
    : blocks_(blocks), entity_to_blocks_(blocks.EntityToBlocks()) {}

bool ComparisonPropagation::IsLeastCommonBlock(model::EntityId a,
                                               model::EntityId b,
                                               uint32_t block_index) const {
  // Merge-scan the two ascending block lists for the first common index.
  const std::vector<uint32_t>& list_a = entity_to_blocks_[a];
  const std::vector<uint32_t>& list_b = entity_to_blocks_[b];
  size_t i = 0;
  size_t j = 0;
  while (i < list_a.size() && j < list_b.size()) {
    if (list_a[i] == list_b[j]) return list_a[i] == block_index;
    if (list_a[i] < list_b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

void ComparisonPropagation::VisitPairs(
    const std::function<void(model::EntityId, model::EntityId)>& visitor)
    const {
  const model::EntityCollection* collection = blocks_.collection();
  for (uint32_t b = 0; b < blocks_.NumBlocks(); ++b) {
    const Block& block = blocks_.blocks()[b];
    for (size_t i = 0; i < block.entities.size(); ++i) {
      for (size_t j = i + 1; j < block.entities.size(); ++j) {
        model::EntityId x = block.entities[i];
        model::EntityId y = block.entities[j];
        if (collection != nullptr && !collection->Comparable(x, y)) continue;
        if (IsLeastCommonBlock(x, y, b)) visitor(x, y);
      }
    }
  }
}

uint64_t ComparisonPropagation::CountDistinctPairs() const {
  uint64_t count = 0;
  VisitPairs([&count](model::EntityId, model::EntityId) { ++count; });
  return count;
}

}  // namespace weber::blocking
