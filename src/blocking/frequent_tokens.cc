#include "blocking/frequent_tokens.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "text/tokenizer.h"

namespace weber::blocking {

BlockCollection FrequentTokenPairBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  // Pass 1: token document frequencies.
  std::vector<std::vector<std::string>> tokens_of(collection.size());
  std::unordered_map<std::string, uint32_t> frequency;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    tokens_of[id] = text::ValueTokens(collection[id]);
    for (const std::string& token : tokens_of[id]) ++frequency[token];
  }

  // Pass 2: per entity, keep its rarest eligible tokens and emit pairs.
  std::map<std::pair<std::string, std::string>,
           std::vector<model::EntityId>>
      pair_index;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    std::vector<std::string>& tokens = tokens_of[id];
    if (options_.max_token_frequency != 0) {
      tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                                  [this, &frequency](const std::string& t) {
                                    return frequency[t] >
                                           options_.max_token_frequency;
                                  }),
                   tokens.end());
    }
    std::sort(tokens.begin(), tokens.end(),
              [&frequency](const std::string& x, const std::string& y) {
                uint32_t fx = frequency[x];
                uint32_t fy = frequency[y];
                if (fx != fy) return fx < fy;  // Rarest first.
                return x < y;
              });
    if (tokens.size() > options_.max_tokens_per_entity) {
      tokens.resize(options_.max_tokens_per_entity);
    }
    for (size_t i = 0; i < tokens.size(); ++i) {
      for (size_t j = i + 1; j < tokens.size(); ++j) {
        std::pair<std::string, std::string> key =
            tokens[i] < tokens[j]
                ? std::make_pair(tokens[i], tokens[j])
                : std::make_pair(tokens[j], tokens[i]);
        pair_index[std::move(key)].push_back(id);
      }
    }
  }

  BlockCollection result(&collection);
  for (auto& [key, entities] : pair_index) {
    if (entities.size() < std::max<size_t>(options_.min_support, 2)) {
      continue;
    }
    result.AddBlock(Block{key.first + "+" + key.second,
                          std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
