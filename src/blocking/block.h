#ifndef WEBER_BLOCKING_BLOCK_H_
#define WEBER_BLOCKING_BLOCK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/entity.h"
#include "model/ground_truth.h"

namespace weber::blocking {

/// A block: the set of entity ids that share a blocking key. Entities are
/// kept sorted and distinct.
struct Block {
  std::string key;
  std::vector<model::EntityId> entities;

  size_t size() const { return entities.size(); }

  /// Number of comparisons this block suggests on its own, honouring the
  /// collection's setting: all pairs for dirty ER, cross-source pairs for
  /// clean-clean.
  uint64_t NumComparisons(const model::EntityCollection& collection) const;
};

/// A blocking collection: the output of a blocking method over one entity
/// collection. Keeps a non-owning pointer to the collection so that
/// downstream consumers (meta-blocking, evaluation) can honour the ER
/// setting.
class BlockCollection {
 public:
  BlockCollection() = default;
  explicit BlockCollection(const model::EntityCollection* collection)
      : collection_(collection) {}

  /// Appends a block. Entities are sorted and deduplicated; blocks that
  /// suggest no comparison under the collection's setting are dropped.
  void AddBlock(Block block);

  const std::vector<Block>& blocks() const { return blocks_; }
  std::vector<Block>& mutable_blocks() { return blocks_; }
  size_t NumBlocks() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }

  /// Number of AddBlock calls, including blocks dropped as too small or
  /// suggesting no comparison: the raw key count the builder emitted.
  uint64_t keys_emitted() const { return keys_emitted_; }

  const model::EntityCollection* collection() const { return collection_; }

  /// Aggregate comparisons over all blocks, counting a pair once per block
  /// it co-occurs in (i.e., including redundancy). This is the cost a
  /// naive executor would pay.
  uint64_t TotalComparisonsWithRedundancy() const;

  /// The distinct candidate pairs suggested by the collection (each pair
  /// once, no matter how many blocks it co-occurs in).
  model::IdPairSet DistinctPairs() const;

  /// Visits every distinct candidate pair once. Lower memory than
  /// DistinctPairs for large collections; see comparison_propagation.h for
  /// the hash-free variant.
  void VisitDistinctPairs(
      const std::function<void(model::EntityId, model::EntityId)>& visitor)
      const;

  /// Builds the inverted index from entity id to the (ascending) list of
  /// block indices that contain it.
  std::vector<std::vector<uint32_t>> EntityToBlocks() const;

  /// Index of the largest block, or -1 if empty.
  int64_t LargestBlock() const;

  /// Sorts blocks by ascending cardinality (comparison count); useful
  /// before purging and for progressive block processing.
  void SortBlocksBySize();

 private:
  std::vector<Block> blocks_;
  uint64_t keys_emitted_ = 0;
  const model::EntityCollection* collection_ = nullptr;
};

/// Interface implemented by every blocking method.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Builds the blocking collection for the given entities. When a
  /// metrics registry is attached (obs::ScopedRegistry) the build reports
  /// its duration, keys emitted, blocks built, suggested comparisons and
  /// block-size distribution under `weber.blocking.*`; nested builders
  /// (multi-pass, multidimensional) report their inner builds too.
  BlockCollection Build(const model::EntityCollection& collection) const;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

 protected:
  /// The actual blocking method, implemented by each subclass.
  virtual BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const = 0;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_BLOCK_H_
