#include "blocking/sorted_neighborhood.h"

#include <algorithm>
#include <numeric>

#include "text/normalizer.h"
#include "text/tokenizer.h"

namespace weber::blocking {

std::string SortedNeighborhoodKey(const model::EntityDescription& entity,
                                  const SortedOrderOptions& options) {
  if (!options.key_attribute.empty()) {
    auto value = entity.FirstValueOf(options.key_attribute);
    return value.has_value() ? text::Normalize(*value) : std::string();
  }
  // Schema-agnostic key: the two lexicographically smallest value tokens.
  std::vector<std::string> tokens = text::ValueTokens(entity);
  if (tokens.empty()) return {};
  std::sort(tokens.begin(), tokens.end());
  std::string key = tokens[0];
  if (tokens.size() > 1) {
    key.push_back(' ');
    key.append(tokens[1]);
  }
  return key;
}

std::vector<model::EntityId> SortedOrder(
    const model::EntityCollection& collection,
    const SortedOrderOptions& options, std::vector<std::string>* keys_out) {
  std::vector<std::string> keys(collection.size());
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    keys[id] = SortedNeighborhoodKey(collection[id], options);
  }
  std::vector<model::EntityId> order(collection.size());
  std::iota(order.begin(), order.end(), model::EntityId{0});
  std::sort(order.begin(), order.end(),
            [&keys](model::EntityId a, model::EntityId b) {
              if (keys[a] != keys[b]) return keys[a] < keys[b];
              return a < b;
            });
  if (keys_out != nullptr) {
    keys_out->resize(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      (*keys_out)[i] = keys[order[i]];
    }
  }
  return order;
}

BlockCollection SortedNeighborhood::BuildBlocks(
    const model::EntityCollection& collection) const {
  BlockCollection result(&collection);
  if (window_ < 2 || collection.size() < 2) return result;
  std::vector<model::EntityId> order = SortedOrder(collection, options_);
  for (size_t start = 0; start + 1 < order.size(); ++start) {
    size_t end = std::min(start + window_, order.size());
    Block block;
    block.key = "w" + std::to_string(start);
    block.entities.assign(order.begin() + start, order.begin() + end);
    result.AddBlock(std::move(block));
  }
  return result;
}

BlockCollection MultiPassSortedNeighborhood::BuildBlocks(
    const model::EntityCollection& collection) const {
  BlockCollection result(&collection);
  for (size_t pass = 0; pass < passes_.size(); ++pass) {
    BlockCollection single =
        SortedNeighborhood(window_, passes_[pass]).Build(collection);
    for (Block& block : single.mutable_blocks()) {
      block.key = "p" + std::to_string(pass) + block.key;
      result.AddBlock(std::move(block));
    }
  }
  return result;
}

}  // namespace weber::blocking
