#include "blocking/phonetic_blocking.h"

#include <map>
#include <set>

#include "text/phonetic.h"
#include "text/tokenizer.h"

namespace weber::blocking {

BlockCollection PhoneticBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  std::map<std::string, std::vector<model::EntityId>> index;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    std::set<std::string> codes;
    for (const std::string& token : text::ValueTokens(collection[id])) {
      if (token.size() < min_token_length_) continue;
      std::string code = use_soundex_ ? text::Soundex(token)
                                      : text::PhoneticKey(token);
      if (!code.empty()) codes.insert(std::move(code));
    }
    for (const std::string& code : codes) {
      index[code].push_back(id);
    }
  }
  BlockCollection result(&collection);
  for (auto& [code, entities] : index) {
    result.AddBlock(Block{code, std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
