#ifndef WEBER_BLOCKING_PREFIX_INFIX_SUFFIX_H_
#define WEBER_BLOCKING_PREFIX_INFIX_SUFFIX_H_

#include <string>

#include "blocking/block.h"

namespace weber::blocking {

/// Decomposition of a Linked-Data URI into its source-specific prefix
/// (scheme + authority + leading path), its entity-identifying infix, and
/// an optional technical suffix (e.g., a trailing version or format tag).
struct UriParts {
  std::string prefix;
  std::string infix;
  std::string suffix;
};

/// Splits a URI: the infix is the last non-numeric path segment (with
/// '#'-fragments treated as segments); a purely numeric or very short
/// final segment is treated as a suffix of the preceding infix.
UriParts SplitUri(std::string_view uri);

/// Prefix-infix(-suffix) blocking (Papadakis et al., WSDM'12): entity URIs
/// in the Web of data typically embed a human-readable, source-independent
/// infix ("…/resource/Berlin"). Blocks are built from the tokens of the
/// URI infix in addition to the tokens of literal values, so descriptions
/// that share nothing but their URI naming still co-occur.
class PrefixInfixSuffixBlocking : public Blocker {
 public:
  /// When include_value_tokens is true (default) blocks also include
  /// plain token-blocking keys of attribute values.
  explicit PrefixInfixSuffixBlocking(bool include_value_tokens = true)
      : include_value_tokens_(include_value_tokens) {}

  BlockCollection BuildBlocks(
      const model::EntityCollection& collection) const override;

  std::string name() const override { return "PrefixInfixSuffixBlocking"; }

 private:
  bool include_value_tokens_;
};

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_PREFIX_INFIX_SUFFIX_H_
