#include "blocking/standard_blocking.h"

#include <map>

#include "text/normalizer.h"

namespace weber::blocking {

std::string StandardBlockingKey(const model::EntityDescription& entity,
                                const std::vector<std::string>& attributes,
                                size_t value_prefix) {
  std::string key;
  for (const std::string& attribute : attributes) {
    auto value = entity.FirstValueOf(attribute);
    if (!value.has_value()) continue;
    std::string normalized = text::Normalize(*value);
    if (value_prefix > 0 && normalized.size() > value_prefix) {
      normalized.resize(value_prefix);
    }
    if (!key.empty()) key.push_back('|');
    key.append(normalized);
  }
  return key;
}

BlockCollection StandardBlocking::BuildBlocks(
    const model::EntityCollection& collection) const {
  std::map<std::string, std::vector<model::EntityId>> index;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    std::string key =
        StandardBlockingKey(collection[id], key_attributes_, value_prefix_);
    if (key.empty()) continue;  // No key attribute present: unblocked.
    index[std::move(key)].push_back(id);
  }
  BlockCollection result(&collection);
  for (auto& [key, entities] : index) {
    result.AddBlock(Block{key, std::move(entities)});
  }
  return result;
}

}  // namespace weber::blocking
