#ifndef WEBER_BLOCKING_BLOCK_FILTERING_H_
#define WEBER_BLOCKING_BLOCK_FILTERING_H_

#include "blocking/block.h"

namespace weber::blocking {

/// Block filtering (Papadakis et al.): each entity keeps only its
/// `ratio` fraction of smallest blocks (its most discriminative ones) and
/// is removed from the rest. Returns the rebuilt collection. Ratio is
/// clamped to (0, 1]; ratio = 1 keeps everything.
///
/// Filtering is a lighter-weight alternative to meta-blocking: it shrinks
/// oversized blocks instead of deleting them, retaining the long tail of
/// matches that purging would lose.
BlockCollection FilterBlocks(const BlockCollection& blocks, double ratio);

}  // namespace weber::blocking

#endif  // WEBER_BLOCKING_BLOCK_FILTERING_H_
