#ifndef WEBER_INCREMENTAL_DELTA_INDEX_H_
#define WEBER_INCREMENTAL_DELTA_INDEX_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "blocking/block.h"
#include "blocking/sorted_neighborhood.h"
#include "blocking/token_blocking.h"
#include "model/entity.h"
#include "model/ground_truth.h"
#include "text/normalizer.h"

namespace weber::storage {
class SnapshotCodec;
}  // namespace weber::storage

namespace weber::incremental {

/// Lifetime counters of a delta index.
struct DeltaIndexStats {
  /// Postings created or extended by Absorb — the incremental work unit.
  /// Ingesting one entity bumps this by at most its distinct-token count,
  /// never by the index size: the counter that proves no full rebuild.
  uint64_t updates = 0;
  /// Full builds (always 0 on the serve path; kept for the rebuild-vs-
  /// delta comparison in tests and benches).
  uint64_t full_builds = 0;
  /// Tokens retired online by the posting-size cap.
  uint64_t purged_tokens = 0;
  /// Distinct tokens currently indexed (purged ones included).
  size_t tokens = 0;
};

/// Incrementally maintained token-blocking index.
///
/// Mirrors blocking::TokenBlocking over a mutable store: every distinct
/// normalised value token owns a posting of the entity ids featuring it.
/// Absorb(id, description) appends the new entity to its tokens' postings
/// and emits exactly the *new* candidate pairs — the pairs joining the new
/// entity with the entities already posted under a shared token. Because
/// every unordered pair has a unique later-ingested member, replaying a
/// collection through Absorb emits each distinct batch-blocking pair
/// exactly once, which is what makes ingest-mode resolution equivalent to
/// the one-shot pipeline.
///
/// The size cap applies block purging online (the streaming analogue of
/// TokenBlockingOptions::max_block_size): a posting that grows beyond the
/// cap is retired — its memory released, no further pairs emitted from it.
/// Pairs it emitted before crossing the cap are not retracted; retired
/// tokens are excluded from ToBlocks, matching the batch semantics of
/// dropping the oversized block outright.
class IncrementalTokenIndex {
 public:
  /// Options are shared with the batch blocker so one config drives both.
  explicit IncrementalTokenIndex(blocking::TokenBlockingOptions options = {})
      : options_(std::move(options)) {}

  /// Indexes a new entity and appends its new candidate pairs (each pair
  /// once, in first-shared-token order) to `new_pairs`. Ids must be
  /// absorbed in ascending order, once each.
  void Absorb(model::EntityId id, const model::EntityDescription& description,
              std::vector<model::IdPair>* new_pairs);

  /// A candidate found through a shared token, tagged with the token's
  /// position in the new entity's full token list. Sorting one entity's
  /// candidates from several token-partitioned indexes by (position,
  /// posting order) and keeping each other-id's first occurrence yields
  /// exactly the order Absorb emits from a single index.
  struct PositionedCandidate {
    model::EntityId other = 0;
    uint32_t position = 0;
  };

  /// Token-partitioned absorb: indexes only `tokens` — the subset of the
  /// entity's TokensOf list this index owns, each with its position in the
  /// full list, in ascending position order. Emits PositionedCandidates
  /// (deduplicated per call, first occurrence kept). Per-token behaviour
  /// (lazy compaction, purging, stats) is identical to Absorb, so
  /// splitting one entity's tokens across indexes by token and merging
  /// the tagged candidates reproduces the single-index stream.
  void AbsorbTokens(
      model::EntityId id,
      const std::vector<std::pair<std::string, uint32_t>>& tokens,
      std::vector<PositionedCandidate>* candidates);

  /// The normalised, length-filtered value tokens Absorb indexes, in
  /// emission order — public so token-partitioned callers compute the
  /// exact token/position lists AbsorbTokens expects.
  std::vector<std::string> TokensOf(
      const model::EntityDescription& description) const;

  /// Read-only probe: the distinct indexed entities sharing at least one
  /// token with `description`, in first-shared-token order. Used to
  /// re-block merged representatives without inserting them.
  void Query(const model::EntityDescription& description,
             std::vector<model::EntityId>* candidates) const;

  /// Drops an entity from the index: it stops appearing in emitted pairs,
  /// queries and exported blocks. Postings are compacted lazily as they
  /// are next touched.
  void Remove(model::EntityId id);

  const DeltaIndexStats& stats() const { return stats_; }

  /// Exports the live postings as a BlockCollection (token-sorted, purged
  /// tokens dropped) — byte-compatible with TokenBlocking::Build over the
  /// same live entities, for evaluation and replay verification.
  blocking::BlockCollection ToBlocks(
      const model::EntityCollection* collection) const;

 private:
  friend class weber::storage::SnapshotCodec;

  struct Posting {
    std::vector<model::EntityId> entities;  // Ascending (absorb order).
    bool purged = false;
  };

  blocking::TokenBlockingOptions options_;
  std::unordered_map<std::string, Posting> postings_;
  std::unordered_set<model::EntityId> removed_;
  DeltaIndexStats stats_;
};

/// Incrementally maintained sorted-neighbourhood pass.
///
/// Keeps the key-sorted order of all absorbed entities; absorbing a new
/// entity emits its pairs with the window-1 predecessors and successors at
/// insertion time. Unlike the token index this is not replay-exact: a
/// later insert can push two previously-adjacent entities beyond the
/// window, so streaming emits a *superset* of the batch windows (pairs are
/// never retracted — the standard incremental-SN trade-off, which only
/// ever adds candidates, never loses them).
class IncrementalSortedNeighborhood {
 public:
  explicit IncrementalSortedNeighborhood(
      size_t window, blocking::SortedOrderOptions options = {})
      : window_(window), options_(std::move(options)) {}

  /// Inserts the entity into the sort order and appends its new
  /// neighbourhood pairs (nearest first, predecessors before successors).
  void Absorb(model::EntityId id, const model::EntityDescription& description,
              std::vector<model::IdPair>* new_pairs);

  /// Removes the entity from the sort order.
  void Remove(model::EntityId id);

  size_t size() const { return order_.size(); }

 private:
  size_t window_;
  blocking::SortedOrderOptions options_;
  // Batch tie-break is (key, id), so the set order equals SortedOrder.
  std::set<std::pair<std::string, model::EntityId>> order_;
  std::unordered_map<model::EntityId, std::string> keys_;
};

}  // namespace weber::incremental

#endif  // WEBER_INCREMENTAL_DELTA_INDEX_H_
