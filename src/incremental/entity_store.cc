#include "incremental/entity_store.h"

#include "util/check.h"

namespace weber::incremental {

model::EntityId EntityStore::Append(model::EntityDescription description) {
  if (!description.uri().empty()) {
    uri_index_.emplace(description.uri(),
                       static_cast<model::EntityId>(collection_.size()));
  }
  model::EntityId id = collection_.Add(std::move(description));
  alive_.push_back(1);
  versions_.push_back(0);
  ++live_;
  // Ids are promised dense and stable for the store's lifetime: every
  // delta index and union-find downstream keys on them positionally.
  WEBER_CHECK_EQ(size_t{id} + 1, collection_.size())
      << "EntityStore issued a non-dense id";
  WEBER_DCHECK_EQ(alive_.size(), collection_.size())
      << "alive bitmap diverged from the collection";
  WEBER_DCHECK_EQ(versions_.size(), collection_.size())
      << "version array diverged from the collection";
  return id;
}

bool EntityStore::Update(model::EntityId id,
                         model::EntityDescription description) {
  if (!alive(id)) return false;
  model::EntityDescription& slot = collection_.at(id);
  if (slot.uri() != description.uri()) {
    auto it = uri_index_.find(slot.uri());
    if (it != uri_index_.end() && it->second == id) uri_index_.erase(it);
    if (!description.uri().empty()) uri_index_[description.uri()] = id;
  }
  slot = std::move(description);
  ++versions_[id];
  ++updates_;
  return true;
}

bool EntityStore::Tombstone(model::EntityId id) {
  if (!alive(id)) return false;
  alive_[id] = 0;
  WEBER_DCHECK_GE(live_, size_t{1}) << "live count underflow on tombstone";
  --live_;
  auto it = uri_index_.find(collection_.at(id).uri());
  if (it != uri_index_.end() && it->second == id) uri_index_.erase(it);
  return true;
}

StoreStats EntityStore::Stats() const {
  StoreStats stats;
  stats.total = collection_.size();
  WEBER_DCHECK_LE(live_, collection_.size())
      << "more live entities than the store ever appended";
  stats.live = live_;
  stats.tombstoned = collection_.size() - live_;
  stats.updates = updates_;
  return stats;
}

std::optional<model::EntityId> EntityStore::FindByUri(
    std::string_view uri) const {
  auto it = uri_index_.find(std::string(uri));
  if (it == uri_index_.end()) return std::nullopt;
  return it->second;
}

void EntityStore::ForEachLive(
    const std::function<void(model::EntityId,
                             const model::EntityDescription&)>& visitor)
    const {
  for (model::EntityId id = 0; id < collection_.size(); ++id) {
    if (alive_[id]) visitor(id, collection_.at(id));
  }
}

model::EntityCollection EntityStore::Snapshot(
    std::vector<model::EntityId>* ids_out) const {
  model::EntityCollection snapshot;
  if (ids_out != nullptr) {
    ids_out->clear();
    ids_out->reserve(live_);
  }
  ForEachLive([&](model::EntityId id, const model::EntityDescription& d) {
    snapshot.Add(d);
    if (ids_out != nullptr) ids_out->push_back(id);
  });
  return snapshot;
}

}  // namespace weber::incremental
