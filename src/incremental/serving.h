#ifndef WEBER_INCREMENTAL_SERVING_H_
#define WEBER_INCREMENTAL_SERVING_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "incremental/resolver.h"
#include "storage/durable.h"
#include "util/sync.h"

namespace weber::incremental {

/// Configuration of a ResolveService.
struct ServiceOptions {
  /// Coalescing cap: a leader drains queued ingest requests until the
  /// combined batch reaches this many entities (it always takes at least
  /// one request, so oversized requests still go through whole).
  size_t max_batch = 256;

  /// Resolver configuration (threshold, delta indexes, metrics sink).
  ResolverOptions resolver;

  /// When set, the service's resolver is durable: every mutation is
  /// write-ahead logged under durability->data_dir before it is applied,
  /// and construction recovers whatever state the directory holds (check
  /// recovery_status() before serving). Requires merge_propagation off.
  std::optional<storage::DurabilityOptions> durability;
};

/// The concurrent front door of an IncrementalResolver.
///
/// Ingest uses leader/follower coalescing: callers enqueue their batch,
/// one caller becomes the leader, drains up to max_batch entities worth
/// of queued requests, and runs a single resolver ingest for all of them
/// (whose candidate scoring fans out on the shared executor); followers
/// block until the leader hands their ids back. The resolver lock is held
/// only for the resolver call itself, never while waiting on the queue,
/// so enqueueing stays cheap under load and batches grow with pressure —
/// the RunProgressive pattern (parallel scoring, ordered commit) applied
/// to a serving loop.
class ResolveService {
 public:
  /// The matcher is borrowed and must outlive the service.
  explicit ResolveService(const matching::Matcher* matcher,
                          ServiceOptions options = {});

  /// Ingests a batch (thread-safe, blocking): returns the stable ids
  /// assigned to the batch's entities, in batch order.
  std::vector<model::EntityId> Ingest(
      std::vector<model::EntityDescription> batch);

  /// The cluster of a live entity (thread-safe), or nullopt for
  /// unknown/removed ids. Latency lands in
  /// weber.incremental.resolve_seconds.
  std::optional<IncrementalResolver::Resolution> Resolve(model::EntityId id);

  /// Retires an entity (thread-safe). Returns false for unknown/removed.
  bool Remove(model::EntityId id);

  /// All current clusters over live entities (thread-safe).
  matching::Clusters Clusters();

  /// Ingest requests served and leader batches run so far.
  uint64_t requests() const { return requests_.load(); }
  uint64_t batches_run() const { return batches_run_.load(); }

  /// Outcome of the construction-time recovery: always ok for a
  /// non-durable service, and the durable resolver's recovery status
  /// otherwise. A service whose recovery failed must not serve.
  storage::Status recovery_status() const {
    return durable_ != nullptr ? durable_->recovery_status()
                               : storage::Status::Ok();
  }

  /// Folds the WAL into a fresh snapshot (thread-safe). No-op success on
  /// a non-durable service.
  storage::Status Checkpoint();

  /// The durable wrapper, or nullptr when the service is not durable.
  storage::DurableResolver* durable() { return durable_.get(); }

  /// Direct access to the underlying resolver. The caller must guarantee
  /// no concurrent service calls while using it (configuration before
  /// serving, inspection after).
  IncrementalResolver& resolver() {
    return durable_ != nullptr ? durable_->resolver() : *plain_;
  }
  const IncrementalResolver& resolver() const {
    return durable_ != nullptr ? durable_->resolver() : *plain_;
  }

 private:
  struct Request {
    std::vector<model::EntityDescription> entities;
    std::vector<model::EntityId> ids;
    bool done = false;
  };

  obs::MetricsRegistry* Registry() const;
  /// Drains up to max_batch entities worth of requests, runs one resolver
  /// ingest for them and wakes their owners. Enters with queue_mu_ held,
  /// drops it for the resolver call (under resolver_mu_ — the two are
  /// never held together) and returns with queue_mu_ re-acquired.
  void LeadBatch() REQUIRES(queue_mu_) EXCLUDES(resolver_mu_);

  ServiceOptions options_;
  // Exactly one of these is set: the durable wrapper (WAL + snapshots)
  // or the plain in-memory resolver.
  std::unique_ptr<storage::DurableResolver> durable_;
  std::unique_ptr<IncrementalResolver> plain_;

  util::Mutex queue_mu_;
  util::CondVar queue_cv_;
  std::deque<Request*> queue_ GUARDED_BY(queue_mu_);
  bool leader_active_ GUARDED_BY(queue_mu_) = false;
  /// Fairness: when a leader finishes with requests still queued, it hands
  /// leadership to the oldest waiter instead of letting all waiters re-race
  /// the condition variable (under which a freshly-arrived caller could
  /// keep winning and starve the head of the queue). Null = anyone may
  /// lead. (Request fields — done, ids — are likewise guarded by
  /// queue_mu_, but live on each caller's stack so the analysis cannot
  /// name their guard.)
  Request* designated_ GUARDED_BY(queue_mu_) = nullptr;

  util::Mutex resolver_mu_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batches_run_{0};
};

}  // namespace weber::incremental

#endif  // WEBER_INCREMENTAL_SERVING_H_
