#include "incremental/resolver.h"

#include <algorithm>
#include <utility>

#include "core/executor.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace weber::incremental {

IncrementalResolver::IncrementalResolver(const matching::Matcher* matcher,
                                         ResolverOptions options)
    : matcher_(matcher, options.match_threshold),
      options_(std::move(options)),
      token_index_(options_.index) {
  if (options_.sn_window >= 2) {
    sn_index_ = std::make_unique<IncrementalSortedNeighborhood>(
        options_.sn_window, options_.sn_options);
  }
  if (options_.prepared_matching && matching::Preparable(*matcher)) {
    signatures_.emplace(
        matching::SignatureStore(matching::OptionsFor(*matcher)));
    signatures_->SetDescriptionProvider(
        [this](model::EntityId id) -> const model::EntityDescription* {
          return store_.alive(id) ? &store_.at(id) : nullptr;
        });
    // Bind the prepared counters to the configured registry (falls through
    // to the caller's ambient one when options_.metrics is null).
    obs::ScopedRegistry attach(options_.metrics);
    prepared_ = matching::Prepare(matcher_.matcher(), *signatures_);
    if (prepared_ == nullptr) signatures_.reset();  // e.g. OracleMatcher.
  }
}

obs::MetricsRegistry* IncrementalResolver::Registry() const {
  return options_.metrics != nullptr ? options_.metrics : obs::Current();
}

void IncrementalResolver::EnsureForestFresh() {
  if (!forest_dirty_) return;
  forest_dirty_ = false;
  forest_ = util::UnionFind(store_.size());
  members_.clear();
  rep_cache_.clear();
  scored_roots_.clear();
  // matches_ only holds edges between live entities (Remove drops the
  // rest), so the surviving forest is their transitive closure.
  for (const model::IdPair& pair : matches_) {
    model::EntityId ra = forest_.Find(pair.low);
    model::EntityId rb = forest_.Find(pair.high);
    if (ra != rb) MergeClusters(ra, rb);
  }
}

const std::vector<model::EntityId>& IncrementalResolver::MembersOf(
    model::EntityId root) {
  auto it = members_.find(root);
  if (it != members_.end()) return it->second;
  singleton_scratch_.assign(1, root);
  return singleton_scratch_;
}

const model::EntityDescription& IncrementalResolver::RepOf(
    model::EntityId root) {
  auto members_it = members_.find(root);
  if (members_it == members_.end()) return store_.at(root);
  auto cached = rep_cache_.find(root);
  if (cached != rep_cache_.end()) return *cached->second;
  // Merge in ascending id order: deterministic regardless of the merge
  // history that produced the cluster.
  const std::vector<model::EntityId>& members = members_it->second;
  auto rep = std::make_unique<model::EntityDescription>(
      store_.at(members.front()));
  for (size_t i = 1; i < members.size(); ++i) {
    rep->MergeFrom(store_.at(members[i]));
  }
  const model::EntityDescription& result = *rep;
  rep_cache_.emplace(root, std::move(rep));
  return result;
}

model::EntityId IncrementalResolver::MergeClusters(model::EntityId ra,
                                                   model::EntityId rb) {
  auto take = [this](model::EntityId root) {
    auto it = members_.find(root);
    if (it == members_.end()) return std::vector<model::EntityId>{root};
    std::vector<model::EntityId> members = std::move(it->second);
    members_.erase(it);
    return members;
  };
  std::vector<model::EntityId> ma = take(ra);
  std::vector<model::EntityId> mb = take(rb);
  std::vector<model::EntityId> merged;
  merged.reserve(ma.size() + mb.size());
  std::merge(ma.begin(), ma.end(), mb.begin(), mb.end(),
             std::back_inserter(merged));
  rep_cache_.erase(ra);
  rep_cache_.erase(rb);
  forest_.Union(ra, rb);
  model::EntityId root = forest_.Find(ra);
  members_[root] = std::move(merged);
  return root;
}

void IncrementalResolver::CommitMatch(const model::IdPair& pair) {
  matches_.push_back(pair);
  model::EntityId ra = forest_.Find(pair.low);
  model::EntityId rb = forest_.Find(pair.high);
  if (ra != rb) {
    MergeClusters(ra, rb);
    ++merges_;
  }
}

void IncrementalResolver::ScoreRoots(model::EntityId ra, model::EntityId rb,
                                     std::vector<model::EntityId>* requeue) {
  model::IdPair key = model::IdPair::Of(ra, rb);
  std::pair<uint32_t, uint32_t> sizes{
      static_cast<uint32_t>(forest_.SizeOf(key.low)),
      static_cast<uint32_t>(forest_.SizeOf(key.high))};
  auto [it, inserted] = scored_roots_.try_emplace(key, sizes);
  if (!inserted) {
    if (it->second == sizes) return;  // Unchanged since last scored.
    it->second = sizes;
  }
  ++comparisons_;
  bool matched = matcher_.Matches(RepOf(ra), RepOf(rb));
  if (observer_) observer_(key, matched);
  if (matched) {
    matches_.push_back(key);
    model::EntityId root = MergeClusters(ra, rb);
    ++merges_;
    requeue->push_back(root);
  }
}

void IncrementalResolver::ResolveBatchPropagating(
    const std::vector<model::IdPair>& candidates) {
  // R-Swoosh semantics: strictly serial, every comparison sees the merged
  // representatives produced by earlier ones, and each merge re-enters
  // the queue for re-blocking (iterative/rswoosh.cc compares against the
  // full resolved set; here the delta index narrows that to clusters
  // sharing a token).
  std::vector<model::EntityId> requeue;
  std::vector<model::EntityId> probe;
  for (const model::IdPair& pair : candidates) {
    model::EntityId ra = forest_.Find(pair.low);
    model::EntityId rb = forest_.Find(pair.high);
    if (ra == rb) continue;  // Already resolved together: merge saving.
    ScoreRoots(ra, rb, &requeue);
    while (!requeue.empty()) {
      model::EntityId root = forest_.Find(requeue.back());
      requeue.pop_back();
      ++requeues_;
      probe.clear();
      token_index_.Query(RepOf(root), &probe);
      for (model::EntityId other : probe) {
        if (!store_.alive(other)) continue;
        model::EntityId merged_root = forest_.Find(root);
        model::EntityId other_root = forest_.Find(other);
        if (merged_root == other_root) continue;
        ScoreRoots(merged_root, other_root, &requeue);
      }
    }
  }
}

std::vector<model::EntityId> IncrementalResolver::Ingest(
    std::vector<model::EntityDescription> batch) {
  util::Timer timer;
  EnsureForestFresh();
  uint64_t index_updates_before = token_index_.stats().updates;
  std::vector<model::EntityId> ids;
  ids.reserve(batch.size());
  for (model::EntityDescription& description : batch) {
    ids.push_back(store_.Append(std::move(description)));
  }
  forest_.Grow(store_.size());
  if (signatures_.has_value()) {
    for (model::EntityId id : ids) signatures_->Absorb(id, store_.at(id));
  }

  // Delta blocking: absorb each new entity in id order; every index emits
  // only pairs that involve the entity being absorbed, so the slice per
  // entity is deduplicated locally and the whole list stays free of
  // repeats across batches by construction.
  std::vector<model::IdPair> candidates;
  for (model::EntityId id : ids) {
    size_t first = candidates.size();
    token_index_.Absorb(id, store_.at(id), &candidates);
    if (sn_index_ != nullptr) {
      sn_index_->Absorb(id, store_.at(id), &candidates);
      std::sort(candidates.begin() + static_cast<int64_t>(first),
                candidates.end());
      candidates.erase(
          std::unique(candidates.begin() + static_cast<int64_t>(first),
                      candidates.end()),
          candidates.end());
    }
  }
  candidates_ += candidates.size();

  uint64_t comparisons_before = comparisons_;
  uint64_t merges_before = merges_;
  if (options_.merge_propagation) {
    ResolveBatchPropagating(candidates);
  } else if (!candidates.empty()) {
    // Parallel scoring, ordered commit — the RunProgressive pattern. The
    // verdicts only depend on the immutable stored descriptions (or their
    // interned signatures, which score bit-equal), so any chunking of the
    // loop commits the identical result.
    std::vector<char> verdicts(candidates.size(), 0);
    auto score = [&](size_t i) {
      const model::IdPair& pair = candidates[i];
      bool matched =
          prepared_ != nullptr
              ? prepared_->Matches(pair.low, pair.high, matcher_.threshold())
              : matcher_.Matches(store_.at(pair.low), store_.at(pair.high));
      verdicts[i] = matched ? 1 : 0;
    };
    if (candidates.size() == 1) {
      score(0);
    } else {
      core::Executor::Shared().ParallelFor(candidates.size(), score);
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      bool matched = verdicts[i] != 0;
      ++comparisons_;
      if (observer_) observer_(candidates[i], matched);
      if (matched) CommitMatch(candidates[i]);
    }
  }
  ++batches_;

  if (obs::MetricsRegistry* registry = Registry()) {
    const DeltaIndexStats& index = token_index_.stats();
    registry->GetCounter("weber.incremental.ingested").Add(ids.size());
    registry->GetCounter("weber.incremental.batches").Increment();
    registry->GetCounter("weber.incremental.candidates")
        .Add(candidates.size());
    registry->GetCounter("weber.incremental.comparisons")
        .Add(comparisons_ - comparisons_before);
    registry->GetCounter("weber.incremental.merges")
        .Add(merges_ - merges_before);
    // Delta-index proof-of-work counters: updates grows by at most the
    // batch's token count per ingest; full_builds stays 0 on this path.
    registry->GetCounter("weber.incremental.index_updates")
        .Add(index.updates - index_updates_before);
    registry->GetCounter("weber.incremental.index_full_builds")
        .Add(index.full_builds);
    registry->GetGauge("weber.incremental.live_entities")
        .Set(static_cast<double>(store_.live_count()));
    registry->GetGauge("weber.incremental.index_tokens")
        .Set(static_cast<double>(index.tokens));
    registry->GetHistogram("weber.incremental.ingest_seconds")
        .Record(timer.ElapsedSeconds());
    registry->GetHistogram("weber.incremental.batch_entities")
        .Record(static_cast<double>(ids.size()));
    if (signatures_.has_value()) {
      registry->GetGauge("weber.matching.signature.arena_bytes")
          .Set(static_cast<double>(signatures_->ArenaBytes()));
      registry->GetGauge("weber.matching.signature.vocabulary")
          .Set(static_cast<double>(signatures_->vocabulary_size()));
      registry->GetGauge("weber.matching.signature.released_bytes")
          .Set(static_cast<double>(signatures_->released_bytes()));
    }
  }
  return ids;
}

std::optional<IncrementalResolver::Resolution> IncrementalResolver::Resolve(
    model::EntityId id) {
  if (!store_.alive(id)) return std::nullopt;
  EnsureForestFresh();
  Resolution resolution;
  resolution.representative = forest_.Find(id);
  resolution.members = MembersOf(resolution.representative);
  return resolution;
}

bool IncrementalResolver::Remove(model::EntityId id) {
  if (!store_.Tombstone(id)) return false;
  token_index_.Remove(id);
  if (sn_index_ != nullptr) sn_index_->Remove(id);
  if (signatures_.has_value()) signatures_->Release(id);
  size_t before = matches_.size();
  std::erase_if(matches_, [id](const model::IdPair& pair) {
    return pair.low == id || pair.high == id;
  });
  // Only a clustered entity can change anyone else's resolution; dropping
  // a singleton leaves the forest exact.
  if (matches_.size() != before) forest_dirty_ = true;
  ++removed_;
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetCounter("weber.incremental.removed").Increment();
    registry->GetGauge("weber.incremental.live_entities")
        .Set(static_cast<double>(store_.live_count()));
  }
  return true;
}

matching::Clusters IncrementalResolver::Clusters() {
  EnsureForestFresh();
  matching::Clusters clusters;
  std::unordered_map<model::EntityId, size_t> slot_of_root;
  for (model::EntityId id = 0; id < store_.size(); ++id) {
    if (!store_.alive(id)) continue;
    model::EntityId root = forest_.Find(id);
    auto [it, inserted] = slot_of_root.try_emplace(root, clusters.size());
    if (inserted) clusters.emplace_back();
    clusters[it->second].push_back(id);
  }
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetGauge("weber.incremental.clusters")
        .Set(static_cast<double>(clusters.size()));
  }
  return clusters;
}

}  // namespace weber::incremental
