#include "incremental/delta_index.h"

#include <algorithm>
#include <map>

#include "text/tokenizer.h"
#include "util/check.h"

namespace weber::incremental {

std::vector<std::string> IncrementalTokenIndex::TokensOf(
    const model::EntityDescription& description) const {
  std::vector<std::string> tokens =
      text::ValueTokens(description, options_.normalize);
  if (options_.min_token_length > 1) {
    std::erase_if(tokens, [this](const std::string& token) {
      return token.size() < options_.min_token_length;
    });
  }
  return tokens;
}

void IncrementalTokenIndex::Absorb(model::EntityId id,
                                   const model::EntityDescription& description,
                                   std::vector<model::IdPair>* new_pairs) {
  std::unordered_set<model::EntityId> paired;
  for (std::string& token : TokensOf(description)) {
    Posting& posting = postings_[std::move(token)];
    if (posting.purged) continue;
    ++stats_.updates;
    // Lazy compaction: drop removed ids the next time a posting is
    // touched, so memory tracks the live set without a global sweep.
    if (!removed_.empty()) {
      std::erase_if(posting.entities, [this](model::EntityId e) {
        return removed_.contains(e);
      });
    }
    if (new_pairs != nullptr) {
      for (model::EntityId other : posting.entities) {
        WEBER_DCHECK_NE(other, id)
            << "entity absorbed twice without Remove; would emit a "
            << "self-pair";
        if (paired.insert(other).second) {
          new_pairs->push_back(model::IdPair::Of(other, id));
        }
      }
    }
    posting.entities.push_back(id);
    if (options_.max_block_size != 0 &&
        posting.entities.size() > options_.max_block_size) {
      posting.purged = true;
      posting.entities.clear();
      posting.entities.shrink_to_fit();
      ++stats_.purged_tokens;
    }
  }
  stats_.tokens = postings_.size();
}

void IncrementalTokenIndex::AbsorbTokens(
    model::EntityId id,
    const std::vector<std::pair<std::string, uint32_t>>& tokens,
    std::vector<PositionedCandidate>* candidates) {
  // Per-call dedup: tokens arrive in ascending position order and postings
  // iterate in absorb (ascending-id) order, so first-insertion-wins keeps
  // each other-id's minimal (position, posting-order) occurrence — the one
  // the merged cross-index sort must surface.
  std::unordered_set<model::EntityId> paired;
  for (const auto& [token, position] : tokens) {
    Posting& posting = postings_[token];
    if (posting.purged) continue;
    ++stats_.updates;
    if (!removed_.empty()) {
      std::erase_if(posting.entities, [this](model::EntityId e) {
        return removed_.contains(e);
      });
    }
    if (candidates != nullptr) {
      for (model::EntityId other : posting.entities) {
        WEBER_DCHECK_NE(other, id)
            << "entity absorbed twice without Remove; would emit a "
            << "self-pair";
        if (paired.insert(other).second) {
          candidates->push_back(PositionedCandidate{other, position});
        }
      }
    }
    posting.entities.push_back(id);
    if (options_.max_block_size != 0 &&
        posting.entities.size() > options_.max_block_size) {
      posting.purged = true;
      posting.entities.clear();
      posting.entities.shrink_to_fit();
      ++stats_.purged_tokens;
    }
  }
  stats_.tokens = postings_.size();
}

void IncrementalTokenIndex::Query(
    const model::EntityDescription& description,
    std::vector<model::EntityId>* candidates) const {
  std::unordered_set<model::EntityId> seen;
  for (const std::string& token : TokensOf(description)) {
    auto it = postings_.find(token);
    if (it == postings_.end() || it->second.purged) continue;
    for (model::EntityId other : it->second.entities) {
      if (removed_.contains(other)) continue;
      if (seen.insert(other).second) candidates->push_back(other);
    }
  }
}

void IncrementalTokenIndex::Remove(model::EntityId id) {
  removed_.insert(id);
}

blocking::BlockCollection IncrementalTokenIndex::ToBlocks(
    const model::EntityCollection* collection) const {
  // Token-sorted export so the result is byte-equal to the batch builder's
  // std::map iteration.
  std::map<std::string, const Posting*> sorted;
  for (const auto& [token, posting] : postings_) {
    if (!posting.purged) sorted.emplace(token, &posting);
  }
  blocking::BlockCollection result(collection);
  for (const auto& [token, posting] : sorted) {
    blocking::Block block;
    block.key = token;
    block.entities.reserve(posting->entities.size());
    for (model::EntityId id : posting->entities) {
      if (!removed_.contains(id)) block.entities.push_back(id);
    }
    result.AddBlock(std::move(block));
  }
  return result;
}

void IncrementalSortedNeighborhood::Absorb(
    model::EntityId id, const model::EntityDescription& description,
    std::vector<model::IdPair>* new_pairs) {
  std::string key = blocking::SortedNeighborhoodKey(description, options_);
  auto [it, inserted] = order_.emplace(key, id);
  if (!inserted) return;
  keys_.emplace(id, std::move(key));
  if (window_ < 2 || new_pairs == nullptr) return;
  auto backward = it;
  for (size_t i = 0; i + 1 < window_ && backward != order_.begin(); ++i) {
    --backward;
    new_pairs->push_back(model::IdPair::Of(backward->second, id));
  }
  auto forward = std::next(it);
  for (size_t i = 0; i + 1 < window_ && forward != order_.end();
       ++i, ++forward) {
    new_pairs->push_back(model::IdPair::Of(forward->second, id));
  }
}

void IncrementalSortedNeighborhood::Remove(model::EntityId id) {
  auto it = keys_.find(id);
  if (it == keys_.end()) return;
  order_.erase({it->second, id});
  keys_.erase(it);
}

}  // namespace weber::incremental
