#ifndef WEBER_INCREMENTAL_ENTITY_STORE_H_
#define WEBER_INCREMENTAL_ENTITY_STORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/entity.h"

namespace weber::storage {
class SnapshotCodec;
}  // namespace weber::storage

namespace weber::incremental {

/// Point-in-time size counters of an EntityStore.
struct StoreStats {
  /// Ids ever issued (tombstoned included).
  size_t total = 0;
  /// Ids currently alive.
  size_t live = 0;
  /// Tombstoned ids.
  size_t tombstoned = 0;
  /// Update calls applied over the store's lifetime.
  uint64_t updates = 0;
};

/// A mutable entity store layered over model::EntityCollection: the
/// description universe of an always-on resolver.
///
/// The batch pipeline treats its EntityCollection as immutable; a serving
/// deployment instead appends, revises and retires descriptions
/// continuously. The store keeps the collection's dense-id invariant —
/// Append issues ids in insertion order, so replaying the same entities
/// through a store reproduces the ids of the equivalent batch collection —
/// and adds the three mutations on top:
///   - Append: a new description under a fresh stable id;
///   - Update: replace the description behind an id (version bumped);
///   - Tombstone: retire an id. The id is never reused; downstream
///     consumers filter on alive().
///
/// Ids are stable for the store's lifetime. Iteration helpers skip
/// tombstones; Snapshot materialises the live descriptions as a fresh
/// dirty EntityCollection for batch consumers.
class EntityStore {
 public:
  EntityStore() = default;

  /// Appends a description and returns its stable id (dense, insertion
  /// order — identical to EntityCollection::Add on the same stream).
  model::EntityId Append(model::EntityDescription description);

  /// Replaces the description behind `id` and bumps its version. Returns
  /// false (and changes nothing) for unknown or tombstoned ids.
  bool Update(model::EntityId id, model::EntityDescription description);

  /// Retires `id`. Returns false if the id is unknown or already dead.
  bool Tombstone(model::EntityId id);

  /// True if the id was issued and not tombstoned.
  bool alive(model::EntityId id) const {
    return id < alive_.size() && alive_[id];
  }

  /// The description behind an issued id (tombstoned ones included —
  /// callers gate on alive()).
  const model::EntityDescription& at(model::EntityId id) const {
    return collection_.at(id);
  }

  /// Monotonic per-id revision counter: 0 at Append, +1 per Update.
  uint64_t version(model::EntityId id) const { return versions_[id]; }

  /// Ids ever issued (== the underlying collection's size).
  size_t size() const { return collection_.size(); }
  size_t live_count() const { return live_; }
  bool empty() const { return collection_.empty(); }

  StoreStats Stats() const;

  /// Id of the live description with the given URI, if any. Unlike the
  /// collection's lazy index this one tracks Update/Tombstone.
  std::optional<model::EntityId> FindByUri(std::string_view uri) const;

  /// Visits every live description in id order.
  void ForEachLive(
      const std::function<void(model::EntityId,
                               const model::EntityDescription&)>& visitor)
      const;

  /// The underlying dense collection, tombstones included. Ids in the
  /// collection equal store ids; use alive() to filter.
  const model::EntityCollection& collection() const { return collection_; }

  /// Copies the live descriptions into a fresh dirty collection (snapshot
  /// iteration for batch consumers). When ids_out != nullptr it receives,
  /// per snapshot id, the originating store id.
  model::EntityCollection Snapshot(
      std::vector<model::EntityId>* ids_out = nullptr) const;

 private:
  friend class weber::storage::SnapshotCodec;

  model::EntityCollection collection_;
  std::vector<uint8_t> alive_;
  std::vector<uint64_t> versions_;
  std::unordered_map<std::string, model::EntityId> uri_index_;
  size_t live_ = 0;
  uint64_t updates_ = 0;
};

}  // namespace weber::incremental

#endif  // WEBER_INCREMENTAL_ENTITY_STORE_H_
