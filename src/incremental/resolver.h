#ifndef WEBER_INCREMENTAL_RESOLVER_H_
#define WEBER_INCREMENTAL_RESOLVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "blocking/sorted_neighborhood.h"
#include "blocking/token_blocking.h"
#include "incremental/delta_index.h"
#include "incremental/entity_store.h"
#include "matching/clustering.h"
#include "matching/matcher.h"
#include "matching/signatures.h"
#include "model/entity.h"
#include "model/ground_truth.h"
#include "util/union_find.h"

namespace weber::obs {
class MetricsRegistry;
}  // namespace weber::obs

namespace weber::storage {
class SnapshotCodec;
}  // namespace weber::storage

namespace weber::incremental {

/// Configuration of an IncrementalResolver.
struct ResolverOptions {
  /// Match decision threshold applied to the matcher's similarity.
  double match_threshold = 0.5;

  /// Delta token index configuration (normalisation, min token length,
  /// online purging cap) — shared with the batch TokenBlocking builder.
  blocking::TokenBlockingOptions index;

  /// When >= 2, an incremental sorted-neighbourhood pass of this window
  /// contributes candidates alongside the token index (streaming multi-
  /// pass blocking). Its pairs are a superset of the batch windows, so
  /// replay equivalence only holds with the token index alone (0).
  size_t sn_window = 0;
  blocking::SortedOrderOptions sn_options;

  /// R-Swoosh-style merge propagation (Section III semantics). Off: new
  /// candidates are scored on the stored descriptions, concurrently, with
  /// commits in emission order — replaying a collection then reproduces
  /// the batch pipeline exactly. On: candidates are scored serially on
  /// the *merged cluster representatives*, and every merge re-enqueues
  /// the merged representative for re-blocking against the index, so
  /// matches that need the combined evidence of earlier merges are found
  /// (at the cost of replay exactness, which merging intentionally
  /// forgoes).
  bool merge_propagation = false;

  /// Score candidates over interned signatures: each Ingest absorbs the
  /// new descriptions into a SignatureStore alongside the delta indexes,
  /// and the (non-propagating) batch scorer runs the PreparedMatcher twin
  /// of the configured matcher. Bit-equal to the string path; matchers the
  /// engine cannot prepare fall back to string scoring automatically.
  bool prepared_matching = true;

  /// Metrics sink. When null the ambient obs::Current() registry of the
  /// calling thread is used (and may itself be null = detached).
  obs::MetricsRegistry* metrics = nullptr;
};

/// An always-on resolver: ingest entities, ask which cluster an entity
/// belongs to, retire entities — without ever re-blocking the store.
///
/// Closes the Update loop of Fig. 1 as a service: the mutable EntityStore
/// holds the descriptions, delta indexes absorb each ingest and emit only
/// the new candidate pairs, the configured matcher scores them (in
/// parallel, committed in deterministic order), and a union-find with
/// per-cluster member lists maintains the resolution. Not thread-safe;
/// ResolveService (serving.h) adds the concurrent front door.
class IncrementalResolver {
 public:
  /// The matcher is borrowed and must outlive the resolver.
  explicit IncrementalResolver(const matching::Matcher* matcher,
                               ResolverOptions options = {});

  /// Observer of every comparison in commit order (replay verification,
  /// progressive curves). In merge-propagation mode pairs are cluster
  /// representatives rather than raw ids.
  using ComparisonObserver =
      std::function<void(const model::IdPair&, bool matched)>;
  void set_comparison_observer(ComparisonObserver observer) {
    observer_ = std::move(observer);
  }

  /// Ingests a batch: appends to the store, absorbs into the delta
  /// indexes, scores the new candidate pairs and updates the clusters.
  /// Returns the assigned stable ids. Deterministic for any parallelism.
  std::vector<model::EntityId> Ingest(
      std::vector<model::EntityDescription> batch);

  /// One resolved cluster: its union-find representative and its live
  /// members in ascending id order.
  struct Resolution {
    model::EntityId representative = 0;
    std::vector<model::EntityId> members;
  };

  /// The cluster of a live entity, or nullopt for unknown/removed ids.
  std::optional<Resolution> Resolve(model::EntityId id);

  /// Retires an entity: tombstones the store row, drops it from the
  /// indexes, discards its match edges and re-derives the clusters from
  /// the surviving edges (so links that were only transitive through the
  /// removed entity dissolve). Returns false for unknown/removed ids.
  bool Remove(model::EntityId id);

  /// All current clusters over live entities (singletons included,
  /// members ascending; cluster order unspecified but deterministic).
  matching::Clusters Clusters();

  /// Match edges accepted so far, in commit order, minus edges retired by
  /// Remove.
  const std::vector<model::IdPair>& matches() const { return matches_; }

  uint64_t comparisons() const { return comparisons_; }
  uint64_t candidates() const { return candidates_; }
  uint64_t merges() const { return merges_; }

  const EntityStore& store() const { return store_; }
  const DeltaIndexStats& index_stats() const { return token_index_.stats(); }

  /// The interned signature engine, or nullptr when prepared_matching is
  /// off (storage tests and bench_storage inspect it after snapshot load).
  const matching::SignatureStore* signatures() const {
    return signatures_.has_value() ? &*signatures_ : nullptr;
  }

  /// Exports the token index for blocking-quality evaluation.
  blocking::BlockCollection IndexBlocks(
      const model::EntityCollection* collection) const {
    return token_index_.ToBlocks(collection);
  }

 private:
  friend class weber::storage::SnapshotCodec;

  obs::MetricsRegistry* Registry() const;
  void EnsureForestFresh();
  /// Live members of a root, ascending (singleton -> {root}).
  const std::vector<model::EntityId>& MembersOf(model::EntityId root);
  /// Merged description of a root's cluster (cached; singleton -> the
  /// stored description).
  const model::EntityDescription& RepOf(model::EntityId root);
  /// Unions two distinct roots, merging member lists and invalidating
  /// representative caches. Returns the surviving root.
  model::EntityId MergeClusters(model::EntityId ra, model::EntityId rb);
  void CommitMatch(const model::IdPair& pair);
  /// Scores the representatives of two distinct roots unless this exact
  /// (root, size) configuration was already scored. Appends newly merged
  /// roots to `requeue`.
  void ScoreRoots(model::EntityId ra, model::EntityId rb,
                  std::vector<model::EntityId>* requeue);
  void ResolveBatchPropagating(const std::vector<model::IdPair>& candidates);

  matching::ThresholdMatcher matcher_;
  ResolverOptions options_;

  EntityStore store_;
  IncrementalTokenIndex token_index_;
  std::unique_ptr<IncrementalSortedNeighborhood> sn_index_;
  // Signature engine (prepared_matching): every ingested description is
  // interned once; Remove tombstones its arena slot.
  std::optional<matching::SignatureStore> signatures_;
  std::unique_ptr<matching::PreparedMatcher> prepared_;

  util::UnionFind forest_{0};
  bool forest_dirty_ = false;
  // Member lists for non-singleton roots; singletons are implicit.
  std::unordered_map<model::EntityId, std::vector<model::EntityId>> members_;
  std::vector<model::EntityId> singleton_scratch_;
  // Merge-propagation state: cached merged representatives and the
  // (root pair -> cluster sizes) fingerprint of already-scored pairs.
  std::unordered_map<model::EntityId,
                     std::unique_ptr<model::EntityDescription>>
      rep_cache_;
  std::unordered_map<model::IdPair, std::pair<uint32_t, uint32_t>,
                     model::IdPairHash>
      scored_roots_;

  std::vector<model::IdPair> matches_;
  ComparisonObserver observer_;
  uint64_t comparisons_ = 0;
  uint64_t candidates_ = 0;
  uint64_t merges_ = 0;
  uint64_t requeues_ = 0;
  uint64_t batches_ = 0;
  uint64_t removed_ = 0;
};

}  // namespace weber::incremental

#endif  // WEBER_INCREMENTAL_RESOLVER_H_
