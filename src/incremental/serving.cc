#include "incremental/serving.h"

#include <utility>

#include "obs/metrics.h"
#include "util/timer.h"

namespace weber::incremental {

ResolveService::ResolveService(const matching::Matcher* matcher,
                               ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.durability.has_value()) {
    durable_ = std::make_unique<storage::DurableResolver>(
        matcher, options_.resolver, *options_.durability);
  } else {
    plain_ =
        std::make_unique<IncrementalResolver>(matcher, options_.resolver);
  }
}

obs::MetricsRegistry* ResolveService::Registry() const {
  return options_.resolver.metrics != nullptr ? options_.resolver.metrics
                                              : obs::Current();
}

void ResolveService::LeadBatch() {
  std::vector<Request*> drained;
  size_t total = 0;
  while (!queue_.empty() && (drained.empty() || total < options_.max_batch)) {
    Request* request = queue_.front();
    queue_.pop_front();
    total += request->entities.size();
    drained.push_back(request);
  }
  queue_mu_.Unlock();

  std::vector<model::EntityDescription> combined;
  combined.reserve(total);
  std::vector<size_t> sizes;
  sizes.reserve(drained.size());
  for (Request* request : drained) {
    sizes.push_back(request->entities.size());
    for (model::EntityDescription& entity : request->entities) {
      combined.push_back(std::move(entity));
    }
    request->entities.clear();
  }

  std::vector<model::EntityId> ids;
  {
    util::MutexLock resolver_lock(resolver_mu_);
    ids = durable_ != nullptr ? durable_->Ingest(std::move(combined))
                              : plain_->Ingest(std::move(combined));
  }
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetCounter("weber.incremental.serve_batches").Increment();
    registry->GetCounter("weber.incremental.serve_requests")
        .Add(drained.size());
    registry->GetHistogram("weber.incremental.coalesced_entities")
        .Record(static_cast<double>(total));
  }

  size_t offset = 0;
  for (size_t i = 0; i < drained.size(); ++i) {
    drained[i]->ids.assign(ids.begin() + static_cast<int64_t>(offset),
                           ids.begin() + static_cast<int64_t>(offset) +
                               static_cast<int64_t>(sizes[i]));
    offset += sizes[i];
  }

  queue_mu_.Lock();
  for (Request* request : drained) request->done = true;
  leader_active_ = false;
  // Hand leadership to the oldest still-queued waiter, if any, so arrival
  // order bounds how long a request can sit in the queue.
  designated_ = queue_.empty() ? nullptr : queue_.front();
  queue_cv_.NotifyAll();
}

std::vector<model::EntityId> ResolveService::Ingest(
    std::vector<model::EntityDescription> batch) {
  util::Timer timer;
  Request request;
  request.entities = std::move(batch);
  util::MutexLock lock(queue_mu_);
  queue_.push_back(&request);
  while (!request.done) {
    while (!request.done &&
           (leader_active_ ||
            (designated_ != nullptr && designated_ != &request))) {
      queue_cv_.Wait(queue_mu_);
    }
    if (request.done) break;
    // Become the leader: serve a batch (which always includes the
    // designated waiter's own request, since it is the queue head).
    leader_active_ = true;
    designated_ = nullptr;
    LeadBatch();
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  lock.Unlock();
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetHistogram("weber.incremental.request_seconds")
        .Record(timer.ElapsedSeconds());
  }
  return std::move(request.ids);
}

std::optional<IncrementalResolver::Resolution> ResolveService::Resolve(
    model::EntityId id) {
  util::Timer timer;
  std::optional<IncrementalResolver::Resolution> resolution;
  {
    util::MutexLock resolver_lock(resolver_mu_);
    resolution = resolver().Resolve(id);
  }
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetHistogram("weber.incremental.resolve_seconds")
        .Record(timer.ElapsedSeconds());
  }
  return resolution;
}

bool ResolveService::Remove(model::EntityId id) {
  util::MutexLock resolver_lock(resolver_mu_);
  return durable_ != nullptr ? durable_->Remove(id) : plain_->Remove(id);
}

matching::Clusters ResolveService::Clusters() {
  util::MutexLock resolver_lock(resolver_mu_);
  return resolver().Clusters();
}

storage::Status ResolveService::Checkpoint() {
  if (durable_ == nullptr) return storage::Status::Ok();
  util::MutexLock resolver_lock(resolver_mu_);
  return durable_->Checkpoint();
}

}  // namespace weber::incremental
