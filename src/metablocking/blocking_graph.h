#ifndef WEBER_METABLOCKING_BLOCKING_GRAPH_H_
#define WEBER_METABLOCKING_BLOCKING_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "blocking/block.h"
#include "model/ground_truth.h"

namespace weber::metablocking {

/// Edge-weighting schemes for the blocking graph (Papadakis et al.,
/// TKDE'14). All weights are "higher = more likely to match".
enum class WeightScheme {
  /// Common Blocks Scheme: the number of blocks the pair co-occurs in.
  kCbs,
  /// Enhanced CBS: CBS scaled by log(|B| / |B_x|) for both endpoints,
  /// discounting entities that appear in many blocks.
  kEcbs,
  /// Jaccard Scheme: |common blocks| / |union of the two block lists|.
  kJs,
  /// Enhanced JS: JS scaled by log(|V| / degree(x)) for both endpoints.
  kEjs,
  /// Aggregate Reciprocal Comparisons Scheme: sum over common blocks of
  /// 1 / cardinality(block), favouring pairs that co-occur in small
  /// (discriminative) blocks.
  kArcs,
};

/// Returns the canonical short name of a scheme ("CBS", "EJS", ...).
std::string ToString(WeightScheme scheme);

/// A weighted edge of the blocking graph: one distinct candidate pair.
struct WeightedEdge {
  model::EntityId a;
  model::EntityId b;
  double weight;

  model::IdPair pair() const { return model::IdPair::Of(a, b); }
};

/// The blocking graph of a block collection: one node per entity, one
/// undirected edge per distinct co-occurring pair (redundant comparisons
/// collapse into a single edge), weighted by the chosen scheme.
///
/// Meta-blocking operates on this graph: pruning its low-weight edges
/// discards comparisons that are unlikely to be matches.
class BlockingGraph {
 public:
  /// Builds the graph from a block collection. Cost is linear in the
  /// number of block assignments plus the number of distinct pairs.
  static BlockingGraph Build(const blocking::BlockCollection& blocks,
                             WeightScheme scheme);

  const std::vector<WeightedEdge>& edges() const { return edges_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  /// Mean edge weight (0 for an empty graph).
  double MeanWeight() const;

  /// The per-node adjacency index: for node v, the indices into edges()
  /// of the edges incident to v.
  std::vector<std::vector<uint32_t>> NodeEdges() const;

  WeightScheme scheme() const { return scheme_; }

 private:
  std::vector<WeightedEdge> edges_;
  size_t num_nodes_ = 0;
  WeightScheme scheme_ = WeightScheme::kCbs;
};

}  // namespace weber::metablocking

#endif  // WEBER_METABLOCKING_BLOCKING_GRAPH_H_
