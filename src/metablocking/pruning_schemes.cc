#include "metablocking/pruning_schemes.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/executor.h"
#include "obs/metrics.h"

namespace weber::metablocking {

std::string ToString(PruningScheme scheme) {
  switch (scheme) {
    case PruningScheme::kWep:
      return "WEP";
    case PruningScheme::kCep:
      return "CEP";
    case PruningScheme::kWnp:
      return "WNP";
    case PruningScheme::kCnp:
      return "CNP";
  }
  return "?";
}

namespace {

uint64_t TotalBlockAssignments(const blocking::BlockCollection& blocks) {
  uint64_t total = 0;
  for (const blocking::Block& block : blocks.blocks()) total += block.size();
  return total;
}

std::vector<WeightedEdge> SortHeaviestFirst(std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& x, const WeightedEdge& y) {
              if (x.weight != y.weight) return x.weight > y.weight;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return edges;
}

std::vector<WeightedEdge> PruneWep(const BlockingGraph& graph) {
  double threshold = graph.MeanWeight();
  std::vector<WeightedEdge> kept;
  for (const WeightedEdge& edge : graph.edges()) {
    if (edge.weight >= threshold) kept.push_back(edge);
  }
  return SortHeaviestFirst(std::move(kept));
}

std::vector<WeightedEdge> PruneCep(const BlockingGraph& graph,
                                   uint64_t budget) {
  std::vector<WeightedEdge> kept = SortHeaviestFirst(
      {graph.edges().begin(), graph.edges().end()});
  if (kept.size() > budget) kept.resize(budget);
  return kept;
}

// Marks, for every node, which incident edges it retains; an edge survives
// under union (reciprocal=false) or intersection (reciprocal=true)
// semantics.
std::vector<WeightedEdge> NodeCentricPrune(
    const BlockingGraph& graph,
    const std::function<std::vector<uint32_t>(
        model::EntityId, const std::vector<uint32_t>&)>& retained_of_node,
    bool reciprocal) {
  std::vector<std::vector<uint32_t>> node_edges = graph.NodeEdges();
  // Each node's retained set depends only on its own incident edges, so
  // the nodes parallelize into fixed slots; the integer vote combination
  // stays serial, making the result identical to the serial scan for any
  // thread count.
  std::vector<std::vector<uint32_t>> retained(node_edges.size());
  core::Executor::Shared().ParallelFor(node_edges.size(), [&](size_t v) {
    if (node_edges[v].empty()) return;
    retained[v] = retained_of_node(static_cast<model::EntityId>(v),
                                   node_edges[v]);
  });
  // Votes per edge: 0, 1, or 2 endpoints retained it.
  std::vector<uint8_t> votes(graph.num_edges(), 0);
  for (const std::vector<uint32_t>& node_retained : retained) {
    for (uint32_t e : node_retained) {
      if (votes[e] < 2) ++votes[e];
    }
  }
  uint8_t needed = reciprocal ? 2 : 1;
  std::vector<WeightedEdge> kept;
  for (uint32_t e = 0; e < graph.num_edges(); ++e) {
    if (votes[e] >= needed) kept.push_back(graph.edges()[e]);
  }
  return SortHeaviestFirst(std::move(kept));
}

std::vector<WeightedEdge> PruneWnp(const BlockingGraph& graph,
                                   bool reciprocal) {
  const std::vector<WeightedEdge>& edges = graph.edges();
  return NodeCentricPrune(
      graph,
      [&edges](model::EntityId, const std::vector<uint32_t>& incident) {
        double mean = 0.0;
        for (uint32_t e : incident) mean += edges[e].weight;
        mean /= static_cast<double>(incident.size());
        std::vector<uint32_t> retained;
        for (uint32_t e : incident) {
          if (edges[e].weight >= mean) retained.push_back(e);
        }
        return retained;
      },
      reciprocal);
}

std::vector<WeightedEdge> PruneCnp(const BlockingGraph& graph,
                                   size_t k_per_node, bool reciprocal) {
  const std::vector<WeightedEdge>& edges = graph.edges();
  return NodeCentricPrune(
      graph,
      [&edges, k_per_node](model::EntityId,
                           const std::vector<uint32_t>& incident) {
        std::vector<uint32_t> retained = incident;
        size_t k = std::min(k_per_node, retained.size());
        std::partial_sort(retained.begin(), retained.begin() + k,
                          retained.end(),
                          [&edges](uint32_t x, uint32_t y) {
                            if (edges[x].weight != edges[y].weight) {
                              return edges[x].weight > edges[y].weight;
                            }
                            if (edges[x].a != edges[y].a) {
                              return edges[x].a < edges[y].a;
                            }
                            return edges[x].b < edges[y].b;
                          });
        retained.resize(k);
        return retained;
      },
      reciprocal);
}

}  // namespace

std::vector<WeightedEdge> Prune(const BlockingGraph& graph,
                                const blocking::BlockCollection& blocks,
                                PruningScheme scheme,
                                const PruneOptions& options) {
  switch (scheme) {
    case PruningScheme::kWep:
      return PruneWep(graph);
    case PruningScheme::kCep: {
      uint64_t budget = TotalBlockAssignments(blocks) / 2;
      budget = std::max<uint64_t>(budget, 1);
      return PruneCep(graph, budget);
    }
    case PruningScheme::kWnp:
      return PruneWnp(graph, options.reciprocal);
    case PruningScheme::kCnp: {
      uint64_t assignments = TotalBlockAssignments(blocks);
      size_t nodes = std::max<size_t>(graph.num_nodes(), 1);
      size_t k = static_cast<size_t>(std::max<uint64_t>(
          1, static_cast<uint64_t>(std::llround(
                 static_cast<double>(assignments) / nodes))));
      return PruneCnp(graph, k, options.reciprocal);
    }
  }
  return {};
}

std::vector<model::IdPair> MetaBlock(const blocking::BlockCollection& blocks,
                                     WeightScheme weights,
                                     PruningScheme pruning,
                                     const PruneOptions& options) {
  BlockingGraph graph = BlockingGraph::Build(blocks, weights);
  std::vector<WeightedEdge> kept = Prune(graph, blocks, pruning, options);
  if (obs::MetricsRegistry* registry = obs::Current()) {
    registry->GetCounter("weber.metablocking.graph_nodes")
        .Add(graph.num_nodes());
    registry->GetCounter("weber.metablocking.graph_edges")
        .Add(graph.num_edges());
    registry->GetCounter("weber.metablocking.kept_edges").Add(kept.size());
    registry->GetCounter("weber.metablocking.pruned_edges")
        .Add(graph.num_edges() - kept.size());
    if (graph.num_edges() > 0) {
      registry->GetGauge("weber.metablocking.pruning_ratio")
          .Set(1.0 - static_cast<double>(kept.size()) /
                         static_cast<double>(graph.num_edges()));
    }
  }
  std::vector<model::IdPair> pairs;
  pairs.reserve(kept.size());
  for (const WeightedEdge& edge : kept) pairs.push_back(edge.pair());
  return pairs;
}

}  // namespace weber::metablocking
