#ifndef WEBER_METABLOCKING_PRUNING_SCHEMES_H_
#define WEBER_METABLOCKING_PRUNING_SCHEMES_H_

#include <array>
#include <string>
#include <vector>

#include "metablocking/blocking_graph.h"

namespace weber::metablocking {

/// Edge-pruning schemes for meta-blocking (Papadakis et al., TKDE'14).
enum class PruningScheme {
  /// Weighted Edge Pruning: keep edges whose weight is at least the mean
  /// edge weight of the whole graph.
  kWep,
  /// Cardinality Edge Pruning: keep the K globally heaviest edges, with
  /// K = half the total number of block assignments.
  kCep,
  /// Weighted Node Pruning: each node retains its incident edges weighing
  /// at least the node-local mean; an edge survives if either endpoint
  /// retains it (redistribution semantics).
  kWnp,
  /// Cardinality Node Pruning: each node retains its k heaviest incident
  /// edges, k derived from the average number of block assignments per
  /// entity; an edge survives if either endpoint retains it.
  kCnp,
};

/// Returns the canonical short name ("WEP", "CNP", ...).
std::string ToString(PruningScheme scheme);

inline constexpr std::array<PruningScheme, 4> kAllPruningSchemes = {
    PruningScheme::kWep, PruningScheme::kCep, PruningScheme::kWnp,
    PruningScheme::kCnp};

struct PruneOptions {
  /// Node-centric schemes (WNP/CNP) keep an edge retained by *either*
  /// endpoint. The reciprocal variants require *both* endpoints to retain
  /// it, trading recall for precision.
  bool reciprocal = false;
};

/// Applies the pruning scheme to the graph, using the block collection
/// that produced it for the cardinality budgets of CEP/CNP. Returns the
/// surviving edges (the meta-blocked candidate pairs), heaviest first.
std::vector<WeightedEdge> Prune(const BlockingGraph& graph,
                                const blocking::BlockCollection& blocks,
                                PruningScheme scheme,
                                const PruneOptions& options = {});

/// End-to-end meta-blocking: build the graph under `weights`, prune under
/// `pruning`, and return the surviving candidate pairs.
std::vector<model::IdPair> MetaBlock(const blocking::BlockCollection& blocks,
                                     WeightScheme weights,
                                     PruningScheme pruning,
                                     const PruneOptions& options = {});

}  // namespace weber::metablocking

#endif  // WEBER_METABLOCKING_PRUNING_SCHEMES_H_
