#include "metablocking/blocking_graph.h"

#include <algorithm>
#include <cmath>

#include "core/executor.h"
#include "util/check.h"

namespace weber::metablocking {

std::string ToString(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kCbs:
      return "CBS";
    case WeightScheme::kEcbs:
      return "ECBS";
    case WeightScheme::kJs:
      return "JS";
    case WeightScheme::kEjs:
      return "EJS";
    case WeightScheme::kArcs:
      return "ARCS";
  }
  return "?";
}

namespace {

// Statistics of one pair's block lists gathered by a single merge scan.
struct PairBlockStats {
  uint32_t common_blocks = 0;
  double arcs_sum = 0.0;
};

PairBlockStats ScanCommonBlocks(const std::vector<uint32_t>& list_a,
                                const std::vector<uint32_t>& list_b,
                                const std::vector<uint64_t>& cardinality) {
  PairBlockStats stats;
  size_t i = 0;
  size_t j = 0;
  while (i < list_a.size() && j < list_b.size()) {
    if (list_a[i] == list_b[j]) {
      ++stats.common_blocks;
      uint64_t card = cardinality[list_a[i]];
      if (card > 0) stats.arcs_sum += 1.0 / static_cast<double>(card);
      ++i;
      ++j;
    } else if (list_a[i] < list_b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return stats;
}

}  // namespace

BlockingGraph BlockingGraph::Build(const blocking::BlockCollection& blocks,
                                   WeightScheme scheme) {
  BlockingGraph graph;
  graph.scheme_ = scheme;

  std::vector<std::vector<uint32_t>> entity_blocks = blocks.EntityToBlocks();
  graph.num_nodes_ = entity_blocks.size();
  if (WEBER_DCHECK_IS_ON()) {
    // ScanCommonBlocks is a linear merge: it silently undercounts common
    // blocks if any entity's block list is not ascending.
    for (size_t i = 0; i < entity_blocks.size(); ++i) {
      WEBER_DCHECK_SORTED(entity_blocks[i].begin(), entity_blocks[i].end())
          << "entity " << i << " has an unsorted block list";
    }
  }

  std::vector<uint64_t> cardinality(blocks.NumBlocks());
  for (uint32_t b = 0; b < blocks.NumBlocks(); ++b) {
    const blocking::Block& block = blocks.blocks()[b];
    cardinality[b] = blocks.collection() != nullptr
                         ? block.NumComparisons(*blocks.collection())
                         : block.size() * (block.size() - 1) / 2;
  }

  // First pass: the distinct pairs. Needed up front for EJS degrees.
  std::vector<model::IdPair> pairs;
  blocks.VisitDistinctPairs([&pairs](model::EntityId a, model::EntityId b) {
    pairs.push_back(model::IdPair::Of(a, b));
  });

  std::vector<uint32_t> degree;
  if (scheme == WeightScheme::kEjs) {
    degree.assign(graph.num_nodes_, 0);
    for (const model::IdPair& pair : pairs) {
      ++degree[pair.low];
      ++degree[pair.high];
    }
  }

  double num_blocks = std::max<double>(blocks.NumBlocks(), 1.0);
  double num_nodes = std::max<double>(graph.num_nodes_, 1.0);
  // Each edge's weight depends only on the two endpoints' (read-only)
  // block lists, so the pairs parallelize into fixed slots: the edge list
  // is bit-equal to the serial scan for any thread count.
  graph.edges_.resize(pairs.size());
  core::Executor::Shared().ParallelFor(pairs.size(), [&](size_t e) {
    const model::IdPair& pair = pairs[e];
    WEBER_DCHECK_LT(pair.low, pair.high)
        << "blocking graph edge is a self-loop or unnormalised pair";
    WEBER_DCHECK_LT(pair.high, entity_blocks.size())
        << "edge endpoint outside the node range";
    PairBlockStats stats = ScanCommonBlocks(
        entity_blocks[pair.low], entity_blocks[pair.high], cardinality);
    double weight = 0.0;
    switch (scheme) {
      case WeightScheme::kCbs:
        weight = stats.common_blocks;
        break;
      case WeightScheme::kEcbs: {
        double blocks_a = static_cast<double>(entity_blocks[pair.low].size());
        double blocks_b =
            static_cast<double>(entity_blocks[pair.high].size());
        weight = stats.common_blocks * std::log(num_blocks / blocks_a) *
                 std::log(num_blocks / blocks_b);
        break;
      }
      case WeightScheme::kJs: {
        double union_size =
            static_cast<double>(entity_blocks[pair.low].size() +
                                entity_blocks[pair.high].size()) -
            stats.common_blocks;
        weight = union_size > 0 ? stats.common_blocks / union_size : 0.0;
        break;
      }
      case WeightScheme::kEjs: {
        double union_size =
            static_cast<double>(entity_blocks[pair.low].size() +
                                entity_blocks[pair.high].size()) -
            stats.common_blocks;
        double js = union_size > 0 ? stats.common_blocks / union_size : 0.0;
        double deg_a = std::max<uint32_t>(degree[pair.low], 1);
        double deg_b = std::max<uint32_t>(degree[pair.high], 1);
        weight =
            js * std::log(num_nodes / deg_a) * std::log(num_nodes / deg_b);
        break;
      }
      case WeightScheme::kArcs:
        weight = stats.arcs_sum;
        break;
    }
    graph.edges_[e] = {pair.low, pair.high, weight};
  });
  return graph;
}

double BlockingGraph::MeanWeight() const {
  if (edges_.empty()) return 0.0;
  double total = 0.0;
  for (const WeightedEdge& edge : edges_) total += edge.weight;
  return total / static_cast<double>(edges_.size());
}

std::vector<std::vector<uint32_t>> BlockingGraph::NodeEdges() const {
  std::vector<std::vector<uint32_t>> index(num_nodes_);
  for (uint32_t e = 0; e < edges_.size(); ++e) {
    WEBER_DCHECK_LT(edges_[e].b, index.size())
        << "edge " << e << " names a node the graph does not have";
    index[edges_[e].a].push_back(e);
    index[edges_[e].b].push_back(e);
  }
  return index;
}

}  // namespace weber::metablocking
