#include "metablocking/weight_schemes.h"

#include <cctype>
#include <string>

namespace weber::metablocking {

std::optional<WeightScheme> ParseWeightScheme(std::string_view name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) {
    upper.push_back(static_cast<char>(std::toupper(
        static_cast<unsigned char>(c))));
  }
  for (WeightScheme scheme : kAllWeightSchemes) {
    if (ToString(scheme) == upper) return scheme;
  }
  return std::nullopt;
}

}  // namespace weber::metablocking
