#ifndef WEBER_METABLOCKING_WEIGHT_SCHEMES_H_
#define WEBER_METABLOCKING_WEIGHT_SCHEMES_H_

#include <array>
#include <optional>
#include <string_view>

#include "metablocking/blocking_graph.h"

namespace weber::metablocking {

/// All weighting schemes, in canonical order; handy for sweeps.
inline constexpr std::array<WeightScheme, 5> kAllWeightSchemes = {
    WeightScheme::kCbs, WeightScheme::kEcbs, WeightScheme::kJs,
    WeightScheme::kEjs, WeightScheme::kArcs};

/// Parses a scheme name ("CBS", "ecbs", ...). Returns nullopt on unknown
/// names.
std::optional<WeightScheme> ParseWeightScheme(std::string_view name);

}  // namespace weber::metablocking

#endif  // WEBER_METABLOCKING_WEIGHT_SCHEMES_H_
