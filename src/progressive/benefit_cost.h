#ifndef WEBER_PROGRESSIVE_BENEFIT_COST_H_
#define WEBER_PROGRESSIVE_BENEFIT_COST_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "matching/match_graph.h"
#include "progressive/scheduler.h"

namespace weber::progressive {

/// Options of the benefit/cost windowed scheduler.
struct BenefitCostOptions {
  /// Comparisons per cost window; a fresh schedule is drawn up when the
  /// window is exhausted.
  uint64_t window_size = 128;
  /// Benefit added (once per pair) when a match shares an endpoint with
  /// the pair — weak evidence: the shared description belongs to a
  /// duplicate cluster.
  double entity_share_boost = 0.25;
  /// Benefit added (once per pair) when a match resolves descriptions
  /// related to both of the pair's sides — strong evidence: the pair's
  /// neighbourhoods were just identified.
  double influence_boost = 0.5;
  /// Cap on neighbours considered when propagating influence.
  size_t max_influence_fanout = 64;
};

/// Benefit/cost windowed scheduling over an influence graph (Altowim et
/// al., PVLDB'14). Candidate pairs carry an expected benefit, seeded with
/// a cheap similarity estimate. The total budget is split into fixed-cost
/// windows; at the start of each window the scheduler picks the
/// unresolved pairs with the highest current benefit. After every match
/// the benefit of influenced pairs rises: pairs sharing an entity with the
/// match, and pairs of descriptions related (by reference) to the matched
/// descriptions — so the next window prefers comparisons the previous
/// window's results made promising.
class BenefitCostScheduler : public PairScheduler {
 public:
  /// `candidates` carry the initial benefit (e.g., a cheap attribute
  /// similarity); the collection supplies the reference graph for the
  /// relational influence channel.
  BenefitCostScheduler(const model::EntityCollection& collection,
                       std::vector<matching::ScoredPair> candidates,
                       BenefitCostOptions options = {});

  std::optional<model::IdPair> NextPair() override;

  /// Update phase: propagates influence from matches.
  void OnResult(const model::IdPair& pair, bool matched) override;

  /// Influence re-ranks future windows, so the runner must stay serial.
  bool AdaptsToFeedback() const override { return true; }

  std::string name() const override { return "BenefitCost"; }

  /// Number of windows scheduled so far.
  size_t windows_built() const { return windows_built_; }

 private:
  struct Candidate {
    model::IdPair pair;
    double benefit;
    bool done = false;
    // Each influence channel fires at most once per pair: expected
    // benefit saturates, it does not accumulate without bound.
    bool entity_boosted = false;
    bool relation_boosted = false;
  };

  void BuildWindow();
  void BoostEntityShare(size_t candidate_index);
  void BoostRelational(size_t candidate_index);

  std::vector<Candidate> candidates_;
  std::unordered_map<model::IdPair, size_t, model::IdPairHash> index_of_;
  /// Candidate indices touching each entity (influence channel 1).
  std::unordered_map<model::EntityId, std::vector<size_t>> by_entity_;
  /// Reference graph (influence channel 2).
  std::vector<std::vector<model::EntityId>> neighbors_;

  BenefitCostOptions options_;
  std::deque<size_t> window_;
  size_t windows_built_ = 0;
  size_t remaining_ = 0;  // Unserved candidates.
};

}  // namespace weber::progressive

#endif  // WEBER_PROGRESSIVE_BENEFIT_COST_H_
