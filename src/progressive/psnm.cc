#include "progressive/psnm.h"

namespace weber::progressive {

PsnmScheduler::PsnmScheduler(const model::EntityCollection& collection,
                             blocking::SortedOrderOptions options)
    : ProgressiveSnScheduler(collection, std::move(options)) {
  position_of_.reserve(order_.size());
  for (size_t i = 0; i < order_.size(); ++i) {
    position_of_.emplace(order_[i], i);
  }
}

std::optional<model::IdPair> PsnmScheduler::NextPair() {
  if (!lookahead_.empty()) {
    model::IdPair pair = lookahead_.front();
    lookahead_.pop_front();
    return pair;
  }
  return ProgressiveSnScheduler::NextPair();
}

void PsnmScheduler::OnResult(const model::IdPair& pair, bool matched) {
  if (!matched) return;
  auto it_low = position_of_.find(pair.low);
  auto it_high = position_of_.find(pair.high);
  if (it_low == position_of_.end() || it_high == position_of_.end()) return;
  size_t i = std::min(it_low->second, it_high->second);
  size_t j = std::max(it_low->second, it_high->second);
  // Promote (i+1, j) and (i, j+1): the sort neighbours of a found match.
  if (i + 1 < j) {
    lookahead_.push_back(model::IdPair::Of(order_[i + 1], order_[j]));
  }
  if (j + 1 < order_.size()) {
    lookahead_.push_back(model::IdPair::Of(order_[i], order_[j + 1]));
  }
}

}  // namespace weber::progressive
