#ifndef WEBER_PROGRESSIVE_PSNM_H_
#define WEBER_PROGRESSIVE_PSNM_H_

#include <deque>
#include <unordered_map>

#include "progressive/progressive_sn.h"

namespace weber::progressive {

/// Progressive sorted neighbourhood with local lookahead (Papenbrock et
/// al., TKDE'15): on top of the sliding-window order, whenever the pair at
/// sorted positions (i, j) matches, the adjacent pairs (i+1, j) and
/// (i, j+1) are promoted to the front of the schedule — matches cluster in
/// dense regions of the sort, so the neighbours of a match are far more
/// likely to match than the next window pair.
class PsnmScheduler : public ProgressiveSnScheduler {
 public:
  PsnmScheduler(const model::EntityCollection& collection,
                blocking::SortedOrderOptions options = {});

  std::optional<model::IdPair> NextPair() override;

  /// Update phase: a match triggers the lookahead promotions.
  void OnResult(const model::IdPair& pair, bool matched) override;

  /// Lookahead reorders the schedule, so the runner must stay serial.
  bool AdaptsToFeedback() const override { return true; }

  std::string name() const override { return "PSNM"; }

 private:
  /// Sorted position of each entity id.
  std::unordered_map<model::EntityId, size_t> position_of_;
  /// Promoted pairs, served before the regular window order.
  std::deque<model::IdPair> lookahead_;
};

}  // namespace weber::progressive

#endif  // WEBER_PROGRESSIVE_PSNM_H_
