#include "progressive/progressive_sn.h"

namespace weber::progressive {

ProgressiveSnScheduler::ProgressiveSnScheduler(
    const model::EntityCollection& collection,
    blocking::SortedOrderOptions options)
    : collection_(collection),
      order_(blocking::SortedOrder(collection, options)) {}

std::optional<model::IdPair> ProgressiveSnScheduler::NextPair() {
  while (distance_ < order_.size()) {
    if (position_ + distance_ < order_.size()) {
      model::EntityId a = order_[position_];
      model::EntityId b = order_[position_ + distance_];
      ++position_;
      return model::IdPair::Of(a, b);
    }
    ++distance_;
    position_ = 0;
  }
  return std::nullopt;
}

}  // namespace weber::progressive
