#include "progressive/ordered_blocks.h"

#include <algorithm>

namespace weber::progressive {

OrderedBlocksScheduler::OrderedBlocksScheduler(
    const blocking::BlockCollection& blocks)
    : blocks_(blocks) {
  order_.resize(blocks.NumBlocks());
  for (uint32_t b = 0; b < order_.size(); ++b) order_[b] = b;
  const model::EntityCollection* collection = blocks.collection();
  auto cardinality = [&](uint32_t b) {
    const blocking::Block& block = blocks_.blocks()[b];
    return collection != nullptr
               ? block.NumComparisons(*collection)
               : block.size() * (block.size() - 1) / 2;
  };
  std::sort(order_.begin(), order_.end(), [&](uint32_t x, uint32_t y) {
    uint64_t cx = cardinality(x);
    uint64_t cy = cardinality(y);
    if (cx != cy) return cx < cy;
    return x < y;
  });
  // Emission rank of each block, then entity -> ascending rank lists so
  // the least-common-*rank* test mirrors emission order.
  std::vector<uint32_t> rank_of(order_.size());
  for (uint32_t r = 0; r < order_.size(); ++r) rank_of[order_[r]] = r;
  size_t n = collection != nullptr ? collection->size() : 0;
  for (uint32_t b = 0; b < blocks.NumBlocks(); ++b) {
    for (model::EntityId id : blocks.blocks()[b].entities) {
      n = std::max<size_t>(n, id + 1);
    }
  }
  entity_ranks_.resize(n);
  for (uint32_t b = 0; b < blocks.NumBlocks(); ++b) {
    for (model::EntityId id : blocks.blocks()[b].entities) {
      entity_ranks_[id].push_back(rank_of[b]);
    }
  }
  for (std::vector<uint32_t>& ranks : entity_ranks_) {
    std::sort(ranks.begin(), ranks.end());
  }
}

std::optional<model::IdPair> OrderedBlocksScheduler::NextPair() {
  const model::EntityCollection* collection = blocks_.collection();
  while (block_cursor_ < order_.size()) {
    const blocking::Block& block = blocks_.blocks()[order_[block_cursor_]];
    while (i_ < block.entities.size()) {
      while (j_ < block.entities.size()) {
        model::EntityId a = block.entities[i_];
        model::EntityId b = block.entities[j_];
        ++j_;
        if (collection != nullptr && !collection->Comparable(a, b)) {
          continue;
        }
        // Emit only in the first (lowest-rank) block containing both.
        const std::vector<uint32_t>& ranks_a = entity_ranks_[a];
        const std::vector<uint32_t>& ranks_b = entity_ranks_[b];
        size_t x = 0;
        size_t y = 0;
        uint32_t first_common = UINT32_MAX;
        while (x < ranks_a.size() && y < ranks_b.size()) {
          if (ranks_a[x] == ranks_b[y]) {
            first_common = ranks_a[x];
            break;
          }
          if (ranks_a[x] < ranks_b[y]) {
            ++x;
          } else {
            ++y;
          }
        }
        if (first_common != block_cursor_) continue;
        return model::IdPair::Of(a, b);
      }
      ++i_;
      j_ = i_ + 1;
    }
    ++block_cursor_;
    i_ = 0;
    j_ = 1;
  }
  return std::nullopt;
}

}  // namespace weber::progressive
