#include "progressive/partition_hierarchy.h"

#include <algorithm>

namespace weber::progressive {

PartitionHierarchyScheduler::PartitionHierarchyScheduler(
    const model::EntityCollection& collection,
    std::vector<size_t> prefix_levels, blocking::SortedOrderOptions options)
    : levels_(std::move(prefix_levels)) {
  order_ = blocking::SortedOrder(collection, options, &keys_);
  // Defensive: enforce strictly decreasing levels.
  std::sort(levels_.begin(), levels_.end(), std::greater<size_t>());
  levels_.erase(std::unique(levels_.begin(), levels_.end()), levels_.end());
  if (levels_.empty()) levels_.push_back(0);
}

size_t PartitionHierarchyScheduler::KeyLcp(size_t i, size_t j) const {
  const std::string& a = keys_[i];
  const std::string& b = keys_[j];
  size_t limit = std::min(a.size(), b.size());
  size_t lcp = 0;
  while (lcp < limit && a[lcp] == b[lcp]) ++lcp;
  return lcp;
}

bool PartitionHierarchyScheduler::AdvancePartition() {
  size_t prefix = levels_[level_];
  // Find the next run of >= 2 entities agreeing on `prefix` characters.
  size_t start = end_;
  while (start + 1 < order_.size()) {
    size_t end = start + 1;
    while (end < order_.size() && KeyLcp(start, end) >= prefix) ++end;
    if (end - start >= 2) {
      start_ = start;
      end_ = end;
      i_ = start;
      j_ = start + 1;
      return true;
    }
    start = end;
  }
  return false;
}

std::optional<model::IdPair> PartitionHierarchyScheduler::NextPair() {
  while (level_ < levels_.size()) {
    // Serve pairs from the current partition.
    while (i_ < end_) {
      while (j_ < end_) {
        size_t i = i_;
        size_t j = j_;
        ++j_;
        // Skip pairs that a deeper level already emitted: their common
        // prefix reaches the deeper level's threshold.
        if (level_ > 0 && KeyLcp(i, j) >= levels_[level_ - 1]) continue;
        return model::IdPair::Of(order_[i], order_[j]);
      }
      ++i_;
      j_ = i_ + 1;
    }
    if (!AdvancePartition()) {
      ++level_;
      start_ = 0;
      end_ = 0;
      i_ = 0;
      j_ = 0;
    }
  }
  return std::nullopt;
}

}  // namespace weber::progressive
