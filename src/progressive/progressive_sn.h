#ifndef WEBER_PROGRESSIVE_PROGRESSIVE_SN_H_
#define WEBER_PROGRESSIVE_PROGRESSIVE_SN_H_

#include <vector>

#include "blocking/sorted_neighborhood.h"
#include "progressive/scheduler.h"

namespace weber::progressive {

/// Progressive sorted neighbourhood (the sorted-list "hint" of Whang et
/// al., TKDE'13): entities are sorted by blocking key once; pairs are then
/// emitted in sliding windows of increasing size — first all pairs at sort
/// distance 1, then distance 2, and so on. Descriptions with more similar
/// keys are compared first, so matches concentrate at the start of the
/// schedule.
class ProgressiveSnScheduler : public PairScheduler {
 public:
  ProgressiveSnScheduler(const model::EntityCollection& collection,
                         blocking::SortedOrderOptions options = {});

  std::optional<model::IdPair> NextPair() override;

  std::string name() const override { return "ProgressiveSN"; }

  /// The sorted order used (exposed for PSNM and tests).
  const std::vector<model::EntityId>& order() const { return order_; }

 protected:
  const model::EntityCollection& collection_;
  std::vector<model::EntityId> order_;
  /// Current sort distance (window size - 1) and position.
  size_t distance_ = 1;
  size_t position_ = 0;
};

}  // namespace weber::progressive

#endif  // WEBER_PROGRESSIVE_PROGRESSIVE_SN_H_
