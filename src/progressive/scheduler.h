#ifndef WEBER_PROGRESSIVE_SCHEDULER_H_
#define WEBER_PROGRESSIVE_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "eval/progressive_curve.h"
#include "matching/match_graph.h"
#include "matching/matcher.h"
#include "matching/signatures.h"
#include "model/entity.h"
#include "model/ground_truth.h"

namespace weber::progressive {

/// The scheduling phase of the progressive ER framework (Fig. 1 of the
/// tutorial): decides which candidate pair is compared next. The runner
/// feeds match results back through OnResult — the optional update phase —
/// so schedulers can promote pairs influenced by fresh matches.
class PairScheduler {
 public:
  virtual ~PairScheduler() = default;

  /// The next pair to compare, or nullopt when the schedule is exhausted.
  virtual std::optional<model::IdPair> NextPair() = 0;

  /// Update-phase hook: the outcome of the comparison most recently
  /// handed out. Default: ignore feedback (static schedules). A scheduler
  /// overriding this so that feedback influences future NextPair calls
  /// MUST also override AdaptsToFeedback to return true, or the batched
  /// runner will prefetch pairs before delivering the feedback.
  virtual void OnResult(const model::IdPair& pair, bool matched) {
    (void)pair;
    (void)matched;
  }

  /// Whether OnResult changes the order NextPair hands pairs out. When
  /// false (the default), RunProgressive may pop a batch of pairs and
  /// score them concurrently — results are still committed in schedule
  /// order, so the run is byte-identical either way. When true, the
  /// runner stays strictly serial: NextPair, score, OnResult, repeat.
  virtual bool AdaptsToFeedback() const { return false; }

  virtual std::string name() const = 0;
};

/// A static schedule over an explicit pair list, in the given order.
/// Models both the unordered baseline (pairs as blocking emitted them) and
/// ranked lists (pairs pre-sorted by a score).
class StaticListScheduler : public PairScheduler {
 public:
  explicit StaticListScheduler(std::vector<model::IdPair> pairs,
                               std::string label = "StaticList")
      : pairs_(std::move(pairs)), label_(std::move(label)) {}

  std::optional<model::IdPair> NextPair() override {
    if (next_ >= pairs_.size()) return std::nullopt;
    return pairs_[next_++];
  }

  std::string name() const override { return label_; }

 private:
  std::vector<model::IdPair> pairs_;
  size_t next_ = 0;
  std::string label_;
};

/// Outcome of a budgeted progressive run.
struct ProgressiveRunResult {
  /// Trajectory of true-match discovery (one step per comparison).
  eval::ProgressiveCurve curve;
  /// Pairs the matcher declared matching within the budget.
  std::vector<model::IdPair> reported;
  /// Comparisons actually executed (<= budget).
  uint64_t comparisons = 0;

  explicit ProgressiveRunResult(uint64_t total_matches)
      : curve(total_matches) {}
};

/// Executes the progressive loop: pop a pair from the scheduler, evaluate
/// the matcher, feed the verdict back, until `budget` comparisons have run
/// or the schedule is exhausted. Pairs are deduplicated (a pair handed out
/// twice is only evaluated once). The curve records *true* matches (per
/// `truth`) so that recall-vs-budget is directly comparable across
/// schedulers.
/// `prepared`, when non-null, scores pairs over interned signatures
/// instead of re-tokenising descriptions; it must be the prepared twin of
/// `matcher` over a store covering the collection's ids, so verdicts stay
/// bit-equal to the string path.
ProgressiveRunResult RunProgressive(
    const model::EntityCollection& collection, PairScheduler& scheduler,
    const matching::ThresholdMatcher& matcher, uint64_t budget,
    const model::GroundTruth& truth,
    const matching::PreparedMatcher* prepared = nullptr);

}  // namespace weber::progressive

#endif  // WEBER_PROGRESSIVE_SCHEDULER_H_
