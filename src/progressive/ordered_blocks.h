#ifndef WEBER_PROGRESSIVE_ORDERED_BLOCKS_H_
#define WEBER_PROGRESSIVE_ORDERED_BLOCKS_H_

#include <vector>

#include "blocking/block.h"
#include "progressive/scheduler.h"

namespace weber::progressive {

/// Ordered-blocks hint (the third hint family of Whang et al., TKDE'13):
/// blocks are processed in ascending comparison cardinality — small
/// blocks are the most discriminative, so their pairs are the most likely
/// matches — and each block's pairs are emitted before the next block's.
/// Pairs already emitted by an earlier (smaller) block are skipped via
/// the least-common-block test, so the schedule is duplicate-free and,
/// run to exhaustion, covers exactly the blocking collection's distinct
/// pairs.
class OrderedBlocksScheduler : public PairScheduler {
 public:
  explicit OrderedBlocksScheduler(const blocking::BlockCollection& blocks);

  std::optional<model::IdPair> NextPair() override;

  std::string name() const override { return "OrderedBlocks"; }

 private:
  const blocking::BlockCollection& blocks_;
  /// Block indices in ascending cardinality order.
  std::vector<uint32_t> order_;
  /// entity -> blocks (in emission-rank space) for the dedup test.
  std::vector<std::vector<uint32_t>> entity_ranks_;

  size_t block_cursor_ = 0;  // Position in order_.
  size_t i_ = 0;             // Pair cursor inside the current block.
  size_t j_ = 1;
};

}  // namespace weber::progressive

#endif  // WEBER_PROGRESSIVE_ORDERED_BLOCKS_H_
