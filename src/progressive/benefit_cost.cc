#include "progressive/benefit_cost.h"

#include <algorithm>

namespace weber::progressive {

BenefitCostScheduler::BenefitCostScheduler(
    const model::EntityCollection& collection,
    std::vector<matching::ScoredPair> candidates, BenefitCostOptions options)
    : options_(options) {
  candidates_.reserve(candidates.size());
  for (const matching::ScoredPair& scored : candidates) {
    model::IdPair pair = scored.pair();
    if (index_of_.contains(pair)) continue;
    index_of_.emplace(pair, candidates_.size());
    by_entity_[pair.low].push_back(candidates_.size());
    by_entity_[pair.high].push_back(candidates_.size());
    candidates_.push_back({pair, scored.score, false});
  }
  remaining_ = candidates_.size();

  // Undirected neighbourhood of each description in the reference graph.
  neighbors_.resize(collection.size());
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    for (const model::Relation& relation : collection[id].relations()) {
      auto target = collection.FindByUri(relation.target_uri);
      if (!target.has_value() || *target == id) continue;
      neighbors_[id].push_back(*target);
      neighbors_[*target].push_back(id);
    }
  }
}

void BenefitCostScheduler::BuildWindow() {
  if (remaining_ == 0) return;
  // Gather unresolved candidate indices and take the top-benefit slice.
  std::vector<size_t> open;
  open.reserve(remaining_);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (!candidates_[i].done) open.push_back(i);
  }
  size_t take = std::min<size_t>(options_.window_size, open.size());
  std::partial_sort(open.begin(), open.begin() + take, open.end(),
                    [this](size_t x, size_t y) {
                      if (candidates_[x].benefit != candidates_[y].benefit) {
                        return candidates_[x].benefit >
                               candidates_[y].benefit;
                      }
                      return candidates_[x].pair < candidates_[y].pair;
                    });
  window_.assign(open.begin(), open.begin() + take);
  ++windows_built_;
}

std::optional<model::IdPair> BenefitCostScheduler::NextPair() {
  // Drop entries resolved since they were scheduled.
  while (!window_.empty() && candidates_[window_.front()].done) {
    window_.pop_front();
  }
  if (window_.empty()) {
    BuildWindow();
    if (window_.empty()) return std::nullopt;
  }
  size_t index = window_.front();
  window_.pop_front();
  candidates_[index].done = true;
  --remaining_;
  return candidates_[index].pair;
}

void BenefitCostScheduler::BoostEntityShare(size_t candidate_index) {
  Candidate& candidate = candidates_[candidate_index];
  if (candidate.done || candidate.entity_boosted) return;
  candidate.entity_boosted = true;
  candidate.benefit += options_.entity_share_boost;
}

void BenefitCostScheduler::BoostRelational(size_t candidate_index) {
  Candidate& candidate = candidates_[candidate_index];
  if (candidate.done || candidate.relation_boosted) return;
  candidate.relation_boosted = true;
  candidate.benefit += options_.influence_boost;
}

void BenefitCostScheduler::OnResult(const model::IdPair& pair,
                                    bool matched) {
  if (!matched) return;
  // Channel 1: pairs sharing an endpoint with the match.
  for (model::EntityId endpoint : {pair.low, pair.high}) {
    auto it = by_entity_.find(endpoint);
    if (it == by_entity_.end()) continue;
    for (size_t index : it->second) {
      BoostEntityShare(index);
    }
  }
  // Channel 2: pairs of descriptions related to the matched descriptions.
  const std::vector<model::EntityId>& around_low = neighbors_[pair.low];
  const std::vector<model::EntityId>& around_high = neighbors_[pair.high];
  size_t fan_low = std::min(around_low.size(), options_.max_influence_fanout);
  size_t fan_high =
      std::min(around_high.size(), options_.max_influence_fanout);
  for (size_t i = 0; i < fan_low; ++i) {
    for (size_t j = 0; j < fan_high; ++j) {
      if (around_low[i] == around_high[j]) continue;
      auto it = index_of_.find(model::IdPair::Of(around_low[i],
                                                 around_high[j]));
      if (it != index_of_.end()) BoostRelational(it->second);
    }
  }
}

}  // namespace weber::progressive
