#ifndef WEBER_PROGRESSIVE_PARTITION_HIERARCHY_H_
#define WEBER_PROGRESSIVE_PARTITION_HIERARCHY_H_

#include <string>
#include <vector>

#include "blocking/sorted_neighborhood.h"
#include "progressive/scheduler.h"

namespace weber::progressive {

/// Hierarchy-of-partitions hint (Whang et al., TKDE'13): records are
/// partitioned at several similarity levels — here, by the length of the
/// shared prefix of their sorted blocking keys, a monotone proxy for key
/// distance. The hierarchy is traversed bottom-up: pairs whose keys agree
/// on the longest prefixes (the "highly similar" descriptions) are
/// compared first; each shallower level adds exactly the pairs whose
/// common prefix falls between its threshold and the deeper one, so no
/// pair is emitted twice. The final level (prefix 0) completes the
/// schedule with all remaining pairs.
class PartitionHierarchyScheduler : public PairScheduler {
 public:
  /// `prefix_levels` must be strictly decreasing and end with 0 for a
  /// complete schedule (the default covers 8..0).
  PartitionHierarchyScheduler(
      const model::EntityCollection& collection,
      std::vector<size_t> prefix_levels = {8, 6, 4, 2, 1, 0},
      blocking::SortedOrderOptions options = {});

  std::optional<model::IdPair> NextPair() override;

  std::string name() const override { return "PartitionHierarchy"; }

  /// Number of levels in the hierarchy.
  size_t num_levels() const { return levels_.size(); }
  /// The level the most recently emitted pair belonged to (0 = deepest).
  size_t current_level() const { return level_; }

 private:
  /// Longest common prefix of the keys at sorted positions i and j.
  size_t KeyLcp(size_t i, size_t j) const;
  /// Advances (start_, end_) to the next partition run at the current
  /// level; returns false when the level is exhausted.
  bool AdvancePartition();

  std::vector<model::EntityId> order_;
  std::vector<std::string> keys_;  // Parallel to order_.
  std::vector<size_t> levels_;     // Descending prefix lengths.

  size_t level_ = 0;
  size_t start_ = 0;  // Current partition [start_, end_).
  size_t end_ = 0;
  size_t i_ = 0;  // Pair cursor inside the partition.
  size_t j_ = 0;
};

}  // namespace weber::progressive

#endif  // WEBER_PROGRESSIVE_PARTITION_HIERARCHY_H_
