#include "progressive/scheduler.h"

#include <algorithm>
#include <limits>

#include "core/executor.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace weber::progressive {

ProgressiveRunResult RunProgressive(const model::EntityCollection& collection,
                                    PairScheduler& scheduler,
                                    const matching::ThresholdMatcher& matcher,
                                    uint64_t budget,
                                    const model::GroundTruth& truth,
                                    const matching::PreparedMatcher* prepared) {
  ProgressiveRunResult result(truth.NumMatches());
  model::IdPairSet executed;
  // Aggregated locally and published once at the end: the loop body is
  // the hot path of the whole matching phase.
  uint64_t scheduled = 0;
  uint64_t skipped = 0;
  // An adaptive scheduler must see each verdict before handing out the
  // next pair, so its batch size is pinned to 1 — the loop below then
  // interleaves NextPair / score / OnResult exactly like a serial run.
  // Static schedules admit prefetching: pairs are popped and screened in
  // schedule order, scored concurrently, and committed in schedule order,
  // so budget accounting, the curve, and OnResult feedback are
  // byte-identical to the serial execution.
  const size_t max_batch =
      scheduler.AdaptsToFeedback()
          ? 1
          : std::min<size_t>(core::EffectiveParallelism() * 8, 256);
  std::vector<model::IdPair> batch;
  std::vector<char> verdicts;  // Not vector<bool>: slots written in parallel.
  bool exhausted = false;
  while (!exhausted && result.comparisons < budget) {
    batch.clear();
    const uint64_t remaining = budget - result.comparisons;
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(max_batch, remaining));
    while (batch.size() < want) {
      std::optional<model::IdPair> pair = scheduler.NextPair();
      if (!pair.has_value()) {
        exhausted = true;
        break;
      }
      ++scheduled;
      if (pair->low == pair->high ||
          !collection.Comparable(pair->low, pair->high) ||
          !executed.insert(*pair).second) {
        ++skipped;  // Self-pair, incomparable, or already evaluated.
        continue;
      }
      WEBER_DCHECK_LT(pair->low, pair->high)
          << "scheduler emitted an unnormalised pair";
      batch.push_back(*pair);
    }
    if (batch.empty()) continue;
    verdicts.assign(batch.size(), 0);
    auto score = [&](size_t i) {
      const model::IdPair& pair = batch[i];
      bool matched = prepared != nullptr
                         ? prepared->Matches(pair.low, pair.high,
                                             matcher.threshold())
                         : matcher.Matches(collection[pair.low],
                                           collection[pair.high]);
      verdicts[i] = matched ? 1 : 0;
    };
    if (batch.size() == 1) {
      score(0);
    } else {
      core::Executor::Shared().ParallelFor(batch.size(), score);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      const model::IdPair& pair = batch[i];
      bool matched = verdicts[i] != 0;
      ++result.comparisons;
      result.curve.Record(matched && truth.IsMatch(pair));
      if (matched) result.reported.push_back(pair);
      scheduler.OnResult(pair, matched);
    }
  }
  WEBER_DCHECK_LE(result.comparisons, budget)
      << "progressive run overspent its comparison budget";
  WEBER_DCHECK_EQ(scheduled, skipped + result.comparisons)
      << "progressive accounting leak: a scheduled pair was neither "
      << "skipped nor scored";

  if (obs::MetricsRegistry* registry = obs::Current()) {
    registry->GetCounter("weber.progressive.scheduled_pairs").Add(scheduled);
    registry->GetCounter("weber.progressive.skipped_pairs").Add(skipped);
    registry->GetCounter("weber.progressive.comparisons")
        .Add(result.comparisons);
    registry->GetCounter("weber.progressive.matches")
        .Add(result.reported.size());
    if (budget > 0 && budget != std::numeric_limits<uint64_t>::max()) {
      registry->GetGauge("weber.progressive.budget_used_ratio")
          .Set(static_cast<double>(result.comparisons) /
               static_cast<double>(budget));
    }
    if (result.comparisons > 0) {
      registry->GetGauge("weber.progressive.emission_rate")
          .Set(static_cast<double>(result.reported.size()) /
               static_cast<double>(result.comparisons));
    }
  }
  return result;
}

}  // namespace weber::progressive
