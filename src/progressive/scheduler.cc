#include "progressive/scheduler.h"

#include <limits>

#include "obs/metrics.h"

namespace weber::progressive {

ProgressiveRunResult RunProgressive(const model::EntityCollection& collection,
                                    PairScheduler& scheduler,
                                    const matching::ThresholdMatcher& matcher,
                                    uint64_t budget,
                                    const model::GroundTruth& truth) {
  ProgressiveRunResult result(truth.NumMatches());
  model::IdPairSet executed;
  // Aggregated locally and published once at the end: the loop body is
  // the hot path of the whole matching phase.
  uint64_t scheduled = 0;
  uint64_t skipped = 0;
  while (result.comparisons < budget) {
    std::optional<model::IdPair> pair = scheduler.NextPair();
    if (!pair.has_value()) break;
    ++scheduled;
    if (pair->low == pair->high ||
        !collection.Comparable(pair->low, pair->high) ||
        !executed.insert(*pair).second) {
      ++skipped;  // Self-pair, incomparable, or already evaluated.
      continue;
    }
    bool matched =
        matcher.Matches(collection[pair->low], collection[pair->high]);
    ++result.comparisons;
    bool true_match = matched && truth.IsMatch(*pair);
    result.curve.Record(true_match);
    if (matched) result.reported.push_back(*pair);
    scheduler.OnResult(*pair, matched);
  }

  if (obs::MetricsRegistry* registry = obs::Current()) {
    registry->GetCounter("weber.progressive.scheduled_pairs").Add(scheduled);
    registry->GetCounter("weber.progressive.skipped_pairs").Add(skipped);
    registry->GetCounter("weber.progressive.comparisons")
        .Add(result.comparisons);
    registry->GetCounter("weber.progressive.matches")
        .Add(result.reported.size());
    if (budget > 0 && budget != std::numeric_limits<uint64_t>::max()) {
      registry->GetGauge("weber.progressive.budget_used_ratio")
          .Set(static_cast<double>(result.comparisons) /
               static_cast<double>(budget));
    }
    if (result.comparisons > 0) {
      registry->GetGauge("weber.progressive.emission_rate")
          .Set(static_cast<double>(result.reported.size()) /
               static_cast<double>(result.comparisons));
    }
  }
  return result;
}

}  // namespace weber::progressive
