#include "progressive/scheduler.h"

namespace weber::progressive {

ProgressiveRunResult RunProgressive(const model::EntityCollection& collection,
                                    PairScheduler& scheduler,
                                    const matching::ThresholdMatcher& matcher,
                                    uint64_t budget,
                                    const model::GroundTruth& truth) {
  ProgressiveRunResult result(truth.NumMatches());
  model::IdPairSet executed;
  while (result.comparisons < budget) {
    std::optional<model::IdPair> pair = scheduler.NextPair();
    if (!pair.has_value()) break;
    if (pair->low == pair->high) continue;
    if (!collection.Comparable(pair->low, pair->high)) continue;
    if (!executed.insert(*pair).second) continue;  // Already evaluated.
    bool matched =
        matcher.Matches(collection[pair->low], collection[pair->high]);
    ++result.comparisons;
    bool true_match = matched && truth.IsMatch(*pair);
    result.curve.Record(true_match);
    if (matched) result.reported.push_back(*pair);
    scheduler.OnResult(*pair, matched);
  }
  return result;
}

}  // namespace weber::progressive
