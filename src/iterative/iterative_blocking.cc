#include "iterative/iterative_blocking.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "matching/signatures.h"
#include "model/ground_truth.h"
#include "util/union_find.h"

namespace weber::iterative {

namespace {

// Builds the final clusters/resolved arrays from a union-find over the
// original ids.
void Finalize(const model::EntityCollection& collection,
              util::UnionFind& forest, IterativeBlockingResult& result) {
  result.clusters = forest.Groups(/*include_singletons=*/true);
  result.resolved.reserve(result.clusters.size());
  for (const std::vector<model::EntityId>& cluster : result.clusters) {
    model::EntityDescription merged = collection[cluster.front()];
    for (size_t i = 1; i < cluster.size(); ++i) {
      merged.MergeFrom(collection[cluster[i]]);
    }
    result.resolved.push_back(std::move(merged));
  }
}

}  // namespace

IterativeBlockingResult IterativeBlocking(
    const blocking::BlockCollection& blocks,
    const matching::ThresholdMatcher& matcher, bool use_signatures) {
  IterativeBlockingResult result;
  const model::EntityCollection* collection = blocks.collection();
  if (collection == nullptr || collection->empty()) return result;
  size_t n = collection->size();

  util::UnionFind forest(n);
  // Current merged description of each root.
  std::unordered_map<uint32_t, model::EntityDescription> merged;
  // Signature slot of each root (original ids until the first merge);
  // merged descriptions for the fallback provider, keyed by slot.
  std::unordered_map<uint32_t, model::EntityId> sig_of;
  std::unordered_map<model::EntityId, const model::EntityDescription*>
      desc_of_sig;
  for (model::EntityId id = 0; id < n; ++id) {
    merged.emplace(id, (*collection)[id]);
    sig_of.emplace(id, id);
  }

  // Signature engine: roots are compared over interned token ids; each
  // merge derives a slot by sorted union instead of re-tokenising.
  std::optional<matching::SignatureStore> store;
  std::unique_ptr<matching::PreparedMatcher> prepared;
  if (use_signatures && matching::Preparable(matcher.matcher())) {
    store.emplace(matching::SignatureStore::Build(
        *collection, matching::OptionsFor(matcher.matcher())));
    store->SetDescriptionProvider(
        [collection, n,
         &desc_of_sig](model::EntityId id) -> const model::EntityDescription* {
          if (id < n) return &(*collection)[id];
          auto it = desc_of_sig.find(id);
          return it == desc_of_sig.end() ? nullptr : it->second;
        });
    prepared = matching::Prepare(matcher.matcher(), *store);
  }
  // Version of each root: bumped on merge; lets the comparison cache
  // detect that a previously-failed pair must be retried because one side
  // gained information.
  std::vector<uint32_t> version(n, 0);
  // Blocks containing at least one member of each root's cluster.
  std::unordered_map<uint32_t, std::set<uint32_t>> blocks_of_root;
  for (uint32_t b = 0; b < blocks.NumBlocks(); ++b) {
    for (model::EntityId id : blocks.blocks()[b].entities) {
      blocks_of_root[id].insert(b);
    }
  }
  // Failed comparisons with the versions they were tried at.
  std::unordered_map<model::IdPair, std::pair<uint32_t, uint32_t>,
                     model::IdPairHash>
      failed_at;

  std::deque<uint32_t> queue;
  std::vector<bool> queued(blocks.NumBlocks(), false);
  for (uint32_t b = 0; b < blocks.NumBlocks(); ++b) {
    queue.push_back(b);
    queued[b] = true;
  }

  while (!queue.empty()) {
    uint32_t b = queue.front();
    queue.pop_front();
    queued[b] = false;
    ++result.block_passes;

    // Distinct live roots present in this block, in ascending order for
    // determinism.
    std::set<uint32_t> roots;
    for (model::EntityId id : blocks.blocks()[b].entities) {
      roots.insert(forest.Find(id));
    }
    bool changed = true;
    while (changed && roots.size() > 1) {
      changed = false;
      // Try every pair of live roots once per information state.
      for (auto it_a = roots.begin(); it_a != roots.end() && !changed;
           ++it_a) {
        auto it_b = it_a;
        for (++it_b; it_b != roots.end(); ++it_b) {
          uint32_t root_a = *it_a;
          uint32_t root_b = *it_b;
          if (collection->setting() == model::ErSetting::kCleanClean &&
              !collection->Comparable(root_a, root_b)) {
            // In clean-clean, cluster roots of the same source stay apart
            // unless bridged elsewhere; skip the direct comparison.
            continue;
          }
          model::IdPair pair = model::IdPair::Of(root_a, root_b);
          auto cached = failed_at.find(pair);
          if (cached != failed_at.end() &&
              cached->second ==
                  std::make_pair(version[pair.low], version[pair.high])) {
            continue;  // Already failed at this information state.
          }
          ++result.comparisons;
          bool is_match =
              prepared != nullptr
                  ? prepared->Matches(sig_of.at(root_a), sig_of.at(root_b),
                                      matcher.threshold())
                  : matcher.Matches(merged.at(root_a), merged.at(root_b));
          if (!is_match) {
            failed_at[pair] = {version[pair.low], version[pair.high]};
            continue;
          }
          // Merge root_b into root_a (union chooses the real survivor).
          forest.Union(root_a, root_b);
          ++result.merges;
          uint32_t survivor = forest.Find(root_a);
          uint32_t absorbed = survivor == root_a ? root_b : root_a;
          merged.at(survivor).MergeFrom(merged.at(absorbed));
          merged.erase(absorbed);
          ++version[survivor];
          if (prepared != nullptr) {
            // Survivor-first union mirrors the MergeFrom order above;
            // retire the constituents' slots.
            model::EntityId sig = store->AppendMerged(sig_of.at(survivor),
                                                      sig_of.at(absorbed));
            store->Release(sig_of.at(survivor));
            store->Release(sig_of.at(absorbed));
            desc_of_sig.erase(sig_of.at(survivor));
            desc_of_sig.erase(sig_of.at(absorbed));
            sig_of.erase(absorbed);
            sig_of[survivor] = sig;
            // unordered_map values are node-stable, so the address of the
            // survivor's merged description outlives future rehashes.
            desc_of_sig[sig] = &merged.at(survivor);
          }
          // Merge block sets and re-enqueue all affected blocks: the
          // merged record replaced the originals everywhere.
          std::set<uint32_t>& survivor_blocks = blocks_of_root[survivor];
          std::set<uint32_t>& absorbed_blocks = blocks_of_root[absorbed];
          survivor_blocks.insert(absorbed_blocks.begin(),
                                 absorbed_blocks.end());
          for (uint32_t affected : survivor_blocks) {
            if (!queued[affected]) {
              queue.push_back(affected);
              queued[affected] = true;
            }
          }
          blocks_of_root.erase(absorbed);
          roots.erase(absorbed);
          if (survivor != root_a) {
            roots.erase(root_a);
            roots.insert(survivor);
          }
          changed = true;
          break;
        }
      }
    }
  }

  Finalize(*collection, forest, result);
  return result;
}

IterativeBlockingResult IndependentBlockER(
    const blocking::BlockCollection& blocks,
    const matching::ThresholdMatcher& matcher, bool use_signatures) {
  IterativeBlockingResult result;
  const model::EntityCollection* collection = blocks.collection();
  if (collection == nullptr || collection->empty()) return result;

  // Only original descriptions are compared here, so the store never
  // needs a fallback provider beyond the collection itself.
  std::optional<matching::SignatureStore> store;
  std::unique_ptr<matching::PreparedMatcher> prepared;
  if (use_signatures && matching::Preparable(matcher.matcher())) {
    store.emplace(matching::SignatureStore::Build(
        *collection, matching::OptionsFor(matcher.matcher())));
    prepared = matching::Prepare(matcher.matcher(), *store);
  }

  util::UnionFind forest(collection->size());
  for (const blocking::Block& block : blocks.blocks()) {
    ++result.block_passes;
    for (size_t i = 0; i < block.entities.size(); ++i) {
      for (size_t j = i + 1; j < block.entities.size(); ++j) {
        model::EntityId a = block.entities[i];
        model::EntityId b = block.entities[j];
        if (!collection->Comparable(a, b)) continue;
        ++result.comparisons;  // Redundant cross-block comparisons paid.
        bool is_match =
            prepared != nullptr
                ? prepared->Matches(a, b, matcher.threshold())
                : matcher.Matches((*collection)[a], (*collection)[b]);
        if (is_match) {
          if (forest.Union(a, b)) ++result.merges;
        }
      }
    }
  }
  Finalize(*collection, forest, result);
  return result;
}

}  // namespace weber::iterative
