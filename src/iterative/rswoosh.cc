#include "iterative/rswoosh.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "matching/signatures.h"
#include "util/union_find.h"

namespace weber::iterative {

SwooshResult RSwoosh(const model::EntityCollection& collection,
                     const matching::ThresholdMatcher& matcher,
                     bool use_signatures) {
  SwooshResult result;

  // Work items reference their (possibly merged) description plus the
  // source ids it covers; merged descriptions live in a deque so their
  // addresses stay stable for the signature fallback provider.
  struct Item {
    const model::EntityDescription* description = nullptr;
    std::vector<model::EntityId> sources;
    model::EntityId sig = 0;  // Slot in the signature store.
  };
  std::deque<model::EntityDescription> merged_arena;
  std::unordered_map<model::EntityId, const model::EntityDescription*>
      merged_of_sig;

  // Signature engine: originals are interned once; merges derive their
  // slots by sorted union. String fallbacks (e.g. TF-IDF on merged slots)
  // resolve descriptions through the provider below.
  std::optional<matching::SignatureStore> store;
  std::unique_ptr<matching::PreparedMatcher> prepared;
  if (use_signatures && matching::Preparable(matcher.matcher())) {
    store.emplace(matching::SignatureStore::Build(
        collection, matching::OptionsFor(matcher.matcher())));
    store->SetDescriptionProvider(
        [&collection, &merged_of_sig](
            model::EntityId id) -> const model::EntityDescription* {
          if (id < collection.size()) return &collection.descriptions()[id];
          auto it = merged_of_sig.find(id);
          return it == merged_of_sig.end() ? nullptr : it->second;
        });
    prepared = matching::Prepare(matcher.matcher(), *store);
  }

  std::deque<Item> input;
  for (model::EntityId id = 0; id < collection.size(); ++id) {
    input.push_back({&collection.descriptions()[id], {id}, id});
  }

  std::vector<Item> resolved;  // I'.
  while (!input.empty()) {
    Item item = std::move(input.front());
    input.pop_front();
    bool merged = false;
    for (size_t i = 0; i < resolved.size(); ++i) {
      ++result.comparisons;
      bool is_match =
          prepared != nullptr
              ? prepared->Matches(item.sig, resolved[i].sig,
                                  matcher.threshold())
              : matcher.Matches(*item.description, *resolved[i].description);
      if (is_match) {
        // Merge and recycle through the input queue: the merged record may
        // now match records that neither part matched alone.
        merged_arena.push_back(*item.description);
        merged_arena.back().MergeFrom(*resolved[i].description);
        item.description = &merged_arena.back();
        item.sources.insert(item.sources.end(),
                            resolved[i].sources.begin(),
                            resolved[i].sources.end());
        if (prepared != nullptr) {
          // Sorted-union signature for the merge — no re-tokenisation —
          // then retire the constituents' slots.
          model::EntityId sig =
              store->AppendMerged(item.sig, resolved[i].sig);
          store->Release(item.sig);
          store->Release(resolved[i].sig);
          merged_of_sig.erase(item.sig);
          merged_of_sig.erase(resolved[i].sig);
          merged_of_sig.emplace(sig, item.description);
          item.sig = sig;
        }
        resolved.erase(resolved.begin() + static_cast<int64_t>(i));
        input.push_back(std::move(item));
        ++result.merges;
        merged = true;
        break;
      }
    }
    if (!merged) {
      resolved.push_back(std::move(item));
    }
  }

  result.resolved.reserve(resolved.size());
  result.clusters.reserve(resolved.size());
  for (Item& item : resolved) {
    std::sort(item.sources.begin(), item.sources.end());
    result.resolved.push_back(*item.description);
    result.clusters.push_back(std::move(item.sources));
  }
  return result;
}

SwooshResult GSwoosh(const model::EntityCollection& collection,
                     const matching::ThresholdMatcher& matcher,
                     const GSwooshOptions& options) {
  SwooshResult result;
  size_t n = collection.size();
  if (n == 0) return result;

  // A G-Swoosh record: a (partial) merge identified by its source set.
  struct Record {
    model::EntityDescription description;
    std::vector<model::EntityId> sources;  // Sorted.
  };
  auto signature_of = [](const std::vector<model::EntityId>& sources) {
    std::string signature;
    for (model::EntityId id : sources) {
      signature += std::to_string(id);
      signature.push_back(',');
    }
    return signature;
  };
  auto is_subset = [](const std::vector<model::EntityId>& small,
                      const std::vector<model::EntityId>& big) {
    return std::includes(big.begin(), big.end(), small.begin(),
                         small.end());
  };
  auto comparable = [&collection](const Record& x, const Record& y) {
    for (model::EntityId a : x.sources) {
      for (model::EntityId b : y.sources) {
        if (collection.Comparable(a, b)) return true;
      }
    }
    return false;
  };

  std::deque<Record> queue;
  std::unordered_set<std::string> seen;
  for (model::EntityId id = 0; id < n; ++id) {
    Record record{collection[id], {id}};
    seen.insert(signature_of(record.sources));
    queue.push_back(std::move(record));
  }
  size_t records_created = n;

  util::UnionFind forest(n);
  std::vector<Record> resolved;  // I': records are never removed.
  while (!queue.empty()) {
    Record record = std::move(queue.front());
    queue.pop_front();
    for (const Record& other : resolved) {
      // Subset merges add no information in either direction.
      if (is_subset(record.sources, other.sources) ||
          is_subset(other.sources, record.sources)) {
        continue;
      }
      if (!comparable(record, other)) continue;
      if (options.max_comparisons != 0 &&
          result.comparisons >= options.max_comparisons) {
        break;
      }
      ++result.comparisons;
      if (!matcher.Matches(record.description, other.description)) continue;
      ++result.merges;
      forest.Union(record.sources.front(), other.sources.front());
      // Materialise the merge unless already explored or over cap.
      std::vector<model::EntityId> merged_sources;
      std::set_union(record.sources.begin(), record.sources.end(),
                     other.sources.begin(), other.sources.end(),
                     std::back_inserter(merged_sources));
      std::string signature = signature_of(merged_sources);
      if (seen.contains(signature)) continue;
      if (options.max_records != 0 &&
          records_created >= options.max_records) {
        continue;
      }
      seen.insert(std::move(signature));
      ++records_created;
      Record merged;
      merged.description = record.description;
      merged.description.MergeFrom(other.description);
      merged.sources = std::move(merged_sources);
      queue.push_back(std::move(merged));
    }
    resolved.push_back(std::move(record));
  }

  // Output: one maximal record per connected group of originals.
  result.clusters = forest.Groups(/*include_singletons=*/true);
  result.resolved.reserve(result.clusters.size());
  for (std::vector<model::EntityId>& cluster : result.clusters) {
    std::sort(cluster.begin(), cluster.end());
    model::EntityDescription merged = collection[cluster.front()];
    for (size_t i = 1; i < cluster.size(); ++i) {
      merged.MergeFrom(collection[cluster[i]]);
    }
    result.resolved.push_back(std::move(merged));
  }
  return result;
}

SwooshResult NaivePairwiseResolve(const model::EntityCollection& collection,
                                  const matching::ThresholdMatcher& matcher,
                                  bool use_signatures) {
  SwooshResult result;
  // Only original pairs are scored, so no fallback provider is needed.
  std::optional<matching::SignatureStore> store;
  std::unique_ptr<matching::PreparedMatcher> prepared;
  if (use_signatures && matching::Preparable(matcher.matcher())) {
    store.emplace(matching::SignatureStore::Build(
        collection, matching::OptionsFor(matcher.matcher())));
    prepared = matching::Prepare(matcher.matcher(), *store);
  }
  util::UnionFind forest(collection.size());
  for (model::EntityId a = 0; a < collection.size(); ++a) {
    for (model::EntityId b = a + 1; b < collection.size(); ++b) {
      if (!collection.Comparable(a, b)) continue;
      ++result.comparisons;
      bool is_match = prepared != nullptr
                          ? prepared->Matches(a, b, matcher.threshold())
                          : matcher.Matches(collection[a], collection[b]);
      if (is_match) {
        if (forest.Union(a, b)) ++result.merges;
      }
    }
  }
  result.clusters = forest.Groups(/*include_singletons=*/true);
  for (const std::vector<model::EntityId>& cluster : result.clusters) {
    model::EntityDescription merged = collection[cluster.front()];
    for (size_t i = 1; i < cluster.size(); ++i) {
      merged.MergeFrom(collection[cluster[i]]);
    }
    result.resolved.push_back(std::move(merged));
  }
  return result;
}

}  // namespace weber::iterative
