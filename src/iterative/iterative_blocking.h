#ifndef WEBER_ITERATIVE_ITERATIVE_BLOCKING_H_
#define WEBER_ITERATIVE_ITERATIVE_BLOCKING_H_

#include <cstdint>
#include <vector>

#include "blocking/block.h"
#include "matching/clustering.h"
#include "matching/matcher.h"

namespace weber::iterative {

/// Result of iterative (or per-block baseline) blocking-based ER.
struct IterativeBlockingResult {
  /// Final entity clusters over the original description ids (singletons
  /// included).
  matching::Clusters clusters;
  /// Merged description per cluster (parallel to clusters).
  std::vector<model::EntityDescription> resolved;
  /// Pairwise match evaluations performed.
  uint64_t comparisons = 0;
  /// Total block-processing passes (a block may be processed repeatedly).
  uint64_t block_passes = 0;
  /// Merge operations performed.
  uint64_t merges = 0;
};

/// Iterative blocking (Whang et al., SIGMOD'09): blocks are processed one
/// at a time; whenever two records in a block match, they are merged and
/// the merge is propagated to *every other block* containing either
/// record. Blocks affected by a merge are re-enqueued, so the result of ER
/// in one block can expose new matches in another. The same pair of
/// records is never compared twice at the same information state (a
/// version-stamped comparison cache replaces the paper's hash of processed
/// pairs). Terminates when no block changes.
///
/// With `use_signatures` (the default) root comparisons run over interned
/// signatures; merges derive their signature by sorted union, bit-equal to
/// scoring the merged descriptions from strings.
IterativeBlockingResult IterativeBlocking(
    const blocking::BlockCollection& blocks,
    const matching::ThresholdMatcher& matcher, bool use_signatures = true);

/// Baseline: each block is resolved independently on the original
/// descriptions (no merge propagation across blocks, a single pass).
/// Matches found in different blocks are still combined by transitive
/// closure at the end, but no block benefits from another block's merges,
/// and redundant cross-block comparisons are paid in full.
IterativeBlockingResult IndependentBlockER(
    const blocking::BlockCollection& blocks,
    const matching::ThresholdMatcher& matcher, bool use_signatures = true);

}  // namespace weber::iterative

#endif  // WEBER_ITERATIVE_ITERATIVE_BLOCKING_H_
