#ifndef WEBER_ITERATIVE_RSWOOSH_H_
#define WEBER_ITERATIVE_RSWOOSH_H_

#include <cstdint>
#include <vector>

#include "matching/clustering.h"
#include "matching/matcher.h"
#include "model/entity.h"

namespace weber::iterative {

/// Result of a merging-based resolution run.
struct SwooshResult {
  /// One merged description per resolved real-world entity (singletons
  /// included, unmerged).
  std::vector<model::EntityDescription> resolved;
  /// For each resolved description, the source ids merged into it.
  matching::Clusters clusters;
  /// Pairwise match-function evaluations performed.
  uint64_t comparisons = 0;
  /// Number of merge operations.
  uint64_t merges = 0;
};

/// R-Swoosh (Benjelloun et al., VLDB J.'09): merging-based iterative ER.
///
/// Maintains a resolved set I'; each input description is compared against
/// I', and on a match the two descriptions are *merged* and the merge is
/// put back into the input queue — so information accumulated by earlier
/// matches (the union of attribute-value pairs) is available to later
/// match decisions. This finds matches that a single pass over the
/// original pairs misses whenever the match function needs the combined
/// evidence of several partial descriptions.
///
/// With `use_signatures` (the default) comparisons run over interned
/// signatures: the collection is interned once and every merge derives its
/// signature by sorted union of the constituents' token sets — no
/// re-tokenisation. Bit-equal to the string path (matchers the engine
/// cannot prepare, or signature parts it cannot derive for merged records,
/// fall back to string scoring per pair).
SwooshResult RSwoosh(const model::EntityCollection& collection,
                     const matching::ThresholdMatcher& matcher,
                     bool use_signatures = true);

/// Baseline for the Swoosh experiments: one pass over all original pairs
/// (no merging), matches fed into transitive closure. Same output type;
/// `resolved` holds merged descriptions built after the fact.
SwooshResult NaivePairwiseResolve(const model::EntityCollection& collection,
                                  const matching::ThresholdMatcher& matcher,
                                  bool use_signatures = true);

/// Options bounding G-Swoosh's exponential worst case.
struct GSwooshOptions {
  /// Hard cap on match-function evaluations (0 = unlimited).
  uint64_t max_comparisons = 0;
  /// Hard cap on distinct merged records ever materialised (0 =
  /// unlimited). When hit, resolution continues without generating new
  /// merges.
  size_t max_records = 0;
};

/// G-Swoosh (Benjelloun et al., VLDB J.'09): the generic ER algorithm
/// that is correct for *any* match/merge pair, including non-ICAR match
/// functions like Jaccard, where R-Swoosh may miss matches because a
/// merged record stops matching what its parts matched. Every merge
/// produces a *new* record while the originals stay in play, so all
/// match evidence is explored; the result keeps, per connected group,
/// the maximal merged record. Exponential in the worst case — the caps
/// in GSwooshOptions bound it — which is exactly why the literature
/// prefers ICAR match functions and R-Swoosh when possible.
SwooshResult GSwoosh(const model::EntityCollection& collection,
                     const matching::ThresholdMatcher& matcher,
                     const GSwooshOptions& options = {});

}  // namespace weber::iterative

#endif  // WEBER_ITERATIVE_RSWOOSH_H_
