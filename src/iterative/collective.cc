#include "iterative/collective.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "util/union_find.h"

namespace weber::iterative {

namespace {

struct QueueEntry {
  double priority;
  model::EntityId a;
  model::EntityId b;

  friend bool operator<(const QueueEntry& x, const QueueEntry& y) {
    // std::priority_queue is a max-heap; break priority ties by pair id
    // for determinism.
    if (x.priority != y.priority) return x.priority < y.priority;
    if (x.a != y.a) return x.a > y.a;
    return x.b > y.b;
  }
};

}  // namespace

CollectiveResult CollectiveResolve(
    const model::EntityCollection& collection,
    const std::vector<model::IdPair>& candidates,
    const matching::Matcher& attribute_matcher,
    const CollectiveOptions& options) {
  CollectiveResult result;
  size_t n = collection.size();
  if (n == 0) return result;

  // ---- Reference graph (resolved once; URIs outside the collection are
  // ignored). ----
  std::vector<std::vector<model::EntityId>> out_refs(n);
  std::vector<std::vector<model::EntityId>> in_refs(n);
  for (model::EntityId id = 0; id < n; ++id) {
    for (const model::Relation& relation : collection[id].relations()) {
      auto target = collection.FindByUri(relation.target_uri);
      if (!target.has_value() || *target == id) continue;
      out_refs[id].push_back(*target);
      in_refs[*target].push_back(id);
    }
  }

  util::UnionFind forest(n);

  // Attribute similarities are immutable: cache them per pair.
  std::unordered_map<model::IdPair, double, model::IdPairHash> attr_cache;
  auto attribute_sim = [&](model::EntityId a, model::EntityId b) {
    model::IdPair pair = model::IdPair::Of(a, b);
    auto it = attr_cache.find(pair);
    if (it != attr_cache.end()) return it->second;
    double sim = attribute_matcher.Similarity(collection[a], collection[b]);
    attr_cache.emplace(pair, sim);
    return sim;
  };

  // Relational similarity: Jaccard of the *cluster ids* of the two
  // neighbourhoods under the current resolution state.
  auto neighbor_roots = [&](model::EntityId x) {
    std::unordered_set<uint32_t> roots;
    for (model::EntityId y : out_refs[x]) roots.insert(forest.Find(y));
    for (model::EntityId y : in_refs[x]) roots.insert(forest.Find(y));
    return roots;
  };
  auto relational_sim = [&](model::EntityId a, model::EntityId b) {
    std::unordered_set<uint32_t> na = neighbor_roots(a);
    std::unordered_set<uint32_t> nb = neighbor_roots(b);
    if (na.empty() || nb.empty()) return 0.0;
    size_t overlap = 0;
    const auto& smaller = na.size() <= nb.size() ? na : nb;
    const auto& larger = na.size() <= nb.size() ? nb : na;
    for (uint32_t root : smaller) {
      if (larger.contains(root)) ++overlap;
    }
    return static_cast<double>(overlap) /
           static_cast<double>(na.size() + nb.size() - overlap);
  };
  auto combined = [&](model::EntityId a, model::EntityId b) {
    return std::min(1.0, attribute_sim(a, b) +
                             options.alpha * relational_sim(a, b));
  };

  // ---- Initialisation phase: enqueue the blocking candidates. ----
  std::priority_queue<QueueEntry> queue;
  for (const model::IdPair& pair : candidates) {
    if (pair.low == pair.high || pair.high >= n) continue;
    if (!collection.Comparable(pair.low, pair.high)) continue;
    double score = combined(pair.low, pair.high);
    ++result.comparisons;
    if (score >= options.enqueue_floor) {
      queue.push({score, pair.low, pair.high});
    }
  }

  // Members of each cluster (for influence propagation).
  std::unordered_map<uint32_t, std::vector<model::EntityId>> members;
  for (model::EntityId id = 0; id < n; ++id) {
    members[id] = {id};
  }

  // ---- Iterative phase. ----
  model::IdPairSet matched;
  while (!queue.empty()) {
    if (options.max_comparisons != 0 &&
        result.comparisons >= options.max_comparisons) {
      break;
    }
    QueueEntry entry = queue.top();
    queue.pop();
    if (forest.Connected(entry.a, entry.b)) continue;
    if (collection.setting() == model::ErSetting::kCleanClean &&
        (forest.SizeOf(entry.a) > 1 && forest.SizeOf(entry.b) > 1)) {
      continue;  // Both already linked: clean sources forbid bigger merges.
    }
    // Re-evaluate under the current resolution state (the queued priority
    // may be stale in either direction).
    double attr = attribute_sim(entry.a, entry.b);
    double score = std::min(
        1.0, attr + options.alpha * relational_sim(entry.a, entry.b));
    ++result.comparisons;
    if (score < options.match_threshold) {
      continue;  // May be re-enqueued later with stronger evidence.
    }

    // ---- Match: merge clusters. ----
    model::IdPair pair = model::IdPair::Of(entry.a, entry.b);
    matched.insert(pair);
    result.matches.push_back(pair);
    if (attr < options.match_threshold) {
      // Attribute evidence alone would not have matched this pair.
      ++result.relational_matches;
    }
    uint32_t root_a = forest.Find(entry.a);
    uint32_t root_b = forest.Find(entry.b);
    forest.Union(entry.a, entry.b);
    uint32_t survivor = forest.Find(entry.a);
    uint32_t absorbed = survivor == root_a ? root_b : root_a;
    std::vector<model::EntityId>& surviving_members = members[survivor];
    std::vector<model::EntityId>& absorbed_members = members[absorbed];
    surviving_members.insert(surviving_members.end(),
                             absorbed_members.begin(),
                             absorbed_members.end());
    if (absorbed != survivor) members.erase(absorbed);

    // ---- Update phase: re-enqueue influenced pairs. The neighbours of
    // the merged clusters now share a resolved neighbour, so pairs among
    // them gained relational evidence. ----
    std::vector<model::EntityId> influenced;
    for (model::EntityId member : members[survivor]) {
      for (model::EntityId x : in_refs[member]) influenced.push_back(x);
      for (model::EntityId x : out_refs[member]) influenced.push_back(x);
      if (influenced.size() > options.max_influence_fanout) break;
    }
    std::sort(influenced.begin(), influenced.end());
    influenced.erase(std::unique(influenced.begin(), influenced.end()),
                     influenced.end());
    if (influenced.size() > options.max_influence_fanout) {
      influenced.resize(options.max_influence_fanout);
    }
    for (size_t i = 0; i < influenced.size(); ++i) {
      for (size_t j = i + 1; j < influenced.size(); ++j) {
        model::EntityId x = influenced[i];
        model::EntityId y = influenced[j];
        if (!collection.Comparable(x, y)) continue;
        if (forest.Connected(x, y)) continue;
        if (collection[x].type() != collection[y].type()) continue;
        if (matched.contains(model::IdPair::Of(x, y))) continue;
        double s = combined(x, y);
        ++result.comparisons;
        if (s >= options.enqueue_floor) {
          queue.push({s, x, y});
          ++result.requeues;
        }
      }
    }
  }

  result.clusters = forest.Groups(/*include_singletons=*/true);
  return result;
}

}  // namespace weber::iterative
