#ifndef WEBER_ITERATIVE_COLLECTIVE_H_
#define WEBER_ITERATIVE_COLLECTIVE_H_

#include <cstdint>
#include <vector>

#include "matching/clustering.h"
#include "matching/matcher.h"
#include "model/entity.h"
#include "model/ground_truth.h"

namespace weber::iterative {

/// Options of the relationship-based collective resolver.
struct CollectiveOptions {
  /// A pair matches when
  /// min(1, attribute_sim + alpha * relational_sim) >= this. The
  /// relational term is an additive boost: before any entity is resolved
  /// every pair has relational_sim 0, so the first matches must clear the
  /// threshold on attributes alone — exactly the bootstrap behaviour of
  /// collective ER.
  double match_threshold = 0.75;
  /// Weight of the relational evidence.
  double alpha = 0.4;
  /// Pairs whose combined score is below this are not (re-)enqueued.
  double enqueue_floor = 0.2;
  /// Cap on the neighbour fan-out considered when propagating a match
  /// (guards against hub explosions).
  size_t max_influence_fanout = 64;
  /// Hard cap on pair evaluations (0 = unlimited).
  uint64_t max_comparisons = 0;
};

/// Result of a collective resolution run.
struct CollectiveResult {
  matching::Clusters clusters;
  std::vector<model::IdPair> matches;
  /// Pair evaluations performed.
  uint64_t comparisons = 0;
  /// Pairs (re-)enqueued by the update phase after a match.
  uint64_t requeues = 0;
  /// Matches whose attribute similarity alone was below the threshold —
  /// i.e., matches that only relational evidence made possible.
  uint64_t relational_matches = 0;
};

/// Relationship-based collective ER (in the spirit of Bhattacharya &
/// Getoor, TKDD'07, and LINDA): candidate pairs wait in a priority queue
/// ordered by combined attribute + relational similarity; whenever a pair
/// is declared a match, related pairs — descriptions that reference, or
/// are referenced by, the newly merged clusters — are re-enqueued with
/// their (now higher) relational evidence. Iterates to fixpoint or until
/// the comparison cap.
///
/// Relational similarity of (a, b) is the Jaccard overlap of the cluster
/// ids of their graph neighbourhoods (out-references and in-references),
/// so it grows as related entities get resolved: the iteration trigger of
/// Section III's relationship-based family.
CollectiveResult CollectiveResolve(
    const model::EntityCollection& collection,
    const std::vector<model::IdPair>& candidates,
    const matching::Matcher& attribute_matcher,
    const CollectiveOptions& options = {});

}  // namespace weber::iterative

#endif  // WEBER_ITERATIVE_COLLECTIVE_H_
