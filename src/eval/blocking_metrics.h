#ifndef WEBER_EVAL_BLOCKING_METRICS_H_
#define WEBER_EVAL_BLOCKING_METRICS_H_

#include <cstdint>
#include <vector>

#include "blocking/block.h"
#include "model/entity.h"
#include "model/ground_truth.h"

namespace weber::eval {

/// Quality of a blocking collection (or any candidate-pair set) against
/// ground truth, in the standard PC/PQ/RR vocabulary of the blocking
/// literature (Christen, TKDE'12).
struct BlockingQuality {
  /// Distinct candidate pairs suggested.
  uint64_t comparisons = 0;
  /// Comparisons counting each block separately (redundancy included);
  /// equals `comparisons` for pair sets.
  uint64_t comparisons_with_redundancy = 0;
  /// Ground-truth matches covered by at least one candidate pair.
  uint64_t matches_covered = 0;
  /// Total ground-truth matches.
  uint64_t total_matches = 0;
  /// The quadratic comparison count of the unblocked task.
  uint64_t total_possible_comparisons = 0;

  /// PC (pair completeness, a.k.a. blocking recall):
  /// matches_covered / total_matches.
  double PairCompleteness() const;
  /// PQ (pair quality, a.k.a. blocking precision):
  /// matches_covered / comparisons.
  double PairQuality() const;
  /// RR (reduction ratio): 1 - comparisons / total_possible_comparisons.
  double ReductionRatio() const;
  /// Harmonic mean of PC and RR (the usual scalar summary).
  double FMeasure() const;
};

/// Evaluates a blocking collection: distinct pairs, redundancy, coverage.
BlockingQuality EvaluateBlocks(const blocking::BlockCollection& blocks,
                               const model::GroundTruth& truth);

/// Evaluates an explicit candidate-pair set (e.g., the output of
/// meta-blocking or a similarity join) against the truth.
BlockingQuality EvaluatePairs(const std::vector<model::IdPair>& pairs,
                              const model::GroundTruth& truth,
                              const model::EntityCollection& collection);

}  // namespace weber::eval

#endif  // WEBER_EVAL_BLOCKING_METRICS_H_
