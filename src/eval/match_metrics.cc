#include "eval/match_metrics.h"

#include <unordered_map>
#include <vector>

namespace weber::eval {

double MatchQuality::Precision() const {
  if (reported == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(reported);
}

double MatchQuality::Recall() const {
  if (total_matches == 0) return 1.0;
  return static_cast<double>(true_positives) /
         static_cast<double>(total_matches);
}

double MatchQuality::F1() const {
  double p = Precision();
  double r = Recall();
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

MatchQuality EvaluateMatchPairs(const std::vector<model::IdPair>& reported,
                                const model::GroundTruth& truth) {
  MatchQuality quality;
  quality.total_matches = truth.NumMatches();
  model::IdPairSet seen;
  for (const model::IdPair& pair : reported) {
    if (!seen.insert(pair).second) continue;
    ++quality.reported;
    if (truth.IsMatch(pair)) ++quality.true_positives;
  }
  return quality;
}

MatchQuality EvaluateClusters(const matching::Clusters& clusters,
                              const model::GroundTruth& truth) {
  return EvaluateMatchPairs(matching::ClusterPairs(clusters), truth);
}

double BCubedQuality::F1() const {
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

namespace {

// Dense cluster labels over [0, n): provided clusters first, singletons
// for uncovered elements.
std::vector<uint32_t> LabelsOf(const matching::Clusters& clusters,
                               size_t n) {
  constexpr uint32_t kUnassigned = UINT32_MAX;
  std::vector<uint32_t> labels(n, kUnassigned);
  uint32_t next = 0;
  for (const std::vector<model::EntityId>& cluster : clusters) {
    for (model::EntityId id : cluster) {
      if (id < n) labels[id] = next;
    }
    ++next;
  }
  for (uint32_t& label : labels) {
    if (label == kUnassigned) label = next++;
  }
  return labels;
}

}  // namespace

BCubedQuality EvaluateBCubed(const matching::Clusters& clusters,
                             const model::GroundTruth& truth,
                             size_t num_entities) {
  BCubedQuality quality;
  if (num_entities == 0) return quality;
  std::vector<uint32_t> predicted = LabelsOf(clusters, num_entities);
  std::vector<uint32_t> actual = LabelsOf(truth.Clusters(), num_entities);

  // Member lists per label.
  auto members_of = [num_entities](const std::vector<uint32_t>& labels) {
    std::unordered_map<uint32_t, std::vector<model::EntityId>> members;
    for (model::EntityId id = 0; id < num_entities; ++id) {
      members[labels[id]].push_back(id);
    }
    return members;
  };
  auto predicted_members = members_of(predicted);
  auto actual_members = members_of(actual);

  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (model::EntityId id = 0; id < num_entities; ++id) {
    const std::vector<model::EntityId>& same_predicted =
        predicted_members[predicted[id]];
    const std::vector<model::EntityId>& same_actual =
        actual_members[actual[id]];
    size_t agree = 0;
    for (model::EntityId other : same_predicted) {
      if (actual[other] == actual[id]) ++agree;
    }
    precision_sum += static_cast<double>(agree) /
                     static_cast<double>(same_predicted.size());
    recall_sum += static_cast<double>(agree) /
                  static_cast<double>(same_actual.size());
  }
  quality.precision = precision_sum / static_cast<double>(num_entities);
  quality.recall = recall_sum / static_cast<double>(num_entities);
  return quality;
}

}  // namespace weber::eval
