#include "eval/block_stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace weber::eval {

std::string BlockStats::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%zu blocks, sizes [%zu..%zu] mean %.1f median %.1f, "
                "%llu comparisons (%.2fx redundancy), largest block %.1f%%",
                num_blocks, min_size, max_size, mean_size, median_size,
                static_cast<unsigned long long>(distinct_comparisons),
                redundancy_factor, 100.0 * largest_block_share);
  return buffer;
}

BlockStats ComputeBlockStats(const blocking::BlockCollection& blocks) {
  BlockStats stats;
  stats.num_blocks = blocks.NumBlocks();
  if (stats.num_blocks == 0) return stats;

  std::vector<size_t> sizes;
  sizes.reserve(stats.num_blocks);
  uint64_t largest_comparisons = 0;
  for (const blocking::Block& block : blocks.blocks()) {
    sizes.push_back(block.size());
    stats.total_assignments += block.size();
    uint64_t comparisons =
        blocks.collection() != nullptr
            ? block.NumComparisons(*blocks.collection())
            : block.size() * (block.size() - 1) / 2;
    largest_comparisons = std::max(largest_comparisons, comparisons);
  }
  std::sort(sizes.begin(), sizes.end());
  stats.min_size = sizes.front();
  stats.max_size = sizes.back();
  stats.mean_size = static_cast<double>(stats.total_assignments) /
                    static_cast<double>(stats.num_blocks);
  size_t mid = sizes.size() / 2;
  stats.median_size = sizes.size() % 2 == 1
                          ? static_cast<double>(sizes[mid])
                          : (static_cast<double>(sizes[mid - 1]) +
                             static_cast<double>(sizes[mid])) /
                                2.0;
  stats.comparisons_with_redundancy =
      blocks.TotalComparisonsWithRedundancy();
  stats.distinct_comparisons = blocks.DistinctPairs().size();
  stats.redundancy_factor =
      stats.distinct_comparisons > 0
          ? static_cast<double>(stats.comparisons_with_redundancy) /
                static_cast<double>(stats.distinct_comparisons)
          : 0.0;
  stats.largest_block_share =
      stats.comparisons_with_redundancy > 0
          ? static_cast<double>(largest_comparisons) /
                static_cast<double>(stats.comparisons_with_redundancy)
          : 0.0;
  return stats;
}

}  // namespace weber::eval
