#ifndef WEBER_EVAL_PROGRESSIVE_CURVE_H_
#define WEBER_EVAL_PROGRESSIVE_CURVE_H_

#include <cstdint>
#include <vector>

namespace weber::eval {

/// Records the trajectory of a progressive ER run: after each executed
/// comparison, whether it produced a (true) match. From the trajectory we
/// derive recall-at-budget and the normalised area under the progressive
/// recall curve — the standard figures of merit for pay-as-you-go ER
/// (Whang et al., TKDE'13; Papenbrock et al., TKDE'15).
class ProgressiveCurve {
 public:
  /// `total_matches` is the ground-truth match count the recall is
  /// normalised by.
  explicit ProgressiveCurve(uint64_t total_matches)
      : total_matches_(total_matches) {}

  /// Records one executed comparison and whether it found a new true
  /// match.
  void Record(bool found_match);

  /// Number of comparisons recorded so far.
  uint64_t NumComparisons() const { return found_.size(); }

  /// Matches found within the first `budget` comparisons.
  uint64_t MatchesAt(uint64_t budget) const;

  /// Recall within the first `budget` comparisons.
  double RecallAt(uint64_t budget) const;

  /// Normalised area under the recall-vs-comparisons curve over the first
  /// `budget` comparisons (1.0 = every match found immediately). When
  /// budget is 0, uses all recorded comparisons.
  double AreaUnderCurve(uint64_t budget = 0) const;

  /// The cumulative match counts after each comparison (prefix sums).
  std::vector<uint64_t> CumulativeMatches() const;

 private:
  uint64_t total_matches_;
  std::vector<bool> found_;
};

}  // namespace weber::eval

#endif  // WEBER_EVAL_PROGRESSIVE_CURVE_H_
