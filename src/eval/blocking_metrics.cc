#include "eval/blocking_metrics.h"

namespace weber::eval {

double BlockingQuality::PairCompleteness() const {
  if (total_matches == 0) return 1.0;
  return static_cast<double>(matches_covered) /
         static_cast<double>(total_matches);
}

double BlockingQuality::PairQuality() const {
  if (comparisons == 0) return 0.0;
  return static_cast<double>(matches_covered) /
         static_cast<double>(comparisons);
}

double BlockingQuality::ReductionRatio() const {
  if (total_possible_comparisons == 0) return 0.0;
  double ratio = static_cast<double>(comparisons) /
                 static_cast<double>(total_possible_comparisons);
  return 1.0 - ratio;
}

double BlockingQuality::FMeasure() const {
  double pc = PairCompleteness();
  double rr = ReductionRatio();
  if (pc + rr <= 0.0) return 0.0;
  return 2.0 * pc * rr / (pc + rr);
}

BlockingQuality EvaluateBlocks(const blocking::BlockCollection& blocks,
                               const model::GroundTruth& truth) {
  BlockingQuality quality;
  quality.total_matches = truth.NumMatches();
  quality.comparisons_with_redundancy =
      blocks.TotalComparisonsWithRedundancy();
  if (blocks.collection() != nullptr) {
    quality.total_possible_comparisons =
        blocks.collection()->TotalComparisons();
  }
  blocks.VisitDistinctPairs(
      [&quality, &truth](model::EntityId a, model::EntityId b) {
        ++quality.comparisons;
        if (truth.IsMatch(a, b)) ++quality.matches_covered;
      });
  return quality;
}

BlockingQuality EvaluatePairs(const std::vector<model::IdPair>& pairs,
                              const model::GroundTruth& truth,
                              const model::EntityCollection& collection) {
  BlockingQuality quality;
  quality.total_matches = truth.NumMatches();
  quality.total_possible_comparisons = collection.TotalComparisons();
  model::IdPairSet seen;
  for (const model::IdPair& pair : pairs) {
    if (!seen.insert(pair).second) continue;
    ++quality.comparisons;
    if (truth.IsMatch(pair)) ++quality.matches_covered;
  }
  quality.comparisons_with_redundancy = pairs.size();
  return quality;
}

}  // namespace weber::eval
