#ifndef WEBER_EVAL_BLOCK_STATS_H_
#define WEBER_EVAL_BLOCK_STATS_H_

#include <cstdint>
#include <string>

#include "blocking/block.h"

namespace weber::eval {

/// Structural statistics of a blocking collection, independent of ground
/// truth. The block-size skew is the load-balance problem parallel
/// meta-blocking fights; the redundancy factor is what comparison
/// propagation removes.
struct BlockStats {
  size_t num_blocks = 0;
  size_t min_size = 0;
  size_t max_size = 0;
  double mean_size = 0.0;
  double median_size = 0.0;
  /// Sum of block sizes (block assignments).
  uint64_t total_assignments = 0;
  /// Comparisons counting redundancy, and distinct.
  uint64_t comparisons_with_redundancy = 0;
  uint64_t distinct_comparisons = 0;
  /// comparisons_with_redundancy / distinct_comparisons (>= 1).
  double redundancy_factor = 0.0;
  /// Share of all comparisons contributed by the largest block.
  double largest_block_share = 0.0;

  /// One-line human-readable summary.
  std::string ToString() const;
};

/// Computes the statistics (one pass over blocks plus one distinct-pair
/// enumeration).
BlockStats ComputeBlockStats(const blocking::BlockCollection& blocks);

}  // namespace weber::eval

#endif  // WEBER_EVAL_BLOCK_STATS_H_
