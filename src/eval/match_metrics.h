#ifndef WEBER_EVAL_MATCH_METRICS_H_
#define WEBER_EVAL_MATCH_METRICS_H_

#include <vector>

#include "matching/clustering.h"
#include "model/ground_truth.h"

namespace weber::eval {

/// Pairwise precision/recall/F1 of an ER result against ground truth.
struct MatchQuality {
  uint64_t true_positives = 0;
  uint64_t reported = 0;       // Distinct pairs reported as matches.
  uint64_t total_matches = 0;  // Ground-truth pairs.

  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Evaluates a set of reported match pairs.
MatchQuality EvaluateMatchPairs(const std::vector<model::IdPair>& reported,
                                const model::GroundTruth& truth);

/// Evaluates clusters by their intra-cluster pairs (pairwise F-measure).
MatchQuality EvaluateClusters(const matching::Clusters& clusters,
                              const model::GroundTruth& truth);

/// B-cubed clustering quality (Bagga & Baldwin): per element, precision
/// is the fraction of its predicted cluster that truly co-refers with it,
/// recall the fraction of its true cluster it was placed with; both
/// averaged over all elements. Less chaining-sensitive than pairwise
/// F-measure, and the second standard metric of the ER literature.
struct BCubedQuality {
  double precision = 0.0;
  double recall = 0.0;

  double F1() const;
};

/// Evaluates predicted clusters against the truth's clusters over
/// `num_entities` elements (elements absent from `clusters` are treated
/// as singletons; truth singletons likewise).
BCubedQuality EvaluateBCubed(const matching::Clusters& clusters,
                             const model::GroundTruth& truth,
                             size_t num_entities);

}  // namespace weber::eval

#endif  // WEBER_EVAL_MATCH_METRICS_H_
