#include "eval/progressive_curve.h"

#include <algorithm>

namespace weber::eval {

void ProgressiveCurve::Record(bool found_match) {
  found_.push_back(found_match);
}

uint64_t ProgressiveCurve::MatchesAt(uint64_t budget) const {
  uint64_t limit = std::min<uint64_t>(budget, found_.size());
  uint64_t matches = 0;
  for (uint64_t i = 0; i < limit; ++i) {
    if (found_[i]) ++matches;
  }
  return matches;
}

double ProgressiveCurve::RecallAt(uint64_t budget) const {
  if (total_matches_ == 0) return 1.0;
  return static_cast<double>(MatchesAt(budget)) /
         static_cast<double>(total_matches_);
}

double ProgressiveCurve::AreaUnderCurve(uint64_t budget) const {
  uint64_t limit = budget == 0 ? found_.size()
                               : std::min<uint64_t>(budget, found_.size());
  if (limit == 0 || total_matches_ == 0) return 0.0;
  uint64_t matches = 0;
  uint64_t area = 0;  // Sum over steps of matches-so-far.
  for (uint64_t i = 0; i < limit; ++i) {
    if (found_[i]) ++matches;
    area += matches;
  }
  // Normalise by the ideal curve: all matches found in the first
  // total_matches_ comparisons, then flat.
  uint64_t ideal;
  if (limit <= total_matches_) {
    ideal = limit * (limit + 1) / 2;
  } else {
    ideal = total_matches_ * (total_matches_ + 1) / 2 +
            (limit - total_matches_) * total_matches_;
  }
  if (ideal == 0) return 0.0;
  return static_cast<double>(area) / static_cast<double>(ideal);
}

std::vector<uint64_t> ProgressiveCurve::CumulativeMatches() const {
  std::vector<uint64_t> cumulative(found_.size());
  uint64_t matches = 0;
  for (size_t i = 0; i < found_.size(); ++i) {
    if (found_[i]) ++matches;
    cumulative[i] = matches;
  }
  return cumulative;
}

}  // namespace weber::eval
