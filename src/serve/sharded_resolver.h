#ifndef WEBER_SERVE_SHARDED_RESOLVER_H_
#define WEBER_SERVE_SHARDED_RESOLVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blocking/token_blocking.h"
#include "incremental/delta_index.h"
#include "incremental/entity_store.h"
#include "incremental/resolver.h"
#include "matching/clustering.h"
#include "matching/matcher.h"
#include "matching/signatures.h"
#include "model/entity.h"
#include "serve/vocabulary.h"
#include "storage/options.h"
#include "storage/status.h"
#include "storage/wal.h"
#include "util/union_find.h"

namespace weber::obs {
class MetricsRegistry;
}  // namespace weber::obs

namespace weber::serve {

/// Configuration of a ShardedResolver. Sorted-neighbourhood blocking and
/// merge propagation are single-shard features (both forgo the replay
/// exactness sharding is built on) and are intentionally absent.
struct ShardedResolverOptions {
  /// Shard count, 1..kMaxShards. One shard reproduces the single-store
  /// IncrementalResolver exactly; more shards split the same work.
  size_t shards = 1;

  /// Match decision threshold applied to the matcher's similarity.
  double match_threshold = 0.5;

  /// Delta token index configuration (normalisation, min token length,
  /// online purging cap) — shared with the batch TokenBlocking builder.
  blocking::TokenBlockingOptions index;

  /// Score candidates over interned signatures via the cross-store
  /// prepared twin of the configured matcher (bit-equal to the string
  /// path). Matchers without a cross twin fall back to string scoring.
  bool prepared_matching = true;

  /// When non-empty, every mutation is write-ahead logged into per-shard
  /// WALs under data_dir/shard-NN/ before it is acknowledged, and
  /// construction recovers whatever the directory holds (check
  /// recovery_status() before serving). The directory must exist.
  std::string data_dir;
  storage::FsyncPolicy fsync = storage::FsyncPolicy::kBatch;
  uint64_t batch_fsync_interval = 64;

  /// Metrics sink. When null the ambient obs::Current() registry of the
  /// calling thread is used (and may itself be null = detached).
  obs::MetricsRegistry* metrics = nullptr;
};

/// A hash-partitioned IncrementalResolver: the serving path split into N
/// independent shards whose replay is bit-equal to the single-shard
/// resolver for any shard count.
///
/// Entities are assigned to shards by MixFingerprint(gid) % N (gid = the
/// dense global id Ingest issues, identical to the single-store id
/// sequence); each shard owns an EntityStore, a SignatureStore and a
/// write-ahead log. The delta token index is partitioned *by token hash*
/// instead — a token's whole posting lives on one shard, so the online
/// purge cap fires at exactly the single-index counts. An ingest batch
/// runs in alternating parallel/serial phases:
///
///   A  per entity shard: tokenise, TF-IDF vectorise, vocabulary lookups;
///   B  serial: intern the batch's unknown tokens in (entity, position)
///      order into the shared vocabulary;
///   C  per entity shard: append store rows + WAL records, absorb the
///      pre-built signatures;
///   D  per token shard: positioned index absorb, mailing each candidate
///      tagged (batch index, shared-token position, posting order);
///   E  serial: the cross-shard mailbox merge — sort the mail by that tag
///      and keep each pair's first occurrence, which reproduces the
///      single-index candidate emission order exactly;
///   F  parallel: score candidates (cross-store prepared or string path);
///   G  serial: commit verdicts in candidate order into the global
///      union-find.
///
/// Parallel phases are capped at `shards`-way parallelism (executor
/// affinity), so shards=1 runs the whole batch inline and the shard count
/// is the unit of scaling the serve bench measures. Not thread-safe;
/// ShardedResolveService (serve/service.h) adds the concurrent front
/// door.
class ShardedResolver {
 public:
  /// WAL records carry a u64 shard participant mask.
  static constexpr size_t kMaxShards = 64;

  /// The matcher is borrowed and must outlive the resolver.
  explicit ShardedResolver(const matching::Matcher* matcher,
                           ShardedResolverOptions options = {});

  /// Outcome of construction-time recovery: always ok without a data_dir.
  /// A resolver whose recovery failed must not serve.
  const storage::Status& recovery_status() const { return recovery_status_; }

  /// Observer of every comparison in commit order.
  using ComparisonObserver =
      std::function<void(const model::IdPair&, bool matched)>;
  void set_comparison_observer(ComparisonObserver observer) {
    observer_ = std::move(observer);
  }

  /// Ingests a batch: assigns dense global ids, fans the work across the
  /// shards and commits the verdicts in deterministic order. Returns the
  /// assigned ids. Deterministic for any shard or thread count.
  std::vector<model::EntityId> Ingest(
      std::vector<model::EntityDescription> batch);

  /// The cluster of a live entity, or nullopt for unknown/removed ids.
  std::optional<incremental::IncrementalResolver::Resolution> Resolve(
      model::EntityId id);

  /// Retires an entity (same semantics as IncrementalResolver::Remove).
  bool Remove(model::EntityId id);

  /// All current clusters over live entities (singletons included,
  /// members ascending; same order as the single-shard resolver).
  matching::Clusters Clusters();

  /// Match edges accepted so far, in commit order, minus removed ones.
  const std::vector<model::IdPair>& matches() const { return matches_; }

  uint64_t comparisons() const { return comparisons_; }
  uint64_t candidates() const { return candidates_; }
  uint64_t merges() const { return merges_; }
  /// Mutations applied (and, when durable, logged) so far — one per
  /// ingest batch or successful remove.
  uint64_t osn() const { return osn_next_; }

  size_t shards() const { return options_.shards; }
  size_t size() const { return row_of_.size(); }
  size_t live_count() const;
  bool alive(model::EntityId id) const;
  const model::EntityDescription& DescriptionOf(model::EntityId id) const;

  /// The entity shard owning a global id.
  static size_t ShardOf(model::EntityId id, size_t shards);

  /// Aggregated delta-index stats (sums over the token shards).
  incremental::DeltaIndexStats IndexStats() const;

  /// CRC32C witness of the externally observable state: every issued id's
  /// liveness + description plus the match edges in commit order. Two
  /// resolvers fed the same stream are digest-equal iff they resolved it
  /// identically — the shard-count bit-equality oracle.
  uint64_t StateDigest() const;

  /// Exports the merged token index (token-sorted across shards) for
  /// blocking-quality evaluation; byte-compatible with the single-shard
  /// resolver's export.
  blocking::BlockCollection IndexBlocks(
      const model::EntityCollection* collection) const;

  /// Dense copy of every issued description (tombstones included), ids
  /// preserved — the sharded analogue of store().collection().
  model::EntityCollection CollectionSnapshot() const;

  /// Forces every shard WAL to disk (checkpoint barrier). Ok when not
  /// durable.
  storage::Status Checkpoint();

 private:
  struct Shard {
    incremental::EntityStore store;  // Rows are shard-local.
    std::optional<matching::SignatureStore> signatures;
    storage::WriteAheadLog wal;
  };

  /// One cross-shard candidate in flight from a token shard to the
  /// mailbox merge.
  struct Mail {
    uint32_t batch_index = 0;  // Entity index within the ingest batch.
    uint32_t position = 0;     // Shared-token position in its token list.
    model::EntityId other = 0;
  };

  obs::MetricsRegistry* Registry() const;
  std::vector<model::EntityId> IngestLocked(
      std::vector<model::EntityDescription> batch, bool log);
  bool RemoveLocked(model::EntityId id, bool log);
  void EnsureForestFresh();
  const std::vector<model::EntityId>& MembersOf(model::EntityId root);
  model::EntityId MergeClusters(model::EntityId ra, model::EntityId rb);
  void CommitMatch(const model::IdPair& pair);

  storage::Status RecoverOrInit();
  storage::Status InitFresh();
  storage::Status RecoverExisting();
  uint64_t ConfigFingerprint() const;
  std::string ShardDir(size_t shard) const;
  std::string WalPath(size_t shard) const;
  std::string MetaPath() const;

  matching::ThresholdMatcher matcher_;
  ShardedResolverOptions options_;
  matching::SignatureOptions signature_options_;
  std::unique_ptr<matching::CrossStoreMatcher> cross_;

  // Deque: Shard is pinned (WAL fd) and pointers into it are captured by
  // the signature stores' description providers.
  std::deque<Shard> shards_;
  std::vector<incremental::IncrementalTokenIndex> token_shards_;
  SharedVocabulary vocabulary_;
  /// Global id -> row within its owning shard's store.
  std::vector<uint32_t> row_of_;

  util::UnionFind forest_{0};
  bool forest_dirty_ = false;
  std::unordered_map<model::EntityId, std::vector<model::EntityId>> members_;
  std::vector<model::EntityId> singleton_scratch_;

  std::vector<model::IdPair> matches_;
  ComparisonObserver observer_;
  uint64_t comparisons_ = 0;
  uint64_t candidates_ = 0;
  uint64_t merges_ = 0;
  uint64_t batches_ = 0;
  uint64_t removed_ = 0;
  uint64_t osn_next_ = 0;

  bool durable_ = false;
  storage::Status recovery_status_;
};

}  // namespace weber::serve

#endif  // WEBER_SERVE_SHARDED_RESOLVER_H_
