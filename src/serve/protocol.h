#ifndef WEBER_SERVE_PROTOCOL_H_
#define WEBER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/entity.h"
#include "serve/service.h"

namespace weber::serve {

/// The weber_serve wire protocol: length-prefixed binary frames over a
/// Unix-domain stream socket.
///
/// Every message is one frame: a u32 little-endian byte length, then that
/// many body bytes. A request body is a u8 MessageType followed by the
/// type's payload (descriptions use the storage entity codec); a response
/// body is a u8 ServeErrc followed by the fixed field block below. Frames
/// above kMaxFrameBytes are rejected without reading the body — the guard
/// against a corrupt or hostile length prefix.

constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class MessageType : uint8_t {
  kPing = 1,      // Empty payload; pong is an empty kOk response.
  kIngest = 2,    // u32 count, count x EncodeDescription.
  kRemove = 3,    // u32 entity id.
  kResolve = 4,   // u32 entity id.
  kMetrics = 5,   // Empty payload; response text = key=value lines.
  kShutdown = 6,  // Empty payload; server drains and exits after replying.
};

struct Request {
  MessageType type = MessageType::kPing;
  std::vector<model::EntityDescription> entities;  // kIngest.
  model::EntityId id = 0;                          // kRemove / kResolve.
};

/// One response shape for every request type; fields unused by a type
/// encode empty. `text` carries the metrics dump (kMetrics) or a
/// human-readable error detail.
struct Response {
  ServeErrc status = ServeErrc::kOk;
  std::vector<model::EntityId> ids;      // kIngest: assigned ids.
  model::EntityId representative = 0;    // kResolve.
  std::vector<model::EntityId> members;  // kResolve: cluster, ascending.
  std::string text;
};

/// Frame bodies (the length prefix is the transport's, see
/// WriteFrame/ReadFrame). Decoders return nullopt on any malformed input
/// — short bodies, trailing bytes, unknown message types.
std::vector<uint8_t> EncodeRequest(const Request& request);
std::optional<Request> DecodeRequest(const uint8_t* data, size_t size);
std::vector<uint8_t> EncodeResponse(const Response& response);
std::optional<Response> DecodeResponse(const uint8_t* data, size_t size);

/// Blocking framed transport over a connected socket. WriteFrame sends
/// the length prefix and body (false on any I/O error); ReadFrame reads
/// one whole frame body (false on error, oversized frame, or a peer that
/// closed cleanly between frames — `*eof` distinguishes the latter).
bool WriteFrame(int fd, const std::vector<uint8_t>& body);
bool ReadFrame(int fd, std::vector<uint8_t>* body, bool* eof);

}  // namespace weber::serve

#endif  // WEBER_SERVE_PROTOCOL_H_
