#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <utility>

namespace weber::serve {

UnixServer::UnixServer(ShardedResolveService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

UnixServer::~UnixServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

storage::Status UnixServer::Start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return storage::Status(storage::StorageErrc::kIoError,
                           "socket path too long: " + options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return storage::Status(storage::StorageErrc::kIoError,
                           std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // Replace a stale socket file.
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    storage::Status status(storage::StorageErrc::kIoError,
                           "bind/listen " + options_.socket_path + ": " +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  return storage::Status::Ok();
}

void UnixServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check the stop flag.
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    util::MutexLock lock(threads_mu_);
    // One blocking-I/O thread per connection; the compute fan-out
    // underneath still runs on the shared executor.
    // lint: allow(threads) blocking connection I/O
    threads_.emplace_back(std::thread([this, fd] { HandleConnection(fd); }));
  }
  // Drain: no new connections; finish the open ones, then the queue.
  // lint: allow(threads) blocking connection I/O
  std::vector<std::thread> joinable;
  {
    util::MutexLock lock(threads_mu_);
    joinable.swap(threads_);
  }
  // lint: allow(threads) blocking connection I/O
  for (std::thread& thread : joinable) thread.join();
  service_->Drain();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
}

void UnixServer::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
}

Response UnixServer::Dispatch(const Request& request) {
  Response response;
  switch (request.type) {
    case MessageType::kPing:
      break;
    case MessageType::kIngest: {
      ShardedResolveService::IngestResult result =
          service_->Ingest(std::vector<model::EntityDescription>(
              request.entities));
      response.status = result.status;
      response.ids = std::move(result.ids);
      break;
    }
    case MessageType::kRemove:
      response.status = service_->Remove(request.id);
      break;
    case MessageType::kResolve: {
      auto resolution = service_->Resolve(request.id);
      if (!resolution.has_value()) {
        response.status = ServeErrc::kNotFound;
      } else {
        response.representative = resolution->representative;
        response.members = std::move(resolution->members);
      }
      break;
    }
    case MessageType::kMetrics: {
      const ShardedResolver& resolver = service_->resolver();
      std::ostringstream text;
      text << "requests=" << service_->requests()
           << "\nbatches=" << service_->batches_run()
           << "\nshed=" << service_->shed() << "\nosn=" << resolver.osn()
           << "\nentities=" << resolver.size()
           << "\nlive=" << resolver.live_count()
           << "\nshards=" << resolver.shards()
           << "\ncomparisons=" << resolver.comparisons() << "\n";
      response.text = text.str();
      break;
    }
    case MessageType::kShutdown:
      service_->BeginShutdown();
      RequestStop();
      break;
  }
  return response;
}

void UnixServer::HandleConnection(int fd) {
  std::vector<uint8_t> body;
  bool eof = false;
  while (ReadFrame(fd, &body, &eof)) {
    std::optional<Request> request = DecodeRequest(body.data(), body.size());
    Response response;
    if (!request.has_value()) {
      response.status = ServeErrc::kBadRequest;
      response.text = "undecodable request frame";
    } else {
      response = Dispatch(*request);
    }
    if (!WriteFrame(fd, EncodeResponse(response))) break;
    if (request.has_value() && request->type == MessageType::kShutdown) {
      break;
    }
  }
  ::close(fd);
}

}  // namespace weber::serve
