#ifndef WEBER_SERVE_SERVER_H_
#define WEBER_SERVE_SERVER_H_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/service.h"
#include "storage/status.h"
#include "util/sync.h"

namespace weber::serve {

/// Configuration of a UnixServer.
struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket. Any stale
  /// socket file at the path is replaced.
  std::string socket_path;
  int backlog = 64;
};

/// The weber_serve network front end: a Unix-domain stream server mapping
/// protocol requests onto a ShardedResolveService.
///
/// One thread per connection (connections are expected to be few and
/// long-lived — load generators and sidecars, not a public fleet); each
/// connection is an independent service caller, so concurrent ingests
/// coalesce through the service's leader/follower batching and overload
/// turns into typed kOverloaded responses, never stalled sockets.
///
/// A kShutdown request stops admission (service.BeginShutdown), and
/// Serve() then drains: stops accepting, joins every connection, waits
/// for the queue to empty and syncs the WALs before returning.
class UnixServer {
 public:
  /// The service is borrowed and must outlive the server.
  UnixServer(ShardedResolveService* service, ServerOptions options);
  ~UnixServer();

  UnixServer(const UnixServer&) = delete;
  UnixServer& operator=(const UnixServer&) = delete;

  /// Binds and listens. Call once, before Serve().
  storage::Status Start();

  /// Runs the accept loop in the calling thread until a kShutdown request
  /// (or RequestStop) arrives, then drains and cleans up the socket file.
  void Serve();

  /// Asks Serve() to stop from another thread (idempotent).
  void RequestStop();

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void HandleConnection(int fd);
  Response Dispatch(const Request& request);

  ShardedResolveService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};

  util::Mutex threads_mu_;
  // lint: allow(threads) blocking connection I/O, joined by Serve()
  std::vector<std::thread> threads_ GUARDED_BY(threads_mu_);
};

}  // namespace weber::serve

#endif  // WEBER_SERVE_SERVER_H_
