#include "serve/sharded_resolver.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "core/executor.h"
#include "mapreduce/engine.h"
#include "obs/metrics.h"
#include "storage/buffer.h"
#include "storage/crc32c.h"
#include "storage/durable.h"
#include "storage/entity_codec.h"
#include "storage/file_io.h"
#include "text/tokenizer.h"
#include "util/check.h"
#include "util/timer.h"

namespace weber::serve {
namespace {

// Serve WAL record types. The payload always leads with the operation
// sequence number and the shard participant mask, so recovery can prove a
// batch's records are all present before replaying any of them.
constexpr uint8_t kServeIngest = 1;  // osn u64, mask u64, count u32,
                                     // count x { gid u32, description }.
constexpr uint8_t kServeRemove = 2;  // osn u64, mask u64, gid u32.

constexpr char kMetaMagic[8] = {'W', 'E', 'B', 'E', 'R', 'S', 'R', 'V'};
constexpr uint32_t kMetaVersion = 1;

size_t TokenShardOf(const std::string& token, size_t shards) {
  return mapreduce::MixFingerprint(std::hash<std::string>{}(token)) % shards;
}

}  // namespace

size_t ShardedResolver::ShardOf(model::EntityId id, size_t shards) {
  return mapreduce::MixFingerprint(id) % shards;
}

ShardedResolver::ShardedResolver(const matching::Matcher* matcher,
                                 ShardedResolverOptions options)
    : matcher_(matcher, options.match_threshold),
      options_(std::move(options)) {
  WEBER_CHECK(options_.shards >= 1 && options_.shards <= kMaxShards)
      << "shard count " << options_.shards << " outside [1, " << kMaxShards
      << "]";
  token_shards_.reserve(options_.shards);
  for (size_t s = 0; s < options_.shards; ++s) {
    shards_.emplace_back();
    token_shards_.emplace_back(options_.index);
  }
  if (options_.prepared_matching) {
    signature_options_ = matching::OptionsFor(*matcher);
    // Bind the prepared counters to the configured registry (falls through
    // to the caller's ambient one when options_.metrics is null).
    obs::ScopedRegistry attach(options_.metrics);
    cross_ = matching::PrepareCross(matcher_.matcher(), signature_options_);
    if (cross_ != nullptr) {
      for (Shard& shard : shards_) {
        shard.signatures.emplace(signature_options_);
        // Rows are shard-local, so the fallback provider resolves against
        // this shard's store. &shard stays valid: shards_ never resizes.
        Shard* owner = &shard;
        shard.signatures->SetDescriptionProvider(
            [owner](model::EntityId row) -> const model::EntityDescription* {
              return owner->store.alive(row) ? &owner->store.at(row)
                                             : nullptr;
            });
      }
    }
  }
  if (!options_.data_dir.empty()) {
    durable_ = true;
    recovery_status_ = RecoverOrInit();
  }
}

obs::MetricsRegistry* ShardedResolver::Registry() const {
  return options_.metrics != nullptr ? options_.metrics : obs::Current();
}

// ---------------------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------------------

std::vector<model::EntityId> ShardedResolver::Ingest(
    std::vector<model::EntityDescription> batch) {
  return IngestLocked(std::move(batch), /*log=*/true);
}

std::vector<model::EntityId> ShardedResolver::IngestLocked(
    std::vector<model::EntityDescription> batch, bool log) {
  if (batch.empty()) return {};
  util::Timer timer;
  EnsureForestFresh();
  const size_t n = batch.size();
  const size_t num_shards = options_.shards;
  uint64_t index_updates_before = 0;
  for (const auto& index : token_shards_) {
    index_updates_before += index.stats().updates;
  }

  // Global id assignment: dense, insertion order — identical to the
  // single-store sequence for any shard count.
  const auto first_gid = static_cast<model::EntityId>(row_of_.size());
  std::vector<uint8_t> entity_shard(n);
  std::vector<size_t> shard_entity_counts(num_shards, 0);
  uint64_t participant_mask = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t s = ShardOf(first_gid + static_cast<model::EntityId>(i),
                       num_shards);
    entity_shard[i] = static_cast<uint8_t>(s);
    ++shard_entity_counts[s];
    participant_mask |= uint64_t{1} << s;
  }
  std::vector<model::EntityId> gids(n);
  for (size_t i = 0; i < n; ++i) {
    gids[i] = first_gid + static_cast<model::EntityId>(i);
  }
  row_of_.resize(row_of_.size() + n);
  forest_.Grow(row_of_.size());

  // Executor affinity: every parallel phase below cuts at most `shards`
  // chunks, so the shard count is the unit of scaling (shards=1 runs the
  // whole batch inline).
  core::ScopedParallelism affinity(num_shards);
  core::Executor& executor = core::Executor::Shared();
  const bool prepared = cross_ != nullptr;

  // Phase A — parallel per entity: tokenise for blocking (with the owning
  // token shard of every token), tokenise + vectorise for signatures, and
  // resolve what the shared vocabulary already knows.
  struct PrepAttr {
    bool present = false;
    std::string value;
    std::vector<std::string> tokens;
    std::vector<uint32_t> ids;
  };
  struct Prep {
    std::vector<std::pair<std::string, uint32_t>> block_tokens;
    std::vector<uint8_t> token_owner;
    std::vector<std::string> sig_tokens;
    std::vector<uint32_t> sig_ids;
    text::TfIdfVector tfidf;
    std::vector<PrepAttr> attrs;
  };
  std::vector<Prep> preps(n);
  auto prepare = [&](size_t i) {
    Prep& prep = preps[i];
    const model::EntityDescription& description = batch[i];
    std::vector<std::string> tokens =
        token_shards_.front().TokensOf(description);
    prep.block_tokens.reserve(tokens.size());
    prep.token_owner.reserve(tokens.size());
    for (size_t pos = 0; pos < tokens.size(); ++pos) {
      prep.token_owner.push_back(
          static_cast<uint8_t>(TokenShardOf(tokens[pos], num_shards)));
      prep.block_tokens.emplace_back(std::move(tokens[pos]),
                                     static_cast<uint32_t>(pos));
    }
    if (!prepared) return;
    prep.sig_tokens =
        text::ValueTokens(description, signature_options_.normalize);
    prep.sig_ids.resize(prep.sig_tokens.size());
    for (size_t j = 0; j < prep.sig_tokens.size(); ++j) {
      prep.sig_ids[j] = vocabulary_.Lookup(prep.sig_tokens[j]);
    }
    if (signature_options_.tfidf_model != nullptr) {
      prep.tfidf = signature_options_.tfidf_model->Vectorize(description);
    }
    prep.attrs.resize(signature_options_.attributes.size());
    for (size_t k = 0; k < prep.attrs.size(); ++k) {
      auto value = description.FirstValueOf(signature_options_.attributes[k]);
      if (!value.has_value()) continue;
      PrepAttr& attr = prep.attrs[k];
      attr.present = true;
      attr.value = std::string(*value);
      attr.tokens =
          text::NormalizeAndTokenize(*value, signature_options_.normalize);
      attr.ids.resize(attr.tokens.size());
      for (size_t j = 0; j < attr.tokens.size(); ++j) {
        attr.ids[j] = vocabulary_.Lookup(attr.tokens[j]);
      }
    }
  };
  if (n == 1) {
    prepare(0);
  } else {
    executor.ParallelFor(n, prepare);
  }

  // Phase B — serial: intern the batch's unknown tokens in (entity,
  // position) order. Deterministic and shard-count independent; the exact
  // ids never influence scoring (similarities see ids only through set
  // intersections, invariant under any injective renaming).
  if (prepared) {
    for (Prep& prep : preps) {
      for (size_t j = 0; j < prep.sig_ids.size(); ++j) {
        if (prep.sig_ids[j] == SharedVocabulary::kUnknown) {
          prep.sig_ids[j] = vocabulary_.Intern(prep.sig_tokens[j]);
        }
      }
      for (PrepAttr& attr : prep.attrs) {
        for (size_t j = 0; j < attr.ids.size(); ++j) {
          if (attr.ids[j] == SharedVocabulary::kUnknown) {
            attr.ids[j] = vocabulary_.Intern(attr.tokens[j]);
          }
        }
      }
    }
  }

  // Phase C — parallel per entity shard: append store rows, absorb the
  // pre-built signatures, frame and append this shard's WAL record.
  const uint64_t batch_osn = osn_next_;
  auto absorb_entities = [&](size_t, size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      Shard& shard = shards_[s];
      storage::ByteWriter entities_bytes;
      uint32_t logged = 0;
      for (size_t i = 0; i < n; ++i) {
        if (entity_shard[i] != s) continue;
        model::EntityId row = shard.store.Append(std::move(batch[i]));
        row_of_[gids[i]] = static_cast<uint32_t>(row);
        if (prepared) {
          Prep& prep = preps[i];
          matching::InternedSignature signature;
          signature.token_ids = std::move(prep.sig_ids);
          std::sort(signature.token_ids.begin(), signature.token_ids.end());
          signature.token_ids.erase(
              std::unique(signature.token_ids.begin(),
                          signature.token_ids.end()),
              signature.token_ids.end());
          signature.tfidf = std::move(prep.tfidf);
          signature.attributes.resize(prep.attrs.size());
          for (size_t k = 0; k < prep.attrs.size(); ++k) {
            PrepAttr& attr = prep.attrs[k];
            if (!attr.present) continue;
            auto& out = signature.attributes[k];
            out.present = true;
            out.value = std::move(attr.value);
            out.token_ids = std::move(attr.ids);
            std::sort(out.token_ids.begin(), out.token_ids.end());
            out.token_ids.erase(
                std::unique(out.token_ids.begin(), out.token_ids.end()),
                out.token_ids.end());
          }
          shard.signatures->AbsorbPrepared(row, std::move(signature));
        }
        if (log && durable_) {
          ++logged;
          entities_bytes.PutU32(gids[i]);
          storage::EncodeDescription(shard.store.at(row), &entities_bytes);
        }
      }
      if (log && durable_ && logged > 0) {
        storage::ByteWriter payload;
        payload.PutU64(batch_osn);
        payload.PutU64(participant_mask);
        payload.PutU32(logged);
        std::vector<uint8_t> body = entities_bytes.Take();
        payload.PutRaw(body.data(), body.size());
        storage::Status status =
            shard.wal.Append(kServeIngest, payload.Take());
        WEBER_CHECK(status.ok())
            << "shard " << s << " WAL append failed: " << status.ToString();
      }
    }
  };
  executor.ParallelChunks(num_shards, num_shards, absorb_entities);

  // Phase D — parallel per token shard: positioned absorb of each
  // entity's owned tokens, mailing candidates tagged with (batch index,
  // token position); posting order within one tag is ascending id.
  std::vector<std::vector<Mail>> mailboxes(num_shards);
  auto absorb_tokens = [&](size_t, size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      std::vector<Mail>& mails = mailboxes[t];
      std::vector<std::pair<std::string, uint32_t>> owned;
      std::vector<incremental::IncrementalTokenIndex::PositionedCandidate>
          found;
      for (size_t i = 0; i < n; ++i) {
        const Prep& prep = preps[i];
        owned.clear();
        for (size_t j = 0; j < prep.block_tokens.size(); ++j) {
          if (prep.token_owner[j] == t) owned.push_back(prep.block_tokens[j]);
        }
        if (owned.empty()) continue;
        found.clear();
        token_shards_[t].AbsorbTokens(gids[i], owned, &found);
        for (const auto& candidate : found) {
          mails.push_back(Mail{static_cast<uint32_t>(i), candidate.position,
                               candidate.other});
        }
      }
    }
  };
  executor.ParallelChunks(num_shards, num_shards, absorb_tokens);

  // Phase E — serial mailbox merge: sorting by (batch index, position,
  // posting order) and keeping each pair's first occurrence reproduces
  // the single-index emission order exactly (see serve_test's digest
  // matrix for the proof by witness).
  size_t total_mail = 0;
  for (const auto& mails : mailboxes) total_mail += mails.size();
  std::vector<Mail> mail;
  mail.reserve(total_mail);
  for (auto& mails : mailboxes) {
    mail.insert(mail.end(), mails.begin(), mails.end());
  }
  std::sort(mail.begin(), mail.end(), [](const Mail& a, const Mail& b) {
    if (a.batch_index != b.batch_index) return a.batch_index < b.batch_index;
    if (a.position != b.position) return a.position < b.position;
    return a.other < b.other;
  });
  std::vector<model::IdPair> candidates;
  std::unordered_set<model::EntityId> paired;
  uint32_t current_index = UINT32_MAX;
  for (const Mail& m : mail) {
    if (m.batch_index != current_index) {
      current_index = m.batch_index;
      paired.clear();
    }
    if (paired.insert(m.other).second) {
      candidates.push_back(model::IdPair::Of(m.other, gids[m.batch_index]));
    }
  }
  candidates_ += candidates.size();

  // Phase F — parallel scoring on immutable state (cross-store prepared
  // twin, bit-equal to the string path), phase G — ordered serial commit.
  uint64_t comparisons_before = comparisons_;
  uint64_t merges_before = merges_;
  if (!candidates.empty()) {
    std::vector<char> verdicts(candidates.size(), 0);
    auto score = [&](size_t i) {
      const model::IdPair& pair = candidates[i];
      bool matched;
      if (cross_ != nullptr) {
        const Shard& sa = shards_[ShardOf(pair.low, num_shards)];
        const Shard& sb = shards_[ShardOf(pair.high, num_shards)];
        matched = cross_->Matches(*sa.signatures, row_of_[pair.low],
                                  *sb.signatures, row_of_[pair.high],
                                  matcher_.threshold());
      } else {
        matched = matcher_.Matches(DescriptionOf(pair.low),
                                   DescriptionOf(pair.high));
      }
      verdicts[i] = matched ? 1 : 0;
    };
    if (candidates.size() == 1) {
      score(0);
    } else {
      executor.ParallelFor(candidates.size(), score);
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      bool matched = verdicts[i] != 0;
      ++comparisons_;
      if (observer_) observer_(candidates[i], matched);
      if (matched) CommitMatch(candidates[i]);
    }
  }
  ++batches_;
  ++osn_next_;

  if (obs::MetricsRegistry* registry = Registry()) {
    incremental::DeltaIndexStats index = IndexStats();
    registry->GetCounter("weber.incremental.ingested").Add(n);
    registry->GetCounter("weber.incremental.batches").Increment();
    registry->GetCounter("weber.incremental.candidates")
        .Add(candidates.size());
    registry->GetCounter("weber.incremental.comparisons")
        .Add(comparisons_ - comparisons_before);
    registry->GetCounter("weber.incremental.merges")
        .Add(merges_ - merges_before);
    registry->GetCounter("weber.incremental.index_updates")
        .Add(index.updates - index_updates_before);
    registry->GetGauge("weber.incremental.live_entities")
        .Set(static_cast<double>(live_count()));
    registry->GetGauge("weber.incremental.index_tokens")
        .Set(static_cast<double>(index.tokens));
    registry->GetHistogram("weber.incremental.ingest_seconds")
        .Record(timer.ElapsedSeconds());
    registry->GetHistogram("weber.incremental.batch_entities")
        .Record(static_cast<double>(n));
    if (num_shards > 1) {
      size_t heaviest = *std::max_element(shard_entity_counts.begin(),
                                          shard_entity_counts.end());
      double mean = static_cast<double>(n) / static_cast<double>(num_shards);
      registry->GetHistogram("weber.serve.shard_imbalance")
          .Record(static_cast<double>(heaviest) / mean);
    }
  }
  return gids;
}

// ---------------------------------------------------------------------------
// Clustering state (mirrors IncrementalResolver)
// ---------------------------------------------------------------------------

void ShardedResolver::EnsureForestFresh() {
  if (!forest_dirty_) return;
  forest_dirty_ = false;
  forest_ = util::UnionFind(row_of_.size());
  members_.clear();
  for (const model::IdPair& pair : matches_) {
    model::EntityId ra = forest_.Find(pair.low);
    model::EntityId rb = forest_.Find(pair.high);
    if (ra != rb) MergeClusters(ra, rb);
  }
}

const std::vector<model::EntityId>& ShardedResolver::MembersOf(
    model::EntityId root) {
  auto it = members_.find(root);
  if (it != members_.end()) return it->second;
  singleton_scratch_.assign(1, root);
  return singleton_scratch_;
}

model::EntityId ShardedResolver::MergeClusters(model::EntityId ra,
                                               model::EntityId rb) {
  auto take = [this](model::EntityId root) {
    auto it = members_.find(root);
    if (it == members_.end()) return std::vector<model::EntityId>{root};
    std::vector<model::EntityId> members = std::move(it->second);
    members_.erase(it);
    return members;
  };
  std::vector<model::EntityId> ma = take(ra);
  std::vector<model::EntityId> mb = take(rb);
  std::vector<model::EntityId> merged;
  merged.reserve(ma.size() + mb.size());
  std::merge(ma.begin(), ma.end(), mb.begin(), mb.end(),
             std::back_inserter(merged));
  forest_.Union(ra, rb);
  model::EntityId root = forest_.Find(ra);
  members_[root] = std::move(merged);
  return root;
}

void ShardedResolver::CommitMatch(const model::IdPair& pair) {
  matches_.push_back(pair);
  model::EntityId ra = forest_.Find(pair.low);
  model::EntityId rb = forest_.Find(pair.high);
  if (ra != rb) {
    MergeClusters(ra, rb);
    ++merges_;
  }
}

std::optional<incremental::IncrementalResolver::Resolution>
ShardedResolver::Resolve(model::EntityId id) {
  if (!alive(id)) return std::nullopt;
  EnsureForestFresh();
  incremental::IncrementalResolver::Resolution resolution;
  resolution.representative = forest_.Find(id);
  resolution.members = MembersOf(resolution.representative);
  return resolution;
}

bool ShardedResolver::Remove(model::EntityId id) {
  return RemoveLocked(id, /*log=*/true);
}

bool ShardedResolver::RemoveLocked(model::EntityId id, bool log) {
  if (id >= row_of_.size()) return false;
  size_t s = ShardOf(id, options_.shards);
  Shard& shard = shards_[s];
  uint32_t row = row_of_[id];
  if (!shard.store.Tombstone(row)) return false;
  // The id's tokens may live on any token shard; the removed-set insert is
  // a no-op wherever the id was never posted.
  for (auto& index : token_shards_) index.Remove(id);
  if (shard.signatures.has_value()) shard.signatures->Release(row);
  size_t before = matches_.size();
  std::erase_if(matches_, [id](const model::IdPair& pair) {
    return pair.low == id || pair.high == id;
  });
  if (matches_.size() != before) forest_dirty_ = true;
  ++removed_;
  if (log && durable_) {
    storage::ByteWriter payload;
    payload.PutU64(osn_next_);
    payload.PutU64(uint64_t{1} << s);
    payload.PutU32(id);
    storage::Status status = shard.wal.Append(kServeRemove, payload.Take());
    WEBER_CHECK(status.ok())
        << "shard " << s << " WAL append failed: " << status.ToString();
  }
  ++osn_next_;
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetCounter("weber.incremental.removed").Increment();
    registry->GetGauge("weber.incremental.live_entities")
        .Set(static_cast<double>(live_count()));
  }
  return true;
}

matching::Clusters ShardedResolver::Clusters() {
  EnsureForestFresh();
  matching::Clusters clusters;
  std::unordered_map<model::EntityId, size_t> slot_of_root;
  for (model::EntityId id = 0; id < row_of_.size(); ++id) {
    if (!alive(id)) continue;
    model::EntityId root = forest_.Find(id);
    auto [it, inserted] = slot_of_root.try_emplace(root, clusters.size());
    if (inserted) clusters.emplace_back();
    clusters[it->second].push_back(id);
  }
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetGauge("weber.incremental.clusters")
        .Set(static_cast<double>(clusters.size()));
  }
  return clusters;
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

bool ShardedResolver::alive(model::EntityId id) const {
  if (id >= row_of_.size()) return false;
  return shards_[ShardOf(id, options_.shards)].store.alive(row_of_[id]);
}

const model::EntityDescription& ShardedResolver::DescriptionOf(
    model::EntityId id) const {
  return shards_[ShardOf(id, options_.shards)].store.at(row_of_[id]);
}

size_t ShardedResolver::live_count() const {
  size_t live = 0;
  for (const Shard& shard : shards_) live += shard.store.live_count();
  return live;
}

incremental::DeltaIndexStats ShardedResolver::IndexStats() const {
  incremental::DeltaIndexStats total;
  for (const auto& index : token_shards_) {
    const incremental::DeltaIndexStats& stats = index.stats();
    total.updates += stats.updates;
    total.full_builds += stats.full_builds;
    total.purged_tokens += stats.purged_tokens;
    total.tokens += stats.tokens;
  }
  return total;
}

uint64_t ShardedResolver::StateDigest() const {
  uint32_t crc = 0;
  storage::ByteWriter writer;
  writer.PutU64(row_of_.size());
  for (model::EntityId id = 0; id < row_of_.size(); ++id) {
    bool is_alive = alive(id);
    writer.PutU8(is_alive ? 1 : 0);
    if (is_alive) storage::EncodeDescription(DescriptionOf(id), &writer);
    if (writer.size() >= 1 << 20) {
      std::vector<uint8_t> chunk = writer.Take();
      crc = storage::Crc32c(chunk.data(), chunk.size(), crc);
    }
  }
  writer.PutU64(matches_.size());
  for (const model::IdPair& pair : matches_) {
    writer.PutU32(pair.low);
    writer.PutU32(pair.high);
  }
  std::vector<uint8_t> chunk = writer.Take();
  crc = storage::Crc32c(chunk.data(), chunk.size(), crc);
  return crc;
}

blocking::BlockCollection ShardedResolver::IndexBlocks(
    const model::EntityCollection* collection) const {
  std::vector<blocking::Block> all;
  for (const auto& index : token_shards_) {
    blocking::BlockCollection part = index.ToBlocks(collection);
    for (blocking::Block& block : part.mutable_blocks()) {
      all.push_back(std::move(block));
    }
  }
  // Tokens are disjoint across shards, so one sort restores the global
  // token order the single-index export produces.
  std::sort(all.begin(), all.end(),
            [](const blocking::Block& a, const blocking::Block& b) {
              return a.key < b.key;
            });
  blocking::BlockCollection merged(collection);
  for (blocking::Block& block : all) merged.AddBlock(std::move(block));
  return merged;
}

model::EntityCollection ShardedResolver::CollectionSnapshot() const {
  model::EntityCollection collection;
  for (model::EntityId id = 0; id < row_of_.size(); ++id) {
    collection.Add(model::EntityDescription(DescriptionOf(id)));
  }
  return collection;
}

storage::Status ShardedResolver::Checkpoint() {
  if (!durable_) return storage::Status::Ok();
  for (Shard& shard : shards_) {
    if (!shard.wal.is_open()) continue;
    storage::Status status = shard.wal.Sync();
    if (!status.ok()) return status;
  }
  return storage::Status::Ok();
}

// ---------------------------------------------------------------------------
// Durability
// ---------------------------------------------------------------------------

std::string ShardedResolver::ShardDir(size_t shard) const {
  char name[16];
  std::snprintf(name, sizeof(name), "shard-%02zu", shard);
  return options_.data_dir + "/" + name;
}

std::string ShardedResolver::WalPath(size_t shard) const {
  return ShardDir(shard) + "/wal-0";
}

std::string ShardedResolver::MetaPath() const {
  return options_.data_dir + "/serve-meta";
}

uint64_t ShardedResolver::ConfigFingerprint() const {
  incremental::ResolverOptions resolver_options;
  resolver_options.match_threshold = options_.match_threshold;
  resolver_options.index = options_.index;
  resolver_options.prepared_matching = options_.prepared_matching;
  uint64_t fingerprint = storage::DurableResolver::ConfigFingerprint(
      &matcher_.matcher(), resolver_options);
  return fingerprint ^ mapreduce::MixFingerprint(options_.shards);
}

storage::Status ShardedResolver::RecoverOrInit() {
  if (!storage::DirectoryExists(options_.data_dir)) {
    return storage::Status(storage::StorageErrc::kIoError,
                           "durability data_dir does not exist: " +
                               options_.data_dir);
  }
  if (storage::FileExists(MetaPath())) return RecoverExisting();
  return InitFresh();
}

storage::Status ShardedResolver::InitFresh() {
  for (size_t s = 0; s < options_.shards; ++s) {
    storage::Status status = storage::MakeDirectory(ShardDir(s));
    if (!status.ok()) return status;
    status = shards_[s].wal.Create(WalPath(s), 0, options_.fsync,
                                   options_.batch_fsync_interval);
    if (!status.ok()) return status;
  }
  storage::ByteWriter meta;
  meta.PutRaw(kMetaMagic, sizeof(kMetaMagic));
  meta.PutU32(kMetaVersion);
  meta.PutU32(static_cast<uint32_t>(options_.shards));
  meta.PutU64(ConfigFingerprint());
  storage::Status status = storage::AtomicWriteFile(MetaPath(), meta.Take());
  if (!status.ok()) return status;
  return storage::SyncDirectory(options_.data_dir);
}

storage::Status ShardedResolver::RecoverExisting() {
  std::vector<uint8_t> meta_bytes;
  storage::Status status = storage::ReadFileBytes(MetaPath(), &meta_bytes);
  if (!status.ok()) return status;
  storage::ByteReader meta(meta_bytes.data(), meta_bytes.size());
  char magic[8] = {};
  meta.GetRaw(magic, sizeof(magic));
  if (meta.failed() ||
      std::memcmp(magic, kMetaMagic, sizeof(kMetaMagic)) != 0) {
    return storage::Status(storage::StorageErrc::kBadMagic,
                           "serve-meta is not a weber serve manifest");
  }
  uint32_t version = meta.GetU32();
  if (version != kMetaVersion) {
    return storage::Status(storage::StorageErrc::kBadVersion,
                           "serve-meta version " + std::to_string(version));
  }
  uint32_t shards = meta.GetU32();
  uint64_t fingerprint = meta.GetU64();
  if (meta.failed() || !meta.Exhausted()) {
    return storage::Status(storage::StorageErrc::kCorruptHeader,
                           "serve-meta truncated");
  }
  if (shards != options_.shards || fingerprint != ConfigFingerprint()) {
    return storage::Status(
        storage::StorageErrc::kConfigMismatch,
        "serve-meta was written under a different configuration");
  }

  // Decode every shard's WAL.
  struct DecodedRecord {
    uint64_t osn = 0;
    uint64_t mask = 0;
    uint8_t type = 0;
    std::vector<std::pair<model::EntityId, model::EntityDescription>>
        entities;
    model::EntityId remove_id = 0;
    uint64_t frame_bytes = 0;
  };
  struct ShardLog {
    std::vector<DecodedRecord> records;
    uint64_t good_size = 0;
    uint64_t file_size = 0;
  };
  std::vector<ShardLog> logs(options_.shards);
  for (size_t s = 0; s < options_.shards; ++s) {
    storage::WriteAheadLog::Contents contents;
    status = storage::WriteAheadLog::Read(WalPath(s), &contents);
    if (!status.ok()) return status;
    ShardLog& log = logs[s];
    log.good_size = contents.good_size;
    log.file_size = contents.good_size + contents.torn_bytes;
    uint64_t previous_osn = 0;
    bool first = true;
    for (const storage::WriteAheadLog::Record& record : contents.records) {
      DecodedRecord decoded;
      decoded.type = record.type;
      decoded.frame_bytes = 9 + record.payload.size();
      storage::ByteReader reader(record.payload.data(),
                                 record.payload.size());
      decoded.osn = reader.GetU64();
      decoded.mask = reader.GetU64();
      if (record.type == kServeIngest) {
        uint32_t count = reader.GetU32();
        for (uint32_t i = 0; i < count && !reader.failed(); ++i) {
          model::EntityId gid = reader.GetU32();
          decoded.entities.emplace_back(
              gid, storage::DecodeDescription(&reader));
        }
      } else if (record.type == kServeRemove) {
        decoded.remove_id = reader.GetU32();
      } else {
        return storage::Status(storage::StorageErrc::kWalCorrupt,
                               "unknown serve WAL record type " +
                                   std::to_string(record.type));
      }
      if (reader.failed() || !reader.Exhausted()) {
        return storage::Status(storage::StorageErrc::kWalCorrupt,
                               "undecodable serve WAL record in shard " +
                                   std::to_string(s));
      }
      if ((decoded.mask & (uint64_t{1} << s)) == 0 ||
          (!first && decoded.osn <= previous_osn)) {
        return storage::Status(storage::StorageErrc::kWalCorrupt,
                               "inconsistent osn sequence in shard " +
                                   std::to_string(s));
      }
      first = false;
      previous_osn = decoded.osn;
      log.records.push_back(std::move(decoded));
    }
  }

  // Group the records by osn and prove each batch complete: every shard
  // named in the participant mask contributed its record. An incomplete
  // batch is legal only as the global tail (the crash hit mid-batch; the
  // op never acked) — anywhere else the log is corrupt.
  struct PendingOp {
    uint64_t mask = 0;
    uint64_t seen = 0;
    uint8_t type = 0;
    std::vector<std::pair<model::EntityId, model::EntityDescription>>
        entities;
    model::EntityId remove_id = 0;
  };
  std::map<uint64_t, PendingOp> ops;
  for (size_t s = 0; s < options_.shards; ++s) {
    for (DecodedRecord& record : logs[s].records) {
      PendingOp& op = ops[record.osn];
      if (op.seen == 0) {
        op.mask = record.mask;
        op.type = record.type;
        op.remove_id = record.remove_id;
      } else if (op.mask != record.mask || op.type != record.type) {
        return storage::Status(storage::StorageErrc::kWalCorrupt,
                               "disagreeing records for osn " +
                                   std::to_string(record.osn));
      }
      op.seen |= uint64_t{1} << s;
      for (auto& entity : record.entities) {
        op.entities.push_back(std::move(entity));
      }
    }
  }
  uint64_t dropped_osn = 0;
  bool have_dropped = false;
  uint64_t expected_osn = 0;
  for (auto& [osn, op] : ops) {
    if (osn != expected_osn) {
      return storage::Status(storage::StorageErrc::kWalCorrupt,
                             "osn gap at " + std::to_string(osn));
    }
    ++expected_osn;
    if (op.seen == op.mask) continue;
    if (osn != ops.rbegin()->first) {
      return storage::Status(storage::StorageErrc::kWalCorrupt,
                             "incomplete batch at interior osn " +
                                 std::to_string(osn));
    }
    dropped_osn = osn;
    have_dropped = true;
  }

  // Replay the complete prefix in osn order through the normal ingest
  // path (logging suppressed), reassigning the identical gids.
  for (auto& [osn, op] : ops) {
    if (have_dropped && osn == dropped_osn) break;
    if (op.type == kServeIngest) {
      std::sort(op.entities.begin(), op.entities.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      auto next = static_cast<model::EntityId>(row_of_.size());
      std::vector<model::EntityDescription> replay_batch;
      replay_batch.reserve(op.entities.size());
      for (size_t i = 0; i < op.entities.size(); ++i) {
        if (op.entities[i].first !=
            next + static_cast<model::EntityId>(i)) {
          return storage::Status(storage::StorageErrc::kWalCorrupt,
                                 "non-contiguous gids at osn " +
                                     std::to_string(osn));
        }
        replay_batch.push_back(std::move(op.entities[i].second));
      }
      osn_next_ = osn;
      IngestLocked(std::move(replay_batch), /*log=*/false);
    } else {
      osn_next_ = osn;
      if (!RemoveLocked(op.remove_id, /*log=*/false)) {
        return storage::Status(storage::StorageErrc::kWalCorrupt,
                               "replayed remove of dead id at osn " +
                                   std::to_string(osn));
      }
    }
  }

  // Reopen the WALs for appending, truncating away both torn tails and
  // the dropped incomplete batch's records (each is by construction the
  // last record of its shard's log).
  for (size_t s = 0; s < options_.shards; ++s) {
    ShardLog& log = logs[s];
    uint64_t good = log.good_size;
    if (have_dropped && !log.records.empty() &&
        log.records.back().osn == dropped_osn) {
      good -= log.records.back().frame_bytes;
    }
    status = shards_[s].wal.OpenExisting(WalPath(s), good, log.file_size,
                                         options_.fsync,
                                         options_.batch_fsync_interval);
    if (!status.ok()) return status;
  }
  return storage::Status::Ok();
}

}  // namespace weber::serve
