#ifndef WEBER_SERVE_SERVICE_H_
#define WEBER_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "serve/sharded_resolver.h"
#include "util/sync.h"

namespace weber::serve {

/// Typed request outcomes of the serve front end. Wire-stable: these
/// values are the status byte of every weber_serve protocol response.
enum class ServeErrc : uint8_t {
  kOk = 0,
  /// Shed at admission: the ingest queue was past its watermark. The
  /// caller should back off and retry; nothing was enqueued.
  kOverloaded = 1,
  /// The entity id is unknown or removed.
  kNotFound = 2,
  /// The request could not be decoded.
  kBadRequest = 3,
  /// The service is draining; no new mutations are admitted.
  kShuttingDown = 4,
  kInternal = 5,
};

/// The name of a ServeErrc (for logs and bench reports).
const char* ServeErrcName(ServeErrc code);

/// Configuration of a ShardedResolveService.
struct ShardedServiceOptions {
  /// Coalescing cap: a leader drains queued ingest requests until the
  /// combined batch reaches this many entities (it always takes at least
  /// one request, so oversized requests still go through whole).
  size_t max_batch = 256;

  /// Admission watermark: an ingest arriving while this many entities are
  /// already queued (and at least one request is waiting) is shed with
  /// kOverloaded instead of being enqueued. An empty queue always admits,
  /// so progress is guaranteed at any watermark.
  size_t max_queue_entities = 4096;

  /// Resolver configuration (shards, threshold, durability, metrics).
  ShardedResolverOptions resolver;
};

/// The concurrent front door of a ShardedResolver: the leader/follower
/// coalescing of incremental::ResolveService generalised with bounded
/// admission and typed load shedding.
///
/// Ingest callers enqueue their batch; one caller becomes the leader
/// (leadership hands off to the oldest waiter, so arrival order bounds
/// queueing delay), drains up to max_batch entities worth of requests and
/// runs a single sharded ingest for all of them — whose phases fan out
/// shards-way on the shared executor. Past the admission watermark new
/// ingests are shed with ServeErrc::kOverloaded before touching the
/// queue, which keeps p99 bounded under overload instead of letting the
/// queue (and every queued caller's latency) grow without limit.
class ShardedResolveService {
 public:
  struct IngestResult {
    ServeErrc status = ServeErrc::kOk;
    std::vector<model::EntityId> ids;  // Batch order; empty unless kOk.
  };

  /// The matcher is borrowed and must outlive the service.
  explicit ShardedResolveService(const matching::Matcher* matcher,
                                 ShardedServiceOptions options = {});

  /// Ingests a batch (thread-safe). kOk with the assigned ids, or
  /// kOverloaded / kShuttingDown without side effects.
  IngestResult Ingest(std::vector<model::EntityDescription> batch);

  /// The cluster of a live entity (thread-safe), or nullopt.
  std::optional<incremental::IncrementalResolver::Resolution> Resolve(
      model::EntityId id);

  /// Retires an entity (thread-safe). kOk, kNotFound or kShuttingDown.
  ServeErrc Remove(model::EntityId id);

  /// All current clusters over live entities (thread-safe).
  matching::Clusters Clusters();

  /// Stops admitting mutations; in-flight and queued requests still
  /// complete (call Drain() to wait for them).
  void BeginShutdown();

  /// Blocks until the ingest queue is empty and no leader is running,
  /// then syncs the WALs. Typically preceded by BeginShutdown().
  void Drain();

  uint64_t requests() const { return requests_.load(); }
  uint64_t batches_run() const { return batches_run_.load(); }
  uint64_t shed() const { return shed_.load(); }

  /// Outcome of construction-time recovery (see ShardedResolver).
  const storage::Status& recovery_status() const {
    return resolver_.recovery_status();
  }

  /// Direct access to the underlying resolver. The caller must guarantee
  /// no concurrent service calls while using it (configuration before
  /// serving, inspection after).
  ShardedResolver& resolver() { return resolver_; }
  const ShardedResolver& resolver() const { return resolver_; }

 private:
  struct Request {
    std::vector<model::EntityDescription> entities;
    std::vector<model::EntityId> ids;
    bool done = false;
  };

  obs::MetricsRegistry* Registry() const;
  /// Drains up to max_batch entities worth of requests, runs one sharded
  /// ingest for them and wakes their owners. Enters with queue_mu_ held,
  /// drops it for the resolver call (under resolver_mu_ — the two are
  /// never held together) and returns with queue_mu_ re-acquired.
  void LeadBatch() REQUIRES(queue_mu_) EXCLUDES(resolver_mu_);

  ShardedServiceOptions options_;
  ShardedResolver resolver_;

  util::Mutex queue_mu_;
  util::CondVar queue_cv_;
  std::deque<Request*> queue_ GUARDED_BY(queue_mu_);
  size_t queued_entities_ GUARDED_BY(queue_mu_) = 0;
  bool leader_active_ GUARDED_BY(queue_mu_) = false;
  /// Oldest-waiter leadership handoff (see incremental::ResolveService).
  Request* designated_ GUARDED_BY(queue_mu_) = nullptr;
  bool shutting_down_ GUARDED_BY(queue_mu_) = false;

  util::Mutex resolver_mu_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batches_run_{0};
  std::atomic<uint64_t> shed_{0};
};

}  // namespace weber::serve

#endif  // WEBER_SERVE_SERVICE_H_
