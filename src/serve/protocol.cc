#include "serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/buffer.h"
#include "storage/entity_codec.h"

namespace weber::serve {
namespace {

// lint: allow(file-io) — src/serve/ is the socket I/O owner; these
// helpers speak only to connected sockets, never to files.
bool WriteAll(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// Returns 1 on success, 0 on clean EOF before any byte, -1 on error
// (including EOF mid-buffer, which can only be a truncated frame).
int ReadAll(int fd, uint8_t* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

std::vector<uint8_t> EncodeRequest(const Request& request) {
  storage::ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(request.type));
  switch (request.type) {
    case MessageType::kIngest:
      writer.PutU32(static_cast<uint32_t>(request.entities.size()));
      for (const model::EntityDescription& entity : request.entities) {
        storage::EncodeDescription(entity, &writer);
      }
      break;
    case MessageType::kRemove:
    case MessageType::kResolve:
      writer.PutU32(request.id);
      break;
    case MessageType::kPing:
    case MessageType::kMetrics:
    case MessageType::kShutdown:
      break;
  }
  return writer.Take();
}

std::optional<Request> DecodeRequest(const uint8_t* data, size_t size) {
  storage::ByteReader reader(data, size);
  Request request;
  uint8_t type = reader.GetU8();
  if (reader.failed()) return std::nullopt;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kIngest: {
      request.type = MessageType::kIngest;
      uint32_t count = reader.GetU32();
      if (reader.failed()) return std::nullopt;
      request.entities.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        request.entities.push_back(storage::DecodeDescription(&reader));
        if (reader.failed()) return std::nullopt;
      }
      break;
    }
    case MessageType::kRemove:
    case MessageType::kResolve:
      request.type = static_cast<MessageType>(type);
      request.id = reader.GetU32();
      break;
    case MessageType::kPing:
    case MessageType::kMetrics:
    case MessageType::kShutdown:
      request.type = static_cast<MessageType>(type);
      break;
    default:
      return std::nullopt;
  }
  if (reader.failed() || !reader.Exhausted()) return std::nullopt;
  return request;
}

std::vector<uint8_t> EncodeResponse(const Response& response) {
  storage::ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(response.status));
  writer.PutU32(static_cast<uint32_t>(response.ids.size()));
  for (model::EntityId id : response.ids) writer.PutU32(id);
  writer.PutU32(response.representative);
  writer.PutU32(static_cast<uint32_t>(response.members.size()));
  for (model::EntityId id : response.members) writer.PutU32(id);
  writer.PutString(response.text);
  return writer.Take();
}

std::optional<Response> DecodeResponse(const uint8_t* data, size_t size) {
  storage::ByteReader reader(data, size);
  Response response;
  uint8_t status = reader.GetU8();
  if (status > static_cast<uint8_t>(ServeErrc::kInternal)) {
    return std::nullopt;
  }
  response.status = static_cast<ServeErrc>(status);
  uint32_t ids = reader.GetU32();
  if (reader.failed() || ids > size) return std::nullopt;
  response.ids.reserve(ids);
  for (uint32_t i = 0; i < ids && !reader.failed(); ++i) {
    response.ids.push_back(reader.GetU32());
  }
  response.representative = reader.GetU32();
  uint32_t members = reader.GetU32();
  if (reader.failed() || members > size) return std::nullopt;
  response.members.reserve(members);
  for (uint32_t i = 0; i < members && !reader.failed(); ++i) {
    response.members.push_back(reader.GetU32());
  }
  response.text = reader.GetString();
  if (reader.failed() || !reader.Exhausted()) return std::nullopt;
  return response;
}

bool WriteFrame(int fd, const std::vector<uint8_t>& body) {
  if (body.size() > kMaxFrameBytes) return false;
  uint8_t prefix[4];
  uint32_t length = static_cast<uint32_t>(body.size());
  std::memcpy(prefix, &length, sizeof(length));
  if (!WriteAll(fd, prefix, sizeof(prefix))) return false;
  return WriteAll(fd, body.data(), body.size());
}

bool ReadFrame(int fd, std::vector<uint8_t>* body, bool* eof) {
  if (eof != nullptr) *eof = false;
  uint8_t prefix[4];
  int rc = ReadAll(fd, prefix, sizeof(prefix));
  if (rc == 0) {
    if (eof != nullptr) *eof = true;
    return false;
  }
  if (rc < 0) return false;
  uint32_t length = 0;
  std::memcpy(&length, prefix, sizeof(length));
  if (length > kMaxFrameBytes) return false;
  body->resize(length);
  return length == 0 || ReadAll(fd, body->data(), length) == 1;
}

}  // namespace weber::serve
