#include "serve/service.h"

#include <utility>

#include "obs/metrics.h"
#include "util/timer.h"

namespace weber::serve {

const char* ServeErrcName(ServeErrc code) {
  switch (code) {
    case ServeErrc::kOk:
      return "ok";
    case ServeErrc::kOverloaded:
      return "overloaded";
    case ServeErrc::kNotFound:
      return "not-found";
    case ServeErrc::kBadRequest:
      return "bad-request";
    case ServeErrc::kShuttingDown:
      return "shutting-down";
    case ServeErrc::kInternal:
      return "internal";
  }
  return "unknown";
}

ShardedResolveService::ShardedResolveService(const matching::Matcher* matcher,
                                             ShardedServiceOptions options)
    : options_(std::move(options)),
      resolver_(matcher, options_.resolver) {}

obs::MetricsRegistry* ShardedResolveService::Registry() const {
  return options_.resolver.metrics != nullptr ? options_.resolver.metrics
                                              : obs::Current();
}

void ShardedResolveService::LeadBatch() {
  std::vector<Request*> drained;
  size_t total = 0;
  while (!queue_.empty() && (drained.empty() || total < options_.max_batch)) {
    Request* request = queue_.front();
    queue_.pop_front();
    total += request->entities.size();
    drained.push_back(request);
  }
  queued_entities_ -= total;
  queue_mu_.Unlock();

  std::vector<model::EntityDescription> combined;
  combined.reserve(total);
  std::vector<size_t> sizes;
  sizes.reserve(drained.size());
  for (Request* request : drained) {
    sizes.push_back(request->entities.size());
    for (model::EntityDescription& entity : request->entities) {
      combined.push_back(std::move(entity));
    }
    request->entities.clear();
  }

  std::vector<model::EntityId> ids;
  {
    util::MutexLock resolver_lock(resolver_mu_);
    ids = resolver_.Ingest(std::move(combined));
  }
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetCounter("weber.serve.batches").Increment();
    registry->GetCounter("weber.serve.requests").Add(drained.size());
    registry->GetHistogram("weber.serve.batch_occupancy")
        .Record(static_cast<double>(total) /
                static_cast<double>(options_.max_batch));
  }

  size_t offset = 0;
  for (size_t i = 0; i < drained.size(); ++i) {
    drained[i]->ids.assign(ids.begin() + static_cast<int64_t>(offset),
                           ids.begin() + static_cast<int64_t>(offset) +
                               static_cast<int64_t>(sizes[i]));
    offset += sizes[i];
  }

  queue_mu_.Lock();
  for (Request* request : drained) request->done = true;
  leader_active_ = false;
  designated_ = queue_.empty() ? nullptr : queue_.front();
  queue_cv_.NotifyAll();
}

ShardedResolveService::IngestResult ShardedResolveService::Ingest(
    std::vector<model::EntityDescription> batch) {
  util::Timer timer;
  Request request;
  request.entities = std::move(batch);
  const size_t arriving = request.entities.size();
  util::MutexLock lock(queue_mu_);
  if (shutting_down_) return {ServeErrc::kShuttingDown, {}};
  // Admission control: shed when the queue is past the watermark. An
  // empty queue always admits — the watermark bounds waiting work, it
  // never wedges an idle service.
  if (!queue_.empty() && queued_entities_ >= options_.max_queue_entities) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    lock.Unlock();
    if (obs::MetricsRegistry* registry = Registry()) {
      registry->GetCounter("weber.serve.shed").Increment();
    }
    return {ServeErrc::kOverloaded, {}};
  }
  queue_.push_back(&request);
  queued_entities_ += arriving;
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetGauge("weber.serve.queue_depth")
        .Set(static_cast<double>(queued_entities_));
  }
  while (!request.done) {
    while (!request.done &&
           (leader_active_ ||
            (designated_ != nullptr && designated_ != &request))) {
      queue_cv_.Wait(queue_mu_);
    }
    if (request.done) break;
    leader_active_ = true;
    designated_ = nullptr;
    LeadBatch();
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  lock.Unlock();
  if (obs::MetricsRegistry* registry = Registry()) {
    registry->GetHistogram("weber.serve.request_seconds")
        .Record(timer.ElapsedSeconds());
  }
  return {ServeErrc::kOk, std::move(request.ids)};
}

std::optional<incremental::IncrementalResolver::Resolution>
ShardedResolveService::Resolve(model::EntityId id) {
  util::MutexLock resolver_lock(resolver_mu_);
  return resolver_.Resolve(id);
}

ServeErrc ShardedResolveService::Remove(model::EntityId id) {
  {
    util::MutexLock queue_lock(queue_mu_);
    if (shutting_down_) return ServeErrc::kShuttingDown;
  }
  util::MutexLock resolver_lock(resolver_mu_);
  return resolver_.Remove(id) ? ServeErrc::kOk : ServeErrc::kNotFound;
}

matching::Clusters ShardedResolveService::Clusters() {
  util::MutexLock resolver_lock(resolver_mu_);
  return resolver_.Clusters();
}

void ShardedResolveService::BeginShutdown() {
  util::MutexLock lock(queue_mu_);
  shutting_down_ = true;
}

void ShardedResolveService::Drain() {
  {
    util::MutexLock lock(queue_mu_);
    while (!queue_.empty() || leader_active_) {
      queue_cv_.Wait(queue_mu_);
    }
  }
  util::MutexLock resolver_lock(resolver_mu_);
  storage::Status status = resolver_.Checkpoint();
  (void)status;  // Shutdown path: nothing to surface the sync error to.
}

}  // namespace weber::serve
