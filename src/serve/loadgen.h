#ifndef WEBER_SERVE_LOADGEN_H_
#define WEBER_SERVE_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/entity.h"
#include "serve/service.h"

namespace weber::serve {

/// Configuration of an ingest load run.
struct LoadGenOptions {
  /// Concurrent request streams. Each worker owns its own connection /
  /// service handle, so `workers` is the offered concurrency.
  size_t workers = 4;

  /// Entities per ingest request.
  size_t batch_size = 16;

  /// Offered load in requests/second across all workers. 0 = closed
  /// loop: every worker keeps one request in flight back to back
  /// (saturation). Positive = open loop: request k is *scheduled* at
  /// start + k/rate and its latency is measured from that scheduled
  /// instant, so queueing delay under overload counts against p99
  /// instead of silently throttling the generator (coordinated
  /// omission).
  double rate = 0;
};

/// Outcome of a load run. Latency quantiles are over completed requests
/// (shed responses included — a fast typed rejection is a real response).
struct LoadGenResult {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t entities_ok = 0;  ///< Entities in kOk responses.
  double elapsed_seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double qps = 0;                 ///< Completed requests / elapsed.
  double entities_per_second = 0; ///< entities_ok / elapsed.
};

/// The request sink a load run drives: returns the typed outcome of one
/// ingest. Direct in-process targets bind ShardedResolveService::Ingest;
/// the socket variant below wires a ServeClient per worker.
using IngestFn =
    std::function<ServeErrc(std::vector<model::EntityDescription>)>;

/// Slices `corpus` into batch_size requests and drives them through `fn`
/// from `workers` threads until the corpus is exhausted. Every entity is
/// offered exactly once (shed batches are counted, not retried).
LoadGenResult RunIngestLoad(
    const std::vector<model::EntityDescription>& corpus,
    const LoadGenOptions& options, const IngestFn& fn);

/// Same load, driven over the wire: each worker connects its own
/// ServeClient to `socket_path`.
LoadGenResult RunSocketIngestLoad(
    const std::vector<model::EntityDescription>& corpus,
    const LoadGenOptions& options, const std::string& socket_path);

}  // namespace weber::serve

#endif  // WEBER_SERVE_LOADGEN_H_
