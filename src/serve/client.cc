#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace weber::serve {

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

bool ServeClient::Connect(const std::string& socket_path) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) return false;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Close();
    return false;
  }
  return true;
}

Response ServeClient::Call(const Request& request) {
  Response failure;
  failure.status = ServeErrc::kInternal;
  if (fd_ < 0) {
    failure.text = "not connected";
    return failure;
  }
  if (!WriteFrame(fd_, EncodeRequest(request))) {
    failure.text = "write failed";
    Close();
    return failure;
  }
  std::vector<uint8_t> body;
  bool eof = false;
  if (!ReadFrame(fd_, &body, &eof)) {
    failure.text = eof ? "connection closed" : "read failed";
    Close();
    return failure;
  }
  std::optional<Response> response = DecodeResponse(body.data(), body.size());
  if (!response.has_value()) {
    failure.text = "undecodable response frame";
    Close();
    return failure;
  }
  return std::move(*response);
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace weber::serve
