#ifndef WEBER_SERVE_CLIENT_H_
#define WEBER_SERVE_CLIENT_H_

#include <string>

#include "serve/protocol.h"

namespace weber::serve {

/// A blocking weber_serve client: one connected Unix-domain socket, one
/// request in flight at a time. Not thread-safe — give each thread its
/// own client (the server coalesces across connections anyway).
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;

  /// Connects to a listening weber_serve socket.
  bool Connect(const std::string& socket_path);

  /// Sends one request and reads its response. Transport failures
  /// (connection reset, undecodable response) surface as kInternal with
  /// a detail in `text` — typed overload (kOverloaded) is a *successful*
  /// call whose response says no.
  Response Call(const Request& request);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

}  // namespace weber::serve

#endif  // WEBER_SERVE_CLIENT_H_
