#ifndef WEBER_SERVE_VOCABULARY_H_
#define WEBER_SERVE_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace weber::serve {

/// The one token-id map shared by every shard of a ShardedResolver.
///
/// Cross-shard scoring intersects token-id sets drawn from different
/// SignatureStores, which is only meaningful when every store's ids come
/// from a single injective token -> id mapping. The sharded ingest keeps
/// this map consistent with a three-phase discipline:
///   1. parallel phase: Lookup() only (const, any thread);
///   2. serial phase: Intern() the batch's unknown tokens in a
///      deterministic order (single thread, no concurrent readers);
///   3. parallel phase: Lookup() resolves every token.
/// The exact ids do not affect scoring (similarities depend on ids only
/// through set intersections, which any injective renaming preserves),
/// but the assignment must be shard-count independent — interning in
/// (entity, token-position) order makes it so.
class SharedVocabulary {
 public:
  static constexpr uint32_t kUnknown = UINT32_MAX;

  /// The id of `token`, or kUnknown. Safe to call concurrently with other
  /// Lookups, never with Intern.
  uint32_t Lookup(const std::string& token) const {
    auto it = map_.find(token);
    return it == map_.end() ? kUnknown : it->second;
  }

  /// Interns `token` (no-op when known) and returns its id. Serial phase
  /// only.
  uint32_t Intern(const std::string& token) {
    auto [it, inserted] =
        map_.try_emplace(token, static_cast<uint32_t>(map_.size()));
    return it->second;
  }

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> map_;
};

}  // namespace weber::serve

#endif  // WEBER_SERVE_VOCABULARY_H_
