#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

#include "serve/client.h"
#include "util/sync.h"
#include "util/timer.h"

namespace weber::serve {
namespace {

using Clock = std::chrono::steady_clock;

double QuantileMs(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

LoadGenResult RunIngestLoad(
    const std::vector<model::EntityDescription>& corpus,
    const LoadGenOptions& options, const IngestFn& fn) {
  LoadGenResult result;
  if (corpus.empty() || options.batch_size == 0) return result;
  const size_t batch_size = options.batch_size;
  const size_t batches = (corpus.size() + batch_size - 1) / batch_size;
  const size_t workers = std::max<size_t>(1, options.workers);

  std::atomic<size_t> next_batch{0};
  struct WorkerStats {
    uint64_t ok = 0;
    uint64_t shed = 0;
    uint64_t errors = 0;
    uint64_t entities_ok = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<WorkerStats> stats(workers);
  const Clock::time_point start = Clock::now();

  auto worker = [&](size_t w) {
    WorkerStats& mine = stats[w];
    for (;;) {
      size_t batch = next_batch.fetch_add(1, std::memory_order_relaxed);
      if (batch >= batches) break;
      Clock::time_point scheduled = start;
      if (options.rate > 0) {
        scheduled = start + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(
                                    static_cast<double>(batch) /
                                    options.rate));
        std::this_thread::sleep_until(scheduled);
      } else {
        scheduled = Clock::now();
      }
      size_t begin = batch * batch_size;
      size_t end = std::min(begin + batch_size, corpus.size());
      std::vector<model::EntityDescription> request(corpus.begin() + begin,
                                                    corpus.begin() + end);
      ServeErrc status = fn(std::move(request));
      double latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
              .count();
      mine.latencies_ms.push_back(latency_ms);
      switch (status) {
        case ServeErrc::kOk:
          ++mine.ok;
          mine.entities_ok += end - begin;
          break;
        case ServeErrc::kOverloaded:
          ++mine.shed;
          break;
        default:
          ++mine.errors;
          break;
      }
    }
  };

  // The generator must offer load from real concurrent request streams;
  // executor tasks would deadlock against the ingest fan-out they are
  // measuring.
  if (workers == 1) {
    worker(0);
  } else {
    // lint: allow(threads) independent load-offering streams
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      // lint: allow(threads) independent load-offering streams
      threads.emplace_back(std::thread(worker, w));
    }
    // lint: allow(threads) independent load-offering streams
    for (std::thread& thread : threads) thread.join();
  }

  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> all;
  for (WorkerStats& mine : stats) {
    result.ok += mine.ok;
    result.shed += mine.shed;
    result.errors += mine.errors;
    result.entities_ok += mine.entities_ok;
    all.insert(all.end(), mine.latencies_ms.begin(),
               mine.latencies_ms.end());
  }
  result.requests = result.ok + result.shed + result.errors;
  std::sort(all.begin(), all.end());
  result.p50_ms = QuantileMs(all, 0.5);
  result.p99_ms = QuantileMs(all, 0.99);
  result.p999_ms = QuantileMs(all, 0.999);
  if (result.elapsed_seconds > 0) {
    result.qps =
        static_cast<double>(result.requests) / result.elapsed_seconds;
    result.entities_per_second =
        static_cast<double>(result.entities_ok) / result.elapsed_seconds;
  }
  return result;
}

LoadGenResult RunSocketIngestLoad(
    const std::vector<model::EntityDescription>& corpus,
    const LoadGenOptions& options, const std::string& socket_path) {
  const size_t workers = std::max<size_t>(1, options.workers);
  // One connection per worker, picked by thread identity: a thread_local
  // client lazily connected on first use keeps IngestFn stateless.
  struct ClientPool {
    util::Mutex mu;
    std::vector<std::unique_ptr<ServeClient>> clients GUARDED_BY(mu);
  };
  auto pool = std::make_shared<ClientPool>();
  pool->clients.reserve(workers);
  auto fn = [pool, socket_path](
                std::vector<model::EntityDescription> batch) -> ServeErrc {
    thread_local ServeClient* client = nullptr;
    if (client == nullptr) {
      auto owned = std::make_unique<ServeClient>();
      if (!owned->Connect(socket_path)) return ServeErrc::kInternal;
      client = owned.get();
      util::MutexLock lock(pool->mu);
      pool->clients.push_back(std::move(owned));
    }
    Request request;
    request.type = MessageType::kIngest;
    request.entities = std::move(batch);
    return client->Call(request).status;
  };
  return RunIngestLoad(corpus, options, fn);
}

}  // namespace weber::serve
