#include "model/io.h"

#include <istream>
#include <ostream>
#include <string_view>
#include <unordered_map>

namespace weber::model {

namespace {

std::string EscapeLiteral(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        escaped.push_back(c);
    }
  }
  return escaped;
}

std::string UnescapeLiteral(std::string_view value) {
  std::string raw;
  raw.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 >= value.size()) {
      raw.push_back(value[i]);
      continue;
    }
    ++i;
    switch (value[i]) {
      case 'n':
        raw.push_back('\n');
        break;
      case 'r':
        raw.push_back('\r');
        break;
      case 't':
        raw.push_back('\t');
        break;
      default:
        raw.push_back(value[i]);  // Covers \\ and \".
    }
  }
  return raw;
}

// One parsed triple. `object_is_literal` distinguishes "..." from <...>.
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;
  bool object_is_literal = false;
};

// Parses one N-Triples line; returns nullopt on malformed input.
std::optional<Triple> ParseLine(std::string_view line) {
  auto skip_spaces = [&line](size_t pos) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    return pos;
  };
  auto parse_uri = [&line](size_t pos,
                           std::string* out) -> std::optional<size_t> {
    if (pos >= line.size() || line[pos] != '<') return std::nullopt;
    size_t end = line.find('>', pos + 1);
    if (end == std::string_view::npos) return std::nullopt;
    out->assign(line.substr(pos + 1, end - pos - 1));
    return end + 1;
  };

  Triple triple;
  size_t pos = skip_spaces(0);
  auto after_subject = parse_uri(pos, &triple.subject);
  if (!after_subject.has_value()) return std::nullopt;
  pos = skip_spaces(*after_subject);
  auto after_predicate = parse_uri(pos, &triple.predicate);
  if (!after_predicate.has_value()) return std::nullopt;
  pos = skip_spaces(*after_predicate);
  if (pos >= line.size()) return std::nullopt;

  if (line[pos] == '<') {
    auto after_object = parse_uri(pos, &triple.object);
    if (!after_object.has_value()) return std::nullopt;
    pos = *after_object;
  } else if (line[pos] == '"') {
    // Scan to the closing unescaped quote.
    size_t end = pos + 1;
    while (end < line.size()) {
      if (line[end] == '\\') {
        end += 2;
        continue;
      }
      if (line[end] == '"') break;
      ++end;
    }
    if (end >= line.size()) return std::nullopt;
    triple.object = UnescapeLiteral(line.substr(pos + 1, end - pos - 1));
    triple.object_is_literal = true;
    pos = end + 1;
    // Skip optional language tag (@en) or datatype (^^<...>).
    if (pos < line.size() && line[pos] == '@') {
      while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') {
        ++pos;
      }
    } else if (pos + 1 < line.size() && line[pos] == '^' &&
               line[pos + 1] == '^') {
      std::string ignored;
      auto after = parse_uri(pos + 2, &ignored);
      if (!after.has_value()) return std::nullopt;
      pos = *after;
    }
  } else {
    return std::nullopt;
  }

  pos = skip_spaces(pos);
  if (pos >= line.size() || line[pos] != '.') return std::nullopt;
  return triple;
}

}  // namespace

void WriteNTriples(const EntityCollection& collection, std::ostream& out) {
  for (const EntityDescription& entity : collection.descriptions()) {
    if (!entity.type().empty()) {
      out << '<' << entity.uri() << "> <" << kRdfTypePredicate << "> <"
          << entity.type() << "> .\n";
    }
    for (const AttributeValue& pair : entity.pairs()) {
      out << '<' << entity.uri() << "> <" << pair.attribute << "> \""
          << EscapeLiteral(pair.value) << "\" .\n";
    }
    for (const Relation& relation : entity.relations()) {
      out << '<' << entity.uri() << "> <" << relation.predicate << "> <"
          << relation.target_uri << "> .\n";
    }
  }
}

EntityCollection ReadNTriples(std::istream& in, size_t* skipped_lines) {
  EntityCollection collection;
  std::unordered_map<std::string, EntityId> id_of_subject;
  size_t skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = line;
    // Trim trailing carriage return from CRLF files.
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    size_t first = view.find_first_not_of(" \t");
    if (first == std::string_view::npos || view[first] == '#') continue;
    std::optional<Triple> triple = ParseLine(view);
    if (!triple.has_value()) {
      ++skipped;
      continue;
    }
    auto it = id_of_subject.find(triple->subject);
    if (it == id_of_subject.end()) {
      it = id_of_subject
               .emplace(triple->subject,
                        collection.Add(EntityDescription(triple->subject)))
               .first;
    }
    EntityDescription& entity = collection.at(it->second);
    if (triple->object_is_literal) {
      entity.AddPair(std::move(triple->predicate),
                     std::move(triple->object));
    } else if (triple->predicate == kRdfTypePredicate) {
      entity.set_type(std::move(triple->object));
    } else {
      entity.AddRelation(std::move(triple->predicate),
                         std::move(triple->object));
    }
  }
  if (skipped_lines != nullptr) *skipped_lines = skipped;
  return collection;
}

void WriteGroundTruth(const GroundTruth& truth,
                      const EntityCollection& collection,
                      std::ostream& out) {
  for (const IdPair& pair : truth.AllMatches()) {
    out << '<' << collection[pair.low].uri() << "> <"
        << collection[pair.high].uri() << ">\n";
  }
}

GroundTruth ReadGroundTruth(std::istream& in,
                            const EntityCollection& collection) {
  GroundTruth truth;
  std::string line;
  while (std::getline(in, line)) {
    size_t a_open = line.find('<');
    size_t a_close = line.find('>', a_open);
    if (a_open == std::string::npos || a_close == std::string::npos) {
      continue;
    }
    size_t b_open = line.find('<', a_close);
    size_t b_close = line.find('>', b_open);
    if (b_open == std::string::npos || b_close == std::string::npos) {
      continue;
    }
    auto id_a = collection.FindByUri(
        std::string_view(line).substr(a_open + 1, a_close - a_open - 1));
    auto id_b = collection.FindByUri(
        std::string_view(line).substr(b_open + 1, b_close - b_open - 1));
    if (id_a.has_value() && id_b.has_value()) {
      truth.AddMatch(*id_a, *id_b);
    }
  }
  return truth;
}

}  // namespace weber::model
