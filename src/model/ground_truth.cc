#include "model/ground_truth.h"

#include <algorithm>
#include <unordered_map>

#include "util/union_find.h"

namespace weber::model {

void GroundTruth::AddMatch(EntityId a, EntityId b) {
  if (a == b) return;
  raw_pairs_.push_back(IdPair::Of(a, b));
  dirty_ = true;
}

void GroundTruth::Rebuild() const {
  if (!dirty_) return;
  dirty_ = false;
  closure_.clear();
  clusters_.clear();
  if (raw_pairs_.empty()) return;

  EntityId max_id = 0;
  for (const IdPair& pair : raw_pairs_) max_id = std::max(max_id, pair.high);
  util::UnionFind forest(max_id + 1);
  for (const IdPair& pair : raw_pairs_) forest.Union(pair.low, pair.high);

  clusters_ = forest.Groups(/*include_singletons=*/false);
  for (const std::vector<EntityId>& cluster : clusters_) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        closure_.insert(IdPair::Of(cluster[i], cluster[j]));
      }
    }
  }
}

bool GroundTruth::IsMatch(EntityId a, EntityId b) const {
  if (a == b) return false;
  Rebuild();
  return closure_.contains(IdPair::Of(a, b));
}

size_t GroundTruth::NumMatches() const {
  Rebuild();
  return closure_.size();
}

std::vector<IdPair> GroundTruth::AllMatches() const {
  Rebuild();
  return {closure_.begin(), closure_.end()};
}

std::vector<std::vector<EntityId>> GroundTruth::Clusters() const {
  Rebuild();
  return clusters_;
}

}  // namespace weber::model
