#ifndef WEBER_MODEL_IO_H_
#define WEBER_MODEL_IO_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "model/entity.h"
#include "model/ground_truth.h"

namespace weber::model {

/// URI used to carry the entity type in N-Triples form.
inline constexpr char kRdfTypePredicate[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Serialises a collection in (a pragmatic subset of) N-Triples:
///   <subject> <predicate> "literal" .   for attribute-value pairs
///   <subject> <predicate> <object> .    for relations
///   <subject> <rdf:type> <type> .       for non-empty entity types
/// Literals are escaped per N-Triples rules (backslash, quote, newline,
/// tab, carriage return).
void WriteNTriples(const EntityCollection& collection, std::ostream& out);

/// Parses N-Triples as written by WriteNTriples (and the common subset of
/// real exports: one triple per line, URIs in angle brackets, plain or
/// language-/datatype-tagged literals). Triples sharing a subject are
/// grouped into one description, in first-appearance order. Lines that
/// are empty or start with '#' are skipped; malformed lines are counted
/// in `skipped_lines` (if non-null) and otherwise ignored.
///
/// The result is a dirty collection; use EntityCollection::CleanClean on
/// two parsed description vectors for record linkage.
EntityCollection ReadNTriples(std::istream& in,
                              size_t* skipped_lines = nullptr);

/// Writes ground truth as lines of "<uri1> <uri2>", resolving ids through
/// the collection.
void WriteGroundTruth(const GroundTruth& truth,
                      const EntityCollection& collection, std::ostream& out);

/// Reads ground truth written by WriteGroundTruth against the given
/// collection. Pairs whose URIs are unknown are skipped.
GroundTruth ReadGroundTruth(std::istream& in,
                            const EntityCollection& collection);

}  // namespace weber::model

#endif  // WEBER_MODEL_IO_H_
