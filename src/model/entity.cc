#include "model/entity.h"

#include <algorithm>

#include "util/check.h"

namespace weber::model {

void EntityDescription::AddPair(std::string attribute, std::string value) {
  pairs_.push_back({std::move(attribute), std::move(value)});
}

void EntityDescription::AddRelation(std::string predicate,
                                    std::string target_uri) {
  relations_.push_back({std::move(predicate), std::move(target_uri)});
}

std::vector<std::string_view> EntityDescription::ValuesOf(
    std::string_view attribute) const {
  std::vector<std::string_view> values;
  for (const AttributeValue& pair : pairs_) {
    if (pair.attribute == attribute) values.push_back(pair.value);
  }
  return values;
}

std::optional<std::string_view> EntityDescription::FirstValueOf(
    std::string_view attribute) const {
  for (const AttributeValue& pair : pairs_) {
    if (pair.attribute == attribute) return std::string_view(pair.value);
  }
  return std::nullopt;
}

std::vector<std::string_view> EntityDescription::AttributeNames() const {
  std::vector<std::string_view> names;
  for (const AttributeValue& pair : pairs_) {
    if (std::find(names.begin(), names.end(), pair.attribute) ==
        names.end()) {
      names.push_back(pair.attribute);
    }
  }
  return names;
}

void EntityDescription::MergeFrom(const EntityDescription& other) {
  for (const AttributeValue& pair : other.pairs_) {
    if (std::find(pairs_.begin(), pairs_.end(), pair) == pairs_.end()) {
      pairs_.push_back(pair);
    }
  }
  for (const Relation& relation : other.relations_) {
    if (std::find(relations_.begin(), relations_.end(), relation) ==
        relations_.end()) {
      relations_.push_back(relation);
    }
  }
  if (type_.empty()) type_ = other.type_;
}

EntityCollection EntityCollection::CleanClean(
    std::vector<EntityDescription> source1,
    std::vector<EntityDescription> source2) {
  EntityCollection collection;
  collection.setting_ = ErSetting::kCleanClean;
  collection.descriptions_ = std::move(source1);
  collection.split_ = collection.descriptions_.size();
  collection.descriptions_.insert(
      collection.descriptions_.end(),
      std::make_move_iterator(source2.begin()),
      std::make_move_iterator(source2.end()));
  return collection;
}

EntityCollection EntityCollection::Dirty(
    std::vector<EntityDescription> source) {
  EntityCollection collection;
  collection.setting_ = ErSetting::kDirty;
  collection.descriptions_ = std::move(source);
  collection.split_ = collection.descriptions_.size();
  return collection;
}

EntityId EntityCollection::Add(EntityDescription description) {
  if (!uri_index_.empty()) {
    uri_index_.emplace(description.uri(),
                       static_cast<EntityId>(descriptions_.size()));
  }
  descriptions_.push_back(std::move(description));
  if (setting_ == ErSetting::kDirty) split_ = descriptions_.size();
  return static_cast<EntityId>(descriptions_.size() - 1);
}

uint64_t EntityCollection::TotalComparisons() const {
  uint64_t n = descriptions_.size();
  if (setting_ == ErSetting::kDirty) return n * (n - 1) / 2;
  WEBER_DCHECK_LE(split_, descriptions_.size())
      << "clean-clean split beyond the collection";
  uint64_t n1 = split_;
  uint64_t n2 = n - split_;
  return n1 * n2;
}

std::optional<EntityId> EntityCollection::FindByUri(
    std::string_view uri) const {
  if (uri_index_.empty() && !descriptions_.empty()) {
    uri_index_.reserve(descriptions_.size());
    for (size_t i = 0; i < descriptions_.size(); ++i) {
      uri_index_.emplace(descriptions_[i].uri(), static_cast<EntityId>(i));
    }
  }
  auto it = uri_index_.find(std::string(uri));
  if (it == uri_index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace weber::model
