#ifndef WEBER_MODEL_ENTITY_H_
#define WEBER_MODEL_ENTITY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace weber::model {

/// Identifier of an entity description inside an EntityCollection. Ids are
/// dense indices assigned in insertion order; in clean-clean collections
/// ids below the split point belong to the first source.
using EntityId = uint32_t;

/// An attribute-value pair of an entity description, e.g.
/// ("foaf:name", "Claude Shannon"). Attributes are free-form strings: the
/// Web of data commits to no global schema, and most vocabularies are
/// proprietary to a single knowledge base.
struct AttributeValue {
  std::string attribute;
  std::string value;

  friend bool operator==(const AttributeValue& x, const AttributeValue& y) {
    return x.attribute == y.attribute && x.value == y.value;
  }
};

/// A directed relation from this description to another one, e.g.
/// ("dbo:architect", "http://kb2/architect/17"). Relationship-based
/// iterative ER (Section III of the tutorial) exploits these links.
struct Relation {
  std::string predicate;
  std::string target_uri;

  friend bool operator==(const Relation& x, const Relation& y) {
    return x.predicate == y.predicate && x.target_uri == y.target_uri;
  }
};

/// An entity description: a URI plus a set of attribute-value pairs and
/// outgoing relations, optionally tagged with an entity type.
///
/// This mirrors the RDF view of the tutorial: a description is whatever a
/// knowledge base says about one URI. Descriptions of the same real-world
/// entity in different KBs are typically partial and overlapping.
class EntityDescription {
 public:
  EntityDescription() = default;
  explicit EntityDescription(std::string uri) : uri_(std::move(uri)) {}
  EntityDescription(std::string uri, std::string type)
      : uri_(std::move(uri)), type_(std::move(type)) {}

  const std::string& uri() const { return uri_; }
  const std::string& type() const { return type_; }
  void set_uri(std::string uri) { uri_ = std::move(uri); }
  void set_type(std::string type) { type_ = std::move(type); }

  /// Appends an attribute-value pair.
  void AddPair(std::string attribute, std::string value);

  /// Appends an outgoing relation.
  void AddRelation(std::string predicate, std::string target_uri);

  const std::vector<AttributeValue>& pairs() const { return pairs_; }
  const std::vector<Relation>& relations() const { return relations_; }

  /// Returns all values of the given attribute, in insertion order.
  std::vector<std::string_view> ValuesOf(std::string_view attribute) const;

  /// Returns the first value of the given attribute, if any.
  std::optional<std::string_view> FirstValueOf(
      std::string_view attribute) const;

  /// Returns the distinct attribute names used by this description, in
  /// first-appearance order.
  std::vector<std::string_view> AttributeNames() const;

  /// Merges another description into this one: the union of attribute-value
  /// pairs and relations, with exact duplicates removed. Used by
  /// merging-based iterative ER (Swoosh-style merge closure).
  void MergeFrom(const EntityDescription& other);

  /// Total number of attribute-value pairs.
  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty() && relations_.empty(); }

  friend bool operator==(const EntityDescription& x,
                         const EntityDescription& y) {
    return x.uri_ == y.uri_ && x.type_ == y.type_ && x.pairs_ == y.pairs_ &&
           x.relations_ == y.relations_;
  }

 private:
  std::string uri_;
  std::string type_;
  std::vector<AttributeValue> pairs_;
  std::vector<Relation> relations_;
};

/// Whether an ER task resolves one dirty collection against itself or two
/// individually-clean collections against each other.
enum class ErSetting {
  /// A single collection that may contain duplicates; every unordered pair
  /// of distinct descriptions is a potential comparison.
  kDirty,
  /// Two duplicate-free collections; only cross-source pairs are potential
  /// comparisons (record-linkage setting).
  kCleanClean,
};

/// A collection of entity descriptions, the universe of one ER task.
///
/// For the clean-clean setting the two sources are concatenated and the
/// split point remembered: ids in [0, split) come from source one, ids in
/// [split, size) from source two.
class EntityCollection {
 public:
  /// Creates an empty dirty-ER collection.
  EntityCollection() = default;

  /// Creates a clean-clean collection from two duplicate-free sources.
  static EntityCollection CleanClean(std::vector<EntityDescription> source1,
                                     std::vector<EntityDescription> source2);

  /// Creates a dirty collection from one source.
  static EntityCollection Dirty(std::vector<EntityDescription> source);

  /// Appends a description and returns its id.
  EntityId Add(EntityDescription description);

  const EntityDescription& at(EntityId id) const {
    WEBER_DCHECK_LT(size_t{id}, descriptions_.size())
        << "entity id outside the collection";
    return descriptions_[id];
  }
  EntityDescription& at(EntityId id) {
    WEBER_DCHECK_LT(size_t{id}, descriptions_.size())
        << "entity id outside the collection";
    return descriptions_[id];
  }
  const EntityDescription& operator[](EntityId id) const {
    WEBER_DCHECK_LT(size_t{id}, descriptions_.size())
        << "entity id outside the collection";
    return descriptions_[id];
  }

  size_t size() const { return descriptions_.size(); }
  bool empty() const { return descriptions_.empty(); }

  ErSetting setting() const { return setting_; }
  /// Split point of a clean-clean collection; size() for dirty collections.
  size_t split() const { return split_; }

  /// True if id belongs to the first source (always true for dirty).
  bool InFirstSource(EntityId id) const { return id < split_; }

  /// True if the pair (a, b) is a valid comparison under this collection's
  /// setting: distinct ids, and cross-source for clean-clean.
  bool Comparable(EntityId a, EntityId b) const {
    if (a == b) return false;
    if (setting_ == ErSetting::kDirty) return true;
    return InFirstSource(a) != InFirstSource(b);
  }

  /// Total number of valid comparisons (the quadratic baseline that
  /// blocking prunes): n*(n-1)/2 for dirty, |D1|*|D2| for clean-clean.
  uint64_t TotalComparisons() const;

  /// Returns the id of the description with the given URI, if present.
  /// URIs are indexed lazily on first lookup.
  std::optional<EntityId> FindByUri(std::string_view uri) const;

  const std::vector<EntityDescription>& descriptions() const {
    return descriptions_;
  }

 private:
  std::vector<EntityDescription> descriptions_;
  ErSetting setting_ = ErSetting::kDirty;
  size_t split_ = 0;  // Maintained == size() for dirty collections.
  mutable std::unordered_map<std::string, EntityId> uri_index_;
};

}  // namespace weber::model

#endif  // WEBER_MODEL_ENTITY_H_
