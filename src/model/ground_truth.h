#ifndef WEBER_MODEL_GROUND_TRUTH_H_
#define WEBER_MODEL_GROUND_TRUTH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "model/entity.h"

namespace weber::model {

/// An unordered pair of entity ids in canonical (low, high) order.
struct IdPair {
  EntityId low;
  EntityId high;

  /// Builds the canonical form of {a, b}.
  static IdPair Of(EntityId a, EntityId b) {
    return a < b ? IdPair{a, b} : IdPair{b, a};
  }

  friend bool operator==(const IdPair& x, const IdPair& y) {
    return x.low == y.low && x.high == y.high;
  }
  friend bool operator<(const IdPair& x, const IdPair& y) {
    return x.low != y.low ? x.low < y.low : x.high < y.high;
  }
};

struct IdPairHash {
  size_t operator()(const IdPair& p) const {
    uint64_t k = (static_cast<uint64_t>(p.low) << 32) | p.high;
    // Fibonacci scrambling.
    k *= 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(k ^ (k >> 32));
  }
};

using IdPairSet = std::unordered_set<IdPair, IdPairHash>;

/// The set of true matches of an ER task.
///
/// Matches are stored as the full transitive closure: if {a,b} and {b,c}
/// are added, {a,c} is reported as a match too. This mirrors how ER
/// benchmarks count recall when ground-truth clusters have more than two
/// members.
class GroundTruth {
 public:
  GroundTruth() = default;

  /// Records that a and b describe the same real-world entity.
  void AddMatch(EntityId a, EntityId b);

  /// True if {a, b} is a match (under transitive closure).
  bool IsMatch(EntityId a, EntityId b) const;
  bool IsMatch(const IdPair& pair) const {
    return IsMatch(pair.low, pair.high);
  }

  /// Number of matching pairs under transitive closure.
  size_t NumMatches() const;

  /// All matching pairs (closure), in unspecified order.
  std::vector<IdPair> AllMatches() const;

  /// Ground-truth clusters with at least two members.
  std::vector<std::vector<EntityId>> Clusters() const;

 private:
  void Rebuild() const;

  std::vector<IdPair> raw_pairs_;
  // Closure caches, rebuilt lazily when raw_pairs_ changes.
  mutable bool dirty_ = false;
  mutable IdPairSet closure_;
  mutable std::vector<std::vector<EntityId>> clusters_;
};

}  // namespace weber::model

#endif  // WEBER_MODEL_GROUND_TRUTH_H_
