// E1 (Fig. 1): the four-phase ER pipeline end to end.
//
// Regenerates the framework-level claim of the tutorial's only figure:
// blocking feeds scheduling feeds matching, the update phase feeds back,
// and optional block cleaning / meta-blocking stages slot in between.
// Rows compare pipeline variants on the same corpus; counters report the
// quality each variant reaches and the comparisons it pays.

#include <benchmark/benchmark.h>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "blocking/token_blocking.h"
#include "core/pipeline.h"
#include "eval/match_metrics.h"
#include "matching/matcher.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "progressive/progressive_sn.h"

namespace weber {
namespace {

const datagen::Corpus& Corpus() {
  static const datagen::Corpus& corpus = *new datagen::Corpus(
      bench::DirtyCorpus(/*seed=*/42, /*num_entities=*/800));
  return corpus;
}

void ReportQuality(benchmark::State& state, const core::PipelineResult& r,
                   const model::GroundTruth& truth) {
  eval::MatchQuality q = eval::EvaluateMatchPairs(r.matches, truth);
  state.counters["PC_blocking"] = r.blocking_quality.PairCompleteness();
  state.counters["RR_blocking"] = r.blocking_quality.ReductionRatio();
  state.counters["candidates"] = static_cast<double>(r.candidates);
  state.counters["comparisons"] = static_cast<double>(r.comparisons);
  state.counters["precision"] = q.Precision();
  state.counters["recall"] = q.Recall();
  state.counters["F1"] = q.F1();
  state.counters["clusters"] = static_cast<double>(r.clusters.size());
}

void BM_Pipeline_PlainBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  matching::TokenJaccardMatcher matcher;
  core::PipelineConfig config;
  config.blocker = &blocker;
  config.matcher = &matcher;
  config.match_threshold = 0.5;
  core::PipelineResult result;
  for (auto _ : state) {
    result = core::RunPipeline(corpus.collection, corpus.truth, config);
  }
  ReportQuality(state, result, corpus.truth);
}
BENCHMARK(BM_Pipeline_PlainBlocking)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Same pipeline on the string path: together with the plain row (which
// defaults to the prepared comparison engine) this pair isolates what
// signature interning buys end to end — identical counters, lower time.
void BM_Pipeline_StringPathMatching(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  matching::TokenJaccardMatcher matcher;
  core::PipelineConfig config;
  config.blocker = &blocker;
  config.matcher = &matcher;
  config.match_threshold = 0.5;
  config.prepared_matching = false;
  core::PipelineResult result;
  for (auto _ : state) {
    result = core::RunPipeline(corpus.collection, corpus.truth, config);
  }
  ReportQuality(state, result, corpus.truth);
}
BENCHMARK(BM_Pipeline_StringPathMatching)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Pipeline_PurgedAndFiltered(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  matching::TokenJaccardMatcher matcher;
  core::PipelineConfig config;
  config.blocker = &blocker;
  config.auto_purge = true;
  config.filter_ratio = 0.8;
  config.matcher = &matcher;
  config.match_threshold = 0.5;
  core::PipelineResult result;
  for (auto _ : state) {
    result = core::RunPipeline(corpus.collection, corpus.truth, config);
  }
  ReportQuality(state, result, corpus.truth);
}
BENCHMARK(BM_Pipeline_PurgedAndFiltered)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Pipeline_MetaBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  matching::TokenJaccardMatcher matcher;
  core::PipelineConfig config;
  config.blocker = &blocker;
  config.auto_purge = true;
  config.meta_blocking = {{metablocking::WeightScheme::kJs,
                           metablocking::PruningScheme::kWnp}};
  config.matcher = &matcher;
  config.match_threshold = 0.5;
  core::PipelineResult result;
  for (auto _ : state) {
    result = core::RunPipeline(corpus.collection, corpus.truth, config);
  }
  ReportQuality(state, result, corpus.truth);
}
BENCHMARK(BM_Pipeline_MetaBlocking)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Same pipeline as BM_Pipeline_PlainBlocking but with a metrics registry
// attached: the row pair quantifies the observability overhead (expected
// within noise of the plain run).
void BM_Pipeline_PlainBlockingWithMetrics(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  matching::TokenJaccardMatcher matcher;
  obs::MetricsRegistry registry;
  core::PipelineConfig config;
  config.blocker = &blocker;
  config.matcher = &matcher;
  config.match_threshold = 0.5;
  config.metrics = &registry;
  core::PipelineResult result;
  for (auto _ : state) {
    result = core::RunPipeline(corpus.collection, corpus.truth, config);
  }
  ReportQuality(state, result, corpus.truth);
  state.counters["obs_counters"] = static_cast<double>(
      registry.TakeSnapshot().counters.size());
}
BENCHMARK(BM_Pipeline_PlainBlockingWithMetrics)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Threaded row: the same meta-blocking pipeline with num_threads=4. Wall
// clock cannot improve on this single-core container (see
// bench_parallel_scaling.cc); the executor counters show the work the
// shared pool carried and the balance it achieved.
void BM_Pipeline_MetaBlockingThreaded(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  matching::TokenJaccardMatcher matcher;
  obs::MetricsRegistry registry;
  core::PipelineConfig config;
  config.blocker = &blocker;
  config.auto_purge = true;
  config.meta_blocking = {{metablocking::WeightScheme::kJs,
                           metablocking::PruningScheme::kWnp}};
  config.matcher = &matcher;
  config.match_threshold = 0.5;
  config.num_threads = 4;
  config.metrics = &registry;
  core::PipelineResult result;
  for (auto _ : state) {
    result = core::RunPipeline(corpus.collection, corpus.truth, config);
  }
  ReportQuality(state, result, corpus.truth);
  obs::RegistrySnapshot snap = registry.TakeSnapshot();
  state.counters["executor_tasks"] = static_cast<double>(
      snap.counters.count("weber.executor.tasks_run") != 0
          ? snap.counters.at("weber.executor.tasks_run")
          : 0);
  auto balance = snap.histograms.find("weber.executor.parallel_for_balance");
  state.counters["balance_speedup"] =
      balance != snap.histograms.end() ? balance->second.Mean() : 1.0;
}
BENCHMARK(BM_Pipeline_MetaBlockingThreaded)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Full flight recorder attached: metrics registry + event log + a 10 ms
// telemetry sampler, the heaviest observability configuration er_cli can
// enable. Against BM_Pipeline_PlainBlockingWithMetrics this row bounds
// the trace+sampler overhead (acceptance target: < 1%).
void BM_Pipeline_FlightRecorder(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  matching::TokenJaccardMatcher matcher;
  obs::MetricsRegistry registry;
  registry.events().Enable();
  obs::TelemetrySampler::Options opts;
  opts.registry = &registry;
  opts.interval_ms = 10;
  obs::TelemetrySampler sampler(opts);
  sampler.Start();
  core::PipelineConfig config;
  config.blocker = &blocker;
  config.matcher = &matcher;
  config.match_threshold = 0.5;
  config.metrics = &registry;
  core::PipelineResult result;
  for (auto _ : state) {
    result = core::RunPipeline(corpus.collection, corpus.truth, config);
  }
  sampler.Stop();
  ReportQuality(state, result, corpus.truth);
  obs::RegistrySnapshot snap = registry.TakeSnapshot();
  state.counters["trace_events"] = static_cast<double>(snap.events.size());
  state.counters["telemetry_samples"] =
      static_cast<double>(sampler.total_samples());
}
BENCHMARK(BM_Pipeline_FlightRecorder)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Budgeted progressive variant: the update phase (scheduler feedback)
// participates, demonstrating the full Fig. 1 loop.
void BM_Pipeline_ProgressiveBudgeted(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  matching::TokenJaccardMatcher matcher;
  core::PipelineConfig config;
  config.blocker = &blocker;
  config.auto_purge = true;
  config.matcher = &matcher;
  config.match_threshold = 0.5;
  config.budget = corpus.collection.size() * 5;
  config.make_scheduler = [](const model::EntityCollection& collection,
                             std::vector<model::IdPair>)
      -> std::unique_ptr<progressive::PairScheduler> {
    return std::make_unique<progressive::ProgressiveSnScheduler>(collection);
  };
  core::PipelineResult result;
  for (auto _ : state) {
    result = core::RunPipeline(corpus.collection, corpus.truth, config);
  }
  ReportQuality(state, result, corpus.truth);
  state.counters["recall_at_budget"] =
      result.curve.RecallAt(config.budget);
}
BENCHMARK(BM_Pipeline_ProgressiveBudgeted)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weber

WEBER_BENCH_MAIN("bench_pipeline");
