// E9 (§III, [3][24]): relationship-based collective ER.
//
// Claim to reproduce (Bhattacharya & Getoor; Rastogi et al.): on a
// two-type corpus where many distinct head entities share near-identical
// attribute values (ambiguous names), attribute-only matching stalls,
// while collective resolution — propagating matches through the relation
// graph — resolves the ambiguous pairs and lifts recall, at a modest
// comparison overhead. The alpha sweep shows the relational-evidence dose
// response.
//
// Rows: alpha (x100). Counters: precision, recall, F1, comparisons,
// requeues, relational matches.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "eval/match_metrics.h"
#include "iterative/collective.h"
#include "matching/matcher.h"

namespace weber {
namespace {

struct Workload {
  datagen::RelationalCorpus corpus;
  std::vector<model::IdPair> candidates;
};

const Workload& GetWorkload() {
  static const Workload& workload = *[] {
    auto* w = new Workload{bench::RelationalCorpus(/*seed=*/29), {}};
    const model::EntityCollection& c = w->corpus.collection;
    for (model::EntityId i = 0; i < c.size(); ++i) {
      for (model::EntityId j = i + 1; j < c.size(); ++j) {
        if (c[i].type() == c[j].type()) {
          w->candidates.push_back(model::IdPair::Of(i, j));
        }
      }
    }
    return w;
  }();
  return workload;
}

void BM_Collective(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenJaccardMatcher matcher;
  iterative::CollectiveOptions options;
  options.alpha = state.range(0) / 100.0;
  options.match_threshold = 0.75;
  iterative::CollectiveResult result;
  for (auto _ : state) {
    result = iterative::CollectiveResolve(workload.corpus.collection,
                                          workload.candidates, matcher,
                                          options);
  }
  eval::MatchQuality q =
      eval::EvaluateClusters(result.clusters, workload.corpus.truth);
  state.counters["alpha"] = options.alpha;
  state.counters["precision"] = q.Precision();
  state.counters["recall"] = q.Recall();
  state.counters["F1"] = q.F1();
  state.counters["comparisons"] = static_cast<double>(result.comparisons);
  state.counters["requeues"] = static_cast<double>(result.requeues);
  state.counters["relational_matches"] =
      static_cast<double>(result.relational_matches);
}
BENCHMARK(BM_Collective)->Arg(0)->Arg(15)->Arg(25)->Arg(35)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
