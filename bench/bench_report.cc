#include "bench/bench_report.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>

#include "core/executor.h"
#include "obs/json_writer.h"

namespace weber::bench {

namespace {

/// Forwards to the normal console output while collecting one BenchSample
/// per real (non-aggregate, non-errored) benchmark row.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      BenchSample sample;
      sample.name = run.benchmark_name();
      sample.iterations = static_cast<uint64_t>(
          std::max<int64_t>(run.iterations, 0));
      double iters = run.iterations > 0
                         ? static_cast<double>(run.iterations)
                         : 1.0;
      // Per-iteration milliseconds, independent of the row's display unit.
      sample.real_time_ms = run.real_accumulated_time / iters * 1e3;
      sample.cpu_time_ms = run.cpu_accumulated_time / iters * 1e3;
      for (const auto& [name, counter] : run.counters) {
        sample.counters[name] = counter.value;
      }
      samples_.push_back(std::move(sample));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<BenchSample>& samples() { return samples_; }

 private:
  std::vector<BenchSample> samples_;
};

}  // namespace

void BenchReport::DeriveMetrics() {
  metrics.clear();
  for (const BenchSample& sample : samples) {
    metrics[sample.name + ".real_time_ms"] = sample.real_time_ms;
    for (const auto& [counter, value] : sample.counters) {
      metrics[sample.name + "." + counter] = value;
    }
  }
}

void BenchReport::WriteJson(std::ostream& out) const {
  out << "{\"schema\":\"weber-bench-report/1\",\"bench\":"
      << obs::JsonQuote(bench) << ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) out << ',';
    first = false;
    out << obs::JsonQuote(key) << ':' << obs::JsonQuote(value);
  }
  out << "},\"metrics\":{";
  first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) out << ',';
    first = false;
    out << obs::JsonQuote(key) << ':' << obs::JsonNumber(value);
  }
  out << "},\"samples\":[";
  first = true;
  for (const BenchSample& sample : samples) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":" << obs::JsonQuote(sample.name)
        << ",\"iterations\":" << sample.iterations
        << ",\"real_time_ms\":" << obs::JsonNumber(sample.real_time_ms)
        << ",\"cpu_time_ms\":" << obs::JsonNumber(sample.cpu_time_ms)
        << ",\"counters\":{";
    bool first_counter = true;
    for (const auto& [name, value] : sample.counters) {
      if (!first_counter) out << ',';
      first_counter = false;
      out << obs::JsonQuote(name) << ':' << obs::JsonNumber(value);
    }
    out << "}}";
  }
  out << "]}";
}

std::string BenchReport::ToJson() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

int ReportMain(int argc, char** argv, const std::string& bench_name) {
  std::string json_path;
  std::string echoed_args;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
      if (json_path.empty()) {
        std::fprintf(stderr, "%s: --json needs a path\n",
                     bench_name.c_str());
        return 2;
      }
      continue;
    }
    args.push_back(argv[i]);
    if (i > 0) {
      if (!echoed_args.empty()) echoed_args += ' ';
      echoed_args += std::string(arg);
    }
  }
  args.push_back(nullptr);  // benchmark::Initialize expects argv[argc] == 0.
  int filtered_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json_path.empty()) return 0;

  BenchReport report;
  report.bench = bench_name;
  report.config["argv"] = echoed_args;
  report.config["workers"] =
      std::to_string(core::Executor::Shared().num_workers());
  report.samples = std::move(reporter.samples());
  report.DeriveMetrics();

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench_name.c_str(),
                 json_path.c_str());
    return 1;
  }
  report.WriteJson(out);
  out << '\n';
  std::fprintf(stderr, "%s: wrote %zu samples to %s\n", bench_name.c_str(),
               report.samples.size(), json_path.c_str());
  return 0;
}

}  // namespace weber::bench
