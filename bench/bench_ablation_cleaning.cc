// Ablation: block-cleaning knobs and final clustering choice.
//
// Not tied to one surveyed table; this sweeps the design choices the
// pipeline exposes (DESIGN.md, architecture section): how much block
// filtering to apply, whether automatic purging runs, and which
// clustering closes the pipeline. The shape of interest: filtering ratio
// moves smoothly along the PC/cost frontier; purging is a near-free
// order-of-magnitude cost cut; center clustering trades recall for
// precision against connected components on noisy match graphs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "core/pipeline.h"
#include "eval/match_metrics.h"
#include "matching/matcher.h"

namespace weber {
namespace {

const datagen::Corpus& Corpus() {
  static const datagen::Corpus& corpus = *new datagen::Corpus(
      bench::DirtyCorpus(/*seed=*/53, /*num_entities=*/1000,
                         /*somehow_similar=*/0.3));
  return corpus;
}

// --- Filtering ratio sweep (with purging fixed on). ---
void BM_FilterRatio(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  double ratio = state.range(0) / 100.0;
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocking::TokenBlocking().Build(corpus.collection);
    blocking::AutoPurgeBlocks(blocks);
    blocks = blocking::FilterBlocks(blocks, ratio);
  }
  eval::BlockingQuality q = eval::EvaluateBlocks(blocks, corpus.truth);
  state.counters["ratio"] = ratio;
  state.counters["PC"] = q.PairCompleteness();
  state.counters["pairs"] = static_cast<double>(q.comparisons);
}
BENCHMARK(BM_FilterRatio)->Arg(20)->Arg(40)->Arg(60)->Arg(80)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// --- Purging on/off. ---
void BM_Purging(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  bool purge = state.range(0) != 0;
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocking::TokenBlocking().Build(corpus.collection);
    if (purge) blocking::AutoPurgeBlocks(blocks);
  }
  eval::BlockingQuality q = eval::EvaluateBlocks(blocks, corpus.truth);
  state.counters["purge"] = purge ? 1 : 0;
  state.counters["PC"] = q.PairCompleteness();
  state.counters["pairs"] = static_cast<double>(q.comparisons);
}
BENCHMARK(BM_Purging)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// --- Clustering algorithm under a deliberately noisy matcher. ---
void BM_Clustering(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  matching::TokenJaccardMatcher matcher;
  core::PipelineConfig config;
  config.blocker = &blocker;
  config.auto_purge = true;
  config.matcher = &matcher;
  config.match_threshold = 0.3;  // Loose: chains form in the match graph.
  config.clustering =
      static_cast<core::ClusteringAlgorithm>(state.range(0));
  core::PipelineResult result;
  for (auto _ : state) {
    result = core::RunPipeline(corpus.collection, corpus.truth, config);
  }
  eval::MatchQuality q = eval::EvaluateClusters(result.clusters,
                                                corpus.truth);
  state.counters["precision"] = q.Precision();
  state.counters["recall"] = q.Recall();
  state.counters["F1"] = q.F1();
  state.counters["clusters"] = static_cast<double>(result.clusters.size());
  switch (config.clustering) {
    case core::ClusteringAlgorithm::kConnectedComponents:
      state.SetLabel("connected_components");
      break;
    case core::ClusteringAlgorithm::kCenter:
      state.SetLabel("center");
      break;
    case core::ClusteringAlgorithm::kMergeCenter:
      state.SetLabel("merge_center");
      break;
  }
}
BENCHMARK(BM_Clustering)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
