// Serving-path scaling: the sharded resolver behind its coalescing front
// door under open-loop ingest load.
//
// Claims to measure: (a) ingest throughput scales with the shard count —
// the batch phases fan out shards-way, so 8 shards sustain several times
// the single-shard QPS on the same corpus; (b) tail latency stays
// bounded: p50/p99/p999 come from the load generator's scheduled send
// times (coordinated-omission safe), and overload turns into typed shed
// responses (the `shed` counter), never queue collapse.
//
// The workload is a datagen dirty corpus (duplicates interleaved, so
// ingest does real match work) offered by concurrent workers in 64-entity
// requests through ShardedResolveService — the same path weber_serve
// drives over its socket, minus the socket.
//
// Rows: shards x corpus size. Counters: qps, entities/s, p50/p99/p999 ms,
// shed responses, accepted entities.

#include <benchmark/benchmark.h>

#include <map>
#include <utility>
#include <vector>

#include "bench/bench_report.h"
#include "datagen/corpus_generator.h"
#include "matching/matcher.h"
#include "serve/loadgen.h"
#include "serve/service.h"

namespace weber {
namespace {

/// One shared corpus per size: the three shard rows of a size compare
/// identical streams, and datagen runs outside the timed region.
const std::vector<model::EntityDescription>& CorpusOf(size_t n) {
  static std::map<size_t, std::vector<model::EntityDescription>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    datagen::CorpusConfig config;
    config.num_entities = n;
    config.seed = 42;
    datagen::Corpus corpus = datagen::CorpusGenerator(config).GenerateDirty();
    std::vector<model::EntityDescription> entities;
    entities.reserve(corpus.collection.size());
    for (model::EntityId id = 0; id < corpus.collection.size(); ++id) {
      entities.push_back(corpus.collection.at(id));
    }
    it = cache.emplace(n, std::move(entities)).first;
  }
  return it->second;
}

void BM_ServeIngest(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t distinct = static_cast<size_t>(state.range(1));
  const std::vector<model::EntityDescription>& entities = CorpusOf(distinct);

  serve::LoadGenResult result;
  for (auto _ : state) {
    matching::TokenJaccardMatcher matcher;
    serve::ShardedServiceOptions options;
    options.max_batch = 256;
    options.max_queue_entities = 1u << 16;
    options.resolver.shards = shards;
    options.resolver.match_threshold = 0.6;
    // Online purging keeps degenerate postings (shared city/name tokens)
    // bounded, as any serving deployment would.
    options.resolver.index.max_block_size = 64;
    serve::ShardedResolveService service(&matcher, options);

    serve::LoadGenOptions load;
    load.workers = 16;
    load.batch_size = 64;
    load.rate = 0;  // Closed loop: offer as fast as the service admits.
    result = serve::RunIngestLoad(
        entities, load,
        [&service](std::vector<model::EntityDescription> batch) {
          return service.Ingest(std::move(batch)).status;
        });
    service.BeginShutdown();
    service.Drain();
  }

  state.counters["qps"] = result.qps;
  state.counters["entities_per_s"] = result.entities_per_second;
  state.counters["p50_ms"] = result.p50_ms;
  state.counters["p99_ms"] = result.p99_ms;
  state.counters["p999_ms"] = result.p999_ms;
  state.counters["shed"] = static_cast<double>(result.shed);
  state.counters["entities_ok"] = static_cast<double>(result.entities_ok);
}
BENCHMARK(BM_ServeIngest)
    // Quick rows: enough entities that the phase fan-out dominates setup.
    ->Args({1, 20000})
    ->Args({8, 20000})
    ->Args({64, 20000})
    // Full rows: the million-entity corpus of the scaling claim.
    ->Args({1, 1000000})
    ->Args({8, 1000000})
    ->Args({64, 1000000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace weber

WEBER_BENCH_MAIN("bench_serve");
