// E7 (§III, [2]): merging-based iterative ER (R-Swoosh) vs one-pass
// pairwise matching.
//
// Claims to reproduce (Benjelloun et al., VLDB J.'09): (a) merge closure
// finds matches a single pass over original pairs cannot — descriptions
// whose union, but no single member, carries enough evidence; (b) on
// duplicate-heavy inputs R-Swoosh pays fewer comparisons than the
// quadratic pass because merging shrinks the resolved set.
//
// The workload drops ~35% of each duplicate's attributes, so several
// partial views of an entity must be merged before the matcher can see
// the full picture.
//
// Rows: algorithm. Counters: comparisons, merges, pairwise recall and
// precision of the final clusters.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "eval/match_metrics.h"
#include "iterative/rswoosh.h"
#include "matching/matcher.h"

namespace weber {
namespace {

const datagen::Corpus& Corpus() {
  static const datagen::Corpus& corpus = *[] {
    datagen::CorpusConfig config;
    config.num_entities = 300;
    config.duplicate_fraction = 1.0;
    config.max_extra_descriptions = 3;
    config.attributes_per_entity = 8;
    // Heavy attribute dropping: each description is a partial view.
    config.highly_similar_noise.attribute_drop_prob = 0.35;
    config.highly_similar_noise.token_edit_prob = 0.05;
    config.highly_similar_noise.token_drop_prob = 0.05;
    config.seed = 19;
    return new datagen::Corpus(
        datagen::CorpusGenerator(config).GenerateDirty());
  }();
  return corpus;
}

void Report(benchmark::State& state, const iterative::SwooshResult& result,
            const model::GroundTruth& truth) {
  eval::MatchQuality q = eval::EvaluateClusters(result.clusters, truth);
  state.counters["comparisons"] = static_cast<double>(result.comparisons);
  state.counters["merges"] = static_cast<double>(result.merges);
  state.counters["recall"] = q.Recall();
  state.counters["precision"] = q.Precision();
  state.counters["resolved"] = static_cast<double>(result.resolved.size());
}

void BM_NaivePairwise(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  // Overlap coefficient is merge-monotone (Swoosh's representativity
  // assumption); Jaccard would dilute as records merge.
  matching::TokenOverlapMatcher matcher;
  matching::ThresholdMatcher threshold(&matcher, 0.7);
  iterative::SwooshResult result;
  for (auto _ : state) {
    result = iterative::NaivePairwiseResolve(corpus.collection, threshold);
  }
  Report(state, result, corpus.truth);
}
BENCHMARK(BM_NaivePairwise)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RSwoosh(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  matching::TokenOverlapMatcher matcher;
  matching::ThresholdMatcher threshold(&matcher, 0.7);
  iterative::SwooshResult result;
  for (auto _ : state) {
    result = iterative::RSwoosh(corpus.collection, threshold);
  }
  Report(state, result, corpus.truth);
}
BENCHMARK(BM_RSwoosh)->Unit(benchmark::kMillisecond)->Iterations(1);

// G-Swoosh under the same matcher: correct for any match function, but
// it keeps all partial merges in play, so its comparison count is the
// upper bound the paper motivates ICAR matchers with. Run on a smaller
// slice (the algorithm is super-quadratic) with a safety cap.
void BM_GSwoosh(benchmark::State& state) {
  static const datagen::Corpus& corpus = *[] {
    datagen::CorpusConfig config;
    config.num_entities = 80;
    config.duplicate_fraction = 1.0;
    config.max_extra_descriptions = 3;
    config.attributes_per_entity = 8;
    config.highly_similar_noise.attribute_drop_prob = 0.35;
    config.highly_similar_noise.token_edit_prob = 0.05;
    config.seed = 19;
    return new datagen::Corpus(
        datagen::CorpusGenerator(config).GenerateDirty());
  }();
  matching::TokenOverlapMatcher matcher;
  matching::ThresholdMatcher threshold(&matcher, 0.7);
  iterative::GSwooshOptions options;
  options.max_comparisons = 2'000'000;
  iterative::SwooshResult result;
  for (auto _ : state) {
    result = iterative::GSwoosh(corpus.collection, threshold, options);
  }
  Report(state, result, corpus.truth);
  iterative::SwooshResult r_swoosh =
      iterative::RSwoosh(corpus.collection, threshold);
  state.counters["rswoosh_comparisons"] =
      static_cast<double>(r_swoosh.comparisons);
}
BENCHMARK(BM_GSwoosh)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
