#ifndef WEBER_BENCH_BENCH_UTIL_H_
#define WEBER_BENCH_BENCH_UTIL_H_

// Shared corpus builders for the benchmark harness. Each experiment bench
// (see DESIGN.md, per-experiment index) reports quality counters through
// benchmark::State::counters so that one `--benchmark_format=console` run
// regenerates the table/series the corresponding surveyed result reports.

#include <cstdint>

#include "datagen/corpus_generator.h"

namespace weber::bench {

/// The default dirty workload: 2000 entities, half duplicated, light
/// noise. ~2800 descriptions.
inline datagen::Corpus DirtyCorpus(uint64_t seed = 42,
                                   size_t num_entities = 2000,
                                   double somehow_similar = 0.2) {
  datagen::CorpusConfig config;
  config.num_entities = num_entities;
  config.duplicate_fraction = 0.5;
  config.max_extra_descriptions = 2;
  config.somehow_similar_fraction = somehow_similar;
  config.seed = seed;
  return datagen::CorpusGenerator(config).GenerateDirty();
}

/// Clean-clean workload with tunable schema divergence (the structural-
/// heterogeneity knob of experiment E2).
inline datagen::Corpus CleanCleanCorpus(double schema_divergence,
                                        uint64_t seed = 43,
                                        size_t num_entities = 1500) {
  datagen::CorpusConfig config;
  config.num_entities = num_entities;
  config.duplicate_fraction = 0.5;
  config.schema_divergence = schema_divergence;
  config.somehow_similar_fraction = 0.2;
  config.seed = seed;
  return datagen::CorpusGenerator(config).GenerateCleanClean();
}

/// Two-type relational workload (experiments E9/E12).
inline datagen::RelationalCorpus RelationalCorpus(uint64_t seed = 44) {
  datagen::RelationalConfig config;
  config.tail.num_entities = 250;
  config.tail.duplicate_fraction = 0.7;
  config.tail.type_name = "architect";
  config.tail.seed = seed;
  config.head.num_entities = 400;
  config.head.duplicate_fraction = 0.5;
  config.head.type_name = "building";
  config.relation_predicate = "architect";
  config.name_pool_fraction = 0.12;
  config.seed = seed + 1;
  return datagen::RelationalCorpusGenerator(config).Generate();
}

}  // namespace weber::bench

#endif  // WEBER_BENCH_BENCH_UTIL_H_
