// Library hygiene micro-benchmarks: throughput of the text-similarity
// primitives everything else is built on. Not tied to a surveyed result;
// useful for spotting regressions in the hot per-pair path (matching
// cost dominates every ER budget model in Section IV).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "text/minhash.h"
#include "text/phonetic.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace weber {
namespace {

std::vector<std::string> RandomTokens(size_t count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::string> tokens;
  tokens.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    tokens.push_back(rng.NextToken(5 + rng.NextBounded(8)));
  }
  return tokens;
}

void BM_Levenshtein(benchmark::State& state) {
  util::Rng rng(1);
  std::string a = rng.NextToken(static_cast<size_t>(state.range(0)));
  std::string b = rng.NextToken(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(32)->Arg(128);

void BM_JaroWinkler(benchmark::State& state) {
  util::Rng rng(2);
  std::string a = rng.NextToken(static_cast<size_t>(state.range(0)));
  std::string b = rng.NextToken(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler)->Arg(8)->Arg(32)->Arg(128);

void BM_JaccardTokenSets(benchmark::State& state) {
  auto a = RandomTokens(static_cast<size_t>(state.range(0)), 3);
  auto b = RandomTokens(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaccardSimilarity(a, b));
  }
}
BENCHMARK(BM_JaccardTokenSets)->Arg(8)->Arg(64)->Arg(512);

void BM_Soundex(benchmark::State& state) {
  util::Rng rng(5);
  std::string word = rng.NextToken(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Soundex(word));
  }
}
BENCHMARK(BM_Soundex);

void BM_MinHashSignature(benchmark::State& state) {
  text::MinHasher hasher(static_cast<size_t>(state.range(0)));
  auto tokens = RandomTokens(30, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(tokens));
  }
}
BENCHMARK(BM_MinHashSignature)->Arg(16)->Arg(64)->Arg(256);

void BM_NormalizeAndTokenize(benchmark::State& state) {
  std::string value =
      "Jean-Luc Picard, Captain of the U.S.S. Enterprise (NCC-1701-D)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::NormalizeAndTokenize(value));
  }
}
BENCHMARK(BM_NormalizeAndTokenize);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
