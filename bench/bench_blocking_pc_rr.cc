// E2 (§II, [21][13]): schema-agnostic vs schema-based blocking under
// structural heterogeneity.
//
// Claim to reproduce: on heterogeneous Web data, token blocking keeps
// near-perfect pair completeness at a high reduction ratio, while
// traditional schema-based standard blocking loses recall as sources
// diverge — the more attributes the second KB renames, the more matches
// standard blocking misses, until it finds none at all.
//
// Rows: (method, schema_divergence). Counters: PC, PQ, RR, distinct
// pairs.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "blocking/attribute_clustering.h"
#include "blocking/block_purging.h"
#include "blocking/standard_blocking.h"
#include "blocking/token_blocking.h"
#include "eval/blocking_metrics.h"

namespace weber {
namespace {

// Divergence levels are encoded as integer percent for benchmark Args.
const datagen::Corpus& CorpusFor(int divergence_pct) {
  static auto& cache =
      *new std::map<int, std::unique_ptr<datagen::Corpus>>();
  auto& slot = cache[divergence_pct];
  if (!slot) {
    slot = std::make_unique<datagen::Corpus>(
        bench::CleanCleanCorpus(divergence_pct / 100.0));
  }
  return *slot;
}

void Report(benchmark::State& state, const blocking::BlockCollection& blocks,
            const model::GroundTruth& truth) {
  eval::BlockingQuality q = eval::EvaluateBlocks(blocks, truth);
  state.counters["PC"] = q.PairCompleteness();
  state.counters["PQ"] = q.PairQuality();
  state.counters["RR"] = q.ReductionRatio();
  state.counters["pairs"] = static_cast<double>(q.comparisons);
}

void BM_StandardBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = CorpusFor(static_cast<int>(state.range(0)));
  blocking::StandardBlocking blocker({"attr0", "attr1"});
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocker.Build(corpus.collection);
  }
  Report(state, blocks, corpus.truth);
}
BENCHMARK(BM_StandardBlocking)
    ->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_TokenBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = CorpusFor(static_cast<int>(state.range(0)));
  blocking::TokenBlocking blocker;
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocker.Build(corpus.collection);
    blocking::AutoPurgeBlocks(blocks);
  }
  Report(state, blocks, corpus.truth);
}
BENCHMARK(BM_TokenBlocking)
    ->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_AttributeClusteringBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = CorpusFor(static_cast<int>(state.range(0)));
  blocking::AttributeClusteringBlocking blocker;
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocker.Build(corpus.collection);
    blocking::AutoPurgeBlocks(blocks);
  }
  Report(state, blocks, corpus.truth);
}
BENCHMARK(BM_AttributeClusteringBlocking)
    ->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
