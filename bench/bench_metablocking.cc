// E4 (§II, [22]): meta-blocking weight x pruning sweep.
//
// Claim to reproduce (Papadakis et al., TKDE'14): restructuring a
// redundancy-heavy blocking collection via its blocking graph discards
// the vast majority of comparisons while retaining nearly all matches.
// Node-centric schemes (WNP/CNP) keep more matches than their global
// counterparts (WEP/CEP) at similar cost, and ARCS/ECBS weights tend to
// dominate raw CBS.
//
// Rows: weight scheme x pruning scheme. Counters: kept pairs, share of
// original comparisons, PC (recall of the true matches among kept
// pairs), PQ.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "eval/blocking_metrics.h"
#include "metablocking/pruning_schemes.h"
#include "metablocking/weight_schemes.h"

namespace weber {
namespace {

struct Baseline {
  datagen::Corpus corpus;
  blocking::BlockCollection blocks;
  uint64_t original_pairs;
};

const Baseline& GetBaseline() {
  static const Baseline& baseline = *[] {
    auto* b = new Baseline{bench::DirtyCorpus(/*seed=*/11,
                                              /*num_entities=*/1200),
                           {}, 0};
    b->blocks = blocking::TokenBlocking().Build(b->corpus.collection);
    blocking::AutoPurgeBlocks(b->blocks);
    b->original_pairs = b->blocks.DistinctPairs().size();
    return b;
  }();
  return baseline;
}

void BM_MetaBlocking(benchmark::State& state) {
  const Baseline& baseline = GetBaseline();
  auto weights =
      metablocking::kAllWeightSchemes[static_cast<size_t>(state.range(0))];
  auto pruning =
      metablocking::kAllPruningSchemes[static_cast<size_t>(state.range(1))];
  std::vector<model::IdPair> kept;
  for (auto _ : state) {
    kept = metablocking::MetaBlock(baseline.blocks, weights, pruning);
  }
  eval::BlockingQuality q = eval::EvaluatePairs(kept, baseline.corpus.truth,
                                                baseline.corpus.collection);
  state.counters["kept_pairs"] = static_cast<double>(q.comparisons);
  state.counters["kept_share"] =
      static_cast<double>(q.comparisons) /
      static_cast<double>(baseline.original_pairs);
  state.counters["PC"] = q.PairCompleteness();
  state.counters["PQ"] = q.PairQuality();
  state.SetLabel(metablocking::ToString(weights) + "+" +
                 metablocking::ToString(pruning));
}
BENCHMARK(BM_MetaBlocking)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Reciprocal variants of the node-centric schemes.
void BM_MetaBlockingReciprocal(benchmark::State& state) {
  const Baseline& baseline = GetBaseline();
  auto weights =
      metablocking::kAllWeightSchemes[static_cast<size_t>(state.range(0))];
  auto pruning = state.range(1) == 0 ? metablocking::PruningScheme::kWnp
                                     : metablocking::PruningScheme::kCnp;
  metablocking::PruneOptions options;
  options.reciprocal = true;
  std::vector<model::IdPair> kept;
  for (auto _ : state) {
    kept = metablocking::MetaBlock(baseline.blocks, weights, pruning,
                                   options);
  }
  eval::BlockingQuality q = eval::EvaluatePairs(kept, baseline.corpus.truth,
                                                baseline.corpus.collection);
  state.counters["kept_pairs"] = static_cast<double>(q.comparisons);
  state.counters["kept_share"] =
      static_cast<double>(q.comparisons) /
      static_cast<double>(baseline.original_pairs);
  state.counters["PC"] = q.PairCompleteness();
  state.counters["PQ"] = q.PairQuality();
  state.SetLabel("reciprocal " + metablocking::ToString(weights) + "+" +
                 metablocking::ToString(pruning));
}
BENCHMARK(BM_MetaBlockingReciprocal)
    ->ArgsProduct({{2, 4}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
