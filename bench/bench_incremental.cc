// E13 (§IV): resolve-on-ingest serving — delta blocking vs rebuild.
//
// Claims to measure: (a) ingest throughput stays flat as the store grows,
// because absorbing an entity touches only its own tokens' postings
// (index_updates per entity is constant) while a rebuild would touch the
// whole index; (b) Resolve is a sub-millisecond lookup (union-find Find
// plus a member-list copy) even over a 100k-entity store.
//
// The workload is the serving-shaped synthetic corpus: each entity holds
// one unique token and one group token shared with exactly one partner,
// and the online purge cap bounds any posting that still grows too large.
//
// Rows: store size. Counters: entities/s, per-entity index updates,
// candidates, merges, and p50/p99 Resolve latency (microseconds) from the
// weber.incremental.resolve_seconds histogram.

#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "incremental/serving.h"
#include "matching/matcher.h"
#include "obs/metrics.h"

namespace weber {
namespace {

std::vector<model::EntityDescription> ServingCorpus(size_t n) {
  std::vector<model::EntityDescription> entities;
  entities.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    model::EntityDescription d("u/" + std::to_string(i));
    d.AddPair("p", "uniq" + std::to_string(i) + " grp" +
                       std::to_string(i % (n / 2 + 1)));
    entities.push_back(std::move(d));
  }
  return entities;
}

incremental::ServiceOptions ServingOptions(obs::MetricsRegistry* registry) {
  incremental::ServiceOptions options;
  options.max_batch = 256;
  options.resolver.match_threshold = 0.6;
  // Online purging keeps any degenerate posting bounded.
  options.resolver.index.max_block_size = 64;
  options.resolver.metrics = registry;
  return options;
}

void IngestAll(incremental::ResolveService& service,
               std::vector<model::EntityDescription> entities,
               size_t batch_size) {
  for (size_t start = 0; start < entities.size(); start += batch_size) {
    size_t end = std::min(start + batch_size, entities.size());
    service.Ingest(std::vector<model::EntityDescription>(
        entities.begin() + static_cast<int64_t>(start),
        entities.begin() + static_cast<int64_t>(end)));
  }
}

void BM_IngestThroughput(benchmark::State& state) {
  const size_t store_size = static_cast<size_t>(state.range(0));
  std::vector<model::EntityDescription> entities = ServingCorpus(store_size);
  matching::TokenJaccardMatcher matcher;
  uint64_t index_updates = 0;
  uint64_t candidates = 0;
  uint64_t merges = 0;
  for (auto _ : state) {
    incremental::ResolveService service(&matcher, ServingOptions(nullptr));
    IngestAll(service, entities, 256);
    index_updates = service.resolver().index_stats().updates;
    candidates = service.resolver().candidates();
    merges = service.resolver().merges();
  }
  state.counters["entities_per_s"] = benchmark::Counter(
      static_cast<double>(store_size) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["updates_per_entity"] =
      static_cast<double>(index_updates) / static_cast<double>(store_size);
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["merges"] = static_cast<double>(merges);
}
BENCHMARK(BM_IngestThroughput)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ResolveLatency(benchmark::State& state) {
  const size_t store_size = static_cast<size_t>(state.range(0));
  matching::TokenJaccardMatcher matcher;
  obs::MetricsRegistry registry;
  incremental::ResolveService service(&matcher, ServingOptions(&registry));
  IngestAll(service, ServingCorpus(store_size), 256);

  std::mt19937 rng(7);
  std::uniform_int_distribution<model::EntityId> pick(
      0, static_cast<model::EntityId>(store_size - 1));
  for (auto _ : state) {
    auto resolution = service.Resolve(pick(rng));
    benchmark::DoNotOptimize(resolution);
  }
  obs::HistogramSnapshot latency =
      registry.TakeSnapshot().histograms["weber.incremental.resolve_seconds"];
  state.counters["resolve_p50_us"] = latency.Quantile(0.5) * 1e6;
  state.counters["resolve_p99_us"] = latency.Quantile(0.99) * 1e6;
}
BENCHMARK(BM_ResolveLatency)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace weber

WEBER_BENCH_MAIN("bench_incremental");
