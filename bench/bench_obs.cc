// Observability overhead micro-benches.
//
// The obs layer is only worth having if detached instrumentation sites
// are free and attached ones are cheap enough for hot paths. Rows:
// the detached fast path (one relaxed atomic load), sharded counter
// increments (single- and multi-thread), histogram records, and the
// snapshot + JSON export cost for a populated registry.

#include <benchmark/benchmark.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace weber {
namespace {

// The pattern every instrumentation site uses when no registry is
// attached: this must compile down to a load and a branch.
void BM_Obs_DetachedSiteCheck(benchmark::State& state) {
  for (auto _ : state) {
    obs::MetricsRegistry* registry = obs::Current();
    benchmark::DoNotOptimize(registry);
    if (registry != nullptr) {
      registry->GetCounter("weber.bench.never").Increment();
    }
  }
}
BENCHMARK(BM_Obs_DetachedSiteCheck);

void BM_Obs_CounterIncrement(benchmark::State& state) {
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  obs::Counter& counter = registry->GetCounter("weber.bench.counter");
  for (auto _ : state) {
    counter.Increment();
  }
}
BENCHMARK(BM_Obs_CounterIncrement)->Threads(1)->Threads(4);

void BM_Obs_CounterLookupAndIncrement(benchmark::State& state) {
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  for (auto _ : state) {
    registry->GetCounter("weber.bench.lookup").Increment();
  }
}
BENCHMARK(BM_Obs_CounterLookupAndIncrement);

void BM_Obs_HistogramRecord(benchmark::State& state) {
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  obs::Histogram& histogram =
      registry->GetHistogram("weber.bench.histogram");
  double value = 0.001;
  for (auto _ : state) {
    histogram.Record(value);
    value = value > 100.0 ? 0.001 : value * 1.01;
  }
}
BENCHMARK(BM_Obs_HistogramRecord);

void BM_Obs_SnapshotAndJsonExport(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("weber.bench.counter." + std::to_string(i)).Add(i);
  }
  for (int i = 0; i < 8; ++i) {
    obs::Histogram& h =
        registry.GetHistogram("weber.bench.hist." + std::to_string(i));
    for (int v = 1; v <= 256; ++v) h.Record(v);
  }
  {
    obs::Span root(&registry, "pipeline");
    obs::Span child(&registry, "blocking");
  }
  size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    obs::JsonExporter().Export(registry, out);
    bytes = out.str().size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["json_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_Obs_SnapshotAndJsonExport);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
