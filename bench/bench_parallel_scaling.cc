// E6 (§II, [18][10][11]): MapReduce-parallel blocking and meta-blocking.
//
// Claim to reproduce (Dedoop; Efthymiou et al. parallel meta-blocking):
// both token blocking and entity-based parallel meta-blocking scale
// near-linearly with the number of workers (on our in-process MapReduce
// substrate, threads stand in for Hadoop nodes).
//
// SUBSTITUTION NOTE: this container exposes a single CPU core, so wall
// clock cannot show real speedup. The series to check is therefore the
// `*_balance_speedup` counters — per-worker thread-CPU sums over the
// slowest worker, i.e., the speedup the same partitioning realises on
// ideal cores. Near-linear balance (≈workers) reproduces the published
// shape; outputs are verified bit-equal to the sequential algorithms in
// tests/mapreduce_test.cc regardless of worker count.
//
// The executor-backed rows measure the same shape for the in-library hot
// paths (meta-blocking weighting/pruning and batched progressive
// matching) on the shared work-stealing pool: `balance_speedup` is read
// back from the `weber.executor.parallel_for_balance` histogram the
// ParallelFor calls publish.
//
// Rows: (job, workers).

#include <benchmark/benchmark.h>

#include <functional>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "core/executor.h"
#include "mapreduce/parallel_meta_blocking.h"
#include "mapreduce/parallel_token_blocking.h"
#include "matching/matcher.h"
#include "metablocking/pruning_schemes.h"
#include "obs/metrics.h"
#include "progressive/scheduler.h"

namespace weber {
namespace {

const datagen::Corpus& Corpus() {
  static const datagen::Corpus& corpus = *new datagen::Corpus(
      bench::DirtyCorpus(/*seed=*/17, /*num_entities=*/4000));
  return corpus;
}

const blocking::BlockCollection& Blocks() {
  static const blocking::BlockCollection& blocks = *[] {
    auto* b = new blocking::BlockCollection(
        blocking::TokenBlocking().Build(Corpus().collection));
    blocking::AutoPurgeBlocks(*b);
    return b;
  }();
  return blocks;
}

void BM_ParallelTokenBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  size_t workers = static_cast<size_t>(state.range(0));
  mapreduce::JobStats stats;
  for (auto _ : state) {
    auto blocks =
        mapreduce::ParallelTokenBlocking(corpus.collection, workers, {},
                                         &stats);
    benchmark::DoNotOptimize(blocks);
  }
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["map_balance_speedup"] = stats.map_balance_speedup;
  state.counters["reduce_balance_speedup"] = stats.reduce_balance_speedup;
  state.counters["map_s"] = stats.map_seconds;
  state.counters["shuffle_s"] = stats.shuffle_seconds;
  state.counters["intermediate"] =
      static_cast<double>(stats.intermediate_pairs);
}
BENCHMARK(BM_ParallelTokenBlocking)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);

void BM_ParallelMetaBlocking(benchmark::State& state) {
  size_t workers = static_cast<size_t>(state.range(0));
  mapreduce::ParallelMetaBlockingStats stats;
  for (auto _ : state) {
    auto pairs = mapreduce::ParallelMetaBlock(
        Blocks(), metablocking::WeightScheme::kJs,
        metablocking::PruningScheme::kWnp, {}, workers, &stats);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["weighting_balance_speedup"] =
      stats.weighting_balance_speedup;
  state.counters["weighting_s"] = stats.weighting_seconds;
  state.counters["combine_s"] = stats.combine_seconds;
}
BENCHMARK(BM_ParallelMetaBlocking)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);

// Mean chunk balance of the ParallelFor calls issued while `fn` ran: the
// speedup this partitioning realises on ideal cores (see the substitution
// note above).
double MeasuredBalance(const std::function<void()>& fn) {
  obs::MetricsRegistry registry;
  obs::ScopedRegistry attach(&registry);
  fn();
  obs::RegistrySnapshot snap = registry.TakeSnapshot();
  auto it = snap.histograms.find("weber.executor.parallel_for_balance");
  return it == snap.histograms.end() ? 1.0 : it->second.Mean();
}

void BM_ExecutorMetaBlocking(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  core::ScopedParallelism parallelism(threads);
  for (auto _ : state) {
    auto pairs = metablocking::MetaBlock(Blocks(),
                                         metablocking::WeightScheme::kJs,
                                         metablocking::PruningScheme::kWnp);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["workers"] = static_cast<double>(threads);
  state.counters["balance_speedup"] = MeasuredBalance([] {
    auto pairs = metablocking::MetaBlock(Blocks(),
                                         metablocking::WeightScheme::kJs,
                                         metablocking::PruningScheme::kWnp);
    benchmark::DoNotOptimize(pairs);
  });
}
BENCHMARK(BM_ExecutorMetaBlocking)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);

void BM_ExecutorBatchedMatching(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  core::ScopedParallelism parallelism(threads);
  const datagen::Corpus& corpus = Corpus();
  std::vector<model::IdPair> candidates = metablocking::MetaBlock(
      Blocks(), metablocking::WeightScheme::kJs,
      metablocking::PruningScheme::kWnp);
  matching::TokenJaccardMatcher matcher;
  matching::ThresholdMatcher threshold(&matcher, 0.5);
  auto run = [&] {
    progressive::StaticListScheduler scheduler(candidates);
    auto result = progressive::RunProgressive(
        corpus.collection, scheduler, threshold, candidates.size(),
        corpus.truth);
    benchmark::DoNotOptimize(result);
  };
  for (auto _ : state) run();
  state.counters["workers"] = static_cast<double>(threads);
  state.counters["balance_speedup"] = MeasuredBalance(run);
}
BENCHMARK(BM_ExecutorBatchedMatching)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);

}  // namespace
}  // namespace weber

WEBER_BENCH_MAIN("bench_parallel_scaling");
