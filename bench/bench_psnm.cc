// E11 (§IV, [23]): PSNM lookahead vs plain progressive sorted
// neighbourhood.
//
// Claim to reproduce (Papenbrock et al., TKDE'15): when matches appear in
// dense areas of the initial sorting — a few entities with many duplicate
// descriptions amid singletons — the local lookahead (on a match at
// (i, j), immediately compare (i+1, j) and (i, j+1)) harvests whole
// duplicate regions early and beats the plain window order at small
// budgets; on uniformly spread duplicates the two converge.
//
// Rows: (scheduler, corpus density, budget multiple). Counters:
// recall@budget, AUC.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "matching/matcher.h"
#include "progressive/progressive_sn.h"
#include "progressive/psnm.h"
#include "progressive/scheduler.h"

namespace weber {
namespace {

// density 0: duplicates uniformly spread (every entity has 1-2 extras).
// density 1: dense regions (15% of entities carry up to 8 extras).
const datagen::Corpus& CorpusFor(int density) {
  static auto& cache = *new std::map<int, datagen::Corpus>();
  auto it = cache.find(density);
  if (it == cache.end()) {
    datagen::CorpusConfig config;
    config.num_entities = 800;
    if (density == 0) {
      config.duplicate_fraction = 1.0;
      config.max_extra_descriptions = 2;
    } else {
      config.duplicate_fraction = 0.15;
      config.max_extra_descriptions = 8;
    }
    config.highly_similar_noise.token_edit_prob = 0.02;
    config.highly_similar_noise.token_drop_prob = 0.02;
    config.highly_similar_noise.attribute_drop_prob = 0.02;
    config.seed = 37;
    it = cache.emplace(density,
                       datagen::CorpusGenerator(config).GenerateDirty())
             .first;
  }
  return it->second;
}

void Report(benchmark::State& state,
            const progressive::ProgressiveRunResult& run, uint64_t budget) {
  state.counters["recall_at_budget"] = run.curve.RecallAt(budget);
  state.counters["AUC"] = run.curve.AreaUnderCurve(budget);
}

void BM_PlainSN(benchmark::State& state) {
  const datagen::Corpus& corpus = CorpusFor(static_cast<int>(state.range(0)));
  matching::TokenJaccardMatcher matcher;
  uint64_t budget =
      corpus.collection.size() * static_cast<uint64_t>(state.range(1));
  progressive::ProgressiveRunResult run(0);
  for (auto _ : state) {
    progressive::ProgressiveSnScheduler scheduler(corpus.collection);
    run = progressive::RunProgressive(corpus.collection, scheduler,
                                      {&matcher, 0.5}, budget, corpus.truth);
  }
  Report(state, run, budget);
}
BENCHMARK(BM_PlainSN)->ArgsProduct({{0, 1}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_PsnmLookahead(benchmark::State& state) {
  const datagen::Corpus& corpus = CorpusFor(static_cast<int>(state.range(0)));
  matching::TokenJaccardMatcher matcher;
  uint64_t budget =
      corpus.collection.size() * static_cast<uint64_t>(state.range(1));
  progressive::ProgressiveRunResult run(0);
  for (auto _ : state) {
    progressive::PsnmScheduler scheduler(corpus.collection);
    run = progressive::RunProgressive(corpus.collection, scheduler,
                                      {&matcher, 0.5}, budget, corpus.truth);
  }
  Report(state, run, budget);
}
BENCHMARK(BM_PsnmLookahead)->ArgsProduct({{0, 1}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
