// E3 (§II, [7]): the PC/RR trade-off across blocking families.
//
// Claim to reproduce (Christen's indexing survey): every blocking method
// trades pair completeness against reduction ratio along its own knob —
// sorted neighbourhood recall grows with the window at the price of RR;
// q-grams blocking is more recall-robust (and more expensive) than token
// blocking; suffix blocking sits between; canopy depends on its two
// thresholds.
//
// Rows: (method, knob). Counters: PC, PQ, RR, distinct pairs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "blocking/block_purging.h"
#include "blocking/canopy_clustering.h"
#include "blocking/lsh_blocking.h"
#include "blocking/qgrams_blocking.h"
#include "blocking/sorted_neighborhood.h"
#include "blocking/suffix_blocking.h"
#include "blocking/token_blocking.h"
#include "eval/blocking_metrics.h"

namespace weber {
namespace {

const datagen::Corpus& Corpus() {
  static const datagen::Corpus& corpus = *new datagen::Corpus(
      bench::DirtyCorpus(/*seed=*/5, /*num_entities=*/1200,
                         /*somehow_similar=*/0.3));
  return corpus;
}

void Report(benchmark::State& state, const blocking::BlockCollection& blocks,
            const model::GroundTruth& truth) {
  eval::BlockingQuality q = eval::EvaluateBlocks(blocks, truth);
  state.counters["PC"] = q.PairCompleteness();
  state.counters["PQ"] = q.PairQuality();
  state.counters["RR"] = q.ReductionRatio();
  state.counters["pairs"] = static_cast<double>(q.comparisons);
}

void BM_TokenBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::TokenBlocking blocker;
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocker.Build(corpus.collection);
    blocking::AutoPurgeBlocks(blocks);
  }
  Report(state, blocks, corpus.truth);
}
BENCHMARK(BM_TokenBlocking)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SortedNeighborhood(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::SortedNeighborhood blocker(static_cast<size_t>(state.range(0)));
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocker.Build(corpus.collection);
  }
  Report(state, blocks, corpus.truth);
}
BENCHMARK(BM_SortedNeighborhood)
    ->Arg(3)->Arg(5)->Arg(9)->Arg(17)->Arg(33)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_QGramsBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::QGramsBlocking blocker(static_cast<size_t>(state.range(0)));
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocker.Build(corpus.collection);
    blocking::AutoPurgeBlocks(blocks);
  }
  Report(state, blocks, corpus.truth);
}
BENCHMARK(BM_QGramsBlocking)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SuffixBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::SuffixBlocking blocker(static_cast<size_t>(state.range(0)),
                                   /*max_block_size=*/128);
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocker.Build(corpus.collection);
  }
  Report(state, blocks, corpus.truth);
}
BENCHMARK(BM_SuffixBlocking)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_CanopyClustering(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::CanopyOptions options;
  options.loose_threshold = state.range(0) / 100.0;
  options.tight_threshold = options.loose_threshold + 0.25;
  blocking::CanopyClustering blocker(options);
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocker.Build(corpus.collection);
  }
  Report(state, blocks, corpus.truth);
}
BENCHMARK(BM_CanopyClustering)->Arg(10)->Arg(20)->Arg(35)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// MinHash-LSH: the (bands, rows) pair is the knob; arg encodes
// rows_per_band with bands = 64 / rows.
void BM_LshBlocking(benchmark::State& state) {
  const datagen::Corpus& corpus = Corpus();
  blocking::LshOptions options;
  options.rows_per_band = static_cast<size_t>(state.range(0));
  options.bands = 64 / options.rows_per_band;
  blocking::LshBlocking blocker(options);
  blocking::BlockCollection blocks;
  for (auto _ : state) {
    blocks = blocker.Build(corpus.collection);
  }
  Report(state, blocks, corpus.truth);
  state.counters["s_curve_threshold"] = blocker.ThresholdEstimate();
}
BENCHMARK(BM_LshBlocking)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
