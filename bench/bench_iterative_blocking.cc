// E8 (§III, [27]): iterative blocking vs independent per-block ER.
//
// Claims to reproduce (Whang et al., SIGMOD'09): processing blocks
// iteratively with merge propagation (a) finds more matches than
// resolving each block independently, because a merge in one block
// exposes matches in another; and (b) saves the redundant comparisons
// that overlapping blocks otherwise repeat, at the cost of re-processing
// blocks until a fixpoint.
//
// Rows: algorithm. Counters: comparisons, merges, recall, block passes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "eval/match_metrics.h"
#include "iterative/iterative_blocking.h"
#include "matching/matcher.h"

namespace weber {
namespace {

struct Workload {
  datagen::Corpus corpus;
  blocking::BlockCollection blocks;
};

const Workload& GetWorkload() {
  static const Workload& workload = *[] {
    datagen::CorpusConfig config;
    config.num_entities = 400;
    config.duplicate_fraction = 1.0;
    config.max_extra_descriptions = 3;
    config.attributes_per_entity = 8;
    config.highly_similar_noise.attribute_drop_prob = 0.35;
    config.highly_similar_noise.token_edit_prob = 0.05;
    config.seed = 23;
    auto* w = new Workload{
        datagen::CorpusGenerator(config).GenerateDirty(), {}};
    w->blocks = blocking::TokenBlocking().Build(w->corpus.collection);
    blocking::AutoPurgeBlocks(w->blocks);
    return w;
  }();
  return workload;
}

void Report(benchmark::State& state,
            const iterative::IterativeBlockingResult& result,
            const model::GroundTruth& truth) {
  eval::MatchQuality q = eval::EvaluateClusters(result.clusters, truth);
  state.counters["comparisons"] = static_cast<double>(result.comparisons);
  state.counters["merges"] = static_cast<double>(result.merges);
  state.counters["recall"] = q.Recall();
  state.counters["precision"] = q.Precision();
  state.counters["block_passes"] =
      static_cast<double>(result.block_passes);
}

void BM_IndependentBlockER(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenOverlapMatcher matcher;
  matching::ThresholdMatcher threshold(&matcher, 0.7);
  iterative::IterativeBlockingResult result;
  for (auto _ : state) {
    result = iterative::IndependentBlockER(workload.blocks, threshold);
  }
  Report(state, result, workload.corpus.truth);
}
BENCHMARK(BM_IndependentBlockER)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_IterativeBlocking(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenOverlapMatcher matcher;
  matching::ThresholdMatcher threshold(&matcher, 0.7);
  iterative::IterativeBlockingResult result;
  for (auto _ : state) {
    result = iterative::IterativeBlocking(workload.blocks, threshold);
  }
  Report(state, result, workload.corpus.truth);
}
BENCHMARK(BM_IterativeBlocking)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
