#ifndef WEBER_BENCH_BENCH_REPORT_H_
#define WEBER_BENCH_BENCH_REPORT_H_

// Machine-readable bench harness. Every bench that defines its main via
// WEBER_BENCH_MAIN keeps the normal google-benchmark console output and
// flag surface, and additionally accepts
//
//   --json=PATH
//
// writing a stable-schema report consumed by tools/bench/run_benchmarks.py
// (which merges the per-bench files into one BENCH_report.json — the
// repo's machine-checkable perf trajectory):
//
//   {"schema": "weber-bench-report/1",
//    "bench": "<binary name>",
//    "config": {"argv": "...", "workers": "N", ...},
//    "metrics": {"<row>.real_time_ms": .., "<row>.<counter>": .., ...},
//    "samples": [{"name": "<row>", "iterations": N, "real_time_ms": ..,
//                 "cpu_time_ms": .., "counters": {..}}, ...]}
//
// `samples` carries one entry per benchmark row (aggregates and errored
// rows are excluded); `metrics` is the same data flattened to one
// key->number map so trajectory diffs are a dictionary comparison.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace weber::bench {

/// One benchmark row: times are per-iteration milliseconds.
struct BenchSample {
  std::string name;
  uint64_t iterations = 0;
  double real_time_ms = 0.0;
  double cpu_time_ms = 0.0;
  std::map<std::string, double> counters;
};

/// The per-binary report the --json flag writes.
struct BenchReport {
  std::string bench;
  std::map<std::string, std::string> config;
  std::map<std::string, double> metrics;
  std::vector<BenchSample> samples;

  /// Rebuilds `metrics` by flattening every sample into
  /// "<name>.real_time_ms" / "<name>.<counter>" entries.
  void DeriveMetrics();

  void WriteJson(std::ostream& out) const;
  std::string ToJson() const;
};

/// Drop-in replacement for benchmark::RunSpecifiedBenchmarks-based mains:
/// strips --json=PATH from argv, runs the registered benchmarks with the
/// usual console reporter, and (when --json was given) writes the report.
/// Returns a process exit code.
int ReportMain(int argc, char** argv, const std::string& bench_name);

}  // namespace weber::bench

/// Replaces BENCHMARK_MAIN() in benches that emit machine-readable
/// reports. `bench_name` is the string recorded in the report's `bench`
/// field (by convention, the binary name).
#define WEBER_BENCH_MAIN(bench_name)                                 \
  int main(int argc, char** argv) {                                  \
    return ::weber::bench::ReportMain(argc, argv, bench_name);       \
  }

#endif  // WEBER_BENCH_BENCH_REPORT_H_
