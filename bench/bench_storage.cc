// Durability subsystem rates (see DESIGN.md "Durability"): snapshot
// write and load bandwidth, the O(1) zero-copy mapped open, and WAL
// append/replay throughput.
//
// Claims to measure: (a) snapshot encode+write and eager load move at
// memory/disk bandwidth, scaling linearly in state size; (b) the mapped
// open with arena verification off is flat in file size — it parses the
// header and borrows the arenas out of the mapping without touching the
// payload pages (the zero-copy claim, visible as near-constant
// open_us across rows); (c) WAL append rates under fsync=off/batch
// bound the no-durability and group-commit costs, and replay drains a
// cold WAL at ingest speed.
//
// Rows: resolver store size (snapshot benches), record count (WAL
// benches). Counters: bytes, MB/s, records/s, open_us.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "incremental/resolver.h"
#include "matching/matcher.h"
#include "matching/signatures.h"
#include "storage/durable.h"
#include "storage/file_io.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace weber {
namespace {

/// A disposable directory under /tmp, removed with its contents.
class BenchDir {
 public:
  BenchDir() {
    char pattern[] = "/tmp/weber-bench-storage-XXXXXX";
    char* made = mkdtemp(pattern);
    path_ = made == nullptr ? "/tmp" : made;
  }
  ~BenchDir() {
    std::vector<std::string> entries;
    if (storage::ListDirectory(path_, &entries).ok()) {
      for (const std::string& entry : entries) {
        std::remove((path_ + "/" + entry).c_str());
      }
    }
    std::remove(path_.c_str());
  }
  std::string file(const std::string& name) const { return path_ + "/" + name; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Duplicate-rich synthetic corpus: every pair of twins shares a name, so
/// the resolver accumulates matches, clusters and a busy token index —
/// snapshot sections of every kind are non-trivial.
std::vector<model::EntityDescription> StorageCorpus(size_t n) {
  const char* first[] = {"alice", "bob", "carol", "dave", "erin", "frank"};
  const char* last[] = {"smith", "jones", "white", "black", "green"};
  std::vector<model::EntityDescription> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    model::EntityDescription d("http://kb/" + std::to_string(i), "person");
    size_t pair_id = i / 2;
    d.AddPair("name", std::string(first[pair_id % 6]) + " " +
                          last[(pair_id / 6) % 5] + " " +
                          std::to_string(pair_id));
    d.AddPair("city", "city" + std::to_string(i % 997));
    out.push_back(std::move(d));
  }
  return out;
}

incremental::ResolverOptions StorageResolverOptions() {
  incremental::ResolverOptions options;
  // The online purge cap bounds every posting: ingest stays linear in
  // corpus size, so the benches measure storage rates, not matching.
  options.index.max_block_size = 64;
  return options;
}

void FillResolver(incremental::IncrementalResolver* resolver, size_t n) {
  std::vector<model::EntityDescription> corpus = StorageCorpus(n);
  const size_t batch = 256;
  for (size_t start = 0; start < corpus.size(); start += batch) {
    size_t end = std::min(start + batch, corpus.size());
    resolver->Ingest(std::vector<model::EntityDescription>(
        corpus.begin() + static_cast<int64_t>(start),
        corpus.begin() + static_cast<int64_t>(end)));
  }
}

void BM_SnapshotWrite(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  matching::TokenJaccardMatcher matcher;
  incremental::IncrementalResolver resolver(&matcher, StorageResolverOptions());
  FillResolver(&resolver, n);
  BenchDir dir;
  size_t bytes = 0;
  for (auto _ : state) {
    std::vector<uint8_t> image = storage::SnapshotCodec::Encode(resolver, 0,
                                                                n);
    bytes = image.size();
    storage::Status status =
        storage::AtomicWriteFile(dir.file("snapshot"), image);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    benchmark::DoNotOptimize(image.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(bytes) * static_cast<double>(state.iterations()) /
          1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotWrite)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotLoadEager(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  matching::TokenJaccardMatcher matcher;
  incremental::IncrementalResolver writer(&matcher, StorageResolverOptions());
  FillResolver(&writer, n);
  BenchDir dir;
  std::vector<uint8_t> image = storage::SnapshotCodec::Encode(writer, 0, n);
  storage::AtomicWriteFile(dir.file("snapshot"), image);
  storage::SnapshotCodec::LoadOptions options;
  options.mapped = false;  // Copy every arena out of the file.
  for (auto _ : state) {
    incremental::IncrementalResolver reader(&matcher, StorageResolverOptions());
    uint64_t op_count = 0;
    storage::Status status = storage::SnapshotCodec::Load(
        dir.file("snapshot"), 0, options, &reader, &op_count);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    benchmark::DoNotOptimize(op_count);
  }
  state.counters["bytes"] = static_cast<double>(image.size());
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(image.size()) *
          static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotLoadEager)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotOpenMapped(benchmark::State& state) {
  // The zero-copy claim: with verification off, opening the signature
  // arenas out of an mmap costs header parsing + pointer fixups only.
  // open_us should stay near-flat from 1k to 100k entities while the
  // file grows ~100x.
  const size_t n = static_cast<size_t>(state.range(0));
  matching::TokenJaccardMatcher matcher;
  incremental::IncrementalResolver writer(&matcher, StorageResolverOptions());
  FillResolver(&writer, n);
  BenchDir dir;
  std::vector<uint8_t> image = storage::SnapshotCodec::Encode(writer, 0, n);
  storage::AtomicWriteFile(dir.file("snapshot"), image);
  storage::SnapshotCodec::LoadOptions options;
  options.mapped = true;
  options.verify_arenas = false;
  for (auto _ : state) {
    matching::SignatureStore store;
    storage::Status status = storage::SnapshotCodec::OpenSignatures(
        dir.file("snapshot"), options, &store);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["bytes"] = static_cast<double>(image.size());
  state.counters["open_us"] = benchmark::Counter(
      static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_SnapshotOpenMapped)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_WalAppend(benchmark::State& state) {
  // range(0): records per iteration; range(1): 0 = fsync off, 1 = batch.
  const size_t records = static_cast<size_t>(state.range(0));
  storage::FsyncPolicy policy = state.range(1) == 0
                                    ? storage::FsyncPolicy::kOff
                                    : storage::FsyncPolicy::kBatch;
  std::vector<uint8_t> payload(128, 0xAB);  // A small ingest-ish record.
  BenchDir dir;
  size_t bytes = 0;
  for (auto _ : state) {
    storage::WriteAheadLog wal;
    storage::Status status =
        wal.Create(dir.file("wal"), 0, policy, 64);
    for (size_t i = 0; status.ok() && i < records; ++i) {
      status = wal.Append(storage::WriteAheadLog::kIngestBatch, payload);
    }
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    bytes = wal.appended_bytes();
    wal.Close();
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(bytes) * static_cast<double>(state.iterations()) /
          1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WalAppend)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Unit(benchmark::kMillisecond);

void BM_WalReplay(benchmark::State& state) {
  // End-to-end recovery from a WAL-only directory: parse + CRC every
  // frame, decode every description, re-absorb into the resolver.
  const size_t n = static_cast<size_t>(state.range(0));
  matching::TokenJaccardMatcher matcher;
  BenchDir dir;
  storage::DurabilityOptions durability;
  durability.data_dir = dir.path();
  durability.fsync = storage::FsyncPolicy::kOff;
  {
    storage::DurableResolver durable(&matcher, {}, durability);
    std::vector<model::EntityDescription> corpus = StorageCorpus(n);
    const size_t batch = 64;
    for (size_t start = 0; start < corpus.size(); start += batch) {
      size_t end = std::min(start + batch, corpus.size());
      durable.Ingest(std::vector<model::EntityDescription>(
          corpus.begin() + static_cast<int64_t>(start),
          corpus.begin() + static_cast<int64_t>(end)));
    }
  }  // No checkpoint: recovery below replays every record.
  uint64_t replayed = 0;
  for (auto _ : state) {
    storage::DurableResolver recovered(&matcher, {}, durability);
    if (!recovered.healthy()) {
      state.SkipWithError(recovered.recovery_status().ToString().c_str());
    }
    replayed = recovered.replayed_records();
    benchmark::DoNotOptimize(replayed);
  }
  state.counters["records"] = static_cast<double>(replayed);
  state.counters["entities/s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WalReplay)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weber

WEBER_BENCH_MAIN("bench_storage");
