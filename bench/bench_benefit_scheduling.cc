// E12 (§IV, [1]): benefit/cost windowed scheduling with influence
// propagation.
//
// Claim to reproduce (Altowim et al., PVLDB'14): on a relational
// two-type corpus, splitting the budget into cost windows and, after each
// window, propagating match results through the influence graph (pairs
// sharing an entity or related by reference) raises early recall compared
// to the same windowed scheduler with influence propagation disabled
// (influence_boost = 0), and both beat the unordered baseline.
//
// Rows: (scheduler, budget multiple of candidate count / 10). Counters:
// recall@budget, AUC, windows built.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "eval/match_metrics.h"
#include "matching/matcher.h"
#include "progressive/benefit_cost.h"
#include "progressive/scheduler.h"

namespace weber {
namespace {

struct Workload {
  datagen::RelationalCorpus corpus;
  std::vector<matching::ScoredPair> candidates;  // Seeded with cheap sim.
};

const Workload& GetWorkload() {
  static const Workload& workload = *[] {
    auto* w = new Workload{bench::RelationalCorpus(/*seed=*/41), {}};
    const model::EntityCollection& c = w->corpus.collection;
    matching::TokenJaccardMatcher cheap;
    for (model::EntityId i = 0; i < c.size(); ++i) {
      for (model::EntityId j = i + 1; j < c.size(); ++j) {
        if (c[i].type() != c[j].type()) continue;
        // Seed benefit: a *coarse two-tier* cheap estimate (obviously
        // similar vs maybe similar), as in the original's coarse
        // match-probability estimates. Influence propagation then decides
        // the order inside the wide "maybe" tier.
        double sim = cheap.Similarity(c[i], c[j]);
        if (sim < 0.15) continue;  // Cheap pre-filter.
        double seeded = sim >= 0.7 ? 0.7 : 0.2;
        w->candidates.push_back({i, j, seeded});
      }
    }
    return w;
  }();
  return workload;
}

uint64_t BudgetOf(const benchmark::State& state) {
  return GetWorkload().candidates.size() *
         static_cast<uint64_t>(state.range(0)) / 10;
}

void Report(benchmark::State& state,
            const progressive::ProgressiveRunResult& run, uint64_t budget) {
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["recall_at_budget"] = run.curve.RecallAt(budget);
  state.counters["AUC"] = run.curve.AreaUnderCurve(budget);
}

void BM_UnorderedBaseline(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenJaccardMatcher matcher;
  uint64_t budget = BudgetOf(state);
  progressive::ProgressiveRunResult run(0);
  for (auto _ : state) {
    std::vector<model::IdPair> pairs;
    pairs.reserve(workload.candidates.size());
    for (const auto& scored : workload.candidates) {
      pairs.push_back(scored.pair());
    }
    progressive::StaticListScheduler scheduler(std::move(pairs));
    run = progressive::RunProgressive(workload.corpus.collection, scheduler,
                                      {&matcher, 0.55}, budget,
                                      workload.corpus.truth);
  }
  Report(state, run, budget);
}
BENCHMARK(BM_UnorderedBaseline)->Arg(1)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_WindowedNoInfluence(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenJaccardMatcher matcher;
  uint64_t budget = BudgetOf(state);
  progressive::ProgressiveRunResult run(0);
  size_t windows = 0;
  for (auto _ : state) {
    progressive::BenefitCostOptions options;
    options.influence_boost = 0.0;  // Influence-blind ablation.
    options.entity_share_boost = 0.0;
    options.window_size = 256;
    progressive::BenefitCostScheduler scheduler(workload.corpus.collection,
                                                workload.candidates,
                                                options);
    run = progressive::RunProgressive(workload.corpus.collection, scheduler,
                                      {&matcher, 0.55}, budget,
                                      workload.corpus.truth);
    windows = scheduler.windows_built();
  }
  Report(state, run, budget);
  state.counters["windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_WindowedNoInfluence)->Arg(1)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_WindowedWithInfluence(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenJaccardMatcher matcher;
  uint64_t budget = BudgetOf(state);
  progressive::ProgressiveRunResult run(0);
  size_t windows = 0;
  for (auto _ : state) {
    progressive::BenefitCostOptions options;
    options.influence_boost = 0.5;    // Precise relational channel.
    options.entity_share_boost = 0.0;  // Relational evidence only.
    options.window_size = 256;
    progressive::BenefitCostScheduler scheduler(workload.corpus.collection,
                                                workload.candidates,
                                                options);
    run = progressive::RunProgressive(workload.corpus.collection, scheduler,
                                      {&matcher, 0.55}, budget,
                                      workload.corpus.truth);
    windows = scheduler.windows_built();
  }
  Report(state, run, budget);
  state.counters["windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_WindowedWithInfluence)->Arg(1)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
