// E10 (§IV, [26]): pay-as-you-go hints vs unordered resolution.
//
// Claim to reproduce (Whang et al., TKDE'13): for any fixed budget, the
// sorted-list hint (progressive sorted neighbourhood) and the hierarchy
// of record partitions find far more matches than resolving blocking
// pairs in arbitrary order; the hierarchy front-loads the highly similar
// pairs hardest, the sorted list catches up as the budget grows.
//
// Rows: (scheduler, budget as multiple of n). Counters: recall@budget,
// AUC@budget.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "blocking/token_blocking.h"
#include "matching/matcher.h"
#include "progressive/ordered_blocks.h"
#include "progressive/partition_hierarchy.h"
#include "progressive/progressive_sn.h"
#include "progressive/scheduler.h"

namespace weber {
namespace {

struct Workload {
  datagen::Corpus corpus;
  blocking::BlockCollection blocks;
  std::vector<model::IdPair> unordered;
};

const Workload& GetWorkload() {
  static const Workload& workload = *[] {
    auto* w = new Workload{
        bench::DirtyCorpus(/*seed=*/31, /*num_entities=*/1500), {}, {}};
    w->blocks = blocking::TokenBlocking().Build(w->corpus.collection);
    for (const model::IdPair& pair : w->blocks.DistinctPairs()) {
      w->unordered.push_back(pair);
    }
    return w;
  }();
  return workload;
}

void Report(benchmark::State& state,
            const progressive::ProgressiveRunResult& run, uint64_t budget) {
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["recall_at_budget"] = run.curve.RecallAt(budget);
  state.counters["AUC"] = run.curve.AreaUnderCurve(budget);
}

uint64_t BudgetOf(const benchmark::State& state) {
  return GetWorkload().corpus.collection.size() *
         static_cast<uint64_t>(state.range(0));
}

void BM_Unordered(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenJaccardMatcher matcher;
  uint64_t budget = BudgetOf(state);
  progressive::ProgressiveRunResult run(0);
  for (auto _ : state) {
    progressive::StaticListScheduler scheduler(workload.unordered);
    run = progressive::RunProgressive(workload.corpus.collection, scheduler,
                                      {&matcher, 0.5}, budget,
                                      workload.corpus.truth);
  }
  Report(state, run, budget);
}
BENCHMARK(BM_Unordered)->Arg(1)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SortedListHint(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenJaccardMatcher matcher;
  uint64_t budget = BudgetOf(state);
  progressive::ProgressiveRunResult run(0);
  for (auto _ : state) {
    progressive::ProgressiveSnScheduler scheduler(
        workload.corpus.collection);
    run = progressive::RunProgressive(workload.corpus.collection, scheduler,
                                      {&matcher, 0.5}, budget,
                                      workload.corpus.truth);
  }
  Report(state, run, budget);
}
BENCHMARK(BM_SortedListHint)->Arg(1)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_PartitionHierarchyHint(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenJaccardMatcher matcher;
  uint64_t budget = BudgetOf(state);
  blocking::SortedOrderOptions sort_options;
  sort_options.key_attribute = "attr0";
  progressive::ProgressiveRunResult run(0);
  for (auto _ : state) {
    progressive::PartitionHierarchyScheduler scheduler(
        workload.corpus.collection, {16, 12, 8, 4, 2, 0}, sort_options);
    run = progressive::RunProgressive(workload.corpus.collection, scheduler,
                                      {&matcher, 0.5}, budget,
                                      workload.corpus.truth);
  }
  Report(state, run, budget);
}
BENCHMARK(BM_PartitionHierarchyHint)->Arg(1)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_OrderedBlocksHint(benchmark::State& state) {
  const Workload& workload = GetWorkload();
  matching::TokenJaccardMatcher matcher;
  uint64_t budget = BudgetOf(state);
  progressive::ProgressiveRunResult run(0);
  for (auto _ : state) {
    progressive::OrderedBlocksScheduler scheduler(workload.blocks);
    run = progressive::RunProgressive(workload.corpus.collection, scheduler,
                                      {&matcher, 0.5}, budget,
                                      workload.corpus.truth);
  }
  Report(state, run, budget);
}
BENCHMARK(BM_OrderedBlocksHint)->Arg(1)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
