// E5 (§II, [5][28]): string-similarity joins as a blocking device.
//
// Claim to reproduce (Chaudhuri et al. ICDE'06; Xiao et al. TODS'11):
// prefix filtering prunes the candidate space by orders of magnitude
// against the quadratic baseline at identical output, and PPJoin's
// positional filter prunes further, with the gap widening at higher
// thresholds.
//
// Rows: (algorithm, Jaccard threshold). Counters: verifications, results,
// verification share of the quadratic baseline.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "simjoin/all_pairs.h"
#include "simjoin/ppjoin.h"
#include "simjoin/token_sets.h"

namespace weber {
namespace {

const simjoin::TokenSetCollection& Sets() {
  static const auto& holder = *[] {
    auto* corpus = new datagen::Corpus(
        bench::DirtyCorpus(/*seed=*/13, /*num_entities=*/1500));
    return new simjoin::TokenSetCollection(
        simjoin::TokenSetCollection::Build(corpus->collection));
  }();
  return holder;
}

void Report(benchmark::State& state, const simjoin::JoinStats& stats,
            uint64_t quadratic) {
  state.counters["verifications"] = static_cast<double>(stats.verifications);
  state.counters["results"] = static_cast<double>(stats.results);
  state.counters["verify_share"] =
      static_cast<double>(stats.verifications) /
      static_cast<double>(quadratic);
}

void BM_NaiveJoin(benchmark::State& state) {
  const simjoin::TokenSetCollection& sets = Sets();
  double threshold = state.range(0) / 100.0;
  simjoin::JoinStats stats;
  for (auto _ : state) {
    auto results = simjoin::NaiveJoin(sets, threshold, &stats);
    benchmark::DoNotOptimize(results);
  }
  Report(state, stats, sets.collection()->TotalComparisons());
}
BENCHMARK(BM_NaiveJoin)->Arg(50)->Arg(70)->Arg(90)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_AllPairs(benchmark::State& state) {
  const simjoin::TokenSetCollection& sets = Sets();
  double threshold = state.range(0) / 100.0;
  simjoin::JoinStats stats;
  for (auto _ : state) {
    auto results = simjoin::AllPairsJoin(sets, threshold, &stats);
    benchmark::DoNotOptimize(results);
  }
  Report(state, stats, sets.collection()->TotalComparisons());
}
BENCHMARK(BM_AllPairs)->Arg(50)->Arg(60)->Arg(70)->Arg(80)->Arg(90)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_PPJoin(benchmark::State& state) {
  const simjoin::TokenSetCollection& sets = Sets();
  double threshold = state.range(0) / 100.0;
  simjoin::JoinStats stats;
  for (auto _ : state) {
    auto results = simjoin::PPJoin(sets, threshold, &stats);
    benchmark::DoNotOptimize(results);
  }
  Report(state, stats, sets.collection()->TotalComparisons());
}
BENCHMARK(BM_PPJoin)->Arg(50)->Arg(60)->Arg(70)->Arg(80)->Arg(90)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weber

BENCHMARK_MAIN();
