// Comparison-engine benchmark: string-path matchers vs their prepared
// (interned-signature) twins on the same pair workload.
//
// Rows report pairs/sec for each matcher on both paths at 1 and 8
// threads; the prepared rows also publish the signature build time so the
// break-even pair count can be read off directly. The engine is bit-equal
// to the string path (see tests/signatures_test.cc), so every speedup row
// is a pure perf delta, not a quality trade.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "core/executor.h"
#include "matching/matcher.h"
#include "matching/signatures.h"
#include "model/entity.h"
#include "util/random.h"
#include "util/timer.h"

namespace weber {
namespace {

const datagen::Corpus& Corpus() {
  static const datagen::Corpus& corpus = *new datagen::Corpus(
      bench::DirtyCorpus(/*seed=*/42, /*num_entities=*/1200));
  return corpus;
}

// A fixed random pair workload over the corpus, shared by every row so
// string and prepared paths score the exact same comparisons.
const std::vector<model::IdPair>& Pairs() {
  static const std::vector<model::IdPair>& pairs = [] {
    auto* out = new std::vector<model::IdPair>();
    const model::EntityCollection& collection = Corpus().collection;
    util::Rng rng(7);
    out->reserve(200000);
    while (out->size() < 200000) {
      auto a = static_cast<model::EntityId>(rng.NextBounded(collection.size()));
      auto b = static_cast<model::EntityId>(rng.NextBounded(collection.size()));
      if (a == b) continue;
      out->push_back(model::IdPair::Of(a, b));
    }
    return *out;
  }();
  return pairs;
}

constexpr double kThreshold = 0.5;

std::unique_ptr<matching::Matcher> MakeMatcher(int which) {
  switch (which) {
    case 0:
      return std::make_unique<matching::TokenJaccardMatcher>();
    case 1:
      return std::make_unique<matching::TokenOverlapMatcher>();
    case 2:
      return std::make_unique<matching::TfIdfCosineMatcher>(
          Corpus().collection);
    default:
      return std::make_unique<matching::WeightedAttributeMatcher>(
          std::vector<matching::AttributeRule>{{"attr0", 2.0, true},
                                               {"attr1", 1.0, false},
                                               {"attr2", 1.0, true}});
  }
}

// Scores the shared workload on the string path, optionally in parallel.
void BM_Matching_StringPath(benchmark::State& state) {
  const model::EntityCollection& collection = Corpus().collection;
  const std::vector<model::IdPair>& pairs = Pairs();
  std::unique_ptr<matching::Matcher> matcher =
      MakeMatcher(static_cast<int>(state.range(0)));
  size_t threads = static_cast<size_t>(state.range(1));
  core::ScopedParallelism parallelism(threads);
  uint64_t matched = 0;
  for (auto _ : state) {
    std::vector<uint64_t> partial(core::EffectiveParallelism(), 0);
    core::Executor::Shared().ParallelChunks(
        pairs.size(), core::EffectiveParallelism(),
        [&](size_t chunk, size_t begin, size_t end) {
          uint64_t local = 0;
          for (size_t i = begin; i < end; ++i) {
            const model::IdPair& pair = pairs[i];
            local += matcher->Similarity(collection[pair.low],
                                         collection[pair.high]) >= kThreshold;
          }
          partial[chunk] = local;
        });
    matched = 0;
    for (uint64_t p : partial) matched += p;
    benchmark::DoNotOptimize(matched);
  }
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["matched"] = static_cast<double>(matched);
}

// Same workload over interned signatures (build cost reported separately
// as build_ms; the loop measures pure pair cost, like the string row).
void BM_Matching_Prepared(benchmark::State& state) {
  const model::EntityCollection& collection = Corpus().collection;
  const std::vector<model::IdPair>& pairs = Pairs();
  std::unique_ptr<matching::Matcher> matcher =
      MakeMatcher(static_cast<int>(state.range(0)));
  size_t threads = static_cast<size_t>(state.range(1));
  core::ScopedParallelism parallelism(threads);

  util::Timer build_timer;
  matching::SignatureStore store = matching::SignatureStore::Build(
      collection, matching::OptionsFor(*matcher));
  std::unique_ptr<matching::PreparedMatcher> prepared =
      matching::Prepare(*matcher, store);
  double build_ms = build_timer.ElapsedSeconds() * 1e3;

  uint64_t matched = 0;
  for (auto _ : state) {
    std::vector<uint64_t> partial(core::EffectiveParallelism(), 0);
    core::Executor::Shared().ParallelChunks(
        pairs.size(), core::EffectiveParallelism(),
        [&](size_t chunk, size_t begin, size_t end) {
          uint64_t local = 0;
          for (size_t i = begin; i < end; ++i) {
            const model::IdPair& pair = pairs[i];
            local += prepared->Matches(pair.low, pair.high, kThreshold);
          }
          partial[chunk] = local;
        });
    matched = 0;
    for (uint64_t p : partial) matched += p;
    benchmark::DoNotOptimize(matched);
  }
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["matched"] = static_cast<double>(matched);
  state.counters["build_ms"] = build_ms;
  state.counters["arena_mb"] =
      static_cast<double>(store.ArenaBytes()) / (1024.0 * 1024.0);
}

// Args: {matcher (0=Jaccard 1=Overlap 2=TfIdf 3=WeightedAttr), threads}.
BENCHMARK(BM_Matching_StringPath)
    ->Args({0, 1})->Args({0, 8})
    ->Args({1, 1})
    ->Args({2, 1})->Args({2, 8})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Matching_Prepared)
    ->Args({0, 1})->Args({0, 8})
    ->Args({1, 1})
    ->Args({2, 1})->Args({2, 8})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weber

WEBER_BENCH_MAIN("bench_matching");
