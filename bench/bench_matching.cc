// Comparison-engine benchmark: string-path matchers vs their prepared
// (interned-signature) twins on the same pair workload.
//
// Rows report pairs/sec for each matcher on both paths at 1 and 8
// threads; the prepared rows also publish the signature build time so the
// break-even pair count can be read off directly. The engine is bit-equal
// to the string path (see tests/signatures_test.cc), so every speedup row
// is a pure perf delta, not a quality trade.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "core/executor.h"
#include "matching/matcher.h"
#include "matching/signatures.h"
#include "model/entity.h"
#include "util/intersect.h"
#include "util/random.h"
#include "util/timer.h"

namespace weber {
namespace {

const datagen::Corpus& Corpus() {
  static const datagen::Corpus& corpus = *new datagen::Corpus(
      bench::DirtyCorpus(/*seed=*/42, /*num_entities=*/1200));
  return corpus;
}

// A fixed random pair workload over the corpus, shared by every row so
// string and prepared paths score the exact same comparisons.
const std::vector<model::IdPair>& Pairs() {
  static const std::vector<model::IdPair>& pairs = [] {
    auto* out = new std::vector<model::IdPair>();
    const model::EntityCollection& collection = Corpus().collection;
    util::Rng rng(7);
    out->reserve(200000);
    while (out->size() < 200000) {
      auto a = static_cast<model::EntityId>(rng.NextBounded(collection.size()));
      auto b = static_cast<model::EntityId>(rng.NextBounded(collection.size()));
      if (a == b) continue;
      out->push_back(model::IdPair::Of(a, b));
    }
    return *out;
  }();
  return pairs;
}

constexpr double kThreshold = 0.5;

std::unique_ptr<matching::Matcher> MakeMatcher(int which) {
  switch (which) {
    case 0:
      return std::make_unique<matching::TokenJaccardMatcher>();
    case 1:
      return std::make_unique<matching::TokenOverlapMatcher>();
    case 2:
      return std::make_unique<matching::TfIdfCosineMatcher>(
          Corpus().collection);
    default:
      return std::make_unique<matching::WeightedAttributeMatcher>(
          std::vector<matching::AttributeRule>{{"attr0", 2.0, true},
                                               {"attr1", 1.0, false},
                                               {"attr2", 1.0, true}});
  }
}

// Scores the shared workload on the string path, optionally in parallel.
void BM_Matching_StringPath(benchmark::State& state) {
  const model::EntityCollection& collection = Corpus().collection;
  const std::vector<model::IdPair>& pairs = Pairs();
  std::unique_ptr<matching::Matcher> matcher =
      MakeMatcher(static_cast<int>(state.range(0)));
  size_t threads = static_cast<size_t>(state.range(1));
  core::ScopedParallelism parallelism(threads);
  uint64_t matched = 0;
  for (auto _ : state) {
    std::vector<uint64_t> partial(core::EffectiveParallelism(), 0);
    core::Executor::Shared().ParallelChunks(
        pairs.size(), core::EffectiveParallelism(),
        [&](size_t chunk, size_t begin, size_t end) {
          uint64_t local = 0;
          for (size_t i = begin; i < end; ++i) {
            const model::IdPair& pair = pairs[i];
            local += matcher->Similarity(collection[pair.low],
                                         collection[pair.high]) >= kThreshold;
          }
          partial[chunk] = local;
        });
    matched = 0;
    for (uint64_t p : partial) matched += p;
    benchmark::DoNotOptimize(matched);
  }
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["matched"] = static_cast<double>(matched);
}

// Same workload over interned signatures (build cost reported separately
// as build_ms; the loop measures pure pair cost, like the string row).
void BM_Matching_Prepared(benchmark::State& state) {
  const model::EntityCollection& collection = Corpus().collection;
  const std::vector<model::IdPair>& pairs = Pairs();
  std::unique_ptr<matching::Matcher> matcher =
      MakeMatcher(static_cast<int>(state.range(0)));
  size_t threads = static_cast<size_t>(state.range(1));
  core::ScopedParallelism parallelism(threads);

  util::Timer build_timer;
  matching::SignatureStore store = matching::SignatureStore::Build(
      collection, matching::OptionsFor(*matcher));
  std::unique_ptr<matching::PreparedMatcher> prepared =
      matching::Prepare(*matcher, store);
  double build_ms = build_timer.ElapsedSeconds() * 1e3;

  uint64_t matched = 0;
  for (auto _ : state) {
    std::vector<uint64_t> partial(core::EffectiveParallelism(), 0);
    core::Executor::Shared().ParallelChunks(
        pairs.size(), core::EffectiveParallelism(),
        [&](size_t chunk, size_t begin, size_t end) {
          uint64_t local = 0;
          for (size_t i = begin; i < end; ++i) {
            const model::IdPair& pair = pairs[i];
            local += prepared->Matches(pair.low, pair.high, kThreshold);
          }
          partial[chunk] = local;
        });
    matched = 0;
    for (uint64_t p : partial) matched += p;
    benchmark::DoNotOptimize(matched);
  }
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["matched"] = static_cast<double>(matched);
  state.counters["build_ms"] = build_ms;
  state.counters["arena_mb"] =
      static_cast<double>(store.ArenaBytes()) / (1024.0 * 1024.0);
}

// The prepared workload pinned to one dispatch level — the per-kernel
// rows the bench smoke asserts on. Unsupported levels (or levels masked
// by WEBER_FORCE_SCALAR_KERNELS) report kernel_available=0 and score on
// the active kernel so the row still exists on every machine.
void BM_Matching_PreparedKernel(benchmark::State& state) {
  const std::vector<model::IdPair>& pairs = Pairs();
  auto kernel = static_cast<util::IntersectKernel>(state.range(0));
  std::unique_ptr<matching::Matcher> matcher =
      MakeMatcher(static_cast<int>(state.range(1)));
  size_t threads = static_cast<size_t>(state.range(2));
  core::ScopedParallelism parallelism(threads);
  const bool available = util::SetIntersectKernel(kernel);

  matching::SignatureStore store = matching::SignatureStore::Build(
      Corpus().collection, matching::OptionsFor(*matcher));
  std::unique_ptr<matching::PreparedMatcher> prepared =
      matching::Prepare(*matcher, store);

  uint64_t matched = 0;
  for (auto _ : state) {
    std::vector<uint64_t> partial(core::EffectiveParallelism(), 0);
    core::Executor::Shared().ParallelChunks(
        pairs.size(), core::EffectiveParallelism(),
        [&](size_t chunk, size_t begin, size_t end) {
          uint64_t local = 0;
          for (size_t i = begin; i < end; ++i) {
            const model::IdPair& pair = pairs[i];
            local += prepared->Matches(pair.low, pair.high, kThreshold);
          }
          partial[chunk] = local;
        });
    matched = 0;
    for (uint64_t p : partial) matched += p;
    benchmark::DoNotOptimize(matched);
  }
  util::ResetIntersectKernel();
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["matched"] = static_cast<double>(matched);
  state.counters["kernel_available"] = available ? 1.0 : 0.0;
  state.SetLabel(util::KernelName(kernel));
}

// Merge/gallop/SIMD crossover microbench behind kGallopRatio: intersects
// a fixed batch of (small, big) set pairs at one size ratio with one
// strategy forced, so plotting strategy rows against the ratio sweep
// reads off where each one wins. Ratios are exponentially spaced — the
// skew profile Zipf-distributed posting lengths produce.
void BM_Kernel_Crossover(benchmark::State& state) {
  const int strategy = static_cast<int>(state.range(0));
  const size_t ratio = static_cast<size_t>(state.range(1));
  constexpr size_t kSmall = 256;
  constexpr size_t kPairs = 64;
  const size_t big_size = kSmall * ratio;

  // ~20% of small's members hit big: enough matches that the counting
  // work is real, few enough that skipping dominates like in production.
  util::Rng rng(1234 + ratio);
  auto make_set = [&](size_t n, uint32_t universe) {
    std::vector<uint32_t> set;
    set.reserve(n + n / 4);
    while (set.size() < n) {
      size_t need = n - set.size();
      for (size_t k = 0; k < need + need / 4 + 8; ++k) {
        set.push_back(static_cast<uint32_t>(rng.NextBounded(universe)));
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
    }
    set.resize(n);
    return set;
  };
  const auto universe = static_cast<uint32_t>(big_size * 5);
  std::vector<std::vector<uint32_t>> smalls;
  std::vector<std::vector<uint32_t>> bigs;
  for (size_t p = 0; p < kPairs; ++p) {
    smalls.push_back(make_set(kSmall, universe));
    bigs.push_back(make_set(big_size, universe));
  }

  size_t total = 0;
  for (auto _ : state) {
    total = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      switch (strategy) {
        case 0:
          total += util::MergeIntersectSize(smalls[p], bigs[p]);
          break;
        case 1:
          total += util::GallopIntersectSize(smalls[p], bigs[p]);
          break;
        case 2:
          total += util::detail::BenchBlockMergeIntersect(smalls[p], bigs[p]);
          break;
        default:
          total += util::detail::BenchProbeIntersect(smalls[p], bigs[p]);
          break;
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["intersects_per_sec"] = benchmark::Counter(
      static_cast<double>(kPairs * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["hits"] = static_cast<double>(total);
  static constexpr const char* kStrategies[] = {"merge", "gallop",
                                                "simd_merge", "simd_probe"};
  state.SetLabel(kStrategies[strategy < 0 || strategy > 3 ? 0 : strategy]);
}

// Dense-token scenario for the compressed posting arena: entities whose
// token sets overflow kPostingArrayMax, so value tokens land in bitset
// chunks. flat_mb is what the pre-compression flat u32 arena would have
// spent on the same sets.
void BM_Signature_DenseArena(benchmark::State& state) {
  constexpr size_t kEntities = 128;
  constexpr size_t kTokensPerEntity = 6000;
  constexpr size_t kVocabulary = 9000;
  static const model::EntityCollection& collection = [] {
    auto* c = new model::EntityCollection();
    util::Rng rng(99);
    for (size_t e = 0; e < kEntities; ++e) {
      model::EntityDescription description("dense/" + std::to_string(e));
      std::vector<bool> taken(kVocabulary, false);
      std::string value;
      size_t picked = 0;
      while (picked < kTokensPerEntity) {
        size_t t = rng.NextBounded(kVocabulary);
        if (taken[t]) continue;
        taken[t] = true;
        ++picked;
        if (!value.empty()) value += ' ';
        value += 'w' + std::to_string(t);
      }
      description.AddPair("text", value);
      c->Add(description);
    }
    return *c;
  }();

  size_t flat_bytes = 0;
  size_t arena_bytes = 0;
  uint64_t checksum = 0;
  for (auto _ : state) {
    matching::SignatureStore store =
        matching::SignatureStore::Build(collection);
    flat_bytes = 0;
    for (model::EntityId id = 0; id < store.size(); ++id) {
      flat_bytes += store.token_count(id) * sizeof(uint32_t);
    }
    arena_bytes = store.ArenaBytes();
    checksum = 0;
    for (model::EntityId id = 1; id < store.size(); ++id) {
      checksum += matching::PostingIntersectSize(store.posting(id - 1),
                                                 store.posting(id));
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["arena_mb"] =
      static_cast<double>(arena_bytes) / (1024.0 * 1024.0);
  state.counters["flat_mb"] =
      static_cast<double>(flat_bytes) / (1024.0 * 1024.0);
  state.counters["checksum"] = static_cast<double>(checksum);
}

// Args: {matcher (0=Jaccard 1=Overlap 2=TfIdf 3=WeightedAttr), threads}.
BENCHMARK(BM_Matching_StringPath)
    ->Args({0, 1})->Args({0, 8})
    ->Args({1, 1})
    ->Args({2, 1})->Args({2, 8})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Matching_Prepared)
    ->Args({0, 1})->Args({0, 8})
    ->Args({1, 1})
    ->Args({2, 1})->Args({2, 8})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);
// Args: {kernel (0=scalar 1=sse4 2=avx2), matcher, threads}. Threads stay
// last so the rows land in the --quick (CI) filter.
BENCHMARK(BM_Matching_PreparedKernel)
    ->Args({0, 0, 1})
    ->Args({1, 0, 1})
    ->Args({2, 0, 1})
    ->Args({2, 0, 8})
    ->Args({0, 1, 1})
    ->Args({2, 1, 1})
    ->Unit(benchmark::kMillisecond);
// Args: {strategy (0=merge 1=gallop 2=simd_merge 3=simd_probe), ratio}.
BENCHMARK(BM_Kernel_Crossover)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2, 4, 8, 16, 32, 64, 128, 256}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Signature_DenseArena)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weber

WEBER_BENCH_MAIN("bench_matching");
