file(REMOVE_RECURSE
  "CMakeFiles/bench_swoosh.dir/bench_swoosh.cc.o"
  "CMakeFiles/bench_swoosh.dir/bench_swoosh.cc.o.d"
  "bench_swoosh"
  "bench_swoosh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swoosh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
