# Empty compiler generated dependencies file for bench_swoosh.
# This may be replaced when dependencies are built.
