# Empty dependencies file for bench_simjoin.
# This may be replaced when dependencies are built.
