file(REMOVE_RECURSE
  "CMakeFiles/bench_simjoin.dir/bench_simjoin.cc.o"
  "CMakeFiles/bench_simjoin.dir/bench_simjoin.cc.o.d"
  "bench_simjoin"
  "bench_simjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
