file(REMOVE_RECURSE
  "CMakeFiles/bench_metablocking.dir/bench_metablocking.cc.o"
  "CMakeFiles/bench_metablocking.dir/bench_metablocking.cc.o.d"
  "bench_metablocking"
  "bench_metablocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metablocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
