# Empty dependencies file for bench_metablocking.
# This may be replaced when dependencies are built.
