# Empty dependencies file for bench_blocking_pc_rr.
# This may be replaced when dependencies are built.
