file(REMOVE_RECURSE
  "CMakeFiles/bench_blocking_pc_rr.dir/bench_blocking_pc_rr.cc.o"
  "CMakeFiles/bench_blocking_pc_rr.dir/bench_blocking_pc_rr.cc.o.d"
  "bench_blocking_pc_rr"
  "bench_blocking_pc_rr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocking_pc_rr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
