file(REMOVE_RECURSE
  "CMakeFiles/bench_blocking_families.dir/bench_blocking_families.cc.o"
  "CMakeFiles/bench_blocking_families.dir/bench_blocking_families.cc.o.d"
  "bench_blocking_families"
  "bench_blocking_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocking_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
