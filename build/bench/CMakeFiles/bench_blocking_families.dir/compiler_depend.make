# Empty compiler generated dependencies file for bench_blocking_families.
# This may be replaced when dependencies are built.
