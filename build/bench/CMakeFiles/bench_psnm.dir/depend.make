# Empty dependencies file for bench_psnm.
# This may be replaced when dependencies are built.
