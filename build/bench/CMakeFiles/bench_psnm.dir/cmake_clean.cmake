file(REMOVE_RECURSE
  "CMakeFiles/bench_psnm.dir/bench_psnm.cc.o"
  "CMakeFiles/bench_psnm.dir/bench_psnm.cc.o.d"
  "bench_psnm"
  "bench_psnm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psnm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
