# Empty compiler generated dependencies file for bench_progressive_hints.
# This may be replaced when dependencies are built.
