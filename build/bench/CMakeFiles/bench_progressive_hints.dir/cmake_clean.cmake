file(REMOVE_RECURSE
  "CMakeFiles/bench_progressive_hints.dir/bench_progressive_hints.cc.o"
  "CMakeFiles/bench_progressive_hints.dir/bench_progressive_hints.cc.o.d"
  "bench_progressive_hints"
  "bench_progressive_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_progressive_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
