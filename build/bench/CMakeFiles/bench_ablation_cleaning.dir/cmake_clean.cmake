file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cleaning.dir/bench_ablation_cleaning.cc.o"
  "CMakeFiles/bench_ablation_cleaning.dir/bench_ablation_cleaning.cc.o.d"
  "bench_ablation_cleaning"
  "bench_ablation_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
