# Empty compiler generated dependencies file for bench_text_micro.
# This may be replaced when dependencies are built.
