file(REMOVE_RECURSE
  "CMakeFiles/bench_text_micro.dir/bench_text_micro.cc.o"
  "CMakeFiles/bench_text_micro.dir/bench_text_micro.cc.o.d"
  "bench_text_micro"
  "bench_text_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
