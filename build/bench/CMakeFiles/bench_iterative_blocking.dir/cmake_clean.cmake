file(REMOVE_RECURSE
  "CMakeFiles/bench_iterative_blocking.dir/bench_iterative_blocking.cc.o"
  "CMakeFiles/bench_iterative_blocking.dir/bench_iterative_blocking.cc.o.d"
  "bench_iterative_blocking"
  "bench_iterative_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterative_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
