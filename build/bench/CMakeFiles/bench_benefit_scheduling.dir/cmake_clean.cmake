file(REMOVE_RECURSE
  "CMakeFiles/bench_benefit_scheduling.dir/bench_benefit_scheduling.cc.o"
  "CMakeFiles/bench_benefit_scheduling.dir/bench_benefit_scheduling.cc.o.d"
  "bench_benefit_scheduling"
  "bench_benefit_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_benefit_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
