# Empty dependencies file for bench_benefit_scheduling.
# This may be replaced when dependencies are built.
