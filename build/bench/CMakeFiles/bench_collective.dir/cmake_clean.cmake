file(REMOVE_RECURSE
  "CMakeFiles/bench_collective.dir/bench_collective.cc.o"
  "CMakeFiles/bench_collective.dir/bench_collective.cc.o.d"
  "bench_collective"
  "bench_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
