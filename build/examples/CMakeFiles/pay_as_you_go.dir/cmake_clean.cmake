file(REMOVE_RECURSE
  "CMakeFiles/pay_as_you_go.dir/pay_as_you_go.cc.o"
  "CMakeFiles/pay_as_you_go.dir/pay_as_you_go.cc.o.d"
  "pay_as_you_go"
  "pay_as_you_go.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pay_as_you_go.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
