# Empty compiler generated dependencies file for pay_as_you_go.
# This may be replaced when dependencies are built.
