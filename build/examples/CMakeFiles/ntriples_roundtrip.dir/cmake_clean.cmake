file(REMOVE_RECURSE
  "CMakeFiles/ntriples_roundtrip.dir/ntriples_roundtrip.cc.o"
  "CMakeFiles/ntriples_roundtrip.dir/ntriples_roundtrip.cc.o.d"
  "ntriples_roundtrip"
  "ntriples_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntriples_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
