# Empty compiler generated dependencies file for kb_linking.
# This may be replaced when dependencies are built.
