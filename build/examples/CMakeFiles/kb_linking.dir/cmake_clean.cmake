file(REMOVE_RECURSE
  "CMakeFiles/kb_linking.dir/kb_linking.cc.o"
  "CMakeFiles/kb_linking.dir/kb_linking.cc.o.d"
  "kb_linking"
  "kb_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
