# Empty compiler generated dependencies file for collective_buildings.
# This may be replaced when dependencies are built.
