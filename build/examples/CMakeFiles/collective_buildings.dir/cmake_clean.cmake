file(REMOVE_RECURSE
  "CMakeFiles/collective_buildings.dir/collective_buildings.cc.o"
  "CMakeFiles/collective_buildings.dir/collective_buildings.cc.o.d"
  "collective_buildings"
  "collective_buildings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_buildings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
