file(REMOVE_RECURSE
  "CMakeFiles/gen_corpus.dir/gen_corpus.cc.o"
  "CMakeFiles/gen_corpus.dir/gen_corpus.cc.o.d"
  "gen_corpus"
  "gen_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
