# Empty dependencies file for gen_corpus.
# This may be replaced when dependencies are built.
