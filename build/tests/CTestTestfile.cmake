# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/blocking_test[1]_include.cmake")
include("/root/repo/build/tests/block_processing_test[1]_include.cmake")
include("/root/repo/build/tests/metablocking_test[1]_include.cmake")
include("/root/repo/build/tests/simjoin_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/iterative_test[1]_include.cmake")
include("/root/repo/build/tests/progressive_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_edge_test[1]_include.cmake")
