file(REMOVE_RECURSE
  "CMakeFiles/simjoin_test.dir/simjoin_test.cc.o"
  "CMakeFiles/simjoin_test.dir/simjoin_test.cc.o.d"
  "simjoin_test"
  "simjoin_test.pdb"
  "simjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
