file(REMOVE_RECURSE
  "CMakeFiles/progressive_test.dir/progressive_test.cc.o"
  "CMakeFiles/progressive_test.dir/progressive_test.cc.o.d"
  "progressive_test"
  "progressive_test.pdb"
  "progressive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
