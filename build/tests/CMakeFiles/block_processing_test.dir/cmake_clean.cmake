file(REMOVE_RECURSE
  "CMakeFiles/block_processing_test.dir/block_processing_test.cc.o"
  "CMakeFiles/block_processing_test.dir/block_processing_test.cc.o.d"
  "block_processing_test"
  "block_processing_test.pdb"
  "block_processing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_processing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
