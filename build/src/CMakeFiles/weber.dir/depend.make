# Empty dependencies file for weber.
# This may be replaced when dependencies are built.
