
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocking/attribute_clustering.cc" "src/CMakeFiles/weber.dir/blocking/attribute_clustering.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/attribute_clustering.cc.o.d"
  "/root/repo/src/blocking/block.cc" "src/CMakeFiles/weber.dir/blocking/block.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/block.cc.o.d"
  "/root/repo/src/blocking/block_filtering.cc" "src/CMakeFiles/weber.dir/blocking/block_filtering.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/block_filtering.cc.o.d"
  "/root/repo/src/blocking/block_purging.cc" "src/CMakeFiles/weber.dir/blocking/block_purging.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/block_purging.cc.o.d"
  "/root/repo/src/blocking/canopy_clustering.cc" "src/CMakeFiles/weber.dir/blocking/canopy_clustering.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/canopy_clustering.cc.o.d"
  "/root/repo/src/blocking/comparison_propagation.cc" "src/CMakeFiles/weber.dir/blocking/comparison_propagation.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/comparison_propagation.cc.o.d"
  "/root/repo/src/blocking/frequent_tokens.cc" "src/CMakeFiles/weber.dir/blocking/frequent_tokens.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/frequent_tokens.cc.o.d"
  "/root/repo/src/blocking/lsh_blocking.cc" "src/CMakeFiles/weber.dir/blocking/lsh_blocking.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/lsh_blocking.cc.o.d"
  "/root/repo/src/blocking/multidimensional.cc" "src/CMakeFiles/weber.dir/blocking/multidimensional.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/multidimensional.cc.o.d"
  "/root/repo/src/blocking/phonetic_blocking.cc" "src/CMakeFiles/weber.dir/blocking/phonetic_blocking.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/phonetic_blocking.cc.o.d"
  "/root/repo/src/blocking/prefix_infix_suffix.cc" "src/CMakeFiles/weber.dir/blocking/prefix_infix_suffix.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/prefix_infix_suffix.cc.o.d"
  "/root/repo/src/blocking/qgrams_blocking.cc" "src/CMakeFiles/weber.dir/blocking/qgrams_blocking.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/qgrams_blocking.cc.o.d"
  "/root/repo/src/blocking/sorted_neighborhood.cc" "src/CMakeFiles/weber.dir/blocking/sorted_neighborhood.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/sorted_neighborhood.cc.o.d"
  "/root/repo/src/blocking/standard_blocking.cc" "src/CMakeFiles/weber.dir/blocking/standard_blocking.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/standard_blocking.cc.o.d"
  "/root/repo/src/blocking/suffix_blocking.cc" "src/CMakeFiles/weber.dir/blocking/suffix_blocking.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/suffix_blocking.cc.o.d"
  "/root/repo/src/blocking/token_blocking.cc" "src/CMakeFiles/weber.dir/blocking/token_blocking.cc.o" "gcc" "src/CMakeFiles/weber.dir/blocking/token_blocking.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/weber.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/weber.dir/core/pipeline.cc.o.d"
  "/root/repo/src/datagen/corpus_generator.cc" "src/CMakeFiles/weber.dir/datagen/corpus_generator.cc.o" "gcc" "src/CMakeFiles/weber.dir/datagen/corpus_generator.cc.o.d"
  "/root/repo/src/datagen/noise.cc" "src/CMakeFiles/weber.dir/datagen/noise.cc.o" "gcc" "src/CMakeFiles/weber.dir/datagen/noise.cc.o.d"
  "/root/repo/src/eval/block_stats.cc" "src/CMakeFiles/weber.dir/eval/block_stats.cc.o" "gcc" "src/CMakeFiles/weber.dir/eval/block_stats.cc.o.d"
  "/root/repo/src/eval/blocking_metrics.cc" "src/CMakeFiles/weber.dir/eval/blocking_metrics.cc.o" "gcc" "src/CMakeFiles/weber.dir/eval/blocking_metrics.cc.o.d"
  "/root/repo/src/eval/match_metrics.cc" "src/CMakeFiles/weber.dir/eval/match_metrics.cc.o" "gcc" "src/CMakeFiles/weber.dir/eval/match_metrics.cc.o.d"
  "/root/repo/src/eval/progressive_curve.cc" "src/CMakeFiles/weber.dir/eval/progressive_curve.cc.o" "gcc" "src/CMakeFiles/weber.dir/eval/progressive_curve.cc.o.d"
  "/root/repo/src/iterative/collective.cc" "src/CMakeFiles/weber.dir/iterative/collective.cc.o" "gcc" "src/CMakeFiles/weber.dir/iterative/collective.cc.o.d"
  "/root/repo/src/iterative/iterative_blocking.cc" "src/CMakeFiles/weber.dir/iterative/iterative_blocking.cc.o" "gcc" "src/CMakeFiles/weber.dir/iterative/iterative_blocking.cc.o.d"
  "/root/repo/src/iterative/rswoosh.cc" "src/CMakeFiles/weber.dir/iterative/rswoosh.cc.o" "gcc" "src/CMakeFiles/weber.dir/iterative/rswoosh.cc.o.d"
  "/root/repo/src/mapreduce/engine.cc" "src/CMakeFiles/weber.dir/mapreduce/engine.cc.o" "gcc" "src/CMakeFiles/weber.dir/mapreduce/engine.cc.o.d"
  "/root/repo/src/mapreduce/parallel_meta_blocking.cc" "src/CMakeFiles/weber.dir/mapreduce/parallel_meta_blocking.cc.o" "gcc" "src/CMakeFiles/weber.dir/mapreduce/parallel_meta_blocking.cc.o.d"
  "/root/repo/src/mapreduce/parallel_token_blocking.cc" "src/CMakeFiles/weber.dir/mapreduce/parallel_token_blocking.cc.o" "gcc" "src/CMakeFiles/weber.dir/mapreduce/parallel_token_blocking.cc.o.d"
  "/root/repo/src/matching/clustering.cc" "src/CMakeFiles/weber.dir/matching/clustering.cc.o" "gcc" "src/CMakeFiles/weber.dir/matching/clustering.cc.o.d"
  "/root/repo/src/matching/match_graph.cc" "src/CMakeFiles/weber.dir/matching/match_graph.cc.o" "gcc" "src/CMakeFiles/weber.dir/matching/match_graph.cc.o.d"
  "/root/repo/src/matching/matcher.cc" "src/CMakeFiles/weber.dir/matching/matcher.cc.o" "gcc" "src/CMakeFiles/weber.dir/matching/matcher.cc.o.d"
  "/root/repo/src/metablocking/blocking_graph.cc" "src/CMakeFiles/weber.dir/metablocking/blocking_graph.cc.o" "gcc" "src/CMakeFiles/weber.dir/metablocking/blocking_graph.cc.o.d"
  "/root/repo/src/metablocking/pruning_schemes.cc" "src/CMakeFiles/weber.dir/metablocking/pruning_schemes.cc.o" "gcc" "src/CMakeFiles/weber.dir/metablocking/pruning_schemes.cc.o.d"
  "/root/repo/src/metablocking/weight_schemes.cc" "src/CMakeFiles/weber.dir/metablocking/weight_schemes.cc.o" "gcc" "src/CMakeFiles/weber.dir/metablocking/weight_schemes.cc.o.d"
  "/root/repo/src/model/entity.cc" "src/CMakeFiles/weber.dir/model/entity.cc.o" "gcc" "src/CMakeFiles/weber.dir/model/entity.cc.o.d"
  "/root/repo/src/model/ground_truth.cc" "src/CMakeFiles/weber.dir/model/ground_truth.cc.o" "gcc" "src/CMakeFiles/weber.dir/model/ground_truth.cc.o.d"
  "/root/repo/src/model/io.cc" "src/CMakeFiles/weber.dir/model/io.cc.o" "gcc" "src/CMakeFiles/weber.dir/model/io.cc.o.d"
  "/root/repo/src/progressive/benefit_cost.cc" "src/CMakeFiles/weber.dir/progressive/benefit_cost.cc.o" "gcc" "src/CMakeFiles/weber.dir/progressive/benefit_cost.cc.o.d"
  "/root/repo/src/progressive/ordered_blocks.cc" "src/CMakeFiles/weber.dir/progressive/ordered_blocks.cc.o" "gcc" "src/CMakeFiles/weber.dir/progressive/ordered_blocks.cc.o.d"
  "/root/repo/src/progressive/partition_hierarchy.cc" "src/CMakeFiles/weber.dir/progressive/partition_hierarchy.cc.o" "gcc" "src/CMakeFiles/weber.dir/progressive/partition_hierarchy.cc.o.d"
  "/root/repo/src/progressive/progressive_sn.cc" "src/CMakeFiles/weber.dir/progressive/progressive_sn.cc.o" "gcc" "src/CMakeFiles/weber.dir/progressive/progressive_sn.cc.o.d"
  "/root/repo/src/progressive/psnm.cc" "src/CMakeFiles/weber.dir/progressive/psnm.cc.o" "gcc" "src/CMakeFiles/weber.dir/progressive/psnm.cc.o.d"
  "/root/repo/src/progressive/scheduler.cc" "src/CMakeFiles/weber.dir/progressive/scheduler.cc.o" "gcc" "src/CMakeFiles/weber.dir/progressive/scheduler.cc.o.d"
  "/root/repo/src/simjoin/all_pairs.cc" "src/CMakeFiles/weber.dir/simjoin/all_pairs.cc.o" "gcc" "src/CMakeFiles/weber.dir/simjoin/all_pairs.cc.o.d"
  "/root/repo/src/simjoin/ppjoin.cc" "src/CMakeFiles/weber.dir/simjoin/ppjoin.cc.o" "gcc" "src/CMakeFiles/weber.dir/simjoin/ppjoin.cc.o.d"
  "/root/repo/src/simjoin/token_sets.cc" "src/CMakeFiles/weber.dir/simjoin/token_sets.cc.o" "gcc" "src/CMakeFiles/weber.dir/simjoin/token_sets.cc.o.d"
  "/root/repo/src/text/minhash.cc" "src/CMakeFiles/weber.dir/text/minhash.cc.o" "gcc" "src/CMakeFiles/weber.dir/text/minhash.cc.o.d"
  "/root/repo/src/text/normalizer.cc" "src/CMakeFiles/weber.dir/text/normalizer.cc.o" "gcc" "src/CMakeFiles/weber.dir/text/normalizer.cc.o.d"
  "/root/repo/src/text/phonetic.cc" "src/CMakeFiles/weber.dir/text/phonetic.cc.o" "gcc" "src/CMakeFiles/weber.dir/text/phonetic.cc.o.d"
  "/root/repo/src/text/qgram.cc" "src/CMakeFiles/weber.dir/text/qgram.cc.o" "gcc" "src/CMakeFiles/weber.dir/text/qgram.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/CMakeFiles/weber.dir/text/similarity.cc.o" "gcc" "src/CMakeFiles/weber.dir/text/similarity.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/CMakeFiles/weber.dir/text/tfidf.cc.o" "gcc" "src/CMakeFiles/weber.dir/text/tfidf.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/weber.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/weber.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/weber.dir/util/random.cc.o" "gcc" "src/CMakeFiles/weber.dir/util/random.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/weber.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/weber.dir/util/timer.cc.o.d"
  "/root/repo/src/util/union_find.cc" "src/CMakeFiles/weber.dir/util/union_find.cc.o" "gcc" "src/CMakeFiles/weber.dir/util/union_find.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
