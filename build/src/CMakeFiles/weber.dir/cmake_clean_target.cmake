file(REMOVE_RECURSE
  "libweber.a"
)
