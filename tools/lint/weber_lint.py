#!/usr/bin/env python3
"""weber-lint: repo-specific static checks for the weber codebase.

Rules (see tools/lint/rules.md for rationale and examples):

  threads          std::thread / std::jthread / std::async only in
                   src/core/executor.*
  randomness       rand() / srand() / std::random_device / std::mt19937 /
                   std::time only in src/util/random.*
  metrics          every "weber.*" metric literal emitted by src/ must be
                   documented in DESIGN.md's metric catalog table
  using-namespace  no `using namespace std;` anywhere
  include-hygiene  every header under src/ compiles standalone
                   (g++ -fsyntax-only)
  indexed-access   in designated hot-path files, indexing with an
                   id/index-named variable needs a WEBER_[D]CHECK nearby or
                   an explicit `// lint: allow(indexed-access)` escape
  file-io          fopen/open/mmap/fstream only under src/storage/ (and
                   src/model/io.h) — every fsync/atomicity decision lives
                   in the durability layer; `// lint: allow(file-io)`
                   escapes with a reason
  socket-io        socket syscalls (::socket/::bind/::connect/...) and
                   <sys/socket.h>/<sys/un.h> only under src/serve/ — the
                   serving front end owns every network entry point;
                   `// lint: allow(socket-io)` escapes with a reason
  raw-sync         std::mutex / std::condition_variable / std::shared_mutex
                   (and their lock wrappers) only in src/util/sync.h — all
                   locking goes through the annotated weber::util types so
                   clang -Wthread-safety sees every acquisition;
                   `// lint: allow(raw-sync)` escapes with a reason

Usage:
  tools/lint/weber_lint.py              lint the repo; exit 1 on findings
  tools/lint/weber_lint.py --fix        also append missing metric rows to
                                        DESIGN.md's catalog table
  tools/lint/weber_lint.py --self-test  seed one violation per rule in a
                                        scratch tree and assert each fires
  tools/lint/weber_lint.py --skip-compile
                                        skip the (slower) include-hygiene
                                        compiles

Stdlib-only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# Files whose job is to own the banned construct.
THREAD_OWNERS = ("src/core/executor.h", "src/core/executor.cc")
RANDOM_OWNERS = ("src/util/random.h", "src/util/random.cc")
# The annotated sync layer wraps the raw primitives exactly once; every
# other acquisition goes through weber::util::{Mutex,MutexLock,CondVar} so
# the clang thread-safety analysis sees it.
SYNC_OWNERS = ("src/util/sync.h",)

# Where file I/O is sanctioned: the durability layer owns every
# fsync-ordering and atomicity decision (src/storage/file_io.* are the
# audited entry points), and model/io.h is the historical text-format
# reader. Everything else in src/ takes streams or bytes from callers.
FILE_IO_OWNER_PREFIXES = ("src/storage/", "src/model/io.h")

# Where socket I/O is sanctioned: the serving front end (UnixServer,
# ServeClient and the framed transport). Everything else in src/ speaks
# in-process types; network entry points concentrate where shutdown
# draining and typed overload are enforced.
SOCKET_IO_OWNER_PREFIXES = ("src/serve/",)

# Hot-path files where unchecked indexing has caused (or nearly caused)
# out-of-bounds reads; see rules.md.
INDEXED_ACCESS_FILES = (
    "src/util/intersect.h",
    "src/blocking/block.cc",
    "src/matching/signatures.cc",
    "src/metablocking/blocking_graph.cc",
)

THREAD_RE = re.compile(r"\bstd::(thread|jthread|async)\b")
RANDOM_RE = re.compile(
    r"(\b(rand|srand)\s*\(|\bstd::(random_device|mt19937(_64)?|time)\b)")
USING_STD_RE = re.compile(r"\busing\s+namespace\s+std\s*;")
METRIC_RE = re.compile(r'"(weber\.[a-z0-9_.]+)"')
CATALOG_ROW_RE = re.compile(r"^\|\s*`(weber\.[a-z0-9_.]+)`\s*\|")
ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")
INDEX_VAR_RE = re.compile(
    r"(?:\[\s*|\.at\(\s*)([A-Za-z_]*(?:id|idx|index)[A-Za-z_]*)\s*[\]\)]")
# C and C++ file-opening constructs. `\bopen\b` stays word-bounded so
# `is_open()` / `Open()` do not fire; stream types fire at the point of
# construction or .open() call alike.
FILE_IO_RE = re.compile(
    r"(\b(fopen|freopen|openat|creat|mmap)\s*\(|\bopen\s*\(|"
    r"\bstd::(i|o)?fstream\b|\bstd::filebuf\b)")
# Socket syscalls are matched with their global-scope `::` qualifier (the
# repo idiom for raw syscalls), which keeps common identifiers like a
# method named `connect` or `shutdown` from firing; the headers are
# matched outright.
SOCKET_IO_RE = re.compile(
    r"(::\s*(socket|socketpair|bind|listen|accept4?|connect|recv|recvfrom|"
    r"recvmsg|send|sendto|sendmsg|setsockopt|getsockopt|getsockname|"
    r"getpeername)\s*\(|#\s*include\s*<sys/(socket|un)\.h>)")
CHECK_NEAR_RE = re.compile(r"WEBER_D?CHECK")
# Raw synchronization primitives and the std lock wrappers that take them.
# Matching the wrappers too keeps a rogue `std::unique_lock<weber::...>`
# from smuggling an unannotated acquisition past the analysis.
RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")

CATALOG_HEADER = "### Metric catalog"


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string-literal contents with spaces, keeping
    newlines so line numbers survive. Rules then cannot be tripped (or
    silenced) by prose."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def iter_files(root: str, subdirs, suffixes):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(tuple(suffixes)):
                    yield os.path.join(dirpath, name)


def rel(root: str, path: str) -> str:
    return os.path.relpath(path, root)


def read(path: str) -> str:
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read()


def allowed_lines(raw: str, rule: str):
    """Line numbers (1-based) carrying `// lint: allow(<rule>)`, which
    silence that rule on their own line and the next one."""
    allowed = set()
    for lineno, line in enumerate(raw.splitlines(), 1):
        m = ALLOW_RE.search(line)
        if m and m.group(1) == rule:
            allowed.add(lineno)
            allowed.add(lineno + 1)
    return allowed


def check_pattern_rule(root, files, regex, rule, owners, message):
    findings = []
    for path in files:
        r = rel(root, path)
        if r.replace(os.sep, "/") in owners:
            continue
        raw = read(path)
        allow = allowed_lines(raw, rule)
        stripped = strip_comments_and_strings(raw)
        for lineno, line in enumerate(stripped.splitlines(), 1):
            m = regex.search(line)
            if m and lineno not in allow:
                findings.append(Finding(r, lineno, rule,
                                        message.format(found=m.group(0))))
    return findings


def catalog_names(design_text: str):
    return {m.group(1) for line in design_text.splitlines()
            if (m := CATALOG_ROW_RE.match(line))}


def emitted_metrics(root, files):
    """Metric literals with one representative site each."""
    sites = {}
    for path in files:
        raw = read(path)
        for lineno, line in enumerate(raw.splitlines(), 1):
            for m in METRIC_RE.finditer(line):
                sites.setdefault(m.group(1), (rel(root, path), lineno))
    return sites


def check_metrics(root, files, fix=False):
    findings = []
    design_path = os.path.join(root, "DESIGN.md")
    if not os.path.exists(design_path):
        return [Finding("DESIGN.md", 1, "metrics", "DESIGN.md not found")]
    design = read(design_path)
    documented = catalog_names(design)
    if not documented:
        return [Finding("DESIGN.md", 1, "metrics",
                        f"no '{CATALOG_HEADER}' table rows found")]
    sites = emitted_metrics(root, files)
    missing = sorted(set(sites) - documented)
    for name in missing:
        path, lineno = sites[name]
        findings.append(Finding(
            path, lineno, "metrics",
            f"metric '{name}' is not documented in DESIGN.md's metric "
            "catalog"))
    stale = sorted(documented - set(sites))
    for name in stale:
        findings.append(Finding(
            "DESIGN.md", 1, "metrics",
            f"catalog documents '{name}' but nothing emits it"))
    if fix and missing:
        lines = design.splitlines(keepends=True)
        # Append after the last existing catalog row.
        last_row = max(i for i, line in enumerate(lines)
                       if CATALOG_ROW_RE.match(line))
        rows = [f"| `{name}` | _undocumented_ | TODO: describe |\n"
                for name in missing]
        lines[last_row + 1:last_row + 1] = rows
        with open(design_path, "w", encoding="utf-8") as f:
            f.writelines(lines)
        print(f"weber-lint: --fix appended {len(missing)} catalog row(s) to "
              "DESIGN.md (fill in the TODO descriptions)")
    return findings


def check_include_hygiene(root, compiler="g++"):
    """Each header under src/ must compile on its own: a consumer should
    never need to pre-include its dependencies."""
    findings = []
    if shutil.which(compiler) is None:
        return findings
    headers = sorted(iter_files(root, ["src"], [".h"]))
    with tempfile.TemporaryDirectory() as tmp:
        probe = os.path.join(tmp, "probe.cc")
        for path in headers:
            r = rel(root, path)
            include = r.replace(os.sep, "/")[len("src/"):]
            with open(probe, "w", encoding="utf-8") as f:
                f.write(f'#include "{include}"\n')
            proc = subprocess.run(
                [compiler, "-std=c++20", "-fsyntax-only",
                 "-I", os.path.join(root, "src"), probe],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compile failed"
                findings.append(Finding(
                    r, 1, "include-hygiene",
                    f"header does not compile standalone: {detail}"))
    return findings


def check_file_io(root, files):
    """File I/O must flow through the durability layer's audited entry
    points (src/storage/file_io.* and friends); scattered fopen/mmap calls
    are where fsync-ordering bugs hide."""
    scoped = [
        path for path in files
        if not rel(root, path).replace(os.sep, "/")
        .startswith(FILE_IO_OWNER_PREFIXES)]
    return check_pattern_rule(
        root, scoped, FILE_IO_RE, "file-io", (),
        "'{found}' outside src/storage/ and src/model/io.h — file I/O "
        "belongs to the durability layer (or add "
        "`// lint: allow(file-io)` with a reason)")


def check_socket_io(root, files):
    """Network entry points must live in the serving front end
    (src/serve/), where connection draining, typed overload and the frame
    protocol are enforced in one place."""
    scoped = [
        path for path in files
        if not rel(root, path).replace(os.sep, "/")
        .startswith(SOCKET_IO_OWNER_PREFIXES)]
    return check_pattern_rule(
        root, scoped, SOCKET_IO_RE, "socket-io", (),
        "'{found}' outside src/serve/ — socket I/O belongs to the serving "
        "front end (or add `// lint: allow(socket-io)` with a reason)")


def check_indexed_access(root):
    findings = []
    for r in INDEXED_ACCESS_FILES:
        path = os.path.join(root, r)
        if not os.path.exists(path):
            continue
        raw = read(path)
        allow = allowed_lines(raw, "indexed-access")
        lines = strip_comments_and_strings(raw).splitlines()
        for lineno, line in enumerate(lines, 1):
            m = INDEX_VAR_RE.search(line)
            if m is None or lineno in allow:
                continue
            var = m.group(1)
            # A contract on the same line or within the preceding window
            # that names the variable counts as adjacent.
            window = lines[max(0, lineno - 11):lineno]
            guarded = any(
                CHECK_NEAR_RE.search(w)
                and re.search(rf"\b{re.escape(var)}\b", w)
                for w in window)
            if not guarded:
                findings.append(Finding(
                    r, lineno, "indexed-access",
                    f"index '{var}' is used without a nearby WEBER_[D]CHECK "
                    "bound (add one, or `// lint: allow(indexed-access)` "
                    "with a reason)"))
    return findings


def run_lint(root, fix=False, skip_compile=False):
    lib_files = sorted(iter_files(root, ["src"], [".h", ".cc"]))
    all_files = sorted(iter_files(
        root, ["src", "tests", "examples", "bench", "tools"],
        [".h", ".cc"]))
    findings = []
    findings += check_pattern_rule(
        root, lib_files, THREAD_RE, "threads", THREAD_OWNERS,
        "'{found}' outside src/core/executor.* — all parallelism must run "
        "on the shared executor")
    findings += check_pattern_rule(
        root, lib_files, RANDOM_RE, "randomness", RANDOM_OWNERS,
        "'{found}' outside src/util/random.* — all randomness must flow "
        "from the seeded util::Rng")
    findings += check_pattern_rule(
        root, lib_files, RAW_SYNC_RE, "raw-sync", SYNC_OWNERS,
        "'{found}' outside src/util/sync.h — lock through the annotated "
        "weber::util::{{Mutex,MutexLock,CondVar}} types so the clang "
        "thread-safety analysis sees the acquisition (or add "
        "`// lint: allow(raw-sync)` with a reason)")
    findings += check_pattern_rule(
        root, all_files, USING_STD_RE, "using-namespace", (),
        "'using namespace std' pollutes every including scope")
    findings += check_file_io(root, lib_files)
    findings += check_socket_io(root, lib_files)
    findings += check_metrics(root, lib_files, fix=fix)
    if not skip_compile:
        findings += check_include_hygiene(root)
    findings += check_indexed_access(root)
    return findings


# ---------------------------------------------------------------------------
# Self-test: seed one violation per rule in a scratch tree and assert that
# exactly that rule fires on it.
# ---------------------------------------------------------------------------

SELF_TEST_SEEDS = {
    "threads": ("src/blocking/rogue.cc",
                "#include <thread>\nvoid f() { std::thread t([]{}); }\n"),
    "randomness": ("src/matching/rogue.cc",
                   "#include <cstdlib>\nint f() { return rand(); }\n"),
    "using-namespace": ("src/model/rogue.cc", "using namespace std;\n"),
    "metrics": ("src/obs/rogue.cc",
                'const char* k = "weber.rogue.undocumented";\n'),
    "include-hygiene": ("src/util/rogue.h",
                        "#ifndef R_H_\n#define R_H_\n"
                        "inline std::string f() { return {}; }\n"
                        "#endif\n"),
    "indexed-access": ("src/util/intersect.h",
                       "inline int Pick(const int* xs, int the_index) {\n"
                       "  return xs[the_index];\n}\n"),
    "file-io": ("src/eval/rogue.cc",
                "#include <fstream>\n"
                'void f() { std::ifstream in("leak.txt"); }\n'),
    "socket-io": ("src/eval/rogue_sock.cc",
                  "#include <sys/socket.h>\n"
                  "void f() { ::socket(1, 1, 0); }\n"),
    "raw-sync": ("src/core/rogue_sync.cc",
                 "#include <mutex>\n"
                 "std::mutex rogue_mu;\n"
                 "void f() { std::lock_guard<std::mutex> l(rogue_mu); }\n"),
}


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src"))
        with open(os.path.join(tmp, "DESIGN.md"), "w") as f:
            f.write(f"{CATALOG_HEADER}\n\n"
                    "| metric | kind | meaning |\n|---|---|---|\n"
                    "| `weber.ok.documented` | counter | fine |\n")
        with open(os.path.join(tmp, "src", "ok.cc"), "w") as f:
            f.write('const char* k = "weber.ok.documented";\n'
                    "// std::thread in a comment must not fire\n"
                    'const char* s = "prose about std::thread";\n')
        baseline = run_lint(tmp)
        if baseline:
            failures.append(
                f"clean scratch tree produced findings: {baseline[0]}")
        for rule, (relpath, content) in SELF_TEST_SEEDS.items():
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(content)
            found = [f for f in run_lint(tmp) if f.rule == rule]
            if not found:
                failures.append(f"seeded {rule} violation was not detected")
            os.remove(path)
        # The allow-comment escape must silence indexed-access.
        path = os.path.join(tmp, "src/util/intersect.h")
        with open(path, "w") as f:
            f.write("inline int Pick(const int* xs, int the_index) {\n"
                    "  // lint: allow(indexed-access) bound checked by caller\n"
                    "  return xs[the_index];\n}\n")
        if any(f.rule == "indexed-access" for f in run_lint(tmp)):
            failures.append("allow(indexed-access) escape did not silence")
        os.remove(path)
        # ... and file-io; and the storage directory itself is sanctioned.
        path = os.path.join(tmp, "src/eval/rogue.cc")
        with open(path, "w") as f:
            f.write("#include <cstdio>\n"
                    "// lint: allow(file-io) reads its own proc stats\n"
                    'void f() { std::fopen("/proc/self/statm", "r"); }\n')
        owner = os.path.join(tmp, "src/storage/rogue.cc")
        os.makedirs(os.path.dirname(owner), exist_ok=True)
        with open(owner, "w") as f:
            f.write("#include <cstdio>\n"
                    'void g() { std::fopen("wal", "a"); }\n')
        if any(f.rule == "file-io" for f in run_lint(tmp)):
            failures.append("file-io allow/owner escapes did not silence")
        os.remove(path)
        os.remove(owner)
        # ... and raw-sync; the sync layer itself is sanctioned.
        path = os.path.join(tmp, "src/core/rogue_sync.cc")
        with open(path, "w") as f:
            f.write("#include <mutex>\n"
                    "// lint: allow(raw-sync) adapts a third-party callback\n"
                    "std::mutex escape_mu;\n")
        owner = os.path.join(tmp, "src/util/sync.h")
        os.makedirs(os.path.dirname(owner), exist_ok=True)
        with open(owner, "w") as f:
            f.write("#include <mutex>\n"
                    "struct M { std::mutex mu_; };\n")
        if any(f.rule == "raw-sync" for f in run_lint(tmp)):
            failures.append("raw-sync allow/owner escapes did not silence")
        os.remove(path)
        os.remove(owner)
        # ... and socket-io; the serve directory itself is sanctioned.
        path = os.path.join(tmp, "src/eval/rogue_sock.cc")
        with open(path, "w") as f:
            f.write("#include <cstdint>\n"
                    "// lint: allow(socket-io) probe of a local agent\n"
                    "void f() { ::socket(1, 1, 0); }\n")
        owner = os.path.join(tmp, "src/serve/rogue.cc")
        os.makedirs(os.path.dirname(owner), exist_ok=True)
        with open(owner, "w") as f:
            f.write("#include <sys/socket.h>\n"
                    "void g() { ::socket(1, 1, 0); }\n")
        if any(f.rule == "socket-io" for f in run_lint(tmp)):
            failures.append("socket-io allow/owner escapes did not silence")
        os.remove(path)
        os.remove(owner)
    for failure in failures:
        print(f"weber-lint: self-test FAILED: {failure}", file=sys.stderr)
    if not failures:
        print(f"weber-lint: self-test passed "
              f"({len(SELF_TEST_SEEDS)} rules verified)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=REPO_ROOT)
    parser.add_argument("--fix", action="store_true",
                        help="append missing metric rows to DESIGN.md")
    parser.add_argument("--skip-compile", action="store_true",
                        help="skip include-hygiene compiles")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    findings = run_lint(args.root, fix=args.fix,
                        skip_compile=args.skip_compile)
    for finding in findings:
        print(finding)
    if findings:
        print(f"weber-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("weber-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
