#!/usr/bin/env python3
"""Run the machine-readable benches and merge their reports.

Each bench built with WEBER_BENCH_MAIN accepts --json=PATH and writes a
`weber-bench-report/1` document (see bench/bench_report.h). This driver
runs a configurable set of those benches and merges the per-bench files
into one BENCH_report.json:

    {"schema": "weber-bench-report-merged/1",
     "quick": true,
     "benches": {"bench_pipeline": {...per-bench report...}, ...},
     "failed": ["bench_that_crashed", ...]}

Usage:
    tools/bench/run_benchmarks.py --build-dir build --quick \
        --out BENCH_report.json

--quick trims each bench to a CI-sized subset (small row filters, short
min_time); without it every registered row runs at its default settings.
Exit status is non-zero when any bench fails or writes no samples.
"""

import argparse
import json
import os
import subprocess
import sys

# Per-bench row filters for --quick. bench_pipeline rows are Iterations(1)
# already, so it runs unfiltered; the others are trimmed to their smallest
# configurations.
BENCHES = {
    "bench_pipeline": {
        "quick_args": [],
        "full_args": [],
    },
    "bench_matching": {
        "quick_args": ["--benchmark_filter=/1$", "--benchmark_min_time=0.1"],
        "full_args": [],
    },
    "bench_incremental": {
        "quick_args": ["--benchmark_filter=/10000$",
                       "--benchmark_min_time=0.1"],
        "full_args": [],
    },
    "bench_parallel_scaling": {
        "quick_args": ["--benchmark_filter=/(1|4)/",
                       "--benchmark_min_time=0.1"],
        "full_args": [],
    },
    "bench_storage": {
        # Keep the 1k/10k rows plus the 100k mapped-open row — the
        # zero-copy claim needs the large file to show flat open time.
        "quick_args": [
            "--benchmark_filter=(/1000$|/10000$|OpenMapped/100000|/4096/)",
            "--benchmark_min_time=0.1"],
        "full_args": [],
    },
    "bench_serve": {
        # Quick keeps the 20k-corpus rows at every shard count; full adds
        # the million-entity rows of the scaling claim.
        "quick_args": ["--benchmark_filter=/20000/"],
        "full_args": [],
    },
}


def run_bench(binary, bench, args, out_path):
    """Runs one bench; returns its parsed report or None on failure."""
    cmd = [binary, f"--json={out_path}"] + args
    print(f"[run_benchmarks] {' '.join(cmd)}", flush=True)
    try:
        subprocess.run(cmd, check=True)
    except (OSError, subprocess.CalledProcessError) as err:
        print(f"[run_benchmarks] {bench} failed: {err}", file=sys.stderr)
        return None
    try:
        with open(out_path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"[run_benchmarks] {bench} wrote unreadable JSON: {err}",
              file=sys.stderr)
        return None
    if report.get("schema") != "weber-bench-report/1":
        print(f"[run_benchmarks] {bench}: unexpected schema "
              f"{report.get('schema')!r}", file=sys.stderr)
        return None
    if not report.get("samples"):
        print(f"[run_benchmarks] {bench}: no samples", file=sys.stderr)
        return None
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding bench/ binaries")
    parser.add_argument("--out", default="BENCH_report.json",
                        help="merged report path")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized subset: filtered rows, short min_time")
    parser.add_argument("--benches", default=",".join(BENCHES),
                        help="comma-separated subset of: "
                             + ", ".join(BENCHES))
    opts = parser.parse_args()

    selected = [b for b in opts.benches.split(",") if b]
    unknown = [b for b in selected if b not in BENCHES]
    if unknown:
        parser.error(f"unknown benches: {', '.join(unknown)} "
                     f"(known: {', '.join(BENCHES)})")

    merged = {
        "schema": "weber-bench-report-merged/1",
        "quick": opts.quick,
        "benches": {},
        "failed": [],
    }
    for bench in selected:
        binary = os.path.join(opts.build_dir, "bench", bench)
        if not os.path.exists(binary):
            print(f"[run_benchmarks] missing binary {binary}",
                  file=sys.stderr)
            merged["failed"].append(bench)
            continue
        args = BENCHES[bench]["quick_args" if opts.quick else "full_args"]
        report = run_bench(binary, bench, args, opts.out + f".{bench}.tmp")
        if report is None:
            merged["failed"].append(bench)
        else:
            merged["benches"][bench] = report
        tmp = opts.out + f".{bench}.tmp"
        if os.path.exists(tmp):
            os.unlink(tmp)

    with open(opts.out, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    total_rows = sum(len(r["samples"]) for r in merged["benches"].values())
    print(f"[run_benchmarks] wrote {opts.out}: "
          f"{len(merged['benches'])} benches, {total_rows} rows, "
          f"{len(merged['failed'])} failed")
    return 1 if merged["failed"] else 0


if __name__ == "__main__":
    sys.exit(main())
