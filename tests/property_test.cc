// Property tests against independent reference implementations and
// random inputs: the fast/pruned algorithms must agree with their naive
// counterparts, and core invariants must hold over randomised corpora.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "blocking/comparison_propagation.h"
#include "blocking/token_blocking.h"
#include "datagen/corpus_generator.h"
#include "metablocking/pruning_schemes.h"
#include "metablocking/weight_schemes.h"
#include "progressive/partition_hierarchy.h"
#include "progressive/progressive_sn.h"
#include "text/similarity.h"
#include "util/random.h"

namespace weber {
namespace {

// ---------------------------------------------------------------------------
// Levenshtein vs full-matrix reference
// ---------------------------------------------------------------------------

size_t ReferenceLevenshtein(const std::string& a, const std::string& b) {
  std::vector<std::vector<size_t>> dp(a.size() + 1,
                                      std::vector<size_t>(b.size() + 1));
  for (size_t i = 0; i <= a.size(); ++i) dp[i][0] = i;
  for (size_t j = 0; j <= b.size(); ++j) dp[0][j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      dp[i][j] = std::min({dp[i - 1][j] + 1, dp[i][j - 1] + 1,
                           dp[i - 1][j - 1] +
                               (a[i - 1] == b[j - 1] ? 0 : 1)});
    }
  }
  return dp[a.size()][b.size()];
}

class RandomStringsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomStringsProperty, LevenshteinMatchesReference) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string a = rng.NextToken(rng.NextBounded(14));
    std::string b = rng.NextToken(rng.NextBounded(14));
    EXPECT_EQ(text::LevenshteinDistance(a, b), ReferenceLevenshtein(a, b))
        << a << " vs " << b;
  }
}

TEST_P(RandomStringsProperty, CharacterSimilaritiesBoundedAndReflexive) {
  util::Rng rng(GetParam() ^ 0xBEEF);
  for (int trial = 0; trial < 60; ++trial) {
    std::string a = rng.NextToken(1 + rng.NextBounded(12));
    std::string b = rng.NextToken(1 + rng.NextBounded(12));
    for (auto fn : {text::LevenshteinSimilarity, text::JaroSimilarity}) {
      double sim = fn(a, b);
      EXPECT_GE(sim, 0.0);
      EXPECT_LE(sim, 1.0);
      EXPECT_DOUBLE_EQ(fn(a, a), 1.0);
      EXPECT_DOUBLE_EQ(fn(a, b), fn(b, a)) << a << " " << b;
    }
    double jw = text::JaroWinklerSimilarity(a, b);
    EXPECT_GE(jw, text::JaroSimilarity(a, b) - 1e-12);
    EXPECT_LE(jw, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStringsProperty,
                         ::testing::Values(1, 2, 3, 4, 5),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Comparison propagation vs hash-set reference over random blocks
// ---------------------------------------------------------------------------

class RandomBlocksProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomBlocksProperty, LeCoBIEqualsHashSetDedup) {
  util::Rng rng(GetParam());
  model::EntityCollection c;
  for (int i = 0; i < 40; ++i) {
    model::EntityDescription d("u" + std::to_string(i));
    d.AddPair("p", "x");
    c.Add(d);
  }
  blocking::BlockCollection blocks(&c);
  size_t num_blocks = 5 + rng.NextBounded(15);
  for (size_t b = 0; b < num_blocks; ++b) {
    blocking::Block block;
    block.key = "b" + std::to_string(b);
    size_t size = 2 + rng.NextBounded(8);
    for (size_t k = 0; k < size; ++k) {
      block.entities.push_back(
          static_cast<model::EntityId>(rng.NextBounded(40)));
    }
    blocks.AddBlock(std::move(block));
  }
  blocking::ComparisonPropagation propagation(blocks);
  model::IdPairSet via_lecobi;
  propagation.VisitPairs([&via_lecobi](model::EntityId a, model::EntityId b) {
    EXPECT_TRUE(via_lecobi.insert(model::IdPair::Of(a, b)).second);
  });
  EXPECT_EQ(via_lecobi, blocks.DistinctPairs());
}

TEST_P(RandomBlocksProperty, MetaBlockingReciprocalSubsetInvariant) {
  datagen::CorpusConfig config;
  config.num_entities = 60;
  config.seed = GetParam() * 1000;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).GenerateDirty();
  blocking::BlockCollection blocks =
      blocking::TokenBlocking().Build(corpus.collection);
  for (auto weights : metablocking::kAllWeightSchemes) {
    for (auto pruning : {metablocking::PruningScheme::kWnp,
                         metablocking::PruningScheme::kCnp}) {
      auto union_kept =
          metablocking::MetaBlock(blocks, weights, pruning, {false});
      auto reciprocal_kept =
          metablocking::MetaBlock(blocks, weights, pruning, {true});
      model::IdPairSet union_set(union_kept.begin(), union_kept.end());
      for (const model::IdPair& pair : reciprocal_kept) {
        EXPECT_TRUE(union_set.contains(pair))
            << metablocking::ToString(weights) << "+"
            << metablocking::ToString(pruning);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBlocksProperty,
                         ::testing::Values(11, 12, 13),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Progressive schedules: completeness over generated corpora
// ---------------------------------------------------------------------------

class ScheduleCompleteness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScheduleCompleteness, SnAndHierarchyCoverAllPairsOnce) {
  datagen::CorpusConfig config;
  config.num_entities = 35;  // Small: full coverage is quadratic.
  config.duplicate_fraction = 0.4;
  config.seed = GetParam();
  datagen::Corpus corpus = datagen::CorpusGenerator(config).GenerateDirty();
  uint64_t total = corpus.collection.TotalComparisons();
  {
    progressive::ProgressiveSnScheduler sn(corpus.collection);
    model::IdPairSet seen;
    while (auto pair = sn.NextPair()) {
      EXPECT_TRUE(seen.insert(*pair).second);
    }
    EXPECT_EQ(seen.size(), total);
  }
  {
    progressive::PartitionHierarchyScheduler hierarchy(corpus.collection);
    model::IdPairSet seen;
    while (auto pair = hierarchy.NextPair()) {
      EXPECT_TRUE(seen.insert(*pair).second);
    }
    EXPECT_EQ(seen.size(), total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleCompleteness,
                         ::testing::Values(21, 22, 23, 24),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Datagen determinism across corpus kinds
// ---------------------------------------------------------------------------

TEST(DatagenDeterminism, CleanCleanAndRelationalStable) {
  datagen::CorpusConfig config;
  config.num_entities = 40;
  config.schema_divergence = 0.5;
  config.seed = 31;
  auto a = datagen::CorpusGenerator(config).GenerateCleanClean();
  auto b = datagen::CorpusGenerator(config).GenerateCleanClean();
  ASSERT_EQ(a.collection.size(), b.collection.size());
  for (model::EntityId i = 0; i < a.collection.size(); ++i) {
    EXPECT_EQ(a.collection[i], b.collection[i]);
  }

  datagen::RelationalConfig relational;
  relational.tail.num_entities = 15;
  relational.head.num_entities = 20;
  relational.seed = 33;
  auto r1 = datagen::RelationalCorpusGenerator(relational).Generate();
  auto r2 = datagen::RelationalCorpusGenerator(relational).Generate();
  ASSERT_EQ(r1.collection.size(), r2.collection.size());
  for (model::EntityId i = 0; i < r1.collection.size(); ++i) {
    EXPECT_EQ(r1.collection[i], r2.collection[i]);
  }
  EXPECT_EQ(r1.truth.NumMatches(), r2.truth.NumMatches());
}

}  // namespace
}  // namespace weber
